//! Run a small crash-injection campaign over the full scenario registry
//! and print the outcome histogram.
//!
//! The campaign engine is what `campaign run` drives from the CLI; this
//! example uses the library API directly. Every scheduled crash state is
//! injected, recovered, and classified; the same seed always reproduces
//! the same report, on any number of worker threads.
//!
//! ```text
//! cargo run --example crash_campaign
//! ```

use adcc::prelude::*;

fn main() {
    let cfg = CampaignConfig {
        seed: 42,
        budget_states: 26,
        schedule: Schedule::Stratified,
        threads: 2,
        telemetry: true,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);

    println!(
        "{} crash states across {} scenarios ({} ms):",
        report.totals.total(),
        report.scenarios.len(),
        report.wall_clock_ms
    );
    for s in &report.scenarios {
        println!(
            "  {:<28} {:>2} trials: {} exact, {} recomputed, {} detected-dirty",
            s.name,
            s.trials,
            s.outcomes.recovered_exact,
            s.outcomes.recovered_recomputed,
            s.outcomes.detected_dirty,
        );
    }
    assert_eq!(
        report.silent_corruption_total(),
        0,
        "no mechanism may corrupt silently"
    );
    println!("zero silent-corruption outcomes — every crash state was accounted for.");

    // Telemetry: what the campaign's crash consistence *cost*.
    let t = report.telemetry.expect("campaign ran with telemetry");
    let (adr_ps, eadr_ps) = adr_eadr_costs(&t);
    println!(
        "cost meter: {} flushes, {} fences, {} log bytes, {} dirty bytes at crash",
        t.flush_total(),
        t.sfences,
        t.log_bytes,
        t.dirty_bytes_at_crash(),
    );
    println!(
        "modeled cost: {:.3} ms on ADR vs {:.3} ms on eADR",
        adr_ps as f64 / 1e9,
        eadr_ps as f64 / 1e9,
    );
}
