//! Heat-diffusion stencil with sweep-granular crash recovery
//! (extension E3; DESIGN.md §5a).
//!
//! A 2-D 5-point stencil runs over a ring of three grid generations; each
//! row block's (sweep tag, sum) pair is flushed as it completes. After a
//! mid-sweep crash, recovery finds the newest generation whose blocks all
//! verify and resumes from the following sweep.
//!
//! Run with: `cargo run --release --example heat_stencil`

use adcc::core::stencil::sites;
use adcc::prelude::*;

fn main() {
    let (rows, cols, sweeps) = (48, 48, 12);

    // Grid (18 KiB/generation) larger than the 8 KiB cache: old
    // generations reach NVM by normal eviction.
    let cfg = SystemConfig::nvm_only(8 << 10, 64 << 20);

    let want = heat_host(rows, cols, sweeps);

    // Crash after the second row block of sweep 9.
    let mut sys = MemorySystem::new(cfg.clone());
    let st = ExtendedStencil::setup(&mut sys, rows, cols, sweeps, 3, 4);
    let trigger = CrashTrigger::AtSite {
        site: CrashSite::new(sites::PH_AFTER_BLOCK, 1),
        occurrence: 10, // the 10th completion of block #1 is in sweep 9
    };
    let mut emu = CrashEmulator::from_system(sys, trigger);
    let image = st
        .run(&mut emu, 0, sweeps)
        .crashed()
        .expect("trigger fires");

    let rec = st.recover_and_resume(&image, cfg);
    match rec.restart_from {
        Some(s) => println!(
            "newest verifiable generation: sweep {s} -> resumed at sweep {}",
            s + 1
        ),
        None => println!("no generation verified -> restarted from the initial condition"),
    }
    println!(
        "sweeps lost: {} | detect {} | resume {}",
        rec.report.lost_units, rec.report.detect_time, rec.report.resume_time
    );

    let err = rec
        .solution
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |recovered - reference| = {err:.2e}");
    assert!(err < 1e-12, "recovery must reproduce the crash-free grid");

    // Physics sanity: the hot bump has diffused.
    let peak0 = (0..rows * cols)
        .map(|i| adcc::core::stencil::initial_value(rows, cols, i / cols, i % cols))
        .fold(f64::MIN, f64::max);
    let peak = rec.solution.iter().cloned().fold(f64::MIN, f64::max);
    println!("initial peak {peak0:.1} -> final peak {peak:.1}");
}
