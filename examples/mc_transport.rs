//! The paper's third case study: Monte-Carlo cross-section lookups
//! (XSBench-like). Compares the "basic idea" restart (skewed statistics)
//! against the paper's selective flushing (correct statistics, negligible
//! cost).
//!
//! Run with: `cargo run --release --example mc_transport`

use adcc::core::mc::sites;
use adcc::core::mc::XS_CHANNELS;
use adcc::prelude::*;

fn run_mode(
    p: &McProblem,
    lookups: u64,
    mode: McMode,
    crash_at: Option<u64>,
) -> [u64; XS_CHANNELS] {
    let cfg = Platform::Hetero.mc_config(p.grid_bytes() + (4 << 20));
    let mut sys = MemorySystem::new(cfg.clone());
    let mc = McSim::setup(&mut sys, p.clone(), lookups, 2024, mode);
    match crash_at {
        None => {
            let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
            mc.run(&mut emu, 0, lookups).completed().unwrap();
            mc.peek_counts(&emu)
        }
        Some(at) => {
            let trigger = CrashTrigger::AtSite {
                site: CrashSite::new(sites::PH_LOOKUP, at),
                occurrence: 1,
            };
            let mut emu = CrashEmulator::from_system(sys, trigger);
            let image = mc.run(&mut emu, 0, lookups).crashed().expect("crash");
            let rec = mc.recover_and_resume(&image, cfg, at + 1);
            println!(
                "  crashed at lookup {at}, resumed from {}, lost {} lookups of work",
                rec.resumed_from, rec.report.lost_units
            );
            rec.counts
        }
    }
}

fn print_counts(label: &str, counts: &[u64; XS_CHANNELS], total: u64) {
    let shares: Vec<String> = counts
        .iter()
        .map(|c| format!("{:5.2}%", *c as f64 / total as f64 * 100.0))
        .collect();
    println!("  {label:<28} {}", shares.join("  "));
}

fn main() {
    let p = McProblem::generate(68, 1024, 99);
    let lookups = 50_000u64;
    let crash_at = lookups / 10;
    println!(
        "XSBench-like MC: {} nuclides, {} grid points, {} lookups, crash at 10%",
        p.n_nuclides, p.grid_points, lookups
    );

    let reference = run_mode(&p, lookups, McMode::Native, None);
    print_counts("no crash", &reference, lookups);

    println!("basic idea (flush loop index only):");
    let basic = run_mode(&p, lookups, McMode::Basic, Some(crash_at));
    print_counts("crash + restart (basic)", &basic, lookups);
    let lost: i64 = reference.iter().sum::<u64>() as i64 - basic.iter().sum::<u64>() as i64;
    println!("  -> {lost} counter updates were stranded in volatile caches and lost");

    println!("selective flushing (counters + macro_xs + index every 0.01%):");
    let interval = (lookups / 10_000).max(20);
    let selective = run_mode(&p, lookups, McMode::Selective { interval }, Some(crash_at));
    print_counts("crash + restart (selective)", &selective, lookups);
    assert_eq!(
        selective, reference,
        "selective flushing + replay RNG reproduces the exact statistics"
    );
    println!("OK: selective flushing preserves the result exactly");
}
