//! The classic checkpoint-overhead mitigations from the paper's
//! introduction ([1]–[10]), exercised on one workload: full NVM
//! double-buffering, page-incremental, two-level local+remote, and
//! diskless N+1 parity — including the failure modes each one covers.
//!
//! Run with: `cargo run --release --example checkpoint_strategies`

use adcc::prelude::*;

fn main() {
    let cfg = SystemConfig::nvm_only(16 << 10, 16 << 20);
    let mut sys = MemorySystem::new(cfg.clone());

    // Application state: a vector evolving over steps.
    let x = PArray::<f64>::alloc_nvm(&mut sys, 512);
    for i in 0..512 {
        x.set(&mut sys, i, i as f64);
    }
    let regions = vec![(x.base(), x.byte_len())];

    // --- 1. Full double-buffered NVM checkpoint -------------------------
    let mut full = MemCheckpoint::new(&mut sys, x.byte_len(), false);
    let seq = full.checkpoint(&mut sys, &regions);
    println!("[full]        checkpoint seq {seq} taken");

    // --- 2. Incremental: only dirty pages are re-copied -----------------
    let mut inc = IncrementalCheckpoint::new(&mut sys, regions.clone(), 1024, false);
    inc.checkpoint(&mut sys); // slot A: full
    inc.checkpoint(&mut sys); // slot B: full
    x.set(&mut sys, 7, 777.0);
    inc.mark_dirty(x.addr(7), 8);
    let rep = inc.checkpoint(&mut sys);
    println!(
        "[incremental] seq {}: copied {}/{} pages after a 1-element update",
        rep.seq, rep.pages_copied, rep.pages_total
    );

    // --- 3. Two-level: local NVM + remote node --------------------------
    let mut remote = RemoteStore::new();
    let mut ml = MultilevelCheckpoint::new(
        &mut sys,
        x.byte_len(),
        false,
        2,
        RemoteTiming::burst_buffer(),
    );
    ml.checkpoint(&mut sys, &regions, &mut remote); // local only
    let r = ml.checkpoint(&mut sys, &regions, &mut remote); // local + remote
    println!(
        "[two-level]   seq {} shipped_remote={} (remote holds seq {:?})",
        r.seq,
        r.shipped_remote,
        remote.seq()
    );

    // Node loss: local NVM gone, restore from the remote copy on a fresh
    // machine.
    let mut fresh = MemorySystem::new(cfg.clone());
    let _shadow = PArray::<f64>::alloc_nvm(&mut fresh, 512); // same layout
    let got = MultilevelCheckpoint::restore_from_remote(
        &mut fresh,
        &regions,
        &remote,
        RemoteTiming::burst_buffer(),
    );
    println!(
        "[two-level]   after node loss: restored seq {:?}, x[7] = {}",
        got,
        x.get(&mut fresh, 7)
    );

    // --- 4. Diskless N+1 parity -----------------------------------------
    let mut parity = ParityNode::new();
    let mut dl = DisklessCheckpoint::new(4, x.byte_len(), RemoteTiming::burst_buffer());
    let seq = dl.checkpoint(&mut sys, &regions, &mut parity);
    println!("[diskless]    group checkpoint seq {seq} (parity over 4 ranks)");

    // Rank 0's node dies; rebuild its checkpoint from parity + peers.
    let mut fresh = MemorySystem::new(cfg);
    let _shadow = PArray::<f64>::alloc_nvm(&mut fresh, 512);
    let got = DisklessCheckpoint::reconstruct_rank0(
        &mut fresh,
        &regions,
        4,
        RemoteTiming::burst_buffer(),
        &parity,
    );
    println!(
        "[diskless]    reconstructed seq {:?} from XOR parity, x[7] = {}",
        got,
        x.get(&mut fresh, 7)
    );
    assert_eq!(x.get(&mut fresh, 7), 777.0);

    println!("\nEvery strategy pays a copy (and sometimes a network) bill per step;");
    println!("`repro ckpt-strategies` quantifies them against the algorithm-directed approach.");
}
