//! Checksum-LU: ABFT-style algorithm-directed crash consistence for a
//! direct solver (extension E2; DESIGN.md §5a).
//!
//! Factors a diagonally dominant matrix left-looking with a maintained
//! column-checksum row, crashes mid-block, and lets the flushed checksums
//! decide which blocks survived in NVM.
//!
//! Run with: `cargo run --release --example lu_factorization`

use adcc::core::lu::{sites, LuBlockStatus};
use adcc::prelude::*;

fn main() {
    let n = 64;
    let bk = 8;
    let a = dominant_matrix(n, 42);

    // A small cache so completed blocks age out to NVM naturally.
    let cfg = SystemConfig::nvm_only(8 << 10, 64 << 20);

    // Crash-free reference.
    let want = lu_host(&a);

    // Crash two columns into block 6.
    let mut sys = MemorySystem::new(cfg.clone());
    let lu = ChecksumLu::setup(&mut sys, &a, bk);
    let crash_col = 6 * bk + 1;
    let trigger = CrashTrigger::AtSite {
        site: CrashSite::new(sites::PH_AFTER_COL, crash_col as u64),
        occurrence: 1,
    };
    let mut emu = CrashEmulator::from_system(sys, trigger);
    let image = lu.run(&mut emu, 0).crashed().expect("trigger fires");
    println!(
        "crashed in block 6 (column {crash_col}) of {} blocks",
        lu.blocks()
    );

    // Algorithm-directed recovery: verify each claimed-complete block
    // against its flushed L/U checksums, refactor only the torn ones.
    let rec = lu.recover_and_resume(&image, cfg);
    for (b, st) in rec.statuses.iter().enumerate() {
        println!(
            "  block {b}: {}",
            match st {
                LuBlockStatus::Consistent => "consistent in NVM (kept)",
                LuBlockStatus::Inconsistent => "torn (refactored)",
            }
        );
    }
    println!(
        "blocks lost: {} | detect {} | resume {}",
        rec.report.lost_units, rec.report.detect_time, rec.report.resume_time
    );

    let err = rec.factor.max_abs_diff(&want);
    println!("max |recovered - reference| = {err:.2e}");
    assert!(err < 1e-10, "recovery must reproduce the factorization");

    // And the factorization is a real one: L*U reconstructs A.
    let back = lu_reconstruct(&rec.factor);
    println!("max |L*U - A| = {:.2e}", back.max_abs_diff(&a));
}
