//! The seven test cases on one CG workload: run each mechanism, crash it,
//! recover it, and compare runtime overhead and recomputation — the whole
//! paper in one binary.
//!
//! Run with: `cargo run --release --example crash_recovery_demo`

use adcc::ckpt::manager::CkptManager;
use adcc::core::cg::variants::{ckpt_restore_and_resume, run_native, run_with_ckpt, run_with_pmem};
use adcc::core::cg::{plain::cg_host, sites};
use adcc::harness::report::pct_overhead;
use adcc::prelude::*;
use adcc::sim::timing::HddTiming;

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let class = CgClass::A;
    let a = class.matrix(11);
    let b = class.rhs(&a);
    let iters = 15;
    let reference = cg_host(&a, &b, iters);
    let capacity = 4 * (iters + 1) * a.n() * 8 + a.nnz() * 12 + (16 << 20);
    println!(
        "CG class {} (n = {}), {} iterations — all seven mechanisms, crash in iteration 10\n",
        class.name,
        a.n(),
        iters
    );
    println!(
        "{:<16} {:>12} {:>10}   recovery",
        "mechanism", "loop time", "overhead"
    );

    // Per-platform native baselines (the heterogeneous platform's NVM is
    // 8x slower, so its cases are normalized against its own native run).
    let mut native_ps: [u64; 2] = [0, 0];
    let platform_idx = |p: Platform| usize::from(p == Platform::Hetero);
    for platform in [Platform::NvmOnly, Platform::Hetero] {
        let cfg = platform.cg_config(capacity);
        let mut sys = MemorySystem::new(cfg);
        let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, iters);
        let t0 = sys.now();
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        run_native(&mut emu, &cg, rho0).completed().unwrap();
        native_ps[platform_idx(platform)] = (emu.now() - t0).ps();
    }

    for case in Case::ALL {
        let cfg = case.platform().cg_config(capacity);
        let trigger = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_ITER_END, 9),
            occurrence: 1,
        };
        let (loop_ps, recovery_note, solution) = match case {
            Case::AlgoNvm | Case::AlgoNvmDram => {
                let mut sys = MemorySystem::new(cfg.clone());
                let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, iters);
                let t0 = sys.now();
                let mut emu = CrashEmulator::from_system(sys, trigger);
                let image = cg.run(&mut emu, 0, iters, rho0).crashed().unwrap();
                let crash_time = (emu.now() - t0).ps();
                let rec = cg.recover_and_resume(&image, cfg);
                (
                    // Projected full-loop time: the crash hit at 10/15.
                    crash_time * iters as u64 / 10,
                    format!(
                        "invariant scan -> restart at iter {:?}, {} lost",
                        rec.restart_from.map(|j| j + 1).unwrap_or(0),
                        rec.report.lost_units
                    ),
                    rec.solution.z,
                )
            }
            Case::Native => {
                let mut sys = MemorySystem::new(cfg.clone());
                let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, iters);
                let t0 = sys.now();
                let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
                run_native(&mut emu, &cg, rho0).completed().unwrap();
                let t = (emu.now() - t0).ps();
                (
                    t,
                    "none (restart from scratch)".into(),
                    cg.peek_solution(&emu),
                )
            }
            Case::CkptHdd | Case::CkptNvm | Case::CkptNvmDram => {
                let mut sys = MemorySystem::new(cfg.clone());
                let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, iters);
                let mut mgr = match case {
                    Case::CkptHdd => {
                        CkptManager::new_hdd(cg.ckpt_regions(), HddTiming::local_disk())
                    }
                    _ => {
                        CkptManager::new_nvm(&mut sys, cg.ckpt_regions(), case == Case::CkptNvmDram)
                    }
                };
                let t0 = sys.now();
                let mut emu = CrashEmulator::from_system(sys, trigger);
                let image = run_with_ckpt(&mut emu, &cg, rho0, &mut mgr)
                    .crashed()
                    .unwrap();
                let crash_time = (emu.now() - t0).ps();
                let sys2 = MemorySystem::from_image(cfg, &image);
                let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
                let (_, re) = ckpt_restore_and_resume(&mut emu2, &cg, rho0, &mut mgr);
                (
                    crash_time * iters as u64 / 10,
                    format!(
                        "restore newest checkpoint, {} iters re-run",
                        re + 10 - iters as u64
                    ),
                    cg.peek_solution(&emu2),
                )
            }
            Case::PmemNvm => {
                let mut sys = MemorySystem::new(cfg.clone());
                let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, iters);
                let lines = 3 * (cg.n * 8).div_ceil(64) + 16;
                let mut pool = UndoPool::new(&mut sys, lines);
                let layout = pool.layout();
                let t0 = sys.now();
                let mut emu = CrashEmulator::from_system(sys, trigger);
                let image = run_with_pmem(&mut emu, &cg, rho0, &mut pool)
                    .crashed()
                    .unwrap();
                let crash_time = (emu.now() - t0).ps();
                let mut sys2 = MemorySystem::from_image(cfg, &image);
                let rolled = UndoPool::recover(layout, &mut sys2);
                let done = cg.iter_cell.get(&mut sys2) as usize;
                let mut rho = if done == 0 {
                    rho0
                } else {
                    cg.rho_cell.get(&mut sys2)
                };
                let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
                for _ in done..iters {
                    rho = cg.step(&mut emu2, rho);
                }
                (
                    crash_time * iters as u64 / 10,
                    format!("undo log rolled back {rolled} lines, resumed at iter {done}"),
                    cg.peek_solution(&emu2),
                )
            }
        };
        let baseline = native_ps[platform_idx(case.platform())];
        let overhead = pct_overhead(loop_ps as f64 / baseline as f64);
        let diff = max_diff(&solution, &reference);
        assert!(
            diff < 1e-8 || case == Case::Native,
            "{}: solution diverged by {diff}",
            case.name()
        );
        println!(
            "{:<16} {:>9.1} ms {:>10}   {}",
            case.name(),
            loop_ps as f64 / 1e9,
            overhead,
            recovery_note
        );
    }
    println!("\nAll mechanisms recovered the same solution; only their costs differ.");
}
