//! BiCGSTAB with algorithm-directed crash recovery (extension E4;
//! DESIGN.md §5a): two invariants — the residual identity and the
//! direction recurrence — locate the restart point, with the iteration's
//! scalars recovered from one flushed line per iteration.
//!
//! Run with: `cargo run --release --example bicgstab_solver`

use adcc::core::bicgstab::sites;
use adcc::prelude::*;

fn main() {
    let class = CgClass::S;
    let a = class.matrix(7);
    let b = class.rhs(&a);
    let iters = 12;
    let rho0: f64 = b.iter().map(|v| v * v).sum();

    // Reference: the crash-free host run (solution of A·x = b is all-ones).
    let want = bicgstab_host(&a, &b, iters);

    // Small cache relative to the three history arrays: older iterations
    // reach NVM by natural eviction.
    let cfg = SystemConfig::nvm_only(64 << 10, 64 << 20);

    let mut sys = MemorySystem::new(cfg.clone());
    let bi = ExtendedBiCgStab::setup(&mut sys, &a, &b, iters);
    let trigger = CrashTrigger::AtSite {
        site: CrashSite::new(sites::PH_ITER_END, 9),
        occurrence: 1,
    };
    let mut emu = CrashEmulator::from_system(sys, trigger);
    let image = bi
        .run(&mut emu, 0, iters, rho0)
        .crashed()
        .expect("trigger fires");
    println!("crashed at the end of iteration 9 of {iters}");

    let rec = bi.recover_and_resume(&image, cfg);
    match rec.restart_from {
        Some(j) => println!(
            "invariants verified iteration {j} in NVM -> resumed at {}",
            j + 1
        ),
        None => println!("no iteration verified -> restarted from x0 = 0"),
    }
    println!(
        "iterations lost: {} | detect {} | resume {}",
        rec.report.lost_units, rec.report.detect_time, rec.report.resume_time
    );

    let err = rec
        .solution
        .iter()
        .zip(&want)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    println!("max |recovered - reference| = {err:.2e}");
    assert!(err < 1e-8);

    // Convergence sanity: the solution is the ones vector.
    let sol_err = rec
        .solution
        .iter()
        .map(|v| (v - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!("max |x - 1| after {iters} iterations = {sol_err:.2e}");
}
