//! The paper's first case study end to end: extended CG crashes mid-run
//! and recovers by checking algorithm invariants — no checkpoint, no log,
//! one flushed cache line per iteration.
//!
//! Run with: `cargo run --release --example cg_solver`

use adcc::core::cg::sites;
use adcc::prelude::*;

fn main() {
    // An NPB-like sparse SPD system (scaled class A: n = 14000 — large
    // enough that most history iterations are evicted to NVM, so recovery
    // restarts close to the crash).
    let class = CgClass::A;
    let a = class.matrix(2024);
    let b = class.rhs(&a);
    let iters = 15;
    println!(
        "CG on class {} (n = {}, nnz = {}), {} iterations",
        class.name,
        a.n(),
        a.nnz(),
        iters
    );

    // Heterogeneous NVM/DRAM platform, scaled caches.
    let capacity = 4 * (iters + 1) * a.n() * 8 + a.nnz() * 12 + (16 << 20);
    let cfg = Platform::Hetero.cg_config(capacity);

    // Run with a crash after the p-update of the 15th iteration — the
    // paper's Fig. 3 crash point.
    let mut sys = MemorySystem::new(cfg.clone());
    let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, iters);
    let trigger = CrashTrigger::AtSite {
        site: CrashSite::new(sites::PH_LINE10, 14),
        occurrence: 1,
    };
    let mut emu = CrashEmulator::from_system(sys, trigger);
    let image = cg
        .run(&mut emu, 0, iters, rho0)
        .crashed()
        .expect("the trigger fires in iteration 15");
    println!("crashed in iteration 15; NVM image: {} bytes", image.len());

    // Algorithm-directed recovery: scan back over the history checking
    //   p(j+1)' * q(j) = 0   and   r(j+1) = b - A z(j+1).
    let rec = cg.recover_and_resume(&image, cfg);
    match rec.restart_from {
        Some(j) => println!(
            "invariants verified at iteration {j}; restarted from iteration {}",
            j + 1
        ),
        None => println!("no consistent iteration found; restarted from scratch"),
    }
    println!(
        "iterations lost: {} | detect: {} | resume: {}",
        rec.report.lost_units, rec.report.detect_time, rec.report.resume_time
    );

    // The recovered solution equals the crash-free one.
    let reference = cg_host(&a, &b, iters);
    let max_diff = rec
        .solution
        .z
        .iter()
        .zip(&reference)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    println!("max |recovered - reference| = {max_diff:.3e}");
    assert!(max_diff < 1e-9, "recovery must reproduce the solution");
    println!("OK: recovered solution matches the crash-free run");
}
