//! Quickstart: what "crash consistence" means on NVM with volatile caches.
//!
//! Run with: `cargo run --release --example quickstart`

use adcc::prelude::*;

fn main() {
    // The paper's NVM-only platform: a 4 KiB CPU cache in front of 1 MiB
    // of byte-addressable NVM.
    let cfg = SystemConfig::nvm_only(4 << 10, 1 << 20);
    let mut sys = MemorySystem::new(cfg);

    // A persistent array. Writes land in the (volatile!) cache.
    let x = PArray::<f64>::alloc_nvm(&mut sys, 8);
    for i in 0..8 {
        x.set(&mut sys, i, (i + 1) as f64);
    }
    println!("program sees      x[7] = {}", x.get(&mut sys, 7));
    println!(
        "NVM actually has  x[7] = {}   (write stranded in cache)",
        sys.nvm_snapshot().read_f64(x.addr(7))
    );

    // CLFLUSH + SFENCE make it durable.
    sys.persist_range(x.base(), x.byte_len());
    sys.sfence();

    // Register it so recovery code can find it by name.
    let mut heap = PersistentHeap::new(&mut sys, 8);
    heap.register(&mut sys, "my-vector", x.base(), x.byte_len());
    let heap_base = heap.table_base();

    println!(
        "simulated time so far: {} | clflushes: {} | NVM line writes: {}",
        sys.now(),
        sys.stats().clflushes,
        sys.stats().nvm_line_writes
    );

    // Crash: every volatile level is discarded.
    let image = sys.crash();

    // Recovery: locate and read the data from the surviving NVM image.
    let (addr, len) = PersistentHeap::lookup_in_image(heap_base, 8, &image, "my-vector")
        .expect("registered region survives the crash");
    let recovered = PArray::<f64>::new(addr, len / 8);
    println!(
        "after crash, NVM  x[7] = {}   (persisted before the crash)",
        image.read_f64(recovered.addr(7))
    );
}
