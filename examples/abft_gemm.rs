//! The paper's second case study: checksum-encoded matrix multiplication
//! (Fig. 6's two-loop algorithm). A crash interrupts the sub-matrix
//! products; checksums flushed during the run tell recovery exactly which
//! temporal matrices are consistent in NVM, and only the inconsistent
//! ones are recomputed. Also demonstrates single-element error correction.
//!
//! Run with: `cargo run --release --example abft_gemm`

use adcc::core::abft::checksum::{correct_single, verify_full};
use adcc::core::abft::{sites, BlockStatus};
use adcc::prelude::*;

fn main() {
    let n = 128;
    let k = 32;
    let a = Matrix::random(n, n, 7);
    let b = Matrix::random(n, n, 8);
    let want = a.mul_blocked(&b, 32);
    println!(
        "ABFT GEMM: n = {n}, rank k = {k}, {} sub-matrix products",
        n / k
    );

    let capacity = (n / k + 2) * (n + 1) * (n + 1) * 8 + (8 << 20);
    let cfg = Platform::Hetero.mm_config(capacity);

    // Crash at the end of the 3rd sub-matrix multiplication.
    let mut sys = MemorySystem::new(cfg.clone());
    let mm = TwoLoopAbft::setup(&mut sys, &a, &b, k);
    let trigger = CrashTrigger::AtSite {
        site: CrashSite::new(sites::PH_LOOP1, 2),
        occurrence: 1,
    };
    let mut emu = CrashEmulator::from_system(sys, trigger);
    let image = mm.run(&mut emu).crashed().expect("trigger fires in loop 1");
    println!("crashed at the end of sub-matrix multiplication 3");

    // Checksum-guided recovery.
    let (sys, rec) = mm.recover_and_resume(&image, cfg.clone());
    for (s, status) in rec.loop1_status.iter().enumerate() {
        let word = match status {
            BlockStatus::Consistent => "consistent in NVM (reused)",
            BlockStatus::Corrected => "corrected via checksums",
            BlockStatus::Recomputed => "inconsistent (recomputed)",
        };
        println!("  temporal matrix {s}: {word}");
    }
    println!(
        "sub-matrix multiplications lost: {} | detect: {} | resume: {}",
        rec.lost_multiplications, rec.report.detect_time, rec.report.resume_time
    );

    let got = mm.peek_product(&sys);
    let diff = got.max_abs_diff(&want);
    println!("max |recovered - reference| = {diff:.3e}");
    assert!(diff < 1e-9);
    println!("OK: recovered product is exact\n");

    // Bonus: the ABFT property itself — a single corrupted element is
    // located and repaired from its row/column checksums.
    let mut sys = MemorySystem::new(cfg.clone());
    let mm2 = TwoLoopAbft::setup(&mut sys, &a, &b, k);
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    mm2.run(&mut emu).completed().unwrap();
    let mut sys = emu.into_system();
    let ct = &mm2.ctemps[0];
    let original = ct.get(&mut sys, 10, 20);
    ct.set(&mut sys, 10, 20, 1e9); // inject a "soft error"
    let report = verify_full(&mut sys, ct);
    println!(
        "injected corruption detected at rows {:?} x cols {:?}",
        report.bad_rows, report.bad_cols
    );
    assert!(correct_single(&mut sys, ct, &report));
    let fixed = ct.get(&mut sys, 10, 20);
    println!("corrected: {fixed:.6} (original {original:.6})");
    println!("OK: single-element correction works");
}
