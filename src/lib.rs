//! # adcc — Algorithm-Directed Crash Consistence in NVM for HPC
//!
//! A from-scratch Rust reproduction of *Algorithm-Directed Crash
//! Consistence in Non-Volatile Memory for HPC* (Yang, Wu, Qiao, Li, Zhai —
//! IEEE CLUSTER 2017, arXiv:1705.05541).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | crash emulator: data-tracking write-back cache hierarchy (pluggable LRU/FIFO/PLRU/random replacement), NVM timing model, CLFLUSH/CLFLUSHOPT/CLWB, epoch persist barriers, crash triggers, NVM images, opt-in persistency event recording |
//! | [`analyze`] | persist-order sanitizer + WITCHER-style triage: happens-before-persist checking over recorded event streams (unpersisted stores, missing fences, redundant flushes, ordering races), invariant inference from passing trials, root-cause clustering of failing crash states |
//! | [`pmem`] | PMDK-style persistent heap + undo/redo-log transactions (the paper's Intel-PMEM baseline) |
//! | [`ckpt`] | checkpoint/restart: double-buffered NVM slots, HDD model, page-incremental, two-level local+remote, diskless N+1 parity |
//! | [`linalg`] | CSR/SPD sparse and dense blocked linear algebra, native (rayon) and simulated |
//! | [`core`] | the paper's contribution — algorithm-directed CG, ABFT-MM and MC — plus four extension kernels (Jacobi, BiCGSTAB, checksum-LU, heat stencil) |
//! | [`harness`] | platforms, the seven test cases, a runner per evaluation figure, extension tables, substrate ablations |
//! | [`campaign`] | deterministic, seedable crash-injection campaign engine: named scenario registries (`kernel`, `dist`, `ds` — selected with `--registry`), crash-point schedules, parallel fan-out, JSON reports, the `campaign` CLI |
//! | [`telemetry`] | crash-consistency cost accounting: flush/fence/log/network counters per execution, dirty-data residency at crash, consistency windows, the pluggable ADR/eADR `CostModel` |
//! | [`dist`] | deterministic multi-rank execution: per-rank crash emulators joined by a seedable message fabric, halo-exchange/allreduce kernels, rank-granular crash injection, algorithm-directed local recovery vs global checkpoint restart |
//! | [`resilience`] | EasyCrash-style dirty restarts: the five-class outcome ladder, per-scenario tolerance configuration, and the `natural_resilience` aggregate rolled into campaign reports |
//! | [`ds`] | persistent data-structure workloads: crash-consistent free-list allocator, detectably-recoverable MSC queue and open-addressing hash table (checkpoint + announce/complete primitives), seeded multi-client op streams, linearizable-replay recovery checks |
//!
//! ## Quick start
//!
//! ```
//! use adcc::prelude::*;
//!
//! // A small sparse SPD system on the paper's NVM-only platform.
//! let class = CgClass::TEST;
//! let a = class.matrix(1);
//! let b = class.rhs(&a);
//! let cfg = SystemConfig::nvm_only(32 << 10, 64 << 20);
//! let mut sys = MemorySystem::new(cfg.clone());
//!
//! // Extended CG (history arrays + one flushed line per iteration).
//! let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, 10);
//!
//! // Crash at the paper's site: after the p-update of iteration 8.
//! let trigger = CrashTrigger::AtSite {
//!     site: CrashSite::new(adcc::core::cg::sites::PH_LINE10, 7),
//!     occurrence: 1,
//! };
//! let mut emu = CrashEmulator::from_system(sys, trigger);
//! let image = cg.run(&mut emu, 0, 10, rho0).crashed().expect("crashed");
//!
//! // Algorithm-directed recovery: invariants find the restart point.
//! let recovery = cg.recover_and_resume(&image, cfg);
//! assert!(recovery.report.lost_units <= 8);
//! ```

pub use adcc_analyze as analyze;
pub use adcc_campaign as campaign;
pub use adcc_ckpt as ckpt;
pub use adcc_core as core;
pub use adcc_dist as dist;
pub use adcc_ds as ds;
pub use adcc_harness as harness;
pub use adcc_linalg as linalg;
pub use adcc_pmem as pmem;
pub use adcc_resilience as resilience;
pub use adcc_sim as sim;
pub use adcc_telemetry as telemetry;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use adcc_campaign::{run_campaign, CampaignConfig, CampaignReport, Outcome, Schedule};
    pub use adcc_ckpt::manager::CkptManager;
    pub use adcc_ckpt::{
        DisklessCheckpoint, IncrementalCheckpoint, MemCheckpoint, MultilevelCheckpoint, ParityNode,
        RemoteStore, RemoteTiming,
    };
    pub use adcc_core::abft::{OriginalAbft, TwoLoopAbft};
    pub use adcc_core::bicgstab::{bicgstab_host, ExtendedBiCgStab};
    pub use adcc_core::cg::{cg_host, CgRecovery, CgSolution, ExtendedCg, PlainCg};
    pub use adcc_core::jacobi::{jacobi_host, ExtendedJacobi, PlainJacobi};
    pub use adcc_core::lu::{dominant_matrix, lu_host, lu_reconstruct, ChecksumLu, LuBlockStatus};
    pub use adcc_core::mc::sim::{McMode, McSim};
    pub use adcc_core::mc::McProblem;
    pub use adcc_core::stencil::{heat_host, ExtendedStencil, PlainStencil};
    pub use adcc_core::RecoveryReport;
    pub use adcc_dist::{run_dist_trial, Cluster, ClusterConfig, NetTiming, RecoveryMode};
    pub use adcc_ds::{
        recover_verify_resume, OpStream, OpStreamCfg, Protection, Structure, Workload, WorkloadCfg,
    };
    pub use adcc_harness::{Case, Platform, Scale};
    pub use adcc_linalg::{CgClass, CsrMatrix, Matrix};
    pub use adcc_pmem::{LogStats, PersistentHeap, RedoPool, UndoPool};
    pub use adcc_resilience::{
        DirtyClass, DirtyClassCounts, DirtyTrial, NaturalResilience, Tolerance,
    };
    pub use adcc_sim::prelude::*;
    pub use adcc_telemetry::{
        adr_eadr_costs, AdrCost, CostModel, EadrCost, ExecutionProfile, Probe,
    };
}
