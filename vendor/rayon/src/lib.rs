//! Sequential stand-in for `rayon` (this build environment has no registry
//! access; see `vendor/README.md`).
//!
//! The `par_*` slice methods return the corresponding *sequential* std
//! iterators, so every adapter chain written against rayon's
//! `IndexedParallelIterator` (`zip`, `map`, `enumerate`, `for_each`, `sum`,
//! …) type-checks and runs with identical results, just on one thread.
//! Swapping the real rayon back in is a `Cargo.toml`-only change.

pub mod prelude {
    /// `rayon::prelude::ParallelIterator` stand-in: with sequential
    /// iterators every std `Iterator` already provides the adapter set the
    /// workspace uses, so this is a pure marker re-export.
    pub use super::slice::{ParallelSlice, ParallelSliceMut};
}

pub mod slice {
    /// `&[T] -> par_iter()` as a sequential iterator.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// `&mut [T] -> par_iter_mut() / par_chunks_mut()` as sequential iterators.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Sequential `rayon::join`: runs `a` then `b` on the current thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1.0f64, 2.0, 3.0];
        let dot: f64 = v.par_iter().zip(&v).map(|(a, b)| a * b).sum();
        assert_eq!(dot, 14.0);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }
}
