//! Sequential stand-in for `rayon` (this build environment has no registry
//! access; see `vendor/README.md`).
//!
//! The `par_*` slice methods return the corresponding *sequential* std
//! iterators, so every adapter chain written against rayon's
//! `IndexedParallelIterator` (`zip`, `map`, `enumerate`, `for_each`, `sum`,
//! …) type-checks and runs with identical results, just on one thread.
//! Swapping the real rayon back in is a `Cargo.toml`-only change.

pub mod prelude {
    /// `rayon::prelude::ParallelIterator` stand-in: with sequential
    /// iterators every std `Iterator` already provides the adapter set the
    /// workspace uses, so this is a pure marker re-export.
    pub use super::slice::{ParallelSlice, ParallelSliceMut};
}

pub mod slice {
    /// `&[T] -> par_iter()` as a sequential iterator.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// `&mut [T] -> par_iter_mut() / par_chunks_mut()` as sequential iterators.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Sequential `rayon::join`: runs `a` then `b` on the current thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (our builder cannot
/// actually fail, but callers keep the upstream `build()?` shape).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder`, for the fixed-size pool below.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` (the default, like upstream) means "pick automatically" —
    /// here, `std::thread::available_parallelism`.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A fixed-size pool of real OS threads.
///
/// Unlike the sequential `par_*` stand-ins above, this genuinely fans work
/// out across threads. The one entry point is [`ThreadPool::install_map`],
/// the slice of rayon's API the `adcc_campaign` engine needs: an indexed
/// map whose output order is the input order, so results are deterministic
/// no matter how many workers ran or how the scheduler interleaved them.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Map `f` over `items` on up to `num_threads` scoped OS threads.
    ///
    /// Work is claimed item-by-item from a shared atomic cursor (dynamic
    /// load balancing — campaign trials have very uneven costs), and each
    /// result is returned at its item's input index, so the output is
    /// identical to the sequential `items.map(f)` regardless of thread
    /// count. `f` must be deterministic for that guarantee to mean
    /// anything; panics in `f` propagate.
    pub fn install_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let n_items = items.len();
        if n_items == 0 {
            return Vec::new();
        }
        let workers = self.num_threads.min(n_items).max(1);
        if workers == 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let out: Vec<Mutex<Option<R>>> = (0..n_items).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n_items {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("item claimed once");
                    let r = f(i, item);
                    *out[i].lock().unwrap() = Some(r);
                });
            }
        });
        out.into_iter()
            .map(|m| m.into_inner().unwrap().expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = [1.0f64, 2.0, 3.0];
        let dot: f64 = v.par_iter().zip(&v).map(|(a, b)| a * b).sum();
        assert_eq!(dot, 14.0);
    }

    #[test]
    fn install_map_matches_sequential_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 8, 16] {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            assert_eq!(pool.current_num_threads(), threads);
            let got = pool.install_map(items.clone(), |i, x| {
                assert_eq!(items[i], x);
                x * x + 1
            });
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn install_map_handles_empty_and_single() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let empty: Vec<u32> = vec![];
        assert!(pool.install_map(empty, |_, x: u32| x).is_empty());
        assert_eq!(pool.install_map(vec![7u32], |i, x| x + i as u32), vec![7]);
    }

    #[test]
    fn builder_zero_threads_picks_automatically() {
        let pool = super::ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }
}
