//! Deterministic case runner: seed derivation, env overrides, regression
//! replay and failure persistence.

use std::fmt;

/// SplitMix64 test RNG. Strategies draw from this; a case is fully
/// determined by its starting state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn gen_unit_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The case was rejected (filter/assume); try another seed.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Stand-in for `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Successful cases required per property. `PROPTEST_CASES` overrides
    /// this at runtime (even explicit `with_cases` values) so CI can trade
    /// coverage for wall-clock without touching code.
    pub cases: u32,
    /// Abort after this many rejected draws (filter/assume misses).
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a u32, got {v:?}")),
            Err(_) => self.cases,
        }
    }
}

/// FNV-1a, used to give every test its own deterministic seed sequence.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn case_seed(test_name: &str, index: u64) -> u64 {
    // One splitmix step over (name-hash + index) decorrelates neighbours.
    let mut rng = TestRng::new(hash_name(test_name).wrapping_add(index));
    rng.gen_u64()
}

fn regression_path(test_name: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("CARGO_MANIFEST_DIR")?;
    let short = test_name.rsplit("::").next().unwrap_or(test_name);
    Some(
        std::path::Path::new(&dir)
            .join("proptest-regressions")
            .join(format!("{short}.seeds")),
    )
}

/// Seeds persisted by earlier failures; replayed before fresh cases.
fn regression_seeds(test_name: &str) -> Vec<u64> {
    let Some(path) = regression_path(test_name) else {
        return Vec::new();
    };
    let Ok(body) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    body.lines()
        .filter_map(|l| l.split('#').next())
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.parse().ok())
        .collect()
}

fn persist_failure(test_name: &str, seed: u64) {
    let Some(path) = regression_path(test_name) else {
        return;
    };
    // Persistence is opt-in per crate: seeds are only recorded where a
    // `proptest-regressions/` directory has been committed.
    if !path.parent().is_some_and(|p| p.is_dir()) {
        return;
    }
    if regression_seeds(test_name).contains(&seed) {
        return;
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            f,
            "{seed} # seed persisted by failed run; replayed first on every run"
        );
        eprintln!("persisted failing seed {seed} to {}", path.display());
    }
}

fn fail(test_name: &str, seed: u64, msg: &str) -> ! {
    persist_failure(test_name, seed);
    panic!(
        "proptest failure in {test_name} (seed {seed}): {msg}\n\
         replay just this case with PROPTEST_SEED={seed}"
    );
}

/// Drive one property: regression seeds first, then `cases` fresh seeds.
/// `PROPTEST_SEED=<u64>` replays a single seed and skips everything else.
pub fn run(cfg: &Config, test_name: &str, f: impl Fn(&mut TestRng) -> TestCaseResult) {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        let seed: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {v:?}"));
        match f(&mut TestRng::new(seed)) {
            Ok(()) => return,
            Err(TestCaseError::Reject(m)) => panic!("PROPTEST_SEED={seed} was rejected: {m}"),
            Err(TestCaseError::Fail(m)) => fail(test_name, seed, &m),
        }
    }

    for seed in regression_seeds(test_name) {
        match f(&mut TestRng::new(seed)) {
            Ok(()) => {}
            // A rejected regression seed means the strategy changed shape
            // since it was recorded; it no longer pins anything.
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(m)) => fail(test_name, seed, &m),
        }
    }

    let cases = cfg.effective_cases();
    let mut rejects = 0u32;
    let mut passed = 0u32;
    let mut index = 0u64;
    while passed < cases {
        let seed = case_seed(test_name, index);
        index += 1;
        match f(&mut TestRng::new(seed)) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(m)) => {
                rejects += 1;
                if rejects > cfg.max_global_rejects {
                    panic!("proptest {test_name}: too many rejected cases ({rejects}), last: {m}");
                }
            }
            Err(TestCaseError::Fail(m)) => fail(test_name, seed, &m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn case_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(case_seed("a::b", 0), case_seed("a::b", 0));
        assert_ne!(case_seed("a::b", 0), case_seed("a::b", 1));
        assert_ne!(case_seed("a::b", 0), case_seed("a::c", 0));
    }

    #[test]
    fn runner_counts_only_passing_cases() {
        // Every third case rejects; the runner must still reach the target.
        // PROPTEST_CASES overrides with_cases by design, so compare against
        // the effective count rather than the literal 10.
        let cfg = Config::with_cases(10);
        let want = cfg.effective_cases();
        let calls = Cell::new(0u32);
        let passes = Cell::new(0u32);
        run(&cfg, "stub::runner_counts_only_passing_cases", |_rng| {
            let n = calls.get();
            calls.set(n + 1);
            if n.is_multiple_of(3) {
                Err(TestCaseError::reject("synthetic"))
            } else {
                passes.set(passes.get() + 1);
                Ok(())
            }
        });
        assert!(passes.get() >= want);
        // With at least one case requested, some calls must have rejected.
        assert!(want == 0 || calls.get() > passes.get());
    }

    #[test]
    #[should_panic(expected = "replay just this case with PROPTEST_SEED=")]
    fn failure_reports_replay_seed() {
        // No regression dir exists for this name, so nothing is persisted.
        let cfg = Config::with_cases(1);
        run(&cfg, "stub::failure_reports_replay_seed", |_rng| {
            Err(TestCaseError::fail("synthetic failure"))
        });
    }
}
