//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of test values. `generate` returns `None` when a filter
/// rejects the draw; the runner retries the whole case with a fresh seed.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Object-safe boxed strategy, used by `prop_oneof!` arms.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // A few local retries before punting the rejection to the runner,
        // so lightly-selective filters don't discard whole cases.
        for _ in 0..8 {
            let v = self.inner.generate(rng)?;
            if (self.f)(&v) {
                return Some(v);
            }
        }
        None
    }
}

/// Weighted union over same-valued strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let mut pick = rng.gen_u64() % self.total as u64;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + (rng.gen_u64() as u128 % span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                Some((lo as i128 + (rng.gen_u64() as u128 % span) as i128) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.gen_unit_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.gen_unit_f64() as f32 * (self.end - self.start))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng)?;)+
                Some(($($v,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A a)
    (A a, B b)
    (A a, B b, C c)
    (A a, B b, C c, D d)
    (A a, B b, C c, D d, E e)
    (A a, B b, C c, D d, E e, F f)
}

/// Weighted choice between strategies producing the same value type.
///
/// ```
/// use proptest::prelude::*;
/// let s = prop_oneof![
///     3 => (0usize..8).prop_map(|i| i * 2),
///     1 => Just(99usize),
/// ];
/// let mut rng = TestRng::new(1);
/// for _ in 0..32 {
///     let v = s.generate(&mut rng).unwrap();
///     assert!(v == 99 || (v % 2 == 0 && v < 16));
/// }
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}
