//! Minimal property-testing stand-in for `proptest` (this build environment
//! has no registry access; see `vendor/README.md`).
//!
//! Implements the slice of the API this workspace uses:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`, `boxed`;
//! * strategies for integer/float ranges, tuples, [`strategy::Just`],
//!   `any::<T>()`, [`collection::vec()`], [`sample::select`], weighted
//!   unions (`prop_oneof!`);
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assume!`;
//! * a runner with env-tunable case counts (`PROPTEST_CASES`), single-seed
//!   replay (`PROPTEST_SEED`), and failure persistence into
//!   `proptest-regressions/<test_name>.seeds`.
//!
//! The deliberate omission is **shrinking**: a failing case reports the seed
//! that produced it (replayable via `PROPTEST_SEED`) instead of a minimised
//! input. Everything is deterministic: case `i` of test `t` derives its seed
//! from `hash(t, i)`, so CI failures reproduce locally without flakes.

pub mod arbitrary;
pub mod collection;
mod macros;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::sample;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::collection::vec(..)` / `prop::sample::select(..)` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}
