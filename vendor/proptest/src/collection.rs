//! `prop::collection::vec` stand-in.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Length ranges accepted by [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `prop::collection::vec(element_strategy, len_range)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + (rng.gen_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
