//! `any::<T>()` stand-in for the primitive types the workspace draws.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

/// `any::<T>()`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform over bit patterns, so infinities and NaNs do appear
    /// (rarely); callers wanting finite values filter, as upstream.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.gen_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.gen_u64() as u32)
    }
}
