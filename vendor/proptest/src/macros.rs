//! The `proptest!` entry-point macro and the in-case assertion macros.

/// Define property tests. Supports the two shapes the workspace uses:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0usize..10, ys in prop::collection::vec(any::<u64>(), 1..5)) {
///         prop_assert!(x < 10);
///         prop_assert!(!ys.is_empty());
///     }
/// }
/// ```
///
/// Each case body runs inside a closure returning
/// [`TestCaseResult`](crate::test_runner::TestCaseResult), so `?` on
/// helper functions returning `Result<(), TestCaseError>` works, as do the
/// `prop_assert*`/`prop_assume!` macros.
// The doctest deliberately shows a `#[test]` inside `proptest!` — that is
// the macro's contract — so the doctest-runs-nothing lint is expected here.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($tail:tt)*) => {
        $crate::__proptest_tests! { @cfg($cfg) $($tail)* }
    };
    ($($tail:tt)*) => {
        $crate::__proptest_tests! { @cfg($crate::test_runner::Config::default()) $($tail)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($tail:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            $crate::test_runner::run(&config, test_name, |rng| {
                $(
                    let $pat = match $crate::strategy::Strategy::generate(&($strat), rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            return ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::reject("strategy filter"),
                            )
                        }
                    };
                )+
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                result
            });
        }
        $crate::__proptest_tests! { @cfg($cfg) $($tail)* }
    };
}

/// Like `assert!`, but fails the surrounding proptest case (reporting its
/// replay seed) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            *l,
            *r,
            format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            *l,
            *r,
            format!($($fmt)*)
        );
    }};
}

/// Discard this case (doesn't count towards the case target) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
