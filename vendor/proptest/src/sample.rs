//! `prop::sample::select` stand-in.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

pub struct Select<T> {
    options: Vec<T>,
}

/// Uniformly pick one of the given options.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let i = (rng.gen_u64() % self.options.len() as u64) as usize;
        Some(self.options[i].clone())
    }
}
