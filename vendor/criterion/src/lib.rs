//! Minimal bench-harness stand-in for `criterion` (this build environment
//! has no registry access; see `vendor/README.md`).
//!
//! Implements the API slice the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`warm_up_time`/`measurement_time`/
//! `throughput`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros for `harness = false` targets. Instead of criterion's statistical
//! machinery it times `sample_size` runs of the closure and prints the mean
//! and min wall-clock per iteration — enough to eyeball regressions and to
//! keep `cargo bench` (and `cargo bench --no-run`) working offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement knobs shared by `Criterion` and its groups.
#[derive(Clone, Debug)]
struct Knobs {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    knobs: Knobs,
}

impl Criterion {
    /// Upstream parses CLI args here (`--bench`, filters, baselines); the
    /// stub accepts and ignores them so `cargo bench` invocations work.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.knobs, &name.to_string(), None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            knobs: Knobs::default(),
            throughput: None,
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    knobs: Knobs,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.knobs.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.knobs.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.knobs.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.knobs, &label, self.throughput.clone(), &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.knobs, &label, self.throughput.clone(), &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    knobs: &Knobs,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // which also yields a per-iteration estimate for batching.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < knobs.warm_up_time || warm_iters == 0 {
        f(&mut one);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

    // Pick a batch size so all samples fit roughly in measurement_time.
    let budget_per_sample = knobs.measurement_time / knobs.sample_size as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..knobs.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        total += per;
        best = best.min(per);
    }
    let mean = total / knobs.sample_size as u32;
    match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{label:<56} mean {mean:>12?}  min {best:>12?}  ({rate:.3e} elem/s)");
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if !mean.is_zero() => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{label:<56} mean {mean:>12?}  min {best:>12?}  ({rate:.3e} B/s)");
        }
        _ => println!("{label:<56} mean {mean:>12?}  min {best:>12?}"),
    }
}

/// Bundle bench functions into a group callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
