//! Deterministic stand-in for `rand` 0.9 (this build environment has no
//! registry access; see `vendor/README.md`).
//!
//! Implements the slice of the API this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::random_range` over integer and
//! float ranges. The core generator is SplitMix64 — statistically fine for
//! generating test matrices, deterministic per seed, but **not** the same
//! stream as upstream `StdRng` (ChaCha12) and not cryptographic.

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

pub mod rngs {
    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): one 64-bit state word,
            // full-period, passes BigCrush when used as here.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Minimal `RngCore`: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling, `rand` 0.9 spelling (`random_range`).
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly (approximately — integer sampling
/// uses modulo reduction, whose bias is negligible at test-range sizes).
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.random_range(0u64..=5);
            assert!(j <= 5);
        }
    }
}
