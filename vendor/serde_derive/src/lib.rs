//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` stand-ins.
//!
//! The workspace only *tags* types as serialisable (nothing serialises yet),
//! so the derives expand to nothing: the `serde` stub's traits are blanket-
//! implemented. Written without syn/quote so it builds fully offline.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
