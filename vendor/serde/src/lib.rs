//! Stand-in for `serde` (this build environment has no registry access; see
//! `vendor/README.md`).
//!
//! The workspace only tags types with `#[derive(Serialize)]` and uses
//! `Serialize` as a bound; nothing actually serialises yet. The traits are
//! blanket-implemented and the derives expand to nothing, so swapping the
//! real serde back in is a `Cargo.toml`-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
