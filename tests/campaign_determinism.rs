//! Campaign reports must be replayable from `(seed, budget, schedule)`
//! alone: two runs with the same inputs produce byte-identical canonical
//! JSON, whether the trials ran on 1 worker thread or 8 — wall-clock and
//! thread count are the only fields allowed to differ, and they live in
//! the stripped `host` section.

use adcc::campaign::engine::{run_campaign, CampaignConfig};
use adcc::campaign::report::CampaignReport;
use adcc::campaign::schedule::Schedule;

const BUDGET: u64 = 26;

fn config(threads: usize, seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        budget_states: BUDGET,
        schedule: Schedule::Stratified,
        threads,
    }
}

#[test]
fn same_seed_identical_reports_across_1_and_8_threads() {
    let serial = run_campaign(&config(1, 42));
    let parallel = run_campaign(&config(8, 42));
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 8);
    assert_eq!(
        serial.canonical_string(),
        parallel.canonical_string(),
        "thread count must not be observable in the canonical report"
    );
    // The full (host-including) forms legitimately differ in `threads`.
    assert_ne!(serial.to_string_pretty(), parallel.to_string_pretty());
}

#[test]
fn same_seed_identical_reports_across_reruns() {
    let a = run_campaign(&config(2, 42));
    let b = run_campaign(&config(2, 42));
    assert_eq!(a.canonical_string(), b.canonical_string());
}

#[test]
fn different_seed_changes_the_schedule() {
    let a = run_campaign(&config(2, 42));
    let b = run_campaign(&config(2, 1042));
    assert_ne!(
        a.canonical_string(),
        b.canonical_string(),
        "stratified schedules must draw per-seed crash points"
    );
}

#[test]
fn report_roundtrips_and_reports_no_silent_corruption() {
    let report = run_campaign(&config(4, 42));
    assert_eq!(report.totals.total(), BUDGET);
    assert_eq!(report.silent_corruption_total(), 0);
    // Round-trip through the on-disk format.
    let parsed = CampaignReport::parse(&report.to_string_pretty()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.canonical_string(), report.canonical_string());
    // Every registered scenario ran at least one trial at this budget.
    assert!(report.scenarios.iter().all(|s| s.trials >= 1));
}
