//! Campaign reports must be replayable from `(seed, budget, schedule)`
//! alone: two runs with the same inputs produce byte-identical canonical
//! JSON, whether the trials ran on 1 worker thread or 8 — wall-clock and
//! thread count are the only fields allowed to differ, and they live in
//! the stripped `host` section. Since PR 3 the same guarantee covers the
//! `adcc-campaign-report/v2` telemetry block: every counter in it comes
//! from the deterministic simulated machine, never from the host.

use adcc::campaign::engine::{run_campaign, CampaignConfig};
use adcc::campaign::report::CampaignReport;
use adcc::campaign::schedule::Schedule;

const BUDGET: u64 = 26;

fn config(threads: usize, seed: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        budget_states: BUDGET,
        schedule: Schedule::Stratified,
        threads,
        telemetry: false,
        ..CampaignConfig::default()
    }
}

fn config_telemetry(threads: usize, seed: u64) -> CampaignConfig {
    CampaignConfig {
        telemetry: true,
        ..config(threads, seed)
    }
}

#[test]
fn same_seed_identical_reports_across_1_and_8_threads() {
    let serial = run_campaign(&config(1, 42));
    let parallel = run_campaign(&config(8, 42));
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 8);
    assert_eq!(
        serial.canonical_string(),
        parallel.canonical_string(),
        "thread count must not be observable in the canonical report"
    );
    // The full (host-including) forms legitimately differ in `threads`.
    assert_ne!(serial.to_string_pretty(), parallel.to_string_pretty());
}

#[test]
fn same_seed_identical_reports_across_reruns() {
    let a = run_campaign(&config(2, 42));
    let b = run_campaign(&config(2, 42));
    assert_eq!(a.canonical_string(), b.canonical_string());
}

#[test]
fn different_seed_changes_the_schedule() {
    let a = run_campaign(&config(2, 42));
    let b = run_campaign(&config(2, 1042));
    assert_ne!(
        a.canonical_string(),
        b.canonical_string(),
        "stratified schedules must draw per-seed crash points"
    );
}

#[test]
fn report_roundtrips_and_reports_no_silent_corruption() {
    let report = run_campaign(&config(4, 42));
    assert_eq!(report.totals.total(), BUDGET);
    assert_eq!(report.silent_corruption_total(), 0);
    // Round-trip through the on-disk format.
    let parsed = CampaignReport::parse(&report.to_string_pretty()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(parsed.canonical_string(), report.canonical_string());
    // Every registered scenario ran at least one trial at this budget.
    assert!(report.scenarios.iter().all(|s| s.trials >= 1));
}

#[test]
fn telemetry_reports_identical_across_1_and_8_threads() {
    let serial = run_campaign(&config_telemetry(1, 42));
    let parallel = run_campaign(&config_telemetry(8, 42));
    assert!(
        serial.telemetry.is_some(),
        "campaign-wide telemetry present"
    );
    assert_eq!(
        serial.canonical_string(),
        parallel.canonical_string(),
        "the v2 telemetry block must be thread-count independent"
    );
}

#[test]
fn telemetry_reports_identical_across_reruns() {
    let a = run_campaign(&config_telemetry(2, 42));
    let b = run_campaign(&config_telemetry(2, 42));
    assert_eq!(a.canonical_string(), b.canonical_string());
}

#[test]
fn telemetry_does_not_perturb_outcomes() {
    // Probes are passive counter snapshots: the simulated execution — and
    // therefore every outcome and recovery metric — must be identical with
    // telemetry on and off.
    let off = run_campaign(&config(2, 42));
    let on = run_campaign(&config_telemetry(2, 42));
    assert_eq!(off.totals, on.totals);
    for (a, b) in off.scenarios.iter().zip(&on.scenarios) {
        assert_eq!(a.outcomes, b.outcomes, "{}", a.name);
        assert_eq!(a.sim_time_ps_total, b.sim_time_ps_total, "{}", a.name);
        assert!(a.telemetry.is_none());
        assert!(b.telemetry.is_some(), "{}", b.name);
    }
}

#[test]
fn empty_epoch_barriers_are_telemetry_neutral() {
    // `persist_lines_batched(&[])` is free by contract (nothing in flight
    // to order): mechanisms issuing unconditional per-epoch barriers must
    // not have their flush/fence attribution skewed by no-op epochs. A
    // probe across an empty barrier therefore measures exactly nothing.
    use adcc::sim::epoch::EpochPersist;
    use adcc::sim::prelude::*;
    use adcc::telemetry::Probe;

    let mut sys = MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 16));
    let probe = Probe::attach(&sys);
    sys.persist_lines_batched(&[]);
    let mut epoch = EpochPersist::new();
    epoch.barrier(&mut sys);
    let p = probe.finish(&sys);
    assert_eq!(p.sfences, 0, "no fence for an empty epoch");
    assert_eq!(p.epoch_barriers, 0, "no barrier counted");
    assert_eq!(p.sim_time_ps, 0, "no time charged");
    assert_eq!(p.flush_total(), 0);
}

#[test]
fn telemetry_counts_are_meaningful_per_mechanism() {
    let report = run_campaign(&config_telemetry(2, 42));
    for s in &report.scenarios {
        let t = s.telemetry.as_ref().expect("telemetry enabled");
        assert!(
            t.flush_total() + t.epoch_barriers > 0,
            "{}: flush-based mechanism recorded zero flushes",
            s.name
        );
        assert!(t.sim_time_ps > 0, "{}: no simulated time", s.name);
    }
    // Undo-log transactions are the only mechanism writing a log.
    let pmem = report
        .scenarios
        .iter()
        .find(|s| s.mechanism == "pmem")
        .unwrap();
    assert!(pmem.telemetry.unwrap().log_bytes > 0);
    for s in report.scenarios.iter().filter(|s| s.mechanism != "pmem") {
        assert_eq!(s.telemetry.unwrap().log_bytes, 0, "{}", s.name);
    }
    assert!(adcc::campaign::flush_audit(&report).is_empty());
}
