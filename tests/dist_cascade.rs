//! Cascading-failure acceptance gates: every dist scenario must classify
//! a second crash landing mid-recovery — recovered or detected, never
//! silent corruption — and the fault-profile campaigns that sweep those
//! cascade units must stay byte-deterministic across reruns and worker
//! thread counts at the CI smoke budget.
//!
//! Cascade units occupy the block immediately after the singleton
//! `(rank, site)` units in each dist scenario's unit space: two staggered
//! variants per rank, each arming a second rank whose trigger fires while
//! the first crash's recovery (algorithm-directed neighbor assistance or
//! global rollback re-execution) is still in flight.

use adcc::campaign::engine::{run_campaign, CampaignConfig};
use adcc::campaign::outcome::Outcome;
use adcc::campaign::scenario::{Mechanism, Registry, Scenario};
use adcc::campaign::schedule::Schedule;
use adcc::dist::net::FaultProfile;

/// The CI smoke budget shared with `dist_campaign.rs`.
const SMOKE_BUDGET: u64 = 500;

/// Ranks per cluster under a profile: chaotic swaps the presets to the
/// 16-rank 2-D grid, everything else runs the 4-rank chain.
fn ranks_under(faults: FaultProfile) -> u64 {
    match faults {
        FaultProfile::Chaotic => 16,
        _ => 4,
    }
}

/// The cascade unit block `[start, end)` of `scenario`, derived from the
/// published unit-space geometry: singleton units fill the front, the
/// node-loss block (chaotic × algorithm-directed only) fills the back,
/// and the `2 * ranks` cascade units sit between them.
fn cascade_block(scenario: &dyn Scenario, faults: FaultProfile) -> (u64, u64) {
    let ranks = ranks_under(faults);
    let node_loss =
        if faults == FaultProfile::Chaotic && scenario.mechanism() == Mechanism::Extended {
            ranks
        } else {
            0
        };
    let sites = scenario.unit_space().sites;
    (sites - node_loss - 2 * ranks, sites - node_loss)
}

#[test]
fn every_cascade_unit_classifies_on_all_six_scenarios() {
    // The full cascade block of every scenario at the 4-rank tier: a
    // second crash mid-recovery is always recovered (exactly or by
    // recomputation) or detected — never silent, and never a silent
    // no-op completion.
    for scenario in Registry::Dist.scenarios_with(FaultProfile::Off) {
        let (start, end) = cascade_block(scenario.as_ref(), FaultProfile::Off);
        assert_eq!(
            end - start,
            8,
            "{}: 2 cascade variants x 4 ranks",
            scenario.name()
        );
        for unit in start..end {
            let trial = scenario.run_trial(unit, false);
            assert!(
                matches!(
                    trial.outcome,
                    Outcome::RecoveredExact | Outcome::RecoveredRecomputed | Outcome::DetectedDirty
                ),
                "{} cascade unit {unit}: second crash mid-recovery must classify, got {:?}",
                scenario.name(),
                trial.outcome
            );
        }
    }
}

#[test]
fn cascades_survive_the_chaotic_grid_tier() {
    // Spot-check the 16-rank 2-D grid tier (32 cascade units per scenario
    // is the deep-tier sweep's job): the first, middle, and last cascade
    // unit of each scenario, under the adversarial fabric.
    for scenario in Registry::Dist.scenarios_with(FaultProfile::Chaotic) {
        let (start, end) = cascade_block(scenario.as_ref(), FaultProfile::Chaotic);
        assert_eq!(
            end - start,
            32,
            "{}: 2 variants x 16 ranks",
            scenario.name()
        );
        assert_eq!(scenario.platform_name(), "dist-16rank-grid");
        for unit in [start, (start + end) / 2, end - 1] {
            let trial = scenario.run_trial(unit, true);
            assert!(
                matches!(
                    trial.outcome,
                    Outcome::RecoveredExact | Outcome::RecoveredRecomputed | Outcome::DetectedDirty
                ),
                "{} chaotic cascade unit {unit}: got {:?}",
                scenario.name(),
                trial.outcome
            );
            let t = trial.telemetry.expect("telemetry requested");
            assert!(
                t.net_retries >= t.net_dropped,
                "{}: every injected drop forces a retry",
                scenario.name()
            );
        }
    }
}

fn config(faults: FaultProfile, threads: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        budget_states: SMOKE_BUDGET,
        schedule: Schedule::Stratified,
        threads,
        telemetry: true,
        dense_units: 20,
        registry: Registry::Dist,
        faults,
        ..CampaignConfig::default()
    }
}

#[test]
fn faulted_smoke_campaigns_are_deterministic_and_corruption_free() {
    for faults in [FaultProfile::Lossy, FaultProfile::Chaotic] {
        let serial = run_campaign(&config(faults, 1));
        let parallel = run_campaign(&config(faults, 8));
        assert_eq!(
            serial.canonical_string(),
            parallel.canonical_string(),
            "{}: thread count must not be observable in the canonical report",
            faults.name()
        );
        let rerun = run_campaign(&config(faults, 1));
        assert_eq!(serial.canonical_string(), rerun.canonical_string());

        assert_eq!(serial.totals.total(), SMOKE_BUDGET, "{}", faults.name());
        assert_eq!(
            serial.silent_corruption_total(),
            0,
            "{}: fabric faults and cascades must never corrupt silently",
            faults.name()
        );
        assert_eq!(serial.faults, faults);
        let t = serial.telemetry.as_ref().expect("telemetry on");
        assert!(
            t.net_dropped > 0,
            "{}: the profile injects drops",
            faults.name()
        );
        assert!(
            t.net_retries > 0,
            "{}: drops force retransmissions",
            faults.name()
        );
    }
}

#[test]
fn fault_profiles_change_clocks_but_never_outcomes() {
    // The transport masks every injected fault, so the lossy profile may
    // shift simulated clocks (timeouts, resequencing delays) but the
    // outcome histogram — which crash states recover and how — must match
    // the reliable fabric's run over the same 4-rank unit space.
    let off = run_campaign(&config(FaultProfile::Off, 2));
    let lossy = run_campaign(&config(FaultProfile::Lossy, 2));
    assert_eq!(off.totals, lossy.totals, "faults must not change outcomes");
    for (a, b) in off.scenarios.iter().zip(&lossy.scenarios) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.outcomes, b.outcomes, "{}", a.name);
    }
    assert_ne!(
        off.canonical_string(),
        lossy.canonical_string(),
        "the fault profile is part of the report identity"
    );
}
