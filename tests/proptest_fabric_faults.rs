//! Fabric fault-injection properties: the adversarial physical layer of
//! [`adcc::dist::net::Fabric`] must stay deterministic, payload-safe, and
//! deadlock-free under every seeded fault plan.
//!
//! Three layers:
//!
//! 1. The fault sequence is a pure function of the plan: two fabrics built
//!    from the same config produce byte-identical delivery traces — same
//!    payloads, same sender/receiver clocks, same fault counters — and the
//!    payload stream is identical to a reliable fabric's (faults perturb
//!    only clocks and counters, never content or order).
//! 2. Loss plus duplication never deadlocks a collective: every
//!    `allreduce_sum` on a chaotic fabric completes (the bounded-retry
//!    transport guarantees delivery), produces the rank-order sum, and
//!    leaves every rank clock on the barrier frontier.
//! 3. `Fabric::clone` — the harvest-fork path — preserves the perturbation
//!    sequence: a fork taken mid-stream draws exactly the faults the
//!    original draws for every subsequent message.

use proptest::prelude::*;

use adcc::dist::cluster::{Cluster, ClusterConfig};
use adcc::dist::net::{Fabric, FaultPlan, NetTiming};
use adcc::sim::system::{MemorySystem, SystemConfig};

fn cfg() -> SystemConfig {
    SystemConfig::nvm_only(4 << 10, 1 << 16)
}

const RANKS: usize = 3;

/// An arbitrary active fault plan, spanning mild loss up to past-chaotic
/// rates. `max_retries >= 1` keeps the retry bound meaningful.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0u32..=300_000,
        0u32..=120_000,
        0u32..=120_000,
        1u32..=5,
    )
        .prop_map(
            |(seed, drop_ppm, dup_ppm, reorder_ppm, max_retries)| FaultPlan {
                seed,
                drop_ppm,
                dup_ppm,
                reorder_ppm,
                max_retries,
                timeout_ps: 2_000_000,
                reorder_ps: 1_500_000,
            },
        )
}

/// A random message pattern over `RANKS` peers: `(src, hop, len)` tuples
/// where `dst = (src + hop) % RANKS` can never self-send.
fn pattern_strategy() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((0..RANKS, 1..RANKS, 1usize..=48), 1..40)
}

/// One delivery record: sender clock after the send, receiver clock after
/// the delivery, and the delivered bytes.
type Trace = Vec<(u64, u64, Vec<u8>)>;

/// Drive `pattern` through a fresh fabric under `faults`, delivering each
/// message immediately, and return the full trace plus the per-rank fault
/// counters `(dropped, duplicated, reordered, retries)`.
fn run_pattern(
    faults: FaultPlan,
    pattern: &[(usize, usize, usize)],
) -> (Trace, Vec<(u64, u64, u64, u64)>) {
    let mut fabric = Fabric::with_faults(RANKS, NetTiming::cluster_2017(), 7, faults);
    let mut systems: Vec<MemorySystem> = (0..RANKS).map(|_| MemorySystem::new(cfg())).collect();
    let trace = pattern
        .iter()
        .enumerate()
        .map(|(i, &(src, hop, len))| {
            let dst = (src + hop) % RANKS;
            let payload = vec![(i % 251) as u8; len];
            fabric.send(&mut systems[src], src, dst, &payload);
            let sent_ps = systems[src].now().ps();
            let got = fabric.recv(&mut systems[dst], src, dst);
            (sent_ps, systems[dst].now().ps(), got)
        })
        .collect();
    let counters = systems
        .iter()
        .map(|s| {
            let st = s.stats();
            (
                st.net_dropped,
                st.net_duplicated,
                st.net_reordered,
                st.net_retries,
            )
        })
        .collect();
    (trace, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fault_sequence_is_a_pure_function_of_the_plan(
        faults in plan_strategy(),
        pattern in pattern_strategy(),
    ) {
        let (trace_a, counters_a) = run_pattern(faults, &pattern);
        let (trace_b, counters_b) = run_pattern(faults, &pattern);
        prop_assert_eq!(&trace_a, &trace_b, "same plan, same trace");
        prop_assert_eq!(&counters_a, &counters_b, "same plan, same counters");

        // Against the reliable fabric: payloads and delivery order are
        // untouched (faults perturb only clocks and counters), and the
        // logical traffic is identical message for message.
        let (reliable, reliable_counters) = run_pattern(FaultPlan::none(), &pattern);
        prop_assert_eq!(trace_a.len(), reliable.len());
        for ((_, _, faulty), (_, _, clean)) in trace_a.iter().zip(&reliable) {
            prop_assert_eq!(faulty, clean, "faults must never touch payload bytes");
        }
        for &(d, dup, re, ret) in &reliable_counters {
            prop_assert_eq!((d, dup, re, ret), (0, 0, 0, 0));
        }
        // Fault costs only ever push clocks forward, never backward.
        for ((sent_f, recv_f, _), (sent_c, recv_c, _)) in trace_a.iter().zip(&reliable) {
            prop_assert!(sent_f >= sent_c, "fault charges are nonnegative");
            prop_assert!(recv_f >= recv_c, "resequencing delays are nonnegative");
        }
    }

    #[test]
    fn lossy_duplicating_fabrics_never_deadlock_a_collective(
        seed in any::<u64>(),
        rounds in 1usize..=4,
    ) {
        // The chaotic preset: double-digit loss, frequent duplication and
        // reordering. `allreduce_sum` recv-panics on any undelivered
        // message, so mere completion is the no-deadlock proof; the value
        // and clock checks pin that the collective stayed correct.
        let mut cl = Cluster::new(
            ClusterConfig {
                ranks: 4,
                sys: cfg(),
                net: NetTiming::cluster_2017(),
                net_seed: seed,
                faults: adcc::dist::net::FaultProfile::Chaotic.plan(seed ^ 0xd15f),
            },
            None,
        );
        for round in 0..rounds {
            let contributions: Vec<f64> =
                (0..4).map(|r| (round * 4 + r) as f64 + 0.25).collect();
            let expect: f64 = contributions.iter().sum();
            let got = cl.allreduce_sum(&contributions);
            prop_assert_eq!(got.to_bits(), expect.to_bits(), "round {}", round);
            let frontier = cl.max_now_ps();
            for r in 0..4 {
                prop_assert_eq!(
                    cl.system(r).now().ps(),
                    frontier,
                    "rank {} off the barrier frontier after round {}",
                    r,
                    round
                );
            }
        }
    }

    #[test]
    fn cloned_fabrics_preserve_the_perturbation_sequence(
        faults in plan_strategy(),
        prefix in pattern_strategy(),
        suffix in pattern_strategy(),
    ) {
        // Drive the prefix, fork the fabric (the harvest-recovery path),
        // then charge the identical suffix to *fresh* memory systems on
        // both sides: any divergence in clocks or counters can only come
        // from the fabric's internal sequence state.
        let mut original = Fabric::with_faults(RANKS, NetTiming::cluster_2017(), 7, faults);
        let mut warm: Vec<MemorySystem> = (0..RANKS).map(|_| MemorySystem::new(cfg())).collect();
        for (i, &(src, hop, len)) in prefix.iter().enumerate() {
            let dst = (src + hop) % RANKS;
            original.send(&mut warm[src], src, dst, &vec![(i % 251) as u8; len]);
            original.recv(&mut warm[dst], src, dst);
        }
        let mut forked = original.clone();
        prop_assert_eq!(forked.traffic(), original.traffic());

        let run_suffix = |fabric: &mut Fabric| -> (Trace, Vec<(u64, u64, u64, u64)>) {
            let mut fresh: Vec<MemorySystem> =
                (0..RANKS).map(|_| MemorySystem::new(cfg())).collect();
            let trace = suffix
                .iter()
                .enumerate()
                .map(|(i, &(src, hop, len))| {
                    let dst = (src + hop) % RANKS;
                    let payload = vec![(i % 249) as u8; len];
                    fabric.send(&mut fresh[src], src, dst, &payload);
                    let sent_ps = fresh[src].now().ps();
                    let got = fabric.recv(&mut fresh[dst], src, dst);
                    (sent_ps, fresh[dst].now().ps(), got)
                })
                .collect();
            let counters = fresh
                .iter()
                .map(|s| {
                    let st = s.stats();
                    (st.net_dropped, st.net_duplicated, st.net_reordered, st.net_retries)
                })
                .collect();
            (trace, counters)
        };
        let on_original = run_suffix(&mut original);
        let on_fork = run_suffix(&mut forked);
        prop_assert_eq!(&on_original.0, &on_fork.0, "fork must replay the same trace");
        prop_assert_eq!(&on_original.1, &on_fork.1, "fork must draw the same faults");
    }
}
