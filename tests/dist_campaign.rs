//! The distributed campaign's acceptance gates: a `--registry dist`
//! sweep (three kernel families × both recovery modes over a 4-rank
//! cluster) is
//! deterministic — canonical report byte-identical across reruns and
//! 1-vs-8 worker threads — shows zero silent corruption at the smoke
//! budget, and its telemetry block proves the algorithm-directed mode
//! recovers with measurably less fabric traffic than global checkpoint
//! restart on every kernel.

use adcc::campaign::engine::{run_campaign, CampaignConfig};
use adcc::campaign::report::CampaignReport;
use adcc::campaign::scenario::Registry;
use adcc::campaign::schedule::Schedule;

/// The CI smoke budget (4 ranks, 500 states, seed 42).
const SMOKE_BUDGET: u64 = 500;

fn config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        budget_states: SMOKE_BUDGET,
        schedule: Schedule::Stratified,
        threads,
        telemetry: true,
        dense_units: 20,
        registry: Registry::Dist,
        ..CampaignConfig::default()
    }
}

#[test]
fn dist_smoke_campaign_is_deterministic_and_corruption_free() {
    let serial = run_campaign(&config(1));
    let parallel = run_campaign(&config(8));
    assert_eq!(
        serial.canonical_string(),
        parallel.canonical_string(),
        "thread count must not be observable in the canonical dist report"
    );
    let rerun = run_campaign(&config(1));
    assert_eq!(serial.canonical_string(), rerun.canonical_string());

    assert_eq!(serial.totals.total(), SMOKE_BUDGET);
    assert_eq!(serial.silent_corruption_total(), 0, "no silent corruption");
    assert_eq!(serial.scenarios.len(), 6, "3 kernels x 2 recovery modes");
    assert_eq!(serial.registry, Registry::Dist);

    // The report round-trips, registry header and fabric telemetry
    // included.
    let parsed = CampaignReport::parse(&serial.to_string_pretty()).unwrap();
    assert_eq!(parsed.registry, Registry::Dist);
    assert_eq!(parsed.canonical_string(), serial.canonical_string());
}

#[test]
fn algorithm_directed_recovery_traffic_beats_global_restart_per_kernel() {
    let report = run_campaign(&config(0));
    for kernel in ["stencil", "jacobi", "cg"] {
        let bytes = |mode: &str| -> u64 {
            let name = format!("dist-{kernel}-{mode}");
            let s = report
                .scenarios
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("{name} missing from the dist report"));
            assert!(s.trials > 0, "{name} drew no trials");
            s.telemetry
                .as_ref()
                .unwrap_or_else(|| panic!("{name} missing telemetry"))
                .recovery_net_bytes
        };
        let local = bytes("local");
        let restart = bytes("restart");
        assert!(local > 0, "{kernel}: neighbor assistance sends messages");
        assert!(
            2 * local < restart,
            "{kernel}: algorithm-directed recovery traffic {local} B should be \
             well under half of global restart's {restart} B"
        );
    }
    // Fabric use itself is visible in the telemetry block.
    let total = report.telemetry.expect("telemetry on");
    assert!(total.net_msgs > 0 && total.net_bytes > 0 && total.net_ps > 0);
}

#[test]
fn dist_and_single_rank_registries_share_one_engine_but_not_bytes() {
    let dist = run_campaign(&config(2));
    let single = run_campaign(&CampaignConfig {
        registry: Registry::Kernel,
        ..config(2)
    });
    assert_eq!(single.registry, Registry::Kernel);
    assert!(single
        .scenarios
        .iter()
        .all(|s| !s.name.starts_with("dist-")));
    assert_ne!(dist.canonical_string(), single.canonical_string());
    // Single-rank scenarios never touch the fabric: their telemetry keys
    // exist in the v3 schema but stay zero.
    let t = single.telemetry.expect("telemetry on");
    assert_eq!(t.net_msgs, 0);
    assert_eq!(t.recovery_net_bytes, 0);
}
