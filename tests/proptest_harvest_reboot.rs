//! Harvest-vs-crash reboot equivalence: a crash state captured by an
//! armed harvest plan (a copy-on-write `DeltaImage` taken mid-superstep,
//! while the execution keeps running) must reboot into exactly the machine
//! a per-trial crash at the same poll site produces.
//!
//! Two layers:
//!
//! 1. A sim-level property over random partially-persisted workloads: at
//!    *every* poll site, `materialize()` of the harvested delta is
//!    byte-identical to the `crash_now` image of a dedicated triggered
//!    run, carries the same dirty-residency metadata, and a
//!    `MemorySystem::from_image` reboot from either reads the same values
//!    at the same simulated time.
//! 2. A cluster-level check that `Cluster::reboot_rank` re-aligns the
//!    rebooted rank's clock to the same frontier — with the same
//!    `Detect`-bucket restart charge — whether the image came from
//!    `crash_rank` or from a materialized mid-superstep harvest.

use proptest::prelude::*;

use adcc::dist::cluster::{Cluster, ClusterConfig};
use adcc::dist::net::NetTiming;
use adcc::sim::clock::Bucket;
use adcc::sim::crash::{CrashEmulator, CrashSite, CrashTrigger};
use adcc::sim::parray::PArray;
use adcc::sim::system::{MemorySystem, SystemConfig};

fn cfg() -> SystemConfig {
    SystemConfig::nvm_only(4 << 10, 1 << 20)
}

/// One epoch of a random workload: per-element stores, a persisted prefix
/// (flush + fence), and a dirty tail left in the volatile hierarchy — the
/// "mid-superstep" shape where a crash image and the live machine differ
/// the most.
#[derive(Debug, Clone)]
struct Epoch {
    values: Vec<u64>,
    persist_prefix: usize,
}

fn epoch_strategy() -> impl Strategy<Value = Epoch> {
    (proptest::collection::vec(any::<u64>(), 16), 0usize..=16).prop_map(
        |(values, persist_prefix)| Epoch {
            values,
            persist_prefix,
        },
    )
}

const PHASE: u32 = 7;

/// Drive `epochs` through `emu`, polling site `(PHASE, e)` after each
/// epoch (1-based). Returns the array handle; stops early (after the
/// fired poll) when the emulator's trigger fires.
fn drive(emu: &mut CrashEmulator, epochs: &[Epoch]) -> PArray<u64> {
    let a = PArray::<u64>::alloc_nvm(emu.system_mut(), 16);
    for (k, ep) in epochs.iter().enumerate() {
        let sys = emu.system_mut();
        a.store_slice(sys, &ep.values);
        a.slice(0, ep.persist_prefix).persist_all(sys);
        if emu.poll(CrashSite::new(PHASE, k as u64 + 1)) {
            break;
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn materialized_harvest_reboots_like_a_per_trial_crash_at_every_site(
        epochs in proptest::collection::vec(epoch_strategy(), 1..5),
    ) {
        // Batch: one execution, every poll site harvested.
        let mut batch = CrashEmulator::from_system(MemorySystem::new(cfg()), CrashTrigger::Never);
        batch.arm_harvest((1..=epochs.len() as u64).map(|e| {
            (
                CrashTrigger::AtSite {
                    site: CrashSite::new(PHASE, e),
                    occurrence: 1,
                },
                e,
            )
        }));
        let batch_arr = drive(&mut batch, &epochs);
        let harvests = batch.take_harvests();
        prop_assert_eq!(harvests.len(), epochs.len());

        for h in &harvests {
            // Per-trial: a dedicated run crashing at this site.
            let mut per = CrashEmulator::from_system(
                MemorySystem::new(cfg()),
                CrashTrigger::AtSite { site: h.site, occurrence: 1 },
            );
            let per_arr = drive(&mut per, &epochs);
            prop_assert!(per.fired());
            let per_now = per.system().now().ps();
            let crashed = per.crash_now();

            // The materialized harvest is the per-trial image, byte for
            // byte, dirty-residency metadata included.
            let materialized = h.image.materialize();
            prop_assert_eq!(materialized.bytes(), crashed.bytes(), "site {:?}", h.site);
            prop_assert_eq!(
                materialized.dirty_lines_at_crash(),
                crashed.dirty_lines_at_crash(),
                "site {:?}",
                h.site
            );

            // Reboot both: same NVM contents, same boot clock.
            let from_harvest = MemorySystem::from_image(cfg(), &materialized);
            let from_crash = MemorySystem::from_image(cfg(), &crashed);
            prop_assert_eq!(from_harvest.now().ps(), from_crash.now().ps());
            for i in 0..16 {
                prop_assert_eq!(
                    batch_arr.peek(&from_harvest, i),
                    per_arr.peek(&from_crash, i),
                    "site {:?} element {i}",
                    h.site
                );
            }

            // The capture was uncharged: the shared execution's clock at
            // the capture instant equals the per-trial clock at its crash.
            prop_assert_eq!(h.at.now_ps, per_now, "site {:?}", h.site);
        }
    }
}

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        ranks: 4,
        sys: SystemConfig::nvm_only(4 << 10, 1 << 16),
        net: NetTiming::cluster_2017(),
        net_seed: 42,
        faults: adcc::dist::net::FaultPlan::none(),
    }
}

/// Drive an identical two-superstep store pattern on every rank of `cl`,
/// leaving a dirty tail unpersisted (mid-superstep state), polling
/// `(PHASE, step)` on every rank in rank order at each boundary. Returns
/// the per-rank arrays and the crash image the armed rank produced, if
/// its poll fired.
fn drive_cluster(
    cl: &mut Cluster,
    armed: usize,
) -> (Vec<PArray<u64>>, Option<adcc::sim::image::NvmImage>) {
    let arrays: Vec<PArray<u64>> = (0..cl.ranks())
        .map(|r| PArray::<u64>::alloc_nvm(cl.system_mut(r), 16))
        .collect();
    for step in 1..=2u64 {
        for (r, a) in arrays.iter().enumerate() {
            let sys = cl.system_mut(r);
            a.fill(sys, step * 10 + r as u64);
            a.slice(0, 8).persist_all(sys);
        }
        let site = CrashSite::new(PHASE, step);
        for r in 0..cl.ranks() {
            if cl.poll(r, site) {
                let image = cl.crash_rank(r);
                return (arrays, Some(image));
            }
        }
        cl.barrier();
    }
    (arrays, Some(cl.crash_rank(armed)))
}

#[test]
fn reboot_rank_aligns_identically_for_crash_and_materialized_harvest_images() {
    let armed = 1usize;
    let site = CrashSite::new(PHASE, 2);
    let trigger = CrashTrigger::AtSite {
        site,
        occurrence: 1,
    };

    // Per-trial: rank 1 crashes at the second mid-superstep boundary.
    let mut per = Cluster::new(cluster_cfg(), Some((armed, trigger)));
    let (per_arrays, per_image) = drive_cluster(&mut per, armed);
    let per_image = per_image.expect("trigger fired");

    // Batch: same execution with a harvest plan; the poll captures
    // instead of crashing, and the drain at the boundary materializes.
    let mut batch = Cluster::new(cluster_cfg(), None);
    batch.arm_harvest(armed, [(trigger, 7u64)]);
    let arrays: Vec<PArray<u64>> = (0..batch.ranks())
        .map(|r| PArray::<u64>::alloc_nvm(batch.system_mut(r), 16))
        .collect();
    let mut harvested = None;
    for step in 1..=2u64 {
        for (r, a) in arrays.iter().enumerate() {
            let sys = batch.system_mut(r);
            a.fill(sys, step * 10 + r as u64);
            a.slice(0, 8).persist_all(sys);
        }
        let s = CrashSite::new(PHASE, step);
        for r in 0..batch.ranks() {
            assert!(!batch.poll(r, s), "armed harvest must not crash");
        }
        let mut drained = batch.drain_harvests(armed);
        if let Some(h) = drained.pop() {
            assert_eq!(h.site, site);
            harvested = Some(h.image.materialize());
            break; // replay happens at the drain boundary, like the driver
        }
        batch.barrier();
    }
    let batch_image = harvested.expect("harvest captured");
    assert_eq!(batch_image.bytes(), per_image.bytes(), "images identical");

    // Reboot both clusters' armed rank from their respective images: the
    // clock re-alignment (frontier, Detect restart charge) and the
    // restored NVM must be indistinguishable.
    per.reboot_rank(armed, &per_image);
    batch.reboot_rank(armed, &batch_image);
    assert_eq!(per.max_now_ps(), batch.max_now_ps(), "frontiers match");
    for r in 0..per.ranks() {
        assert_eq!(
            per.system(r).now().ps(),
            batch.system(r).now().ps(),
            "rank {r} clock"
        );
    }
    assert_eq!(
        per.system(armed).clock().bucket_total(Bucket::Detect).ps(),
        batch
            .system(armed)
            .clock()
            .bucket_total(Bucket::Detect)
            .ps(),
        "restart latency charge"
    );
    assert!(per.system(armed).clock().bucket_total(Bucket::Detect).ps() > 0);
    for i in 0..16 {
        assert_eq!(
            per_arrays[armed].peek(per.system(armed), i),
            arrays[armed].peek(batch.system(armed), i),
            "element {i}"
        );
    }
}
