//! Delta-vs-full equivalence: the copy-on-write crash-image path must be
//! indistinguishable from the legacy full-copy path.
//!
//! Three layers of proof:
//!
//! 1. **Image level** (plus a proptest in `crates/sim`): a materialized
//!    `DeltaImage` is byte-identical to the `crash_fork` image taken at
//!    the same instant.
//! 2. **Trial level**: for every scenario in the registry, `run_batch`
//!    (one harvested execution, delta images, streaming classification)
//!    produces exactly the trials `run_trial` (one execution and one full
//!    image per unit) produces — outcome, loss, recovery clock, and the
//!    full telemetry profile.
//! 3. **Report level**: whole campaigns are byte-identical in canonical
//!    form under both code paths, across 1 and 8 worker threads, dense
//!    units included.

use adcc::campaign::engine::{run_campaign, CampaignConfig};
use adcc::campaign::memstats::ImageMemory;
use adcc::campaign::scenario::{dist_registry, ds_registry, registry, Registry};

/// A spread of units across each scenario's site-grain space plus one
/// dense (access-grain) point.
fn sample_units(total: u64) -> Vec<u64> {
    let mut units: Vec<u64> = [0, total / 2, total - 1, total + 2].into_iter().collect();
    units.sort_unstable();
    units.dedup();
    units
}

#[test]
fn every_scenario_batches_identically_to_per_trial() {
    for telemetry in [false, true] {
        let mem = ImageMemory::default();
        for s in registry() {
            let units = sample_units(s.total_units());
            let batch = s
                .run_batch(&units, telemetry, &mem)
                .expect("every scenario supports the batched delta path");
            assert_eq!(batch.len(), units.len(), "{}", s.name());
            for (&unit, b) in units.iter().zip(&batch) {
                let t = s.run_trial(unit, telemetry);
                assert_eq!(b.unit, t.unit, "{} unit {}", s.name(), unit);
                assert_eq!(
                    b.outcome,
                    t.outcome,
                    "{} unit {unit} (telemetry={telemetry})",
                    s.name()
                );
                assert_eq!(b.lost_units, t.lost_units, "{} unit {unit}", s.name());
                assert_eq!(b.sim_time_ps, t.sim_time_ps, "{} unit {unit}", s.name());
                assert_eq!(b.telemetry.is_some(), telemetry, "{} unit {unit}", s.name());
                assert_eq!(b.telemetry, t.telemetry, "{} unit {unit}", s.name());
            }
        }
        // The batch path actually stored deltas, not full copies.
        let m = mem.summary();
        assert!(m.images > 0);
        assert!(
            m.delta_bytes < m.full_copy_bytes / 10,
            "deltas must be far below full copies: {m:?}"
        );
    }
}

/// The dist divergence gate: every distributed scenario's `run_batch`
/// (one harvest-planned cluster execution, forked-cluster recovery
/// replays, reference-run tail short-circuit) must produce trials
/// identical to `run_trial` per unit — outcome, loss, recovery clock and
/// traffic, and the full telemetry profile.
#[test]
fn every_dist_scenario_batches_identically_to_per_trial() {
    for telemetry in [false, true] {
        let mem = ImageMemory::default();
        for s in dist_registry() {
            let units = sample_units(s.total_units());
            let batch = s
                .run_batch(&units, telemetry, &mem)
                .expect("dist scenarios support the batched harvest path");
            assert_eq!(batch.len(), units.len(), "{}", s.name());
            for (&unit, b) in units.iter().zip(&batch) {
                let t = s.run_trial(unit, telemetry);
                assert_eq!(b.unit, t.unit, "{} unit {}", s.name(), unit);
                assert_eq!(
                    b.outcome,
                    t.outcome,
                    "{} unit {unit} (telemetry={telemetry})",
                    s.name()
                );
                assert_eq!(b.lost_units, t.lost_units, "{} unit {unit}", s.name());
                assert_eq!(b.sim_time_ps, t.sim_time_ps, "{} unit {unit}", s.name());
                assert_eq!(b.telemetry.is_some(), telemetry, "{} unit {unit}", s.name());
                assert_eq!(b.telemetry, t.telemetry, "{} unit {unit}", s.name());
            }
        }
        let m = mem.summary();
        assert!(m.images > 0);
        assert!(
            m.delta_bytes < m.full_copy_bytes / 10,
            "dist deltas must be far below full copies: {m:?}"
        );
    }
}

/// The ds divergence gate: every persistent data-structure scenario's
/// `run_batch` (one harvested op-stream execution, sidecar undo-log
/// counters, delta images) must produce trials identical to `run_trial`
/// per unit — outcome, loss, recovery clock, and the full telemetry
/// profile (undo-log appends and op-replay counters included).
#[test]
fn every_ds_scenario_batches_identically_to_per_trial() {
    for telemetry in [false, true] {
        let mem = ImageMemory::default();
        for s in ds_registry() {
            let units = sample_units(s.total_units());
            let batch = s
                .run_batch(&units, telemetry, &mem)
                .expect("ds scenarios support the batched delta path");
            assert_eq!(batch.len(), units.len(), "{}", s.name());
            for (&unit, b) in units.iter().zip(&batch) {
                let t = s.run_trial(unit, telemetry);
                assert_eq!(b.unit, t.unit, "{} unit {}", s.name(), unit);
                assert_eq!(
                    b.outcome,
                    t.outcome,
                    "{} unit {unit} (telemetry={telemetry})",
                    s.name()
                );
                assert_eq!(b.lost_units, t.lost_units, "{} unit {unit}", s.name());
                assert_eq!(b.sim_time_ps, t.sim_time_ps, "{} unit {unit}", s.name());
                assert_eq!(b.telemetry.is_some(), telemetry, "{} unit {unit}", s.name());
                assert_eq!(b.telemetry, t.telemetry, "{} unit {unit}", s.name());
            }
        }
        let m = mem.summary();
        assert!(m.images > 0);
        assert!(
            m.delta_bytes < m.full_copy_bytes / 10,
            "ds deltas must be far below full copies: {m:?}"
        );
    }
}

/// The report-level ds gate: whole persistent data-structure campaigns
/// are byte-identical in canonical form between the batched delta path
/// and the legacy per-trial path, across 1 and 8 worker threads.
#[test]
fn ds_campaign_reports_byte_identical_across_code_paths_and_threads() {
    let ds_config = |threads: usize, per_trial: bool| CampaignConfig {
        seed: 42,
        budget_states: 48,
        threads,
        telemetry: true,
        per_trial,
        registry: Registry::Ds,
        ..CampaignConfig::default()
    };
    let batch1 = run_campaign(&ds_config(1, false));
    let batch8 = run_campaign(&ds_config(8, false));
    let legacy1 = run_campaign(&ds_config(1, true));
    let legacy8 = run_campaign(&ds_config(8, true));
    let canonical = batch1.canonical_string();
    assert!(canonical.contains("\"registry\": \"ds\""));
    assert_eq!(
        canonical,
        batch8.canonical_string(),
        "batch, 1 vs 8 threads"
    );
    assert_eq!(canonical, legacy1.canonical_string(), "batch vs per-trial");
    assert_eq!(
        canonical,
        legacy8.canonical_string(),
        "per-trial, 8 threads"
    );
    assert!(batch1.image_memory.images > 0);
    assert_eq!(legacy1.image_memory.images, 0);
}

/// The report-level dist gate: whole distributed campaigns are
/// byte-identical in canonical form between the batched harvest path and
/// the legacy per-trial path, across 1 and 8 worker threads.
#[test]
fn dist_campaign_reports_byte_identical_across_code_paths_and_threads() {
    let dist_config = |threads: usize, per_trial: bool| CampaignConfig {
        seed: 42,
        budget_states: 48,
        threads,
        telemetry: true,
        per_trial,
        registry: Registry::Dist,
        ..CampaignConfig::default()
    };
    let batch1 = run_campaign(&dist_config(1, false));
    let batch8 = run_campaign(&dist_config(8, false));
    let legacy1 = run_campaign(&dist_config(1, true));
    let legacy8 = run_campaign(&dist_config(8, true));
    let canonical = batch1.canonical_string();
    assert!(canonical.contains("\"registry\": \"dist\""));
    assert_eq!(
        canonical,
        batch8.canonical_string(),
        "batch, 1 vs 8 threads"
    );
    assert_eq!(canonical, legacy1.canonical_string(), "batch vs per-trial");
    assert_eq!(
        canonical,
        legacy8.canonical_string(),
        "per-trial, 8 threads"
    );
    assert!(batch1.image_memory.images > 0);
    assert_eq!(legacy1.image_memory.images, 0);
}

/// Sharded campaigns tile the schedule: merging the complete shard set
/// reproduces the unsharded canonical report byte-for-byte, for every
/// registry and any shard count.
#[test]
fn shard_merge_reproduces_the_unsharded_report() {
    use adcc::campaign::report::CampaignReport;
    for reg in Registry::ALL {
        let base = CampaignConfig {
            seed: 42,
            budget_states: if reg == Registry::Kernel { 96 } else { 48 },
            threads: 2,
            telemetry: true,
            registry: reg,
            ..CampaignConfig::default()
        };
        let full = run_campaign(&base);
        for n in [2u64, 4, 8] {
            let partials: Vec<_> = (0..n)
                .map(|i| {
                    run_campaign(&CampaignConfig {
                        shard: Some((i, n)),
                        ..base.clone()
                    })
                })
                .collect();
            let trials: u64 = partials.iter().map(|p| p.totals.total()).sum();
            assert_eq!(trials, full.totals.total(), "shards tile the budget");
            let merged = CampaignReport::merge_shards(&partials).unwrap();
            assert_eq!(
                merged.canonical_string(),
                full.canonical_string(),
                "{n}-way merge (registry={})",
                reg.name()
            );
        }
    }
}

fn config(threads: usize, per_trial: bool, dense: u64) -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        budget_states: 120,
        threads,
        telemetry: true,
        dense_units: dense,
        per_trial,
        ..CampaignConfig::default()
    }
}

#[test]
fn campaign_reports_byte_identical_across_code_paths_and_threads() {
    let batch1 = run_campaign(&config(1, false, 0));
    let batch8 = run_campaign(&config(8, false, 0));
    let legacy1 = run_campaign(&config(1, true, 0));
    let legacy8 = run_campaign(&config(8, true, 0));
    let canonical = batch1.canonical_string();
    assert_eq!(
        canonical,
        batch8.canonical_string(),
        "delta, 1 vs 8 threads"
    );
    assert_eq!(canonical, legacy1.canonical_string(), "delta vs per-trial");
    assert_eq!(
        canonical,
        legacy8.canonical_string(),
        "per-trial, 8 threads"
    );
    // The delta path recorded image-memory accounting; the legacy path
    // records none — only host facts may differ.
    assert!(batch1.image_memory.images > 0);
    assert_eq!(legacy1.image_memory.images, 0);
}

#[test]
fn dense_campaigns_are_equivalent_and_replayable_too() {
    let batch = run_campaign(&config(4, false, 40));
    let legacy = run_campaign(&config(4, true, 40));
    assert_eq!(batch.canonical_string(), legacy.canonical_string());
    assert_eq!(batch.dense_units, 40);
    // The dense extension is recorded in the canonical form, so a replay
    // (which parses it back) reproduces the same crash-point space.
    let parsed = adcc::campaign::report::CampaignReport::parse(&batch.to_string_pretty()).unwrap();
    assert_eq!(parsed.dense_units, 40);
    assert_eq!(parsed.canonical_string(), batch.canonical_string());
}

#[test]
fn batch_chunking_does_not_change_the_report() {
    let a = run_campaign(&CampaignConfig {
        max_batch: 7,
        ..config(2, false, 0)
    });
    let b = run_campaign(&CampaignConfig {
        max_batch: 1024,
        ..config(2, false, 0)
    });
    assert_eq!(a.canonical_string(), b.canonical_string());
}
