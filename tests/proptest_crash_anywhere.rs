//! Property tests: a crash at an *arbitrary* point (random access-count
//! trigger, which fires at the next instrumented site) must always be
//! recoverable, and recovery must reproduce the crash-free result.

use proptest::prelude::*;

use adcc::core::abft::TwoLoopAbft;
use adcc::core::cg::{cg_host, ExtendedCg};
use adcc::prelude::*;

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Extended CG: crash after a random number of accesses; recovery
    /// finds a valid restart point and converges to the reference.
    #[test]
    fn cg_recovers_from_any_crash_point(
        accesses in 5_000u64..250_000,
        cache_kb in 2usize..64,
        seed in 0u64..1000,
    ) {
        let class = CgClass::TEST;
        let a = class.matrix(seed);
        let b = class.rhs(&a);
        let iters = 8;
        let reference = cg_host(&a, &b, iters);
        let cfg = SystemConfig::nvm_only(cache_kb << 10, 64 << 20);

        let mut sys = MemorySystem::new(cfg.clone());
        let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, iters);
        let trig = CrashTrigger::AtAccessCount(accesses);
        let mut emu = CrashEmulator::from_system(sys, trig);
        match cg.run(&mut emu, 0, iters, rho0) {
            RunOutcome::Completed(rho) => {
                // Crash landed beyond the run; still a valid outcome.
                let sol = cg.peek_solution(&emu, rho);
                prop_assert!(max_diff(&sol.z, &reference) < 1e-9);
            }
            RunOutcome::Crashed(image) => {
                let rec = cg.recover_and_resume(&image, cfg);
                prop_assert!(
                    max_diff(&rec.solution.z, &reference) < 1e-9,
                    "recovered solution off by {}",
                    max_diff(&rec.solution.z, &reference)
                );
                prop_assert!(rec.report.lost_units <= iters as u64);
            }
        }
    }

    /// Two-loop ABFT MM: crash after a random number of accesses; the
    /// recovered product is exact.
    #[test]
    fn abft_recovers_from_any_crash_point(
        accesses in 2_000u64..100_000,
        cache_kb in 2usize..32,
        seed in 0u64..1000,
    ) {
        let n = 16;
        let k = 4;
        let a = Matrix::random(n, n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let want = a.mul_naive(&b);
        let cfg = SystemConfig::nvm_only(cache_kb << 10, 32 << 20);

        let mut sys = MemorySystem::new(cfg.clone());
        let mm = TwoLoopAbft::setup(&mut sys, &a, &b, k);
        let trig = CrashTrigger::AtAccessCount(accesses);
        let mut emu = CrashEmulator::from_system(sys, trig);
        match mm.run(&mut emu) {
            RunOutcome::Completed(()) => {
                prop_assert!(mm.peek_product(&emu).max_abs_diff(&want) < 1e-10);
            }
            RunOutcome::Crashed(image) => {
                let (sys, _rec) = mm.recover_and_resume(&image, cfg);
                let diff = mm.peek_product(&sys).max_abs_diff(&want);
                prop_assert!(diff < 1e-10, "recovered product off by {diff}");
            }
        }
    }

    /// MC with the epoch extension: crash at a random lookup; recovery is
    /// bit-exact regardless of cache geometry.
    #[test]
    fn mc_epoch_recovers_exactly_from_any_crash_point(
        crash_at in 10u64..1_400,
        cache_kb in 2usize..32,
        seed in 0u64..1000,
    ) {
        let p = McProblem::generate(36, 64, seed);
        let lookups = 1_500u64;
        let cfg = SystemConfig::nvm_only(
            cache_kb << 10,
            (p.grid_bytes() + (1 << 20)).next_power_of_two(),
        );
        let mode = McMode::Epoch { interval: 64 };

        // Reference.
        let mut sys = MemorySystem::new(cfg.clone());
        let mc = McSim::setup(&mut sys, p.clone(), lookups, seed, McMode::Native);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        mc.run(&mut emu, 0, lookups).completed().unwrap();
        let want = mc.peek_counts(&emu);

        // Crash + epoch recovery.
        let mut sys = MemorySystem::new(cfg.clone());
        let mc = McSim::setup(&mut sys, p, lookups, seed, mode);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(adcc::core::mc::sites::PH_LOOKUP, crash_at),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = mc.run(&mut emu, 0, lookups).crashed().expect("must crash");
        let rec = mc.recover_and_resume(&image, cfg, crash_at + 1);
        prop_assert_eq!(rec.counts, want);
    }
}
