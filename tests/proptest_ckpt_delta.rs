//! Property suite for the checkpoint managers under the copy-on-write
//! delta-image path: crash states harvested as `DeltaImage`s between
//! checkpoint *levels* (mid-epoch, post-local, post-remote-ship) must
//! always recover to the most recent **consistent** level — the newest
//! complete local checkpoint after a process crash, the newest shipped
//! remote copy after a node loss, the newest checksum-verified slot for
//! the page-incremental manager.

use proptest::prelude::*;

use adcc::ckpt::incremental::IncrementalCheckpoint;
use adcc::ckpt::multilevel::{MultilevelCheckpoint, RemoteStore, RemoteTiming};
use adcc::sim::parray::PArray;
use adcc::sim::system::{MemorySystem, SystemConfig};

fn cfg() -> SystemConfig {
    SystemConfig::nvm_only(4 << 10, 1 << 20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Multilevel (local NVM + modelled remote): crashing at any point of
    /// an epoch sequence — mid-epoch (data dirty, nothing new persisted)
    /// or right after a checkpoint (remote possibly lagging) — restores
    /// the newest complete local level after a process crash, and the
    /// newest shipped level after a node loss. Epoch `e`'s payload value
    /// is `e`, and checkpoint seq `s` holds value `s - 1`, so the
    /// restored data pins the level exactly.
    #[test]
    fn multilevel_crashes_recover_the_newest_consistent_level(
        epochs in 2u64..6,
        remote_period in 1u64..4,
        crash_after_fill in any::<bool>(),
        crash_epoch in 1u64..6,
    ) {
        let crash_epoch = crash_epoch.min(epochs);
        let mut sys = MemorySystem::new(cfg());
        let data = PArray::<u64>::alloc_nvm(&mut sys, 32);
        let regions = [(data.base(), data.byte_len())];
        let mut remote = RemoteStore::new();
        let mut ml = MultilevelCheckpoint::new(
            &mut sys,
            data.byte_len(),
            false,
            remote_period,
            RemoteTiming::burst_buffer(),
        );
        let layout = ml.local_layout();
        // Setup level: value 0 at seq 1.
        data.fill(&mut sys, 0);
        ml.checkpoint(&mut sys, &regions, &mut remote);

        let base = sys.delta_base();
        let mut fork = None;
        for e in 1..=epochs {
            data.fill(&mut sys, e);
            if e == crash_epoch && crash_after_fill {
                // Crash between the write burst and the next level.
                fork = Some((sys.crash_fork_delta(&base), e, remote.clone()));
                break;
            }
            ml.checkpoint(&mut sys, &regions, &mut remote);
            if e == crash_epoch {
                // Crash between the local level and the next epoch (the
                // remote level may be lagging by up to remote_period - 1).
                fork = Some((sys.crash_fork_delta(&base), e + 1, remote.clone()));
                break;
            }
        }
        let (delta, expected_seq, remote_at_crash) = fork.expect("crash epoch within range");
        let image = delta.materialize();

        // Process crash: same node, NVM intact — newest local level wins.
        let mut rebooted = MemorySystem::from_image(cfg(), &image);
        let ml2 = MultilevelCheckpoint::attach(
            layout,
            false,
            remote_period,
            RemoteTiming::burst_buffer(),
        );
        let got = ml2.restore_local(&mut rebooted, &regions);
        prop_assert_eq!(got, Some(expected_seq), "local restore level");
        prop_assert_eq!(data.load_vec(&mut rebooted), vec![expected_seq - 1; 32]);

        // Node loss: local NVM gone — the newest *shipped* level wins,
        // which trails local by less than the ship period.
        let mut fresh = MemorySystem::new(cfg());
        let _ = PArray::<u64>::alloc_nvm(&mut fresh, 32); // same layout
        let got = MultilevelCheckpoint::restore_from_remote(
            &mut fresh,
            &regions,
            &remote_at_crash,
            RemoteTiming::burst_buffer(),
        );
        let remote_seq = remote_at_crash.seq();
        prop_assert_eq!(got, remote_seq, "remote restore level");
        if let Some(s) = remote_seq {
            prop_assert!(s <= expected_seq);
            prop_assert!(expected_seq - s < remote_period.max(1) + 1);
            prop_assert_eq!(data.load_vec(&mut fresh), vec![s - 1; 32]);
        }
    }

    /// Page-incremental: for any interleaving of sparse writes and
    /// checkpoints, a delta-image crash anywhere between checkpoints
    /// attaches (conservatively all-dirty) and restores exactly the data
    /// of the newest checksum-complete slot.
    #[test]
    fn incremental_crashes_recover_the_last_complete_checkpoint(
        script in prop::collection::vec(
            prop_oneof![
                3 => (0usize..48, any::<u64>()).prop_map(Some),
                1 => Just(None), // checkpoint
            ],
            1..24,
        ),
        crash_step in 0usize..24,
        page_pow in 6u32..9,
    ) {
        let crash_step = crash_step.min(script.len() - 1);
        let mut sys = MemorySystem::new(cfg());
        let data = PArray::<u64>::alloc_nvm(&mut sys, 48);
        data.fill(&mut sys, 0);
        let regions = vec![(data.base(), data.byte_len())];
        let mut ck = IncrementalCheckpoint::new(
            &mut sys,
            regions.clone(),
            1usize << page_pow,
            false,
        );
        let layout = ck.layout();

        let base = sys.delta_base();
        let mut live = vec![0u64; 48];
        let mut committed: Option<(u64, Vec<u64>)> = None;
        let mut fork = None;
        for (step, action) in script.iter().enumerate() {
            match action {
                Some((index, value)) => {
                    data.set(&mut sys, *index, *value);
                    ck.mark_dirty(data.addr(*index), 8);
                    live[*index] = *value;
                }
                None => {
                    let report = ck.checkpoint(&mut sys);
                    committed = Some((report.seq, live.clone()));
                }
            }
            if step == crash_step {
                fork = Some(sys.crash_fork_delta(&base));
                break;
            }
        }
        let image = fork.expect("crash step within script").materialize();

        let mut rebooted = MemorySystem::from_image(cfg(), &image);
        let ck2 = IncrementalCheckpoint::attach(layout, regions, false);
        let got = ck2.restore(&mut rebooted);
        match committed {
            Some((seq, ref state)) => {
                prop_assert_eq!(got, Some(seq), "newest complete slot");
                prop_assert_eq!(&data.load_vec(&mut rebooted), state);
            }
            None => prop_assert_eq!(got, None, "nothing consistent yet"),
        }
    }
}
