//! Report-schema compatibility: the committed `adcc-campaign-report/v1`
//! fixture must stay parseable by everything `campaign replay` and
//! `campaign compare` use, and the v2 telemetry block must survive a full
//! JSON round-trip bit-for-bit.

use adcc::campaign::engine::{run_campaign, CampaignConfig};
use adcc::campaign::report::{compare, CampaignReport, SCHEMA, SCHEMA_V1};

const V1_FIXTURE: &str = include_str!("fixtures/campaign-report-v1.json");

fn v2_config() -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        budget_states: 26,
        threads: 2,
        telemetry: true,
        ..CampaignConfig::default()
    }
}

#[test]
fn v1_fixture_still_parses() {
    let report = CampaignReport::parse(V1_FIXTURE).expect("v1 fixture must stay readable");
    assert_eq!(report.seed, 42);
    assert_eq!(report.budget_states, 26);
    assert_eq!(report.schedule, "stratified");
    assert_eq!(report.scenarios.len(), 13, "full registry in the fixture");
    assert_eq!(report.totals.total(), 26);
    // v1 predates telemetry: no block anywhere.
    assert!(report.telemetry.is_none());
    assert!(report.scenarios.iter().all(|s| s.telemetry.is_none()));
}

#[test]
fn v1_fixture_supports_the_compare_workflow() {
    // `campaign compare OLD NEW` across the schema bump: a v1 baseline
    // diffed against a fresh v2 run of the same inputs.
    let old = CampaignReport::parse(V1_FIXTURE).unwrap();
    let new = run_campaign(&v2_config());
    let cmp = compare(&old, &new);
    assert!(
        !cmp.regression,
        "same-seed v2 rerun must not regress the v1 baseline: {:?}",
        cmp.lines
    );
}

#[test]
fn v1_fixture_matches_a_fresh_run_outcome_for_outcome() {
    // The fixture was produced by this engine; replaying its header inputs
    // must reproduce its outcomes exactly (the `campaign replay --expect`
    // guarantee, across the schema bump).
    let old = CampaignReport::parse(V1_FIXTURE).unwrap();
    let new = run_campaign(&CampaignConfig {
        telemetry: false,
        ..v2_config()
    });
    assert_eq!(old.totals, new.totals);
    for (a, b) in old.scenarios.iter().zip(&new.scenarios) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.outcomes, b.outcomes, "{}", a.name);
        assert_eq!(a.lost_units_total, b.lost_units_total, "{}", a.name);
        assert_eq!(a.sim_time_ps_total, b.sim_time_ps_total, "{}", a.name);
    }
}

#[test]
fn v2_telemetry_block_roundtrips() {
    let report = run_campaign(&v2_config());
    assert!(report.telemetry.is_some());
    let text = report.to_string_pretty();
    assert!(text.contains(SCHEMA));
    assert!(!text.contains(SCHEMA_V1));
    let parsed = CampaignReport::parse(&text).expect("v2 with telemetry parses");
    assert_eq!(parsed, report, "telemetry block survives the round-trip");
    // Emission is deterministic: parse → emit is byte-identical, including
    // the derived adr/eadr/consistency-window fields.
    assert_eq!(parsed.to_string_pretty(), text);
    assert_eq!(parsed.canonical_string(), report.canonical_string());
}

#[test]
fn v2_without_telemetry_is_v1_shaped() {
    // A v2 report produced without `--telemetry` differs from v1 only in
    // the schema string — old tooling fields all present.
    let report = run_campaign(&CampaignConfig {
        telemetry: false,
        ..v2_config()
    });
    let text = report.to_string_pretty();
    assert!(!text.contains("\"telemetry\""));
    let as_v1 = text.replace(SCHEMA, SCHEMA_V1);
    let parsed = CampaignReport::parse(&as_v1).unwrap();
    assert_eq!(parsed.canonical_string(), report.canonical_string());
}
