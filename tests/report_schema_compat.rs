//! Report-schema compatibility: the committed fixtures for every schema
//! generation (`adcc-campaign-report/v1` through `/v7`) must stay
//! parseable by everything `campaign replay`, `campaign merge`, and
//! `campaign compare` use, and the current telemetry, diagnostics, and
//! natural-resilience blocks must survive a full JSON round-trip
//! bit-for-bit.

use adcc::campaign::engine::{run_campaign, CampaignConfig};
use adcc::campaign::report::{
    compare, CampaignReport, SCHEMA, SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4, SCHEMA_V5,
    SCHEMA_V6,
};
use adcc::campaign::resilience::run_resilience;
use adcc::campaign::scenario::Registry;
use adcc::dist::net::FaultProfile;

const V1_FIXTURE: &str = include_str!("fixtures/campaign-report-v1.json");
const V2_FIXTURE: &str = include_str!("fixtures/campaign-report-v2.json");
const V3_FIXTURE: &str = include_str!("fixtures/campaign-report-v3.json");
const V4_FIXTURE: &str = include_str!("fixtures/campaign-report-v4.json");
const V5_FIXTURE: &str = include_str!("fixtures/campaign-report-v5.json");
const V6_FIXTURE: &str = include_str!("fixtures/campaign-report-v6.json");
const V7_FIXTURE: &str = include_str!("fixtures/campaign-report-v7.json");

fn v2_config() -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        budget_states: 26,
        threads: 2,
        telemetry: true,
        ..CampaignConfig::default()
    }
}

#[test]
fn v1_fixture_still_parses() {
    let report = CampaignReport::parse(V1_FIXTURE).expect("v1 fixture must stay readable");
    assert_eq!(report.seed, 42);
    assert_eq!(report.budget_states, 26);
    assert_eq!(report.schedule, "stratified");
    assert_eq!(report.scenarios.len(), 13, "full registry in the fixture");
    assert_eq!(report.totals.total(), 26);
    // v1 predates telemetry: no block anywhere.
    assert!(report.telemetry.is_none());
    assert!(report.scenarios.iter().all(|s| s.telemetry.is_none()));
}

#[test]
fn v1_fixture_supports_the_compare_workflow() {
    // `campaign compare OLD NEW` across the schema bump: a v1 baseline
    // diffed against a fresh v2 run of the same inputs.
    let old = CampaignReport::parse(V1_FIXTURE).unwrap();
    let new = run_campaign(&v2_config());
    let cmp = compare(&old, &new);
    assert!(
        !cmp.regression,
        "same-seed v2 rerun must not regress the v1 baseline: {:?}",
        cmp.lines
    );
}

#[test]
fn v1_fixture_matches_a_fresh_run_outcome_for_outcome() {
    // The fixture was produced by this engine; replaying its header inputs
    // must reproduce its outcomes exactly (the `campaign replay --expect`
    // guarantee, across the schema bump).
    let old = CampaignReport::parse(V1_FIXTURE).unwrap();
    let new = run_campaign(&CampaignConfig {
        telemetry: false,
        ..v2_config()
    });
    assert_eq!(old.totals, new.totals);
    for (a, b) in old.scenarios.iter().zip(&new.scenarios) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.outcomes, b.outcomes, "{}", a.name);
        assert_eq!(a.lost_units_total, b.lost_units_total, "{}", a.name);
        assert_eq!(a.sim_time_ps_total, b.sim_time_ps_total, "{}", a.name);
    }
}

#[test]
fn v2_fixture_still_parses_without_fabric_keys() {
    // The v2 generation carried telemetry blocks but predates the fabric
    // keys (`net_*`, `recovery_net_bytes`); they must default to zero.
    assert!(V2_FIXTURE.contains(SCHEMA_V2));
    assert!(!V2_FIXTURE.contains("net_msgs"));
    let report = CampaignReport::parse(V2_FIXTURE).expect("v2 fixture must stay readable");
    assert_eq!(report.seed, 42);
    assert_eq!(report.budget_states, 26);
    assert_eq!(report.registry, Registry::Kernel);
    assert!(report.telemetry.is_some());
    let t = report.telemetry.unwrap();
    assert!(t.flush_total() > 0, "v2 telemetry carries real counters");
    assert_eq!(t.net_msgs, 0);
    assert_eq!(t.recovery_net_bytes, 0);
    // Replaying the v2 header inputs on today's engine reproduces its
    // outcomes exactly (the compare workflow across two schema bumps).
    let new = run_campaign(&v2_config());
    assert!(!compare(&report, &new).regression);
    assert_eq!(report.totals, new.totals);
}

#[test]
fn v3_fixture_still_parses_and_upgrades_cleanly() {
    // The v3 generation: dist registry header plus fabric telemetry keys,
    // but no ds op-replay or undo-log-metadata keys (they default to 0).
    assert!(V3_FIXTURE.contains(SCHEMA_V3));
    assert!(!V3_FIXTURE.contains("ds_ops_applied"));
    let report = CampaignReport::parse(V3_FIXTURE).expect("v3 fixture must stay readable");
    assert_eq!(
        report.registry,
        Registry::Dist,
        "v3 fixture sweeps the distributed registry"
    );
    assert!(report.shard.is_none());
    let t = report.telemetry.as_ref().expect("v3 fixture telemetry");
    assert!(t.net_msgs > 0, "dist campaigns record fabric traffic");
    assert!(t.recovery_net_bytes > 0);
    assert_eq!(t.ds_ops_applied, 0);
    // Re-emission upgrades to v4 (adding the zero-valued ds keys) but
    // changes nothing else: the upgraded document parses back to the
    // same report, registry header intact.
    let upgraded = report.to_string_pretty();
    assert!(upgraded.contains(SCHEMA) && !upgraded.contains(SCHEMA_V3));
    assert!(upgraded.contains("\"registry\": \"dist\""));
    let reparsed = CampaignReport::parse(&upgraded).unwrap();
    assert_eq!(reparsed, report);
    assert_eq!(reparsed.canonical_string(), report.canonical_string());
}

#[test]
fn v4_fixture_still_parses_and_upgrades_cleanly() {
    // The v4 generation: named registry headers (`ds` here) plus the
    // op-replay and undo-log-metadata telemetry keys, but no fault-profile
    // header or `net_dropped`-family keys (they default to off / zero).
    assert!(V4_FIXTURE.contains(SCHEMA_V4));
    assert!(!V4_FIXTURE.contains("\"faults\""));
    assert!(!V4_FIXTURE.contains("net_dropped"));
    let report = CampaignReport::parse(V4_FIXTURE).expect("v4 fixture must stay readable");
    assert_eq!(
        report.registry,
        Registry::Ds,
        "v4 fixture sweeps the persistent data-structure registry"
    );
    assert!(report.shard.is_none());
    assert_eq!(report.faults, FaultProfile::Off);
    let t = report
        .telemetry
        .as_ref()
        .expect("v4 fixture carries telemetry");
    assert!(t.ds_ops_applied > 0, "ds campaigns count applied ops");
    assert!(t.ds_ops_replayed > 0, "crash trials replay op suffixes");
    assert!(t.log_meta_appends > 0, "undo transactions append metadata");
    assert_eq!(t.net_dropped, 0);
    assert_eq!(t.net_retries, 0);
    assert_eq!(t.remote_restore_bytes, 0);
    // Re-emission upgrades to v5 (adding the zero-valued fault keys, but
    // no `faults` header — the profile was off) and parses back to the
    // same report.
    let upgraded = report.to_string_pretty();
    assert!(upgraded.contains(SCHEMA) && !upgraded.contains(SCHEMA_V4));
    assert!(!upgraded.contains("\"faults\""));
    let reparsed = CampaignReport::parse(&upgraded).unwrap();
    assert_eq!(reparsed, report);
    assert_eq!(reparsed.canonical_string(), report.canonical_string());
}

#[test]
fn v5_fixture_still_parses_and_upgrades_cleanly() {
    // The v5 generation: a `faults` header naming the fabric fault profile
    // plus the injected-fault telemetry keys (`net_dropped`, `net_reordered`,
    // `net_duplicated`, `net_retries`, `remote_restore_bytes`), but no
    // analyzer `diagnostics` block yet.
    assert!(V5_FIXTURE.contains(SCHEMA_V5));
    assert!(!V5_FIXTURE.contains("\"diagnostics\""));
    let report = CampaignReport::parse(V5_FIXTURE).expect("v5 fixture must stay readable");
    assert_eq!(
        report.registry,
        Registry::Dist,
        "v5 fixture sweeps the distributed registry"
    );
    assert_eq!(
        report.faults,
        FaultProfile::Lossy,
        "v5 fixture ran under the lossy fabric profile"
    );
    assert!(
        report.diagnostics.is_none(),
        "pre-v6 reports carry no block"
    );
    let t = report
        .telemetry
        .as_ref()
        .expect("v5 fixture carries telemetry");
    assert!(t.net_dropped > 0, "the lossy fabric drops transmits");
    assert!(t.net_retries > 0, "every drop forces a retransmission");
    assert_eq!(
        report.totals.silent_corruption, 0,
        "fabric faults never corrupt results silently"
    );
    // Re-emission upgrades to v6 (the schema string only — no
    // `diagnostics` block appears, since the run never attached the
    // analyzer) and parses back to the same report.
    let upgraded = report.to_string_pretty();
    assert!(upgraded.contains(SCHEMA) && !upgraded.contains(SCHEMA_V5));
    assert!(!upgraded.contains("\"diagnostics\""));
    let reparsed = CampaignReport::parse(&upgraded).unwrap();
    assert_eq!(reparsed, report);
    assert_eq!(reparsed.canonical_string(), report.canonical_string());
}

#[test]
fn v6_fixture_still_parses_and_upgrades_cleanly() {
    // The v6 generation: an optional `diagnostics` block recording which
    // scenarios ran under the persist-order analyzer and what protocol
    // findings the sanitizer raised (empty on a clean tree), but no
    // `natural_resilience` blocks yet.
    assert!(V6_FIXTURE.contains(SCHEMA_V6));
    assert!(!V6_FIXTURE.contains("natural_resilience"));
    let report = CampaignReport::parse(V6_FIXTURE).expect("v6 fixture must stay readable");
    assert_eq!(
        report.registry,
        Registry::Ds,
        "v6 fixture triages the persistent data-structure registry"
    );
    let diags = report
        .diagnostics
        .as_ref()
        .expect("v6 fixture carries the analyzer block");
    assert_eq!(
        diags.analyzed,
        vec![
            "ds-queue-undo",
            "ds-queue-base",
            "ds-hash-undo",
            "ds-hash-base"
        ],
        "every ds scenario ran under the analyzer"
    );
    assert!(
        diags.findings.is_empty(),
        "a clean tree raises zero protocol findings"
    );
    assert!(
        report
            .scenarios
            .iter()
            .all(|s| s.natural_resilience.is_none()),
        "pre-v7 reports never carry a resilience block"
    );
    // Re-emission upgrades to v7 (the schema string only — the ds
    // registry has no dirty-restart path, so no `natural_resilience`
    // block appears) and parses back to the same report.
    let upgraded = report.to_string_pretty();
    assert!(upgraded.contains(SCHEMA) && !upgraded.contains(SCHEMA_V6));
    assert!(!upgraded.contains("natural_resilience"));
    let reparsed = CampaignReport::parse(&upgraded).unwrap();
    assert_eq!(reparsed, report);
    assert_eq!(reparsed.canonical_string(), report.canonical_string());
    // Replaying the fixture's header inputs through the analyzer-attached
    // engine reproduces it exactly: recording is outcome-neutral and the
    // triage path is deterministic.
    let rerun = adcc::campaign::triage::run_triage(&CampaignConfig {
        registry: Registry::Ds,
        ..v2_config()
    });
    assert_eq!(rerun.report.canonical_string(), report.canonical_string());
}

#[test]
fn v7_fixture_parses_and_roundtrips_bit_for_bit() {
    // The v7 generation: per-scenario `natural_resilience` blocks from the
    // EasyCrash-style dirty-restart sweep (`campaign run --resilience`),
    // each carrying the tolerance ladder, the five-way class counts, and
    // the derived rates. It is the current schema, so parse → emit must be
    // byte-identical — including the float tolerances and the recomputed
    // `rate_ppm` / `mean_extra_units_milli` fields.
    assert!(V7_FIXTURE.contains(SCHEMA));
    let report = CampaignReport::parse(V7_FIXTURE).expect("v7 fixture must stay readable");
    assert_eq!(report.registry, Registry::Kernel);
    assert!(report.telemetry.is_some());
    for s in &report.scenarios {
        let r = s
            .natural_resilience
            .as_ref()
            .unwrap_or_else(|| panic!("{}: kernel scenario without a resilience block", s.name));
        assert_eq!(r.trials(), s.trials, "{}: every unit classifies", s.name);
    }
    assert!(
        report.scenarios.iter().any(|s| s
            .natural_resilience
            .as_ref()
            .unwrap()
            .classes
            .converged_ok()
            > 0),
        "iterative kernels absorb some dirty restarts"
    );
    assert_eq!(report.to_string_pretty(), V7_FIXTURE);
    // Replaying the fixture's header inputs through the fused resilience
    // engine reproduces it exactly — the `campaign replay --expect`
    // guarantee extends to the dirty-restart sweep.
    let rerun = run_resilience(&v2_config());
    assert_eq!(rerun.canonical_string(), report.canonical_string());
}

#[test]
fn merging_never_fabricates_resilience_blocks() {
    // `campaign merge` unions shard reports, and shards never run the
    // dirty-restart sweep — so even when fed full (unsharded) reports the
    // merged scenarios must drop any `natural_resilience` block rather
    // than pretend partial sweeps aggregated.
    let report = CampaignReport::parse(V7_FIXTURE).unwrap();
    let mut shard = report.clone();
    shard.shard = Some((0, 1));
    let merged = CampaignReport::merge_shards(&[shard]).expect("1-way merge succeeds");
    assert!(merged
        .scenarios
        .iter()
        .all(|s| s.natural_resilience.is_none()));
    assert_eq!(merged.totals, report.totals);
}

#[test]
fn every_fixture_generation_parses() {
    for (name, text) in [
        ("v1", V1_FIXTURE),
        ("v2", V2_FIXTURE),
        ("v3", V3_FIXTURE),
        ("v4", V4_FIXTURE),
        ("v5", V5_FIXTURE),
        ("v6", V6_FIXTURE),
        ("v7", V7_FIXTURE),
    ] {
        let report = CampaignReport::parse(text)
            .unwrap_or_else(|e| panic!("{name} fixture must parse: {e}"));
        assert!(report.totals.total() > 0, "{name}");
        // Re-emission always upgrades to the current schema string.
        assert!(report.to_string_pretty().contains(SCHEMA), "{name}");
    }
}

#[test]
fn v2_telemetry_block_roundtrips() {
    let report = run_campaign(&v2_config());
    assert!(report.telemetry.is_some());
    let text = report.to_string_pretty();
    assert!(text.contains(SCHEMA));
    assert!(!text.contains(SCHEMA_V1));
    let parsed = CampaignReport::parse(&text).expect("v2 with telemetry parses");
    assert_eq!(parsed, report, "telemetry block survives the round-trip");
    // Emission is deterministic: parse → emit is byte-identical, including
    // the derived adr/eadr/consistency-window fields.
    assert_eq!(parsed.to_string_pretty(), text);
    assert_eq!(parsed.canonical_string(), report.canonical_string());
}

#[test]
fn v2_without_telemetry_is_v1_shaped() {
    // A v2 report produced without `--telemetry` differs from v1 only in
    // the schema string — old tooling fields all present.
    let report = run_campaign(&CampaignConfig {
        telemetry: false,
        ..v2_config()
    });
    let text = report.to_string_pretty();
    assert!(!text.contains("\"telemetry\""));
    let as_v1 = text.replace(SCHEMA, SCHEMA_V1);
    let parsed = CampaignReport::parse(&as_v1).unwrap();
    assert_eq!(parsed.canonical_string(), report.canonical_string());
}
