//! Cross-substrate contract tests: the persistence guarantees must hold
//! for every combination of flush instruction and replacement policy, and
//! the algorithm-directed recoveries must be insensitive to both.

use proptest::prelude::*;

use adcc::core::cg::cg_host;
use adcc::prelude::*;

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// persist_range + crash preserves data under every (flush op, policy)
/// combination, on both platforms.
#[test]
fn persist_contract_across_flushops_and_policies() {
    for op in FlushOp::ALL {
        for policy in ReplacementPolicy::ALL {
            for hetero in [false, true] {
                let mut cfg = if hetero {
                    SystemConfig::heterogeneous(4 << 10, 16 << 10, 1 << 20)
                } else {
                    SystemConfig::nvm_only(4 << 10, 1 << 20)
                }
                .with_flush_op(op);
                cfg.cpu_cache = cfg.cpu_cache.with_policy(policy);
                if let Some(dc) = cfg.dram_cache {
                    cfg.dram_cache = Some(dc.with_policy(policy));
                }
                let mut sys = MemorySystem::new(cfg);
                let x = PArray::<f64>::alloc_nvm(&mut sys, 64);
                for i in 0..64 {
                    x.set(&mut sys, i, i as f64 + 0.5);
                }
                sys.persist_range(x.base(), x.byte_len());
                sys.sfence();
                let img = sys.crash();
                for i in 0..64 {
                    assert_eq!(
                        img.read_f64(x.addr(i)),
                        i as f64 + 0.5,
                        "lost x[{i}] with op={} policy={} hetero={hetero}",
                        op.name(),
                        policy.name()
                    );
                }
            }
        }
    }
}

/// Unpersisted data is lost under every combination (no accidental
/// write-through path).
#[test]
fn unflushed_data_is_lost_across_combinations() {
    for op in FlushOp::ALL {
        for policy in ReplacementPolicy::ALL {
            let mut cfg = SystemConfig::nvm_only(64 << 10, 1 << 20).with_flush_op(op);
            cfg.cpu_cache = cfg.cpu_cache.with_policy(policy);
            let mut sys = MemorySystem::new(cfg);
            let x = PArray::<f64>::alloc_nvm(&mut sys, 8);
            x.set(&mut sys, 0, 9.0);
            // Cache is 64 KiB and we wrote one line: nothing evicts.
            let img = sys.crash();
            assert_eq!(
                img.read_f64(x.addr(0)),
                0.0,
                "unflushed write survived with op={} policy={}",
                op.name(),
                policy.name()
            );
        }
    }
}

/// CG recovery correctness is independent of the replacement policy and
/// flush instruction (the recompute *cost* varies; the answer must not).
#[test]
fn cg_recovery_correct_under_all_policies_and_ops() {
    let class = CgClass::TEST;
    let a = class.matrix(55);
    let b = class.rhs(&a);
    let iters = 8;
    let reference = cg_host(&a, &b, iters);
    for policy in ReplacementPolicy::ALL {
        for op in [FlushOp::Clflush, FlushOp::Clwb] {
            let mut cfg = SystemConfig::nvm_only(8 << 10, 64 << 20).with_flush_op(op);
            cfg.cpu_cache = cfg.cpu_cache.with_policy(policy);
            let mut sys = MemorySystem::new(cfg.clone());
            let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, iters);
            let trig = CrashTrigger::AtSite {
                site: CrashSite::new(adcc::core::cg::sites::PH_LINE10, 5),
                occurrence: 1,
            };
            let mut emu = CrashEmulator::from_system(sys, trig);
            let image = cg.run(&mut emu, 0, iters, rho0).crashed().expect("crash");
            let rec = cg.recover_and_resume(&image, cfg);
            assert!(
                max_diff(&rec.solution.z, &reference) < 1e-9,
                "policy={} op={}: off by {}",
                policy.name(),
                op.name(),
                max_diff(&rec.solution.z, &reference)
            );
        }
    }
}

/// Epoch-batched persistence and per-line persistence leave identical NVM
/// images (only their cost differs).
#[test]
fn epoch_and_serial_persist_produce_identical_images() {
    let build = |batched: bool| -> NvmImage {
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(4 << 10, 1 << 20));
        let x = PArray::<f64>::alloc_nvm(&mut sys, 128);
        for i in 0..128 {
            x.set(&mut sys, i, (i * 3) as f64);
        }
        if batched {
            let mut e = EpochPersist::new();
            e.note_range(x.base(), x.byte_len());
            e.barrier(&mut sys);
        } else {
            sys.persist_range(x.base(), x.byte_len());
            sys.sfence();
        }
        sys.crash()
    };
    let a = build(false);
    let b = build(true);
    assert_eq!(a.bytes(), b.bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any random op sequence (writes, flushes, epoch barriers), every
    /// line's post-crash NVM value is the value it held at its last
    /// persist — regardless of flush instruction.
    #[test]
    fn last_persisted_value_wins(
        ops in prop::collection::vec((0u8..4, 0usize..16, any::<u8>()), 1..60),
        flush_op_idx in 0usize..3,
    ) {
        let op = FlushOp::ALL[flush_op_idx];
        let cfg = SystemConfig::nvm_only(2 << 10, 1 << 20).with_flush_op(op);
        let mut sys = MemorySystem::new(cfg);
        let x = PArray::<u8>::alloc_nvm(&mut sys, 16 * 64); // 16 lines
        // Model of what NVM must hold: last persisted value per line,
        // or any value between last-persist and now if it was evicted —
        // so track "persisted floor": after an explicit persist, NVM has
        // exactly the live value; eviction may update it further. The
        // checkable invariant: NVM never holds a value that was never
        // written.
        let mut live = [0u8; 16];
        let mut history: Vec<std::collections::HashSet<u8>> =
            vec![[0u8].into_iter().collect(); 16];
        for (kind, line, val) in &ops {
            let addr = x.base() + (*line as u64) * 64;
            match kind {
                0 | 1 => {
                    sys.write_bytes(addr, &[*val]);
                    live[*line] = *val;
                    history[*line].insert(*val);
                }
                2 => {
                    sys.persist_line(addr);
                    sys.sfence();
                }
                _ => {
                    let mut e = EpochPersist::new();
                    e.note(addr);
                    e.barrier(&mut sys);
                }
            }
        }
        // Persist everything at the end: now NVM must equal live exactly.
        sys.persist_range(x.base(), x.byte_len());
        sys.sfence();
        let img = sys.crash();
        for line in 0..16 {
            let got = img.read_u8(x.base() + line as u64 * 64);
            prop_assert_eq!(got, live[line], "line {} op {}", line, op.name());
        }
    }
}
