//! Analyzer outcome-neutrality: attaching the persist-order event
//! recorder must never change what the simulated machine computes, when
//! it computes it, or what a campaign reports.
//!
//! Two layers:
//!
//! 1. A sim-level property over random partially-persisted workloads:
//!    the same op stream driven through a recorded and an unrecorded
//!    `MemorySystem` reads the same values, lands on the same simulated
//!    time, and accumulates identical `MemStats` — the recorder observes
//!    stores, flushes, and fences without ever touching the clock.
//! 2. A campaign-level property: `run_triage` (which re-runs the exact
//!    schedule with the recorder attached to every analyzed scenario)
//!    must reproduce the plain engine's report byte for byte once the
//!    v6 `diagnostics` block is set aside — same outcomes, same
//!    `sim_time_ps` totals, same canonical text.

use proptest::prelude::*;

use adcc::campaign::engine::{run_campaign, CampaignConfig};
use adcc::campaign::scenario::Registry;
use adcc::campaign::triage::run_triage;
use adcc::dist::net::FaultProfile;
use adcc::sim::events::EventRecorder;
use adcc::sim::parray::PArray;
use adcc::sim::system::{MemorySystem, SystemConfig};

fn cfg() -> SystemConfig {
    SystemConfig::nvm_only(4 << 10, 1 << 20)
}

/// One epoch of a random workload: per-element stores, a persisted
/// prefix (flush + fence), and a dirty tail left in the cache — the
/// shape where a perturbing observer would be easiest to catch.
#[derive(Debug, Clone)]
struct Epoch {
    values: Vec<u64>,
    persist_prefix: usize,
}

fn epoch_strategy() -> impl Strategy<Value = Epoch> {
    (proptest::collection::vec(any::<u64>(), 16), 0usize..=16).prop_map(
        |(values, persist_prefix)| Epoch {
            values,
            persist_prefix,
        },
    )
}

/// Drive `epochs` through `sys`, returning the final array contents.
fn drive(sys: &mut MemorySystem, epochs: &[Epoch]) -> Vec<u64> {
    let a = PArray::<u64>::alloc_nvm(sys, 16);
    for ep in epochs {
        a.store_slice(sys, &ep.values);
        a.slice(0, ep.persist_prefix).persist_all(sys);
    }
    a.load_vec(sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn recording_never_perturbs_the_simulated_machine(
        epochs in proptest::collection::vec(epoch_strategy(), 1..6),
    ) {
        let mut plain = MemorySystem::new(cfg());
        let plain_vals = drive(&mut plain, &epochs);

        let mut recorded = MemorySystem::new(cfg());
        let mut rec = EventRecorder::new();
        rec.track_range(0, 4 << 10);
        recorded.attach_recorder(rec);
        let recorded_vals = drive(&mut recorded, &epochs);
        let rec = recorded.take_recorder().expect("recorder still attached");

        prop_assert_eq!(plain_vals, recorded_vals);
        prop_assert_eq!(plain.now().ps(), recorded.now().ps());
        prop_assert_eq!(plain.stats(), recorded.stats());
        // ... and the observation is real: every epoch stores 16 words.
        prop_assert!(rec.len() >= epochs.len() * 16);
    }

    #[test]
    fn triage_reproduces_the_plain_ds_campaign_byte_for_byte(
        seed in 0u64..1000,
        budget in 8u64..=32,
        threads in 1usize..=4,
    ) {
        let cfg = CampaignConfig {
            seed,
            budget_states: budget,
            threads,
            registry: Registry::Ds,
            ..CampaignConfig::default()
        };
        let plain = run_campaign(&cfg);
        let triaged = run_triage(&cfg);

        // Outcome-for-outcome and picosecond-for-picosecond identical.
        prop_assert_eq!(&triaged.report.totals, &plain.totals);
        for (a, b) in triaged.report.scenarios.iter().zip(&plain.scenarios) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.outcomes, &b.outcomes, "{}", a.name);
            prop_assert_eq!(a.sim_time_ps_total, b.sim_time_ps_total, "{}", a.name);
            prop_assert_eq!(a.lost_units_total, b.lost_units_total, "{}", a.name);
        }
        // The only difference the recorder is allowed to make is the v6
        // diagnostics block itself.
        let mut stripped = triaged.report.clone();
        prop_assert!(stripped.diagnostics.is_some());
        stripped.diagnostics = None;
        prop_assert_eq!(stripped.canonical_string(), plain.canonical_string());
    }
}

#[test]
fn lossy_dist_triage_documents_are_rerun_and_thread_count_invariant() {
    // The injected-fault plan is part of the deterministic schedule, so
    // triage under `--faults lossy` must stay byte-identical across
    // reruns and worker-thread counts, exactly like the fault-free path.
    let cfg = CampaignConfig {
        seed: 42,
        budget_states: 12,
        threads: 1,
        registry: Registry::Dist,
        faults: FaultProfile::Lossy,
        ..CampaignConfig::default()
    };
    let one = run_triage(&cfg).to_string_pretty();
    let rerun = run_triage(&cfg).to_string_pretty();
    assert_eq!(one, rerun, "rerun must be byte-identical");
    let eight = run_triage(&CampaignConfig {
        threads: 8,
        ..cfg.clone()
    })
    .to_string_pretty();
    assert_eq!(one, eight, "thread count must not leak into the document");
    assert!(one.contains("adcc-triage-report/v1"));
    assert!(one.contains("\"faults\": \"lossy\""));
}
