//! Cross-crate end-to-end contracts: for every scheme, a crash followed by
//! algorithm-directed recovery reproduces the crash-free result.

use adcc::core::abft::{sites as mm_sites, TwoLoopAbft};
use adcc::core::cg::{cg_host, sites as cg_sites, ExtendedCg};
use adcc::core::mc::sites as mc_sites;
use adcc::prelude::*;

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn cg_recovery_equivalent_at_every_instrumented_site() {
    let class = CgClass::TEST;
    let a = class.matrix(71);
    let b = class.rhs(&a);
    let iters = 10;
    let reference = cg_host(&a, &b, iters);
    let cfg = SystemConfig::nvm_only(16 << 10, 64 << 20);

    for phase in [
        cg_sites::PH_AFTER_Q,
        cg_sites::PH_AFTER_Z,
        cg_sites::PH_AFTER_R,
        cg_sites::PH_LINE10,
        cg_sites::PH_ITER_END,
    ] {
        for crash_iter in [2u64, 7] {
            let mut sys = MemorySystem::new(cfg.clone());
            let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, iters);
            let trig = CrashTrigger::AtSite {
                site: CrashSite::new(phase, crash_iter),
                occurrence: 1,
            };
            let mut emu = CrashEmulator::from_system(sys, trig);
            let image = cg
                .run(&mut emu, 0, iters, rho0)
                .crashed()
                .expect("trigger must fire");
            let rec = cg.recover_and_resume(&image, cfg.clone());
            let diff = max_diff(&rec.solution.z, &reference);
            assert!(
                diff < 1e-9,
                "phase {phase} iter {crash_iter}: diverged by {diff}"
            );
            assert!(rec.report.lost_units <= crash_iter + 1);
        }
    }
}

#[test]
fn cg_recovery_equivalent_on_heterogeneous_platform() {
    let class = CgClass::TEST;
    let a = class.matrix(72);
    let b = class.rhs(&a);
    let iters = 8;
    let reference = cg_host(&a, &b, iters);
    let cfg = SystemConfig::heterogeneous(8 << 10, 32 << 10, 64 << 20);

    let mut sys = MemorySystem::new(cfg.clone());
    let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, iters);
    let trig = CrashTrigger::AtSite {
        site: CrashSite::new(cg_sites::PH_LINE10, 5),
        occurrence: 1,
    };
    let mut emu = CrashEmulator::from_system(sys, trig);
    let image = cg.run(&mut emu, 0, iters, rho0).crashed().unwrap();
    let rec = cg.recover_and_resume(&image, cfg);
    assert!(max_diff(&rec.solution.z, &reference) < 1e-9);
}

#[test]
fn abft_recovery_equivalent_at_every_block() {
    let n = 20;
    let k = 5;
    let a = Matrix::random(n, n, 81);
    let b = Matrix::random(n, n, 82);
    let want = a.mul_naive(&b);
    let cfg = SystemConfig::nvm_only(4 << 10, 32 << 20);

    for (phase, max_idx) in [
        (mm_sites::PH_LOOP1, n / k),
        (mm_sites::PH_LOOP2, (n + 1) / k),
    ] {
        for idx in 0..max_idx as u64 {
            let mut sys = MemorySystem::new(cfg.clone());
            let mm = TwoLoopAbft::setup(&mut sys, &a, &b, k);
            let trig = CrashTrigger::AtSite {
                site: CrashSite::new(phase, idx),
                occurrence: 1,
            };
            let mut emu = CrashEmulator::from_system(sys, trig);
            let image = mm.run(&mut emu).crashed().expect("trigger must fire");
            let (sys, rec) = mm.recover_and_resume(&image, cfg.clone());
            let diff = mm.peek_product(&sys).max_abs_diff(&want);
            assert!(
                diff < 1e-10,
                "phase {phase} block {idx}: product off by {diff} ({rec:?})"
            );
        }
    }
}

#[test]
fn mc_selective_recovery_exact_on_heterogeneous_platform() {
    let p = McProblem::generate(36, 128, 91);
    let lookups = 2_000u64;
    let cfg = SystemConfig::heterogeneous(8 << 10, 32 << 10, 16 << 20);

    // Reference.
    let mut sys = MemorySystem::new(cfg.clone());
    let mc = McSim::setup(&mut sys, p.clone(), lookups, 5, McMode::Native);
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    mc.run(&mut emu, 0, lookups).completed().unwrap();
    let want = mc.peek_counts(&emu);

    // Crash + selective recovery.
    let mut sys = MemorySystem::new(cfg.clone());
    let mc = McSim::setup(&mut sys, p, lookups, 5, McMode::Selective { interval: 100 });
    let crash_at = 777u64;
    let trig = CrashTrigger::AtSite {
        site: CrashSite::new(mc_sites::PH_LOOKUP, crash_at),
        occurrence: 1,
    };
    let mut emu = CrashEmulator::from_system(sys, trig);
    let image = mc.run(&mut emu, 0, lookups).crashed().unwrap();
    let rec = mc.recover_and_resume(&image, cfg, crash_at + 1);
    // The paper claims "almost the same result": a counter line naturally
    // evicted between flushes makes NVM newer than the flush snapshot, so
    // replay can double-count a handful of lookups (bounded by one flush
    // interval per line). The exact-restart extension (per-line epochs)
    // removes even this residue — see `McMode::Epoch`.
    for c in 0..5 {
        let diff = (rec.counts[c] as i64 - want[c] as i64).unsigned_abs();
        assert!(
            diff <= 100,
            "type {c}: {} vs {} deviates beyond one flush interval",
            rec.counts[c],
            want[c]
        );
    }
    assert!(rec.resumed_from <= crash_at && rec.resumed_from >= crash_at - 100);
}

#[test]
fn pmem_transactional_cg_recovers_through_undo_log() {
    // Cross-crate: core CG + pmem undo pool + sim crash.
    use adcc::core::cg::variants::run_with_pmem;
    let class = CgClass::TEST;
    let a = class.matrix(73);
    let b = class.rhs(&a);
    let iters = 6;
    let reference = cg_host(&a, &b, iters);
    let cfg = SystemConfig::nvm_only(16 << 10, 64 << 20);
    let mut sys = MemorySystem::new(cfg.clone());
    let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, iters);
    let lines = 3 * (cg.n * 8).div_ceil(64) + 16;
    let mut pool = UndoPool::new(&mut sys, lines);
    let layout = pool.layout();
    let trig = CrashTrigger::AtSite {
        site: CrashSite::new(adcc::core::cg::sites::PH_ITER_END, 3),
        occurrence: 1,
    };
    let mut emu = CrashEmulator::from_system(sys, trig);
    let image = run_with_pmem(&mut emu, &cg, rho0, &mut pool)
        .crashed()
        .unwrap();
    let mut sys2 = MemorySystem::from_image(cfg, &image);
    UndoPool::recover(layout, &mut sys2);
    let done = cg.iter_cell.get(&mut sys2) as usize;
    let mut rho = if done == 0 {
        rho0
    } else {
        cg.rho_cell.get(&mut sys2)
    };
    let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
    for _ in done..iters {
        rho = cg.step(&mut emu2, rho);
    }
    assert!(max_diff(&cg.peek_solution(&emu2), &reference) < 1e-9);
}
