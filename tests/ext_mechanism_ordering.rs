//! Integration: the paper's mechanism cost ordering — native <= algo <
//! checkpoint < pmem — must hold for every extension kernel, and every
//! mechanism must produce the same answer.

use adcc::core::{jacobi, lu, stencil};
use adcc::prelude::*;
use adcc_ckpt::manager::CkptManager;

fn cfg() -> SystemConfig {
    SystemConfig::nvm_only(8 << 10, 64 << 20)
}

#[test]
fn jacobi_mechanism_ordering_and_agreement() {
    let class = CgClass::TEST;
    let a = class.matrix(201);
    let b = class.rhs(&a);
    let iters = 6;
    let want = jacobi_host(&a, &b, iters);
    let max_diff = |xs: &[f64]| {
        xs.iter()
            .zip(&want)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
    };

    // Native.
    let mut sys = MemorySystem::new(cfg());
    let jac = PlainJacobi::setup(&mut sys, &a, &b, iters);
    let t0 = sys.now();
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    jacobi::variants::run_native(&mut emu, &jac)
        .completed()
        .unwrap();
    let native = (emu.now() - t0).ps();
    assert!(max_diff(&jac.peek_solution(&emu)) < 1e-12);

    // Algorithm-directed.
    let mut sys = MemorySystem::new(cfg());
    let ext = ExtendedJacobi::setup(&mut sys, &a, &b, iters);
    let t0 = sys.now();
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    ext.run(&mut emu, 0, iters).completed().unwrap();
    let algo = (emu.now() - t0).ps();
    assert!(max_diff(&ext.peek_solution(&emu)) < 1e-12);

    // Per-iteration checkpoint.
    let mut sys = MemorySystem::new(cfg());
    let jac = PlainJacobi::setup(&mut sys, &a, &b, iters);
    let mut mgr = CkptManager::new_nvm(&mut sys, jac.ckpt_regions(), false);
    let t0 = sys.now();
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    jacobi::variants::run_with_ckpt(&mut emu, &jac, &mut mgr)
        .completed()
        .unwrap();
    let ckpt = (emu.now() - t0).ps();
    assert!(max_diff(&jac.peek_solution(&emu)) < 1e-12);

    // Per-iteration undo-log transaction.
    let mut sys = MemorySystem::new(cfg());
    let jac = PlainJacobi::setup(&mut sys, &a, &b, iters);
    let lines = (jac.n * 8).div_ceil(64) + 16;
    let mut pool = UndoPool::new(&mut sys, lines);
    let t0 = sys.now();
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    jacobi::variants::run_with_pmem(&mut emu, &jac, &mut pool)
        .completed()
        .unwrap();
    let pmem = (emu.now() - t0).ps();
    assert!(max_diff(&jac.peek_solution(&emu)) < 1e-12);

    assert!(algo < ckpt, "algo {algo} !< ckpt {ckpt}");
    assert!(ckpt < pmem, "ckpt {ckpt} !< pmem {pmem}");
    assert!(native <= algo, "native {native} !<= algo {algo}");
}

#[test]
fn lu_mechanism_ordering_and_agreement() {
    let n = 16;
    let bk = 4;
    let a = dominant_matrix(n, 202);
    let want = lu_host(&a);

    let time_of = |which: &str| -> u64 {
        let mut sys = MemorySystem::new(cfg());
        let luf = ChecksumLu::setup(&mut sys, &a, bk);
        match which {
            "native" => {
                let t0 = sys.now();
                let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
                lu::variants::run_native(&mut emu, &luf)
                    .completed()
                    .unwrap();
                assert!(luf.peek_factor(&emu).max_abs_diff(&want) < 1e-10);
                (emu.now() - t0).ps()
            }
            "algo" => {
                let t0 = sys.now();
                let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
                luf.run(&mut emu, 0).completed().unwrap();
                assert!(luf.peek_factor(&emu).max_abs_diff(&want) < 1e-10);
                (emu.now() - t0).ps()
            }
            "ckpt" => {
                let mut mgr =
                    CkptManager::new_nvm(&mut sys, lu::variants::lu_ckpt_regions(&luf), false);
                let t0 = sys.now();
                let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
                lu::variants::run_with_ckpt(&mut emu, &luf, &mut mgr)
                    .completed()
                    .unwrap();
                assert!(luf.peek_factor(&emu).max_abs_diff(&want) < 1e-10);
                (emu.now() - t0).ps()
            }
            _ => {
                let lines = bk * (n + 1) + 32;
                let mut pool = UndoPool::new(&mut sys, lines);
                let t0 = sys.now();
                let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
                lu::variants::run_with_pmem(&mut emu, &luf, &mut pool)
                    .completed()
                    .unwrap();
                assert!(luf.peek_factor(&emu).max_abs_diff(&want) < 1e-10);
                (emu.now() - t0).ps()
            }
        }
    };

    let native = time_of("native");
    let algo = time_of("algo");
    let ckpt = time_of("ckpt");
    let pmem = time_of("pmem");
    assert!(native <= algo, "native {native} !<= algo {algo}");
    assert!(algo < ckpt, "algo {algo} !< ckpt {ckpt}");
    assert!(ckpt < pmem, "ckpt {ckpt} !< pmem {pmem}");
}

#[test]
fn stencil_mechanism_ordering_and_agreement() {
    let (g, sweeps) = (12, 6);
    let want = heat_host(g, g, sweeps);
    let max_diff = |xs: &[f64]| {
        xs.iter()
            .zip(&want)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
    };

    let mut sys = MemorySystem::new(cfg());
    let st = PlainStencil::setup(&mut sys, g, g, sweeps);
    let t0 = sys.now();
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    stencil::variants::run_native(&mut emu, &st)
        .completed()
        .unwrap();
    let native = (emu.now() - t0).ps();
    assert!(max_diff(&st.peek_grid(&emu, sweeps)) < 1e-12);

    let mut sys = MemorySystem::new(cfg());
    let ext = ExtendedStencil::setup(&mut sys, g, g, sweeps, 3, 4);
    let t0 = sys.now();
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    ext.run(&mut emu, 0, sweeps).completed().unwrap();
    let algo = (emu.now() - t0).ps();
    assert!(max_diff(&ext.peek_grid(&emu, sweeps)) < 1e-12);

    let mut sys = MemorySystem::new(cfg());
    let st = PlainStencil::setup(&mut sys, g, g, sweeps);
    let mut mgr = CkptManager::new_nvm(&mut sys, st.ckpt_regions(), false);
    let t0 = sys.now();
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    stencil::variants::run_with_ckpt(&mut emu, &st, &mut mgr)
        .completed()
        .unwrap();
    let ckpt = (emu.now() - t0).ps();
    assert!(max_diff(&st.peek_grid(&emu, sweeps)) < 1e-12);

    let mut sys = MemorySystem::new(cfg());
    let st = PlainStencil::setup(&mut sys, g, g, sweeps);
    let lines = g * g / 8 + 32;
    let mut pool = UndoPool::new(&mut sys, lines);
    let t0 = sys.now();
    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
    stencil::variants::run_with_pmem(&mut emu, &st, &mut pool)
        .completed()
        .unwrap();
    let pmem = (emu.now() - t0).ps();
    assert!(max_diff(&st.peek_grid(&emu, sweeps)) < 1e-12);

    assert!(algo < ckpt, "algo {algo} !< ckpt {ckpt}");
    assert!(ckpt < pmem, "ckpt {ckpt} !< pmem {pmem}");
    let _ = native;
}

#[test]
fn bicgstab_agrees_with_cg_on_spd_systems() {
    // Cross-solver agreement: on an SPD system both Krylov methods must
    // approach the same solution (the ones vector).
    let class = CgClass::TEST;
    let a = class.matrix(203);
    let b = class.rhs(&a);
    let bi = bicgstab_host(&a, &b, 25);
    let cg = adcc::core::cg::cg_host(&a, &b, 25);
    for (x, y) in bi.iter().zip(&cg) {
        assert!((x - 1.0).abs() < 1e-6, "bicgstab off: {x}");
        assert!((y - 1.0).abs() < 1e-6, "cg off: {y}");
    }
}
