//! Guard against example rot: every `examples/*.rs` must compile, and the
//! set of examples must stay in sync with this list (so a renamed or
//! deleted example fails loudly here instead of silently dropping out of
//! the docs).
//!
//! The compile check shells out to the same `cargo` running this test and
//! shares its target directory, so in CI (which has already built the
//! workspace) it is nearly free.

use std::path::Path;
use std::process::Command;

const EXPECTED_EXAMPLES: &[&str] = &[
    "abft_gemm",
    "bicgstab_solver",
    "cg_solver",
    "checkpoint_strategies",
    "crash_campaign",
    "crash_recovery_demo",
    "heat_stencil",
    "lu_factorization",
    "mc_transport",
    "quickstart",
];

fn manifest_dir() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn example_listing_is_in_sync() {
    let mut on_disk: Vec<String> = std::fs::read_dir(manifest_dir().join("examples"))
        .expect("examples/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| {
            p.file_stem()
                .expect("example has a file stem")
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    on_disk.sort();
    assert_eq!(
        on_disk, EXPECTED_EXAMPLES,
        "examples/ directory and EXPECTED_EXAMPLES diverged; update both this \
         list and any docs referencing the example set"
    );
}

#[test]
fn all_examples_compile() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir())
        .output()
        .expect("cargo is runnable from a test");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
