//! Cross-crate invariants over the seven test cases: the cost ordering
//! the paper's evaluation is built on must hold at any scale.

use adcc::harness::fig10::McDims;
use adcc::harness::{fig13, fig4, fig8};
use adcc::prelude::*;

#[test]
fn cg_overhead_ordering() {
    let class = CgClass::TEST;
    let native = fig4::run_case(Case::Native, class, 1).loop_ps;
    let algo = fig4::run_case(Case::AlgoNvm, class, 1).loop_ps;
    let ckpt = fig4::run_case(Case::CkptNvm, class, 1).loop_ps;
    let hdd = fig4::run_case(Case::CkptHdd, class, 1).loop_ps;
    let pmem = fig4::run_case(Case::PmemNvm, class, 1).loop_ps;
    assert!(native <= algo, "native {native} !<= algo {algo}");
    assert!(algo < ckpt, "algo {algo} !< ckpt {ckpt}");
    assert!(ckpt < pmem, "ckpt {ckpt} !< pmem {pmem}");
    assert!(ckpt < hdd, "ckpt {ckpt} !< hdd {hdd}");
}

#[test]
fn cg_hetero_checkpoint_costs_more_than_nvm_checkpoint_relatively() {
    let class = CgClass::TEST;
    let native_nvm = fig4::run_case(Case::Native, class, 2).loop_ps as f64;
    let ckpt_nvm = fig4::run_case(Case::CkptNvm, class, 2).loop_ps as f64;
    // Hetero normalized against its own native.
    let hetero_pair = {
        let a = class.matrix(2);
        let b = class.rhs(&a);
        let cfg = Platform::Hetero.cg_config(32 << 20);
        let mut sys = MemorySystem::new(cfg);
        let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, 15);
        let t0 = sys.now();
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        adcc::core::cg::variants::run_native(&mut emu, &cg, rho0)
            .completed()
            .unwrap();
        let native_het = (emu.now() - t0).ps() as f64;
        let ckpt_het = fig4::run_case(Case::CkptNvmDram, class, 2).loop_ps as f64;
        (native_het, ckpt_het)
    };
    let overhead_nvm = ckpt_nvm / native_nvm - 1.0;
    let overhead_het = hetero_pair.1 / hetero_pair.0 - 1.0;
    assert!(
        overhead_het > overhead_nvm,
        "hetero ckpt {overhead_het:.3} should exceed NVM-only ckpt {overhead_nvm:.3}"
    );
}

#[test]
fn mm_overhead_ordering() {
    let (n, k) = (32, 8);
    let native = fig8::run_case(Case::Native, n, k, 1);
    let ckpt = fig8::run_case(Case::CkptNvm, n, k, 1);
    let pmem = fig8::run_case(Case::PmemNvm, n, k, 1);
    assert!(ckpt > native);
    assert!(pmem > ckpt);
}

#[test]
fn mc_overhead_ordering() {
    let dims = McDims {
        nuclides: 36,
        grid_points: 256,
        lookups: 2_000,
    };
    let native = fig13::run_case(Case::Native, dims, 1);
    let algo = fig13::run_case(Case::AlgoNvm, dims, 1);
    let hdd = fig13::run_case(Case::CkptHdd, dims, 1);
    assert!(algo >= native);
    assert!(
        (algo as f64) < native as f64 * 1.10,
        "selective flushing must stay cheap: {algo} vs {native}"
    );
    assert!(hdd > 2 * native, "HDD checkpoints at 0.01% must be costly");
}

#[test]
fn all_seven_cases_have_distinct_platform_assignment() {
    let hetero: Vec<_> = Case::ALL
        .iter()
        .filter(|c| c.platform() == Platform::Hetero)
        .collect();
    assert_eq!(hetero.len(), 2, "cases 4 and 7 run on the hetero platform");
}
