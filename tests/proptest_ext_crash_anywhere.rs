//! Property tests for the extension kernels (DESIGN.md §5a): a crash at
//! an arbitrary point must always be recoverable, and recovery must
//! reproduce the crash-free result — for Jacobi, checksum-LU and the heat
//! stencil, across random cache geometries.

use proptest::prelude::*;

use adcc::prelude::*;

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Extended Jacobi: crash anywhere, recover, match the host reference.
    #[test]
    fn jacobi_recovers_from_any_crash_point(
        accesses in 5_000u64..200_000,
        cache_kb in 2usize..64,
        seed in 0u64..1000,
    ) {
        let class = CgClass::TEST;
        let a = class.matrix(seed);
        let b = class.rhs(&a);
        let iters = 8;
        let reference = jacobi_host(&a, &b, iters);
        let cfg = SystemConfig::nvm_only(cache_kb << 10, 64 << 20);

        let mut sys = MemorySystem::new(cfg.clone());
        let jac = ExtendedJacobi::setup(&mut sys, &a, &b, iters);
        let trig = CrashTrigger::AtAccessCount(accesses);
        let mut emu = CrashEmulator::from_system(sys, trig);
        match jac.run(&mut emu, 0, iters) {
            RunOutcome::Completed(()) => {
                prop_assert!(max_diff(&jac.peek_solution(&emu), &reference) < 1e-10);
            }
            RunOutcome::Crashed(image) => {
                let rec = jac.recover_and_resume(&image, cfg);
                prop_assert!(
                    max_diff(&rec.solution, &reference) < 1e-9,
                    "recovered iterate off by {}",
                    max_diff(&rec.solution, &reference)
                );
                prop_assert!(rec.report.lost_units <= iters as u64);
            }
        }
    }

    /// Checksum-LU: crash anywhere; the recovered factor is the host
    /// factor and reconstructs the input.
    #[test]
    fn lu_recovers_from_any_crash_point(
        accesses in 2_000u64..120_000,
        cache_kb in 2usize..32,
        seed in 0u64..1000,
        bk in 2usize..6,
    ) {
        let n = 20;
        let a = dominant_matrix(n, seed);
        let want = lu_host(&a);
        let cfg = SystemConfig::nvm_only(cache_kb << 10, 32 << 20);

        let mut sys = MemorySystem::new(cfg.clone());
        let lu = ChecksumLu::setup(&mut sys, &a, bk);
        let trig = CrashTrigger::AtAccessCount(accesses);
        let mut emu = CrashEmulator::from_system(sys, trig);
        match lu.run(&mut emu, 0) {
            RunOutcome::Completed(()) => {
                prop_assert!(lu.peek_factor(&emu).max_abs_diff(&want) < 1e-10);
            }
            RunOutcome::Crashed(image) => {
                let rec = lu.recover_and_resume(&image, cfg);
                let diff = rec.factor.max_abs_diff(&want);
                prop_assert!(diff < 1e-10, "recovered factor off by {diff}");
                prop_assert!(rec.report.lost_units as usize <= lu.blocks());
                // And it is a genuine factorization of the input.
                let back = lu_reconstruct(&rec.factor);
                prop_assert!(back.max_abs_diff(&a) < 1e-9);
            }
        }
    }

    /// Extended BiCGSTAB: crash anywhere, recover, match the host
    /// reference (two-invariant detection).
    #[test]
    fn bicgstab_recovers_from_any_crash_point(
        accesses in 5_000u64..250_000,
        cache_kb in 2usize..64,
        seed in 0u64..1000,
    ) {
        let class = CgClass::TEST;
        let a = class.matrix(seed);
        let b = class.rhs(&a);
        let iters = 8;
        let reference = bicgstab_host(&a, &b, iters);
        let rho0: f64 = b.iter().map(|v| v * v).sum();
        let cfg = SystemConfig::nvm_only(cache_kb << 10, 64 << 20);

        let mut sys = MemorySystem::new(cfg.clone());
        let bi = ExtendedBiCgStab::setup(&mut sys, &a, &b, iters);
        let trig = CrashTrigger::AtAccessCount(accesses);
        let mut emu = CrashEmulator::from_system(sys, trig);
        match bi.run(&mut emu, 0, iters, rho0) {
            RunOutcome::Completed(_) => {
                prop_assert!(max_diff(&bi.peek_solution(&emu), &reference) < 1e-9);
            }
            RunOutcome::Crashed(image) => {
                let rec = bi.recover_and_resume(&image, cfg);
                prop_assert!(
                    max_diff(&rec.solution, &reference) < 1e-8,
                    "recovered iterate off by {}",
                    max_diff(&rec.solution, &reference)
                );
                prop_assert!(rec.report.lost_units <= iters as u64);
            }
        }
    }

    /// Heat stencil (exact verification): crash anywhere; the recovered
    /// grid is bitwise the crash-free grid.
    #[test]
    fn stencil_recovers_from_any_crash_point(
        accesses in 2_000u64..150_000,
        cache_kb in 2usize..32,
        window in 3usize..5,
    ) {
        let (rows, cols, sweeps) = (14, 14, 9);
        let reference = heat_host(rows, cols, sweeps);
        let cfg = SystemConfig::nvm_only(cache_kb << 10, 64 << 20);

        let mut sys = MemorySystem::new(cfg.clone());
        let st = ExtendedStencil::setup(&mut sys, rows, cols, sweeps, window, 4);
        let trig = CrashTrigger::AtAccessCount(accesses);
        let mut emu = CrashEmulator::from_system(sys, trig);
        match st.run(&mut emu, 0, sweeps) {
            RunOutcome::Completed(()) => {
                prop_assert!(max_diff(&st.peek_grid(&emu, sweeps), &reference) == 0.0);
            }
            RunOutcome::Crashed(image) => {
                let rec = st.recover_and_resume(&image, cfg);
                prop_assert!(
                    max_diff(&rec.solution, &reference) == 0.0,
                    "exact-mode recovery must be bitwise, off by {}",
                    max_diff(&rec.solution, &reference)
                );
                prop_assert!(rec.report.lost_units <= sweeps as u64);
            }
        }
    }
}
