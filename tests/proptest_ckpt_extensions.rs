//! Property tests for the extended checkpoint family: incremental
//! checkpoints must be observationally identical to full checkpoints
//! under arbitrary update/checkpoint interleavings, and diskless parity
//! must reconstruct exactly for any payload.

use proptest::prelude::*;

use adcc::prelude::*;

/// A scripted step for the incremental-equivalence test.
#[derive(Debug, Clone)]
enum Step {
    /// Write `value` at `index` (and report it dirty).
    Write { index: usize, value: f64 },
    /// Take a checkpoint.
    Checkpoint,
}

fn step_strategy(len: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..len, any::<f64>().prop_filter("finite", |v| v.is_finite()))
            .prop_map(|(index, value)| Step::Write { index, value }),
        1 => Just(Step::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any interleaving of writes and checkpoints, restoring the
    /// incremental checkpoint yields exactly the state at its last
    /// checkpoint — the same answer a full checkpoint gives.
    #[test]
    fn incremental_equals_full_for_any_script(
        script in prop::collection::vec(step_strategy(64), 1..40),
        page_pow in 6u32..9, // 64..256-byte pages
    ) {
        let cfg = SystemConfig::nvm_only(4 << 10, 4 << 20);
        let page = 1usize << page_pow;

        // Incremental system.
        let mut s1 = MemorySystem::new(cfg.clone());
        let x1 = PArray::<f64>::alloc_nvm(&mut s1, 64);
        let mut inc = IncrementalCheckpoint::new(
            &mut s1, vec![(x1.base(), x1.byte_len())], page, false,
        );

        // Full-checkpoint reference system.
        let mut s2 = MemorySystem::new(cfg.clone());
        let x2 = PArray::<f64>::alloc_nvm(&mut s2, 64);
        let regions2 = [(x2.base(), x2.byte_len())];
        let mut full = MemCheckpoint::new(&mut s2, x2.byte_len(), false);

        let mut any_ckpt = false;
        for step in &script {
            match step {
                Step::Write { index, value } => {
                    x1.set(&mut s1, *index, *value);
                    inc.mark_dirty(x1.addr(*index), 8);
                    x2.set(&mut s2, *index, *value);
                }
                Step::Checkpoint => {
                    inc.checkpoint(&mut s1);
                    full.checkpoint(&mut s2, &regions2);
                    any_ckpt = true;
                }
            }
        }
        prop_assume!(any_ckpt);

        // Diverge the live state, then restore both.
        x1.fill(&mut s1, f64::NAN);
        x2.fill(&mut s2, f64::NAN);
        let seq1 = inc.restore(&mut s1);
        let seq2 = full.restore(&mut s2, &regions2);
        prop_assert!(seq1.is_some() && seq2.is_some());
        let v1 = x1.load_vec(&mut s1);
        let v2 = x2.load_vec(&mut s2);
        for (i, (a, b)) in v1.iter().zip(&v2).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "element {i}: incremental {a} vs full {b}"
            );
        }
    }

    /// A crash between checkpoints never loses the last completed
    /// incremental checkpoint (even though dirty tracking is volatile).
    #[test]
    fn incremental_survives_crash_after_any_script(
        script in prop::collection::vec(step_strategy(32), 1..30),
    ) {
        let cfg = SystemConfig::nvm_only(4 << 10, 4 << 20);
        let mut sys = MemorySystem::new(cfg.clone());
        let x = PArray::<f64>::alloc_nvm(&mut sys, 32);
        let regions = vec![(x.base(), x.byte_len())];
        let mut inc = IncrementalCheckpoint::new(&mut sys, regions.clone(), 128, false);

        let mut at_last_ckpt: Option<Vec<f64>> = None;
        let mut shadow = vec![0.0f64; 32];
        for step in &script {
            match step {
                Step::Write { index, value } => {
                    x.set(&mut sys, *index, *value);
                    inc.mark_dirty(x.addr(*index), 8);
                    shadow[*index] = *value;
                }
                Step::Checkpoint => {
                    inc.checkpoint(&mut sys);
                    at_last_ckpt = Some(shadow.clone());
                }
            }
        }
        prop_assume!(at_last_ckpt.is_some());
        let layout = inc.layout();

        let image = sys.crash();
        let mut sys2 = MemorySystem::from_image(cfg, &image);
        let inc2 = IncrementalCheckpoint::attach(layout, regions, false);
        prop_assert!(inc2.restore(&mut sys2).is_some());
        let got = x.load_vec(&mut sys2);
        let want = at_last_ckpt.unwrap();
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            prop_assert!(a.to_bits() == b.to_bits(), "element {i}: {a} vs {b}");
        }
    }

    /// Diskless N+1 parity reconstructs rank 0 exactly for any payload and
    /// any group size.
    #[test]
    fn diskless_parity_reconstructs_any_payload(
        values in prop::collection::vec(
            any::<f64>().prop_filter("finite", |v| v.is_finite()), 32..=32),
        ranks in 2usize..8,
    ) {
        let cfg = SystemConfig::nvm_only(4 << 10, 4 << 20);
        let mut sys = MemorySystem::new(cfg.clone());
        let x = PArray::<f64>::alloc_nvm(&mut sys, 32);
        x.store_slice(&mut sys, &values);
        let regions = [(x.base(), x.byte_len())];
        let mut parity = ParityNode::new();
        let mut dl = DisklessCheckpoint::new(ranks, x.byte_len(), RemoteTiming::burst_buffer());
        dl.checkpoint(&mut sys, &regions, &mut parity);

        let mut fresh = MemorySystem::new(cfg);
        let _shadow = PArray::<f64>::alloc_nvm(&mut fresh, 32);
        let got = DisklessCheckpoint::reconstruct_rank0(
            &mut fresh, &regions, ranks, RemoteTiming::burst_buffer(), &parity,
        );
        prop_assert_eq!(got, Some(1));
        let back = x.load_vec(&mut fresh);
        for (i, (a, b)) in back.iter().zip(&values).enumerate() {
            prop_assert!(a.to_bits() == b.to_bits(), "element {i}: {a} vs {b}");
        }
    }
}
