//! Smoke tests over the figure runners: each produces a well-formed table
//! whose key qualitative claim holds at reduced scale. (Full-scale tables
//! are produced by `repro <figN>`; see EXPERIMENTS.md.)

use adcc::harness::fig10::{compare, McDims};
use adcc::harness::{ablation, fig3};
use adcc::prelude::*;

#[test]
fn fig3_small_class_loses_all_iterations() {
    // Class S fits in the volatile caches: the paper's "lose all 15".
    let row = fig3::run_class(CgClass::S, 3);
    assert_eq!(row.lost_iterations, 15);
    assert!(row.detect_norm > 0.0);
    assert!(row.resume_norm > 0.0);
}

#[test]
fn fig10_fig12_contrast_holds() {
    let dims = McDims {
        nuclides: 36,
        grid_points: 256,
        lookups: 6_000,
    };
    let basic = compare(dims, McMode::Basic, 9);
    let selective = compare(
        dims,
        McMode::Selective {
            interval: dims.interval(),
        },
        9,
    );
    // Fig. 10: basic restart visibly wrong; Fig. 12: selective near-exact.
    assert!(basic.max_deviation_pp() > 0.5, "basic must deviate visibly");
    assert!(
        selective.max_deviation_pp() < 0.2,
        "selective must be near-exact"
    );
}

#[test]
fn ablation_tables_render() {
    let t = ablation::undo_vs_redo();
    let md = t.to_markdown();
    assert!(md.contains("undo log"));
    assert!(md.contains("redo log"));
    let csv = t.to_csv();
    assert!(csv.lines().count() >= 3);
}

#[test]
fn ablation_rank_tradeoff_shape() {
    // Smaller k => more temporal matrices (memory) and cheaper per-block
    // recomputation.
    let t = ablation::mm_rank_tradeoff(Scale::Quick);
    assert_eq!(t.rows.len(), 3);
    let mems: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
    assert!(
        mems[0] >= mems[1] && mems[1] >= mems[2],
        "temporal memory must fall as k grows: {mems:?}"
    );
}

#[test]
fn epoch_extension_beats_selective_under_small_caches() {
    // The README's claim about the exact-restart extension, end to end.
    let p = McProblem::generate(36, 128, 77);
    let lookups = 3_000u64;
    let cfg = SystemConfig::heterogeneous(4 << 10, 16 << 10, 16 << 20);

    let reference = {
        let mut sys = MemorySystem::new(cfg.clone());
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 4, McMode::Native);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        mc.run(&mut emu, 0, lookups).completed().unwrap();
        mc.peek_counts(&emu)
    };

    let mut sys = MemorySystem::new(cfg.clone());
    let mc = McSim::setup(&mut sys, p, lookups, 4, McMode::Epoch { interval: 100 });
    let crash_at = 1_100u64;
    let trig = CrashTrigger::AtSite {
        site: CrashSite::new(adcc::core::mc::sites::PH_LOOKUP, crash_at),
        occurrence: 1,
    };
    let mut emu = CrashEmulator::from_system(sys, trig);
    let image = mc.run(&mut emu, 0, lookups).crashed().unwrap();
    let rec = mc.recover_and_resume(&image, cfg, crash_at + 1);
    assert_eq!(rec.counts, reference, "epoch recovery is exact");
}
