//! # adcc-ds — persistent data-structure workloads under crash injection
//!
//! Every crash point the campaign injected before this crate landed in a
//! numeric kernel. The paper's crash-consistence argument also rests on
//! pointer-based persistent structures — where store/flush-ordering bugs
//! hide in allocator metadata and log appends, not in residual vectors.
//! This crate provides that second scenario universe:
//!
//! * [`alloc::PAlloc`] — a Makalu/llfree-style free-list allocator over
//!   simulated NVM whose metadata updates (free-list head, per-block link
//!   words) are undo-logged through
//!   [`UndoPool::tx_add_range_meta`](adcc_pmem::undo::UndoPool::tx_add_range_meta),
//!   or left unprotected for the baseline variants.
//! * [`detect::Checkpoint`] and [`detect::OpTable`] — the recoverable
//!   checkpoint + compare-and-swap primitives (the Memento idiom): a
//!   two-slot sequence-tagged value cell whose `store` is crash-atomic,
//!   and a per-client announce/complete table that lets recovery *detect*
//!   exactly which operation was in flight.
//! * [`queue::PQueue`] — a persistent MSC-style linked queue on allocator
//!   blocks; [`hash::PHash`] — a persistent open-addressing hash table.
//! * [`ops::OpStream`] — a seeded multi-client op-stream generator
//!   (skewed keys, mixed put/get/delete, deterministic per seed).
//! * [`workload::Workload`] — the campaign-facing driver: applies the
//!   stream with crash polls *inside* operations (including between the
//!   allocator's two metadata writes), and
//!   [`workload::recover_verify_resume`] — recovery that audits the
//!   surviving structure, replays it against the op-stream prefix, and
//!   resumes to completion.
//! * [`replay::host_queue`] / [`replay::host_hash`] — the host-side
//!   linearizable-replay oracle recovery is checked against.
//!
//! Every path is a pure function of the configuration seed, so ds trials
//! carry the same byte-identical replay guarantee as the kernel and dist
//! registries.

#![deny(missing_docs)]

pub mod alloc;
pub mod detect;
pub mod hash;
pub mod ops;
pub mod queue;
pub mod replay;
pub mod workload;

pub use alloc::{AllocatorLayout, PAlloc};
pub use detect::{Checkpoint, OpTable};
pub use hash::PHash;
pub use ops::{Op, OpKind, OpStream, OpStreamCfg};
pub use queue::PQueue;
pub use workload::{
    recover_verify_resume, DsLayout, DsRecovery, Protection, Structure, Workload, WorkloadCfg,
};

/// Free-list terminator / "no block" marker.
pub const NONE_BLOCK: u64 = u64::MAX;

/// Link-word marker for a block that is allocated (off the free list).
/// A free-list walk that runs into this value has found leaked metadata.
pub const IN_USE: u64 = u64::MAX - 1;

/// Crash-site phases polled inside ds operations.
pub mod sites {
    /// After the per-client announce persist, before the operation body.
    pub const PH_DS_PREP: u32 = 60;
    /// Between the allocator's two metadata writes (free-list head unlink
    /// and the block's link-word mark) — reached by access-grain triggers.
    pub const PH_DS_ALLOC: u32 = 61;
    /// Mid-mutation: payload written, structure links not yet complete.
    pub const PH_DS_MUT: u32 = 62;
    /// After the operation committed (transaction commit or epoch sync).
    pub const PH_DS_COMMIT: u32 = 63;
}
