//! A crash-consistent persistent free-list allocator (Makalu/llfree
//! style): fixed-size line-aligned blocks, a persisted free-list head,
//! and per-block link words kept in a separate metadata array.
//!
//! Every metadata update is two one-word writes on two different lines
//! (head + link word), exposed as a two-phase API so the workload driver
//! can place a crash poll *between* them — the ordering window where
//! unprotected allocators leak or double-use blocks. Under the undo-logged
//! protocol each phase snapshots its line first via
//! [`UndoPool::tx_add_range_meta`], so recovery rolls the metadata back to
//! the pre-operation state exactly.
//!
//! A link word of an allocated block holds [`IN_USE`]; a free-list walk
//! that reaches one has found leaked metadata, which is how the recovery
//! audit turns unflushed-allocator bugs into *detected* dirt instead of
//! silent corruption.

use adcc_pmem::undo::UndoPool;
use adcc_sim::line::LINE_SIZE;
use adcc_sim::parray::PArray;
use adcc_sim::system::MemorySystem;

use crate::{IN_USE, NONE_BLOCK};

/// Addresses recovery needs to re-attach to an allocator found in an NVM
/// image.
#[derive(Debug, Clone, Copy)]
pub struct AllocatorLayout {
    /// Head line base (word 0 = head index, word 1 = last-update seq tag).
    pub head_base: u64,
    /// Per-block link-word array base.
    pub next_base: u64,
    /// Block arena base (line-aligned; block `b` is at `arena_base + 64 b`).
    pub arena_base: u64,
    /// Block count.
    pub blocks: u64,
}

/// The free-list allocator handle.
#[derive(Clone)]
pub struct PAlloc {
    /// One line: word 0 = head block index (or [`NONE_BLOCK`]), word 1 =
    /// sequence tag of the last metadata update (leak detection).
    head: PArray<u64>,
    /// One link word per block: next free block, [`NONE_BLOCK`] at the
    /// tail, [`IN_USE`] while allocated.
    next: PArray<u64>,
    arena_base: u64,
    blocks: u64,
}

impl PAlloc {
    /// Allocate and initialize an allocator with `blocks` one-line blocks,
    /// all free, chained in ascending order.
    pub fn new(sys: &mut MemorySystem, blocks: u64) -> Self {
        let head = PArray::<u64>::alloc_nvm(sys, 8);
        let next = PArray::<u64>::alloc_nvm(sys, blocks as usize);
        let arena_base = sys.alloc_nvm(blocks as usize * LINE_SIZE);
        let a = PAlloc {
            head,
            next,
            arena_base,
            blocks,
        };
        a.reinit(sys);
        a
    }

    /// Re-attach to an allocator found in an NVM image.
    pub fn attach(layout: AllocatorLayout) -> Self {
        PAlloc {
            head: PArray::new(layout.head_base, 8),
            next: PArray::new(layout.next_base, layout.blocks as usize),
            arena_base: layout.arena_base,
            blocks: layout.blocks,
        }
    }

    /// The persistent layout, for post-crash re-attachment.
    pub fn layout(&self) -> AllocatorLayout {
        AllocatorLayout {
            head_base: self.head.base(),
            next_base: self.next.base(),
            arena_base: self.arena_base,
            blocks: self.blocks,
        }
    }

    /// Reset all metadata to the initial all-free chain and persist it —
    /// initialization and rebuild-from-scratch recovery share this path.
    pub fn reinit(&self, sys: &mut MemorySystem) {
        for b in 0..self.blocks {
            let link = if b + 1 < self.blocks {
                b + 1
            } else {
                NONE_BLOCK
            };
            self.next.set(sys, b as usize, link);
        }
        self.head.set(sys, 0, 0);
        self.head.set(sys, 1, 0);
        self.next.persist_all(sys);
        // Seeded mutant for the analyzer's mutation suite: skip the
        // ordered head persist, leaving the hottest metadata line dirty
        // when the fence retires (an unpersisted-store window).
        #[cfg(not(feature = "mutant-alloc-head"))]
        self.head.persist_all(sys);
        sys.sfence();
    }

    /// Block count.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Payload address of block `b` (one full line).
    pub fn block_addr(&self, b: u64) -> u64 {
        self.arena_base + b * LINE_SIZE as u64
    }

    /// The head line's address (the allocator's hottest metadata line).
    pub fn head_addr(&self) -> u64 {
        self.head.addr(0)
    }

    /// The link word address for block `b`.
    pub fn next_addr(&self, b: u64) -> u64 {
        self.next.addr(b as usize)
    }

    /// Allocation phase 1: pop the head of the free list (snapshotting the
    /// head line first when undo-logged) and tag the update with `seq`.
    /// Returns the unlinked block, or `None` when exhausted. The caller
    /// must follow with [`mark_in_use`](Self::mark_in_use); the gap
    /// between the two is a legitimate crash point.
    pub fn unlink_free(
        &self,
        sys: &mut MemorySystem,
        pool: Option<&mut UndoPool>,
        seq: u64,
    ) -> Option<u64> {
        let b = self.head.get(sys, 0);
        if b == NONE_BLOCK {
            return None;
        }
        let succ = self.next.get(sys, b as usize);
        if let Some(pool) = pool {
            pool.tx_add_range_meta(sys, self.head.addr(0), 16);
        }
        self.head.set(sys, 0, succ);
        self.head.set(sys, 1, seq);
        Some(b)
    }

    /// Allocation phase 2: stamp block `b`'s link word [`IN_USE`].
    pub fn mark_in_use(&self, sys: &mut MemorySystem, pool: Option<&mut UndoPool>, b: u64) {
        if let Some(pool) = pool {
            pool.tx_add_range_meta(sys, self.next.addr(b as usize), 8);
        }
        self.next.set(sys, b as usize, IN_USE);
    }

    /// Free phase 1: point block `b`'s link word at the current head.
    /// The caller must follow with [`push_free`](Self::push_free).
    pub fn stage_free(&self, sys: &mut MemorySystem, pool: Option<&mut UndoPool>, b: u64) {
        let head = self.head.get(sys, 0);
        if let Some(pool) = pool {
            pool.tx_add_range_meta(sys, self.next.addr(b as usize), 8);
        }
        self.next.set(sys, b as usize, head);
    }

    /// Free phase 2: swing the head to block `b`, tagged with `seq`.
    pub fn push_free(&self, sys: &mut MemorySystem, pool: Option<&mut UndoPool>, b: u64, seq: u64) {
        if let Some(pool) = pool {
            pool.tx_add_range_meta(sys, self.head.addr(0), 16);
        }
        self.head.set(sys, 0, b);
        self.head.set(sys, 1, seq);
    }

    /// Raw link word of block `b` (for recovery audits).
    pub fn link_word(&self, sys: &mut MemorySystem, b: u64) -> u64 {
        self.next.get(sys, b as usize)
    }

    /// The head line's sequence tag (recovery leak detection).
    pub fn head_tag(&self, sys: &mut MemorySystem) -> u64 {
        self.head.get(sys, 1)
    }

    /// Walk the free list and return the free block set, or an error
    /// describing the corruption (out-of-range index, [`IN_USE`] link on
    /// the list, or a cycle).
    pub fn free_set(&self, sys: &mut MemorySystem) -> Result<Vec<u64>, String> {
        let mut free = Vec::new();
        let mut seen = vec![false; self.blocks as usize];
        let mut b = self.head.get(sys, 0);
        while b != NONE_BLOCK {
            if b >= self.blocks {
                return Err(format!("free-list link out of range: {b}"));
            }
            if seen[b as usize] {
                return Err(format!("free-list cycle at block {b}"));
            }
            seen[b as usize] = true;
            free.push(b);
            b = self.next.get(sys, b as usize);
            if b == IN_USE {
                return Err("free list reaches an IN_USE link (leaked metadata)".into());
            }
        }
        Ok(free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::system::SystemConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
    }

    fn alloc_one(a: &PAlloc, s: &mut MemorySystem, seq: u64) -> u64 {
        let b = a.unlink_free(s, None, seq).expect("blocks available");
        a.mark_in_use(s, None, b);
        b
    }

    fn free_one(a: &PAlloc, s: &mut MemorySystem, b: u64, seq: u64) {
        a.stage_free(s, None, b);
        a.push_free(s, None, b, seq);
    }

    #[test]
    fn alloc_free_recycles_blocks() {
        let mut s = sys();
        let a = PAlloc::new(&mut s, 4);
        let b0 = alloc_one(&a, &mut s, 1);
        let b1 = alloc_one(&a, &mut s, 2);
        assert_eq!((b0, b1), (0, 1));
        assert_eq!(a.free_set(&mut s).unwrap(), vec![2, 3]);
        free_one(&a, &mut s, b0, 3);
        assert_eq!(a.free_set(&mut s).unwrap(), vec![0, 2, 3]);
        assert_eq!(alloc_one(&a, &mut s, 4), 0, "LIFO reuse");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut s = sys();
        let a = PAlloc::new(&mut s, 2);
        alloc_one(&a, &mut s, 1);
        alloc_one(&a, &mut s, 2);
        assert!(a.unlink_free(&mut s, None, 3).is_none());
    }

    #[test]
    fn audit_detects_leaked_in_use_link() {
        let mut s = sys();
        let a = PAlloc::new(&mut s, 4);
        // Simulate leaked metadata: block 1 marked IN_USE while still
        // chained from block 0 on the free list.
        a.next.set(&mut s, 1, IN_USE);
        let err = a.free_set(&mut s).unwrap_err();
        assert!(err.contains("IN_USE"), "{err}");
    }

    #[test]
    fn audit_detects_cycles() {
        let mut s = sys();
        let a = PAlloc::new(&mut s, 3);
        a.next.set(&mut s, 2, 0); // tail points back at head
        let err = a.free_set(&mut s).unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn undo_logged_metadata_rolls_back() {
        let mut s = sys();
        let a = PAlloc::new(&mut s, 4);
        let layout = a.layout();
        let mut pool = UndoPool::new(&mut s, 16);
        let pool_layout = pool.layout();
        pool.tx_begin(&mut s);
        let b = a.unlink_free(&mut s, Some(&mut pool), 7).unwrap();
        a.mark_in_use(&mut s, Some(&mut pool), b);
        // Force the torn metadata into NVM, then crash before commit.
        s.persist_line(a.head_addr());
        let img = s.crash();
        let mut s2 = MemorySystem::from_image(SystemConfig::nvm_only(4096, 1 << 20), &img);
        UndoPool::recover(pool_layout, &mut s2);
        let a2 = PAlloc::attach(layout);
        assert_eq!(a2.free_set(&mut s2).unwrap(), vec![0, 1, 2, 3]);
        assert!(pool.log_stats().meta_appends >= 2, "metadata attribution");
    }
}
