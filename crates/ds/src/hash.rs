//! A persistent open-addressing (linear-probing) hash table.
//!
//! One slot per cache line — `[state, key, value, seq]` — so every slot
//! update is old-or-new at crash granularity, and the `seq` tag rides in
//! the same line as the data it describes. A separate tagged count line
//! gives the recovery audit an independent invariant to cross-check
//! (recount vs. counter), which is how unflushed slot/counter pairs are
//! *detected* instead of silently diverging.

use adcc_pmem::undo::UndoPool;
use adcc_sim::parray::PArray;
use adcc_sim::system::MemorySystem;

/// Words per slot line.
const SLOT_WORDS: usize = 8;

/// Slot states.
const EMPTY: u64 = 0;
const FULL: u64 = 1;
const TOMBSTONE: u64 = 2;

/// Probe-slot read, decoded.
#[derive(Debug, Clone, Copy)]
struct Slot {
    state: u64,
    key: u64,
}

/// The persistent hash table handle.
#[derive(Clone)]
pub struct PHash {
    table: PArray<u64>,
    /// One line: word 0 = live-entry count, word 1 = last-update seq tag.
    count: PArray<u64>,
    slots: u64,
}

/// Where a probe ended: the op to perform against that slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeHit {
    /// The key occupies this slot index.
    Found(u64),
    /// The key is absent; inserts go to this slot index.
    Insert(u64),
}

impl PHash {
    /// Allocate a table with `slots` one-line slots (power of two), empty.
    pub fn new(sys: &mut MemorySystem, slots: u64) -> Self {
        assert!(slots.is_power_of_two(), "slot count must be a power of two");
        let table = PArray::<u64>::alloc_nvm(sys, slots as usize * SLOT_WORDS);
        let count = PArray::<u64>::alloc_nvm(sys, 8);
        let h = PHash {
            table,
            count,
            slots,
        };
        h.reinit(sys);
        h
    }

    /// Re-attach at known addresses (post-crash).
    pub fn attach(table_base: u64, count_base: u64, slots: u64) -> Self {
        PHash {
            table: PArray::new(table_base, slots as usize * SLOT_WORDS),
            count: PArray::new(count_base, 8),
            slots,
        }
    }

    /// `(table_base, count_base, slots)`, for layouts and discovery.
    pub fn layout(&self) -> (u64, u64, u64) {
        (self.table.base(), self.count.base(), self.slots)
    }

    /// Zero every slot and the counter, persisted — initialization and
    /// rebuild-from-scratch recovery share this path.
    pub fn reinit(&self, sys: &mut MemorySystem) {
        self.table.fill(sys, 0);
        self.count.fill(sys, 0);
        self.table.persist_all(sys);
        self.count.persist_all(sys);
        sys.sfence();
    }

    fn home(&self, key: u64) -> u64 {
        // SplitMix64 finalizer as the hash.
        let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) & (self.slots - 1)
    }

    fn slot(&self, sys: &mut MemorySystem, i: u64) -> Slot {
        let w = i as usize * SLOT_WORDS;
        Slot {
            state: self.table.get(sys, w),
            key: self.table.get(sys, w + 1),
        }
    }

    /// Linear-probe for `key`: `Found(i)` if present, else `Insert(i)` at
    /// the first tombstone (or the empty slot that ended the probe).
    pub fn probe(&self, sys: &mut MemorySystem, key: u64) -> ProbeHit {
        let mut first_tombstone = None;
        for d in 0..self.slots {
            let i = (self.home(key) + d) & (self.slots - 1);
            let s = self.slot(sys, i);
            match s.state {
                EMPTY => return ProbeHit::Insert(first_tombstone.unwrap_or(i)),
                TOMBSTONE => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i);
                    }
                }
                _ => {
                    if s.key == key {
                        return ProbeHit::Found(i);
                    }
                }
            }
        }
        ProbeHit::Insert(first_tombstone.expect("table cannot be fully occupied"))
    }

    /// Read the value stored in slot `i`.
    pub fn slot_value(&self, sys: &mut MemorySystem, i: u64) -> u64 {
        self.table.get(sys, i as usize * SLOT_WORDS + 2)
    }

    /// Slot `i`'s line address (for undo-log snapshotting).
    pub fn slot_addr(&self, i: u64) -> u64 {
        self.table.addr(i as usize * SLOT_WORDS)
    }

    /// The counter line's address.
    pub fn count_addr(&self) -> u64 {
        self.count.addr(0)
    }

    /// Write `(key, value)` into slot `i`, tagged with `seq`.
    pub fn write_slot(
        &self,
        sys: &mut MemorySystem,
        pool: Option<&mut UndoPool>,
        i: u64,
        key: u64,
        value: u64,
        seq: u64,
    ) {
        if let Some(pool) = pool {
            pool.tx_add_range(sys, self.slot_addr(i), 32);
        }
        let w = i as usize * SLOT_WORDS;
        self.table.set(sys, w, FULL);
        self.table.set(sys, w + 1, key);
        self.table.set(sys, w + 2, value);
        self.table.set(sys, w + 3, seq);
    }

    /// Tombstone slot `i`, tagged with `seq`.
    pub fn delete_slot(
        &self,
        sys: &mut MemorySystem,
        pool: Option<&mut UndoPool>,
        i: u64,
        seq: u64,
    ) {
        if let Some(pool) = pool {
            pool.tx_add_range(sys, self.slot_addr(i), 32);
        }
        let w = i as usize * SLOT_WORDS;
        self.table.set(sys, w, TOMBSTONE);
        self.table.set(sys, w + 3, seq);
    }

    /// Adjust the live-entry counter by `delta`, tagged with `seq`.
    pub fn bump_count(
        &self,
        sys: &mut MemorySystem,
        pool: Option<&mut UndoPool>,
        delta: i64,
        seq: u64,
    ) {
        if let Some(pool) = pool {
            pool.tx_add_range(sys, self.count.addr(0), 16);
        }
        let c = self.count.get(sys, 0);
        self.count.set(sys, 0, c.wrapping_add(delta as u64));
        self.count.set(sys, 1, seq);
    }

    /// `(count, tag)` from the counter line.
    pub fn count_and_tag(&self, sys: &mut MemorySystem) -> (u64, u64) {
        (self.count.get(sys, 0), self.count.get(sys, 1))
    }

    /// Scan the table: sorted `(key, value, seq)` triples of live slots,
    /// plus the maximum slot tag seen anywhere (live, tombstone — for
    /// leaked-write detection).
    #[allow(clippy::type_complexity)]
    pub fn scan(&self, sys: &mut MemorySystem) -> (Vec<(u64, u64, u64)>, u64) {
        let mut live = Vec::new();
        let mut max_tag = 0;
        for i in 0..self.slots {
            let w = i as usize * SLOT_WORDS;
            let state = self.table.get(sys, w);
            let tag = self.table.get(sys, w + 3);
            if state != EMPTY {
                max_tag = max_tag.max(tag);
            }
            if state == FULL {
                live.push((self.table.get(sys, w + 1), self.table.get(sys, w + 2), tag));
            }
        }
        live.sort_unstable();
        (live, max_tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::system::SystemConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
    }

    fn put(h: &PHash, s: &mut MemorySystem, key: u64, value: u64, seq: u64) {
        match h.probe(s, key) {
            ProbeHit::Found(i) => h.write_slot(s, None, i, key, value, seq),
            ProbeHit::Insert(i) => {
                h.write_slot(s, None, i, key, value, seq);
                h.bump_count(s, None, 1, seq);
            }
        }
    }

    #[test]
    fn put_get_del_roundtrip() {
        let mut s = sys();
        let h = PHash::new(&mut s, 16);
        put(&h, &mut s, 1, 100, 1);
        put(&h, &mut s, 2, 200, 2);
        put(&h, &mut s, 1, 101, 3); // overwrite
        assert_eq!(h.count_and_tag(&mut s), (2, 2));
        let (live, max_tag) = h.scan(&mut s);
        assert_eq!(live, vec![(1, 101, 3), (2, 200, 2)]);
        assert_eq!(max_tag, 3);

        let ProbeHit::Found(i) = h.probe(&mut s, 1) else {
            panic!("key 1 present");
        };
        h.delete_slot(&mut s, None, i, 4);
        h.bump_count(&mut s, None, -1, 4);
        assert_eq!(h.count_and_tag(&mut s), (1, 4));
        assert!(matches!(h.probe(&mut s, 1), ProbeHit::Insert(_)));
        // Tombstone slots are reused by the next insert of any key that
        // probes through them.
        put(&h, &mut s, 1, 102, 5);
        let (live, _) = h.scan(&mut s);
        assert_eq!(live, vec![(1, 102, 5), (2, 200, 2)]);
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        let mut s = sys();
        let h = PHash::new(&mut s, 8);
        // Fill several slots; all keys must remain retrievable.
        for k in 0..5u64 {
            put(&h, &mut s, k, k * 10, k + 1);
        }
        for k in 0..5u64 {
            let ProbeHit::Found(i) = h.probe(&mut s, k) else {
                panic!("key {k} lost");
            };
            assert_eq!(h.slot_value(&mut s, i), k * 10);
        }
    }
}
