//! The persistent data-structure workload driver.
//!
//! A [`Workload`] owns one structure (queue or hash table), the allocator
//! beneath it, and the recoverability primitives around it, and executes
//! a seeded [`OpStream`] one operation at a time with crash polls placed
//! at the protocol's real ordering windows:
//!
//! * `PH_DS_PREP` — after the announce record persists, before the body;
//! * `PH_DS_ALLOC` — between the two halves of a two-phase allocator or
//!   counter update (the metadata window);
//! * `PH_DS_MUT` — mid-mutation, between structure writes;
//! * `PH_DS_COMMIT` — after the transaction commit / completion record.
//!
//! Every operation polls `PREP`, `MUT` and `COMMIT` exactly once (so the
//! campaign's site-grain unit space is `3 × ops`), and `ALLOC` zero or
//! more times (reachable through dense access-count triggers).
//!
//! [`recover_verify_resume`] is the other half: a pure function of the
//! crash image that re-attaches the structure, audits it, resumes the
//! stream, and verifies the final state against the host oracle.

use adcc_pmem::heap::PersistentHeap;
use adcc_pmem::stats::LogStats;
use adcc_pmem::undo::{UndoPool, UndoPoolLayout};
use adcc_sim::crash::{CrashEmulator, CrashSite, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::line::LINE_SHIFT;
use adcc_sim::system::{MemorySystem, SystemConfig};

use crate::alloc::{AllocatorLayout, PAlloc};
use crate::detect::{Checkpoint, OpTable};
use crate::hash::{PHash, ProbeHit};
use crate::ops::{Op, OpKind, OpStream, OpStreamCfg};
use crate::queue::PQueue;
use crate::sites::{PH_DS_ALLOC, PH_DS_COMMIT, PH_DS_MUT, PH_DS_PREP};
use crate::NONE_BLOCK;

/// Which persistent structure a workload drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// The MSC-style persistent linked queue ([`PQueue`]).
    Queue,
    /// The open-addressing persistent hash table ([`PHash`]).
    Hash,
}

/// How the workload protects its persistent updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Every operation runs inside an undo-log transaction; recovery rolls
    /// the in-flight operation back exactly.
    Undo,
    /// No transactions and no per-op flushes; a watermark checkpoint is
    /// advanced every [`WorkloadCfg::sync_ops`] operations after a batched
    /// epoch persist. Recovery relies on sequence-tag leak detection.
    Baseline,
}

/// Full workload configuration. Scenarios construct these via
/// [`WorkloadCfg::queue`] / [`WorkloadCfg::hash`] and override the stream.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadCfg {
    /// Structure under test.
    pub structure: Structure,
    /// Protection protocol.
    pub protection: Protection,
    /// Op-stream generator knobs.
    pub stream: OpStreamCfg,
    /// Allocator block count (queue only; sized so exhaustion is
    /// impossible: every op enqueues at most one node).
    pub blocks: u64,
    /// Hash table slot count (power of two).
    pub slots: u64,
    /// Baseline epoch length: ops between watermark syncs.
    pub sync_ops: u64,
    /// Undo-pool snapshot capacity in lines.
    pub undo_lines: usize,
}

impl WorkloadCfg {
    /// A queue workload over `stream` under `protection`.
    pub fn queue(protection: Protection, stream: OpStreamCfg) -> Self {
        WorkloadCfg {
            structure: Structure::Queue,
            protection,
            stream,
            blocks: stream.ops + 8,
            slots: 128,
            sync_ops: 16,
            undo_lines: 32,
        }
    }

    /// A hash-table workload over `stream` under `protection`.
    pub fn hash(protection: Protection, stream: OpStreamCfg) -> Self {
        WorkloadCfg {
            structure: Structure::Hash,
            protection,
            stream,
            blocks: 16,
            slots: 128,
            sync_ops: 16,
            undo_lines: 32,
        }
    }

    /// The memory system every ds scenario runs on: a deliberately small
    /// CPU cache (64 lines) over NVM, so unflushed baseline writes are
    /// routinely evicted — i.e. leaked — mid-window.
    pub fn system(&self) -> SystemConfig {
        SystemConfig::nvm_only(4096, 1 << 20)
    }
}

/// Addresses recovery needs to re-attach every component found in a ds
/// crash image.
#[derive(Debug, Clone, Copy)]
pub struct DsLayout {
    /// Allocator metadata and arena.
    pub alloc: AllocatorLayout,
    /// Queue control base (meaningful when the structure is a queue).
    pub queue_ctrl: u64,
    /// Hash table base (meaningful when the structure is a hash).
    pub hash_table: u64,
    /// Hash counter line base.
    pub hash_count: u64,
    /// Watermark [`Checkpoint`] base.
    pub ckpt_base: u64,
    /// [`OpTable`] base.
    pub optable_base: u64,
    /// Undo pool layout (undo protection only).
    pub undo: Option<UndoPoolLayout>,
    /// [`PersistentHeap`] root-table base.
    pub heap_base: u64,
}

/// What recovery found and did, for one crash image.
#[derive(Debug, Clone)]
pub struct DsRecovery {
    /// Whether recovery *detected* interrupted work (an active transaction
    /// rolled back, an announced-but-incomplete op, or baseline dirt —
    /// leaked post-watermark tags or a failed structural audit).
    pub detected: bool,
    /// The stream position recovery resumed from: ops `1..=resume_from`
    /// were durably applied (0 after a rebuild-from-scratch).
    pub resume_from: u64,
    /// Ops re-executed to bring the structure to the end of the stream.
    pub replayed: u64,
    /// Whether every check passed: the recovered prefix state matched the
    /// host oracle, in-flight records were coherent, and the final state
    /// after resumption matched the full-stream oracle. `false` means
    /// corruption — silent if `detected` is also `false`.
    pub matches: bool,
    /// `(client, seq)` pairs the op table reported as announced but never
    /// completed (undo protection only).
    pub in_flight: Vec<(u32, u64)>,
    /// Simulated recovery + resumption time in picoseconds.
    pub sim_time_ps: u64,
}

/// A live workload: the structure, its allocator, the recoverability
/// primitives, and the forward-execution state.
pub struct Workload {
    cfg: WorkloadCfg,
    layout: DsLayout,
    alloc: PAlloc,
    queue: Option<PQueue>,
    hash: Option<PHash>,
    ckpt: Checkpoint,
    optable: OpTable,
    pool: Option<UndoPool>,
    /// Line numbers dirtied since the last baseline epoch sync.
    dirty: Vec<u64>,
    applied: u64,
}

impl Workload {
    /// Allocate and initialize every component on `sys`, registering the
    /// roots in a [`PersistentHeap`] so recovery tooling can find them by
    /// name in a raw image.
    pub fn setup(sys: &mut MemorySystem, cfg: WorkloadCfg) -> Self {
        let mut heap = PersistentHeap::new(sys, 16);
        let alloc = PAlloc::new(sys, cfg.blocks);
        let (queue, hash) = match cfg.structure {
            Structure::Queue => {
                let q = PQueue::new(sys);
                q.init(sys, &alloc);
                (Some(q), None)
            }
            Structure::Hash => (None, Some(PHash::new(sys, cfg.slots))),
        };
        let ckpt = Checkpoint::new(sys);
        let optable = OpTable::new(sys, cfg.stream.clients);
        let pool = match cfg.protection {
            Protection::Undo => Some(UndoPool::new(sys, cfg.undo_lines)),
            Protection::Baseline => None,
        };

        let al = alloc.layout();
        heap.register(sys, "ds/alloc-head", al.head_base, 64);
        if let Some(q) = &queue {
            heap.register(sys, "ds/queue-ctrl", q.ctrl_base(), 128);
        }
        if let Some(h) = &hash {
            let (tb, cb, _) = h.layout();
            heap.register(sys, "ds/hash-table", tb, 64);
            heap.register(sys, "ds/hash-count", cb, 64);
        }
        heap.register(sys, "ds/watermark", ckpt.base(), 128);
        heap.register(sys, "ds/op-table", optable.base(), 64);

        let layout = DsLayout {
            alloc: al,
            queue_ctrl: queue.as_ref().map(|q| q.ctrl_base()).unwrap_or(0),
            hash_table: hash.as_ref().map(|h| h.layout().0).unwrap_or(0),
            hash_count: hash.as_ref().map(|h| h.layout().1).unwrap_or(0),
            ckpt_base: ckpt.base(),
            optable_base: optable.base(),
            undo: pool.as_ref().map(|p| p.layout()),
            heap_base: heap.table_base(),
        };
        Workload {
            cfg,
            layout,
            alloc,
            queue,
            hash,
            ckpt,
            optable,
            pool,
            dirty: Vec::new(),
            applied: 0,
        }
    }

    /// Re-attach a workload to the components in a recovered system.
    pub fn attach(cfg: WorkloadCfg, layout: DsLayout) -> Self {
        let (queue, hash) = match cfg.structure {
            Structure::Queue => (Some(PQueue::attach(layout.queue_ctrl)), None),
            Structure::Hash => (
                None,
                Some(PHash::attach(
                    layout.hash_table,
                    layout.hash_count,
                    cfg.slots,
                )),
            ),
        };
        Workload {
            cfg,
            layout,
            alloc: PAlloc::attach(layout.alloc),
            queue,
            hash,
            ckpt: Checkpoint::attach(layout.ckpt_base),
            optable: OpTable::attach(layout.optable_base, cfg.stream.clients),
            pool: layout.undo.map(UndoPool::attach),
            dirty: Vec::new(),
            applied: 0,
        }
    }

    /// The persistent layout, for post-crash re-attachment.
    pub fn layout(&self) -> DsLayout {
        self.layout
    }

    /// Undo-log statistics (zeroed under baseline protection).
    pub fn log_stats(&self) -> LogStats {
        self.pool
            .as_ref()
            .map(|p| p.log_stats())
            .unwrap_or_default()
    }

    /// Ops applied by this handle since setup/attach.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    fn note(&self, emu: &CrashEmulator, logs: Option<&mut Vec<LogStats>>) {
        if let Some(logs) = logs {
            while logs.len() < emu.harvest_count() {
                logs.push(self.log_stats());
            }
        }
    }

    fn mark_dirty(&mut self, addr: u64) {
        if self.cfg.protection == Protection::Baseline {
            self.dirty.push(addr >> LINE_SHIFT);
        }
    }

    /// Execute one operation with crash polls, following the protection
    /// protocol. Sidecar `logs` (batch harvest mode) are sampled
    /// immediately after every poll. Returns `Crashed` when a per-trial
    /// trigger fires mid-op.
    pub fn apply_op(
        &mut self,
        emu: &mut CrashEmulator,
        op: &Op,
        mut logs: Option<&mut Vec<LogStats>>,
    ) -> RunOutcome<()> {
        let seq = op.seq;
        let client = op.client;
        self.optable.announce(emu, client, seq);

        if emu.poll(CrashSite::new(PH_DS_PREP, seq)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
        self.note(emu, logs.as_deref_mut());

        if let Some(pool) = self.pool.as_mut() {
            pool.tx_begin(emu);
        }

        let mut crashed = false;
        let result = match self.cfg.structure {
            Structure::Queue => self.queue_op(emu, op, &mut crashed, &mut logs),
            Structure::Hash => self.hash_op(emu, op, &mut crashed, &mut logs),
        };
        if crashed {
            return RunOutcome::Crashed(emu.crash_now());
        }

        // Completion record + watermark, atomic with the op's effects
        // under undo; bare cache writes under baseline.
        if let Some(pool) = self.pool.as_mut() {
            pool.tx_add_range(emu, self.optable.line_addr(client), 24);
            for a in self.ckpt.line_addrs() {
                pool.tx_add_range(emu, a, 16);
            }
        }
        self.optable.complete(emu, client, seq, result);
        self.mark_dirty(self.optable.line_addr(client));
        match self.cfg.protection {
            Protection::Undo => {
                self.ckpt.store(emu, seq);
                let pool = self.pool.as_mut().expect("undo protection has a pool");
                pool.tx_commit(emu);
            }
            Protection::Baseline => {
                if seq.is_multiple_of(self.cfg.sync_ops) {
                    let lines = std::mem::take(&mut self.dirty);
                    emu.persist_lines_batched(&lines);
                    emu.sfence();
                    self.ckpt.store(emu, seq);
                }
            }
        }

        self.applied = seq;
        if emu.poll(CrashSite::new(PH_DS_COMMIT, seq)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
        self.note(emu, logs);
        RunOutcome::Completed(())
    }

    /// Queue op body: returns the op result; sets `crashed` if a poll
    /// fired (the caller unwinds). Exactly one `PH_DS_MUT` poll per op.
    fn queue_op(
        &mut self,
        emu: &mut CrashEmulator,
        op: &Op,
        crashed: &mut bool,
        logs: &mut Option<&mut Vec<LogStats>>,
    ) -> u64 {
        let seq = op.seq;
        let q = self.queue.clone().expect("queue workload");
        macro_rules! poll {
            ($phase:expr) => {
                let fired = emu.poll(CrashSite::new($phase, seq));
                self.note(emu, logs.as_deref_mut());
                if fired {
                    *crashed = true;
                    return 0;
                }
            };
        }
        match op.kind {
            OpKind::Put => {
                let b = self
                    .alloc
                    .unlink_free(emu, self.pool.as_mut(), seq)
                    .expect("allocator sized for the stream");
                self.mark_dirty(self.alloc.head_addr());
                // The classic window: the block is off the free list but
                // not yet stamped IN_USE.
                poll!(PH_DS_ALLOC);
                self.alloc.mark_in_use(emu, self.pool.as_mut(), b);
                self.mark_dirty(self.alloc.next_addr(b));
                q.write_node(emu, self.pool.as_mut(), &self.alloc, b, op.value, seq);
                self.mark_dirty(self.alloc.block_addr(b));
                // Node written but not yet linked.
                poll!(PH_DS_MUT);
                let t = q.tail(emu);
                q.link(emu, self.pool.as_mut(), &self.alloc, t, b);
                self.mark_dirty(self.alloc.block_addr(t));
                q.swing_tail(emu, self.pool.as_mut(), b, seq);
                self.mark_dirty(q.ctrl_addrs().1);
                op.value
            }
            OpKind::Get => {
                let sentinel = q.head(emu);
                let first = q.node(emu, &self.alloc, sentinel).next;
                poll!(PH_DS_MUT);
                if first == NONE_BLOCK {
                    0
                } else {
                    q.node(emu, &self.alloc, first).value
                }
            }
            OpKind::Del => {
                let sentinel = q.head(emu);
                let first = q.node(emu, &self.alloc, sentinel).next;
                poll!(PH_DS_MUT);
                if first == NONE_BLOCK {
                    return 0;
                }
                let value = q.node(emu, &self.alloc, first).value;
                q.advance_head(emu, self.pool.as_mut(), first, seq);
                self.mark_dirty(q.ctrl_addrs().0);
                // The old sentinel returns to the allocator in two phases.
                self.alloc.stage_free(emu, self.pool.as_mut(), sentinel);
                self.mark_dirty(self.alloc.next_addr(sentinel));
                poll!(PH_DS_ALLOC);
                self.alloc.push_free(emu, self.pool.as_mut(), sentinel, seq);
                self.mark_dirty(self.alloc.head_addr());
                value
            }
        }
    }

    /// Hash op body — same poll contract as [`Self::queue_op`].
    fn hash_op(
        &mut self,
        emu: &mut CrashEmulator,
        op: &Op,
        crashed: &mut bool,
        logs: &mut Option<&mut Vec<LogStats>>,
    ) -> u64 {
        let seq = op.seq;
        let h = self.hash.clone().expect("hash workload");
        macro_rules! poll {
            ($phase:expr) => {
                let fired = emu.poll(CrashSite::new($phase, seq));
                self.note(emu, logs.as_deref_mut());
                if fired {
                    *crashed = true;
                    return 0;
                }
            };
        }
        match op.kind {
            OpKind::Put => match h.probe(emu, op.key) {
                ProbeHit::Found(i) => {
                    poll!(PH_DS_MUT);
                    h.write_slot(emu, self.pool.as_mut(), i, op.key, op.value, seq);
                    self.mark_dirty(h.slot_addr(i));
                    op.value
                }
                ProbeHit::Insert(i) => {
                    poll!(PH_DS_MUT);
                    h.write_slot(emu, self.pool.as_mut(), i, op.key, op.value, seq);
                    self.mark_dirty(h.slot_addr(i));
                    // Slot live, counter stale: the metadata window.
                    poll!(PH_DS_ALLOC);
                    h.bump_count(emu, self.pool.as_mut(), 1, seq);
                    self.mark_dirty(h.count_addr());
                    op.value
                }
            },
            OpKind::Get => {
                let hit = h.probe(emu, op.key);
                poll!(PH_DS_MUT);
                match hit {
                    ProbeHit::Found(i) => h.slot_value(emu, i),
                    ProbeHit::Insert(_) => 0,
                }
            }
            OpKind::Del => {
                let hit = h.probe(emu, op.key);
                poll!(PH_DS_MUT);
                match hit {
                    ProbeHit::Found(i) => {
                        let value = h.slot_value(emu, i);
                        h.delete_slot(emu, self.pool.as_mut(), i, seq);
                        self.mark_dirty(h.slot_addr(i));
                        poll!(PH_DS_ALLOC);
                        h.bump_count(emu, self.pool.as_mut(), -1, seq);
                        self.mark_dirty(h.count_addr());
                        value
                    }
                    ProbeHit::Insert(_) => 0,
                }
            }
        }
    }

    /// Re-execute one op without polls or protection (recovery-time
    /// resumption — no crash can interrupt it).
    fn replay_op(&mut self, sys: &mut MemorySystem, op: &Op) {
        match self.cfg.structure {
            Structure::Queue => {
                let q = self.queue.as_ref().expect("queue workload");
                match op.kind {
                    OpKind::Put => {
                        let b = self
                            .alloc
                            .unlink_free(sys, None, op.seq)
                            .expect("allocator sized for the stream");
                        self.alloc.mark_in_use(sys, None, b);
                        q.write_node(sys, None, &self.alloc, b, op.value, op.seq);
                        let t = q.tail(sys);
                        q.link(sys, None, &self.alloc, t, b);
                        q.swing_tail(sys, None, b, op.seq);
                    }
                    OpKind::Get => {}
                    OpKind::Del => {
                        let sentinel = q.head(sys);
                        let first = q.node(sys, &self.alloc, sentinel).next;
                        if first != NONE_BLOCK {
                            q.advance_head(sys, None, first, op.seq);
                            self.alloc.stage_free(sys, None, sentinel);
                            self.alloc.push_free(sys, None, sentinel, op.seq);
                        }
                    }
                }
            }
            Structure::Hash => {
                let h = self.hash.as_ref().expect("hash workload");
                match op.kind {
                    OpKind::Put => match h.probe(sys, op.key) {
                        ProbeHit::Found(i) => h.write_slot(sys, None, i, op.key, op.value, op.seq),
                        ProbeHit::Insert(i) => {
                            h.write_slot(sys, None, i, op.key, op.value, op.seq);
                            h.bump_count(sys, None, 1, op.seq);
                        }
                    },
                    OpKind::Get => {}
                    OpKind::Del => {
                        if let ProbeHit::Found(i) = h.probe(sys, op.key) {
                            h.delete_slot(sys, None, i, op.seq);
                            h.bump_count(sys, None, -1, op.seq);
                        }
                    }
                }
            }
        }
    }

    /// Reset every persistent component to its initial state — the
    /// rebuild-from-scratch repair path after detected baseline dirt.
    fn rebuild(&mut self, sys: &mut MemorySystem) {
        self.alloc.reinit(sys);
        if let Some(q) = &self.queue {
            q.init(sys, &self.alloc);
        }
        if let Some(h) = &self.hash {
            h.reinit(sys);
        }
        self.ckpt.reinit(sys);
        self.optable.reinit(sys);
    }

    /// The structure's current contents, via the corruption-checking walk:
    /// queue `(value, seq)` FIFO pairs or hash `(key, value, seq)` triples
    /// re-shaped into pairs-with-key — plus the blocks reachable from the
    /// queue (empty for hash).
    #[allow(clippy::type_complexity)]
    fn audit_contents(
        &self,
        sys: &mut MemorySystem,
    ) -> Result<(Vec<(u64, u64)>, Vec<(u64, u64, u64)>, Vec<u64>), String> {
        match self.cfg.structure {
            Structure::Queue => {
                let q = self.queue.as_ref().expect("queue workload");
                let (contents, reachable) = q.walk(sys, &self.alloc)?;
                Ok((contents, Vec::new(), reachable))
            }
            Structure::Hash => {
                let h = self.hash.as_ref().expect("hash workload");
                let (live, _) = h.scan(sys);
                let (count, _) = h.count_and_tag(sys);
                if count != live.len() as u64 {
                    return Err(format!(
                        "hash counter {count} disagrees with live recount {}",
                        live.len()
                    ));
                }
                Ok((Vec::new(), live, Vec::new()))
            }
        }
    }

    /// Baseline leak scan: the largest sequence tag persisted anywhere in
    /// the structure's metadata. Anything above the watermark is a leaked
    /// post-checkpoint write.
    fn max_persisted_tag(&self, sys: &mut MemorySystem, reachable: &[u64]) -> u64 {
        let mut max_tag = self.alloc.head_tag(sys);
        match self.cfg.structure {
            Structure::Queue => {
                let q = self.queue.as_ref().expect("queue workload");
                let (deq_tag, enq_tag) = q.ctrl_tags(sys);
                max_tag = max_tag.max(deq_tag).max(enq_tag);
                for &b in reachable {
                    max_tag = max_tag.max(q.node(sys, &self.alloc, b).seq);
                }
            }
            Structure::Hash => {
                let h = self.hash.as_ref().expect("hash workload");
                let (_, slot_tag) = h.scan(sys);
                let (_, count_tag) = h.count_and_tag(sys);
                max_tag = max_tag.max(slot_tag).max(count_tag);
            }
        }
        max_tag
    }

    /// Verify a completed (crash-free) run: the structure's final state
    /// must equal the full-stream host oracle and — for queues — the
    /// block-partition audit must pass. This is the completion-side
    /// counterpart of [`recover_verify_resume`], used by the campaign
    /// layer to classify crash points that land past the end of the run.
    pub fn completed_matches(&self, sys: &mut MemorySystem, stream: &OpStream) -> bool {
        match self.audit_contents(sys) {
            Err(_) => false,
            Ok((q_contents, h_contents, reachable)) => {
                if self.audit_partition(sys, &reachable).is_err() {
                    return false;
                }
                let (oq, oh) = oracle(&self.cfg, stream, stream.len());
                q_contents == oq && h_contents == oh
            }
        }
    }

    /// Queue-only block-partition audit: reachable blocks must carry
    /// `IN_USE` allocator links, and together with the free list must
    /// partition the arena exactly.
    fn audit_partition(&self, sys: &mut MemorySystem, reachable: &[u64]) -> Result<(), String> {
        if self.cfg.structure != Structure::Queue {
            return Ok(());
        }
        let free = self.alloc.free_set(sys)?;
        let mut owner = vec![0u8; self.cfg.blocks as usize];
        for &b in reachable {
            if self.alloc.link_word(sys, b) != crate::IN_USE {
                return Err(format!("reachable block {b} is not marked IN_USE"));
            }
            owner[b as usize] += 1;
        }
        for &b in &free {
            owner[b as usize] += 2;
        }
        for (b, &o) in owner.iter().enumerate() {
            if o == 3 {
                return Err(format!("block {b} is both reachable and free"));
            }
            if o == 0 {
                return Err(format!("block {b} leaked: neither reachable nor free"));
            }
        }
        Ok(())
    }
}

/// Expected oracle state at stream position `n`, in the audit shapes.
fn oracle(cfg: &WorkloadCfg, stream: &OpStream, n: u64) -> (Vec<(u64, u64)>, Vec<(u64, u64, u64)>) {
    match cfg.structure {
        Structure::Queue => (crate::replay::host_queue_contents(stream, n), Vec::new()),
        Structure::Hash => (Vec::new(), crate::replay::host_hash_contents(stream, n)),
    }
}

/// Recover a ds crash image, verify the surviving structure against the
/// op-stream prefix, resume the stream to its end, and verify the final
/// state — the full linearizability check every ds trial is classified
/// by. Pure: the result depends only on the arguments.
pub fn recover_verify_resume(
    cfg: WorkloadCfg,
    layout: DsLayout,
    sys_cfg: SystemConfig,
    image: &NvmImage,
    stream: &OpStream,
) -> DsRecovery {
    let mut sys = MemorySystem::from_image(sys_cfg, image);
    let t0 = sys.now();
    let mut w = Workload::attach(cfg, layout);

    let mut detected = false;
    let mut matches = true;
    let mut in_flight = Vec::new();
    let mut resume_from;
    let mut rebuilt = false;

    match cfg.protection {
        Protection::Undo => {
            let undo_layout = layout.undo.expect("undo protection has a pool layout");
            let rolled_back = UndoPool::needs_recovery(&undo_layout, image);
            UndoPool::recover(undo_layout, &mut sys);
            resume_from = w.ckpt.load(&mut sys);
            in_flight = w.optable.in_flight(&mut sys);
            detected = rolled_back || !in_flight.is_empty();
            // Detectable recoverability: at most the single op after the
            // watermark may be in flight, and it must be attributed to the
            // client that issued it.
            let expected_client = stream
                .ops()
                .get(resume_from as usize)
                .map(|op| (op.client, op.seq));
            if !in_flight
                .iter()
                .all(|&(c, s)| expected_client == Some((c, s)))
                || in_flight.len() > 1
            {
                matches = false;
            }
        }
        Protection::Baseline => {
            resume_from = w.ckpt.load(&mut sys);
            // Leak detection: structural audits + post-watermark tags.
            let audit =
                w.audit_contents(&mut sys)
                    .and_then(|(q_contents, h_contents, reachable)| {
                        w.audit_partition(&mut sys, &reachable)?;
                        Ok((q_contents, h_contents, reachable))
                    });
            let dirty = match &audit {
                Err(_) => true,
                Ok((_, _, reachable)) => w.max_persisted_tag(&mut sys, reachable) > resume_from,
            };
            if dirty {
                detected = true;
                rebuilt = true;
                w.rebuild(&mut sys);
                resume_from = 0;
            }
        }
    }

    // Prefix verify: the recovered structure must equal the host oracle
    // replayed to the resumption point (vacuous after a rebuild).
    if !rebuilt {
        match w.audit_contents(&mut sys) {
            Err(_) => matches = false,
            Ok((q_contents, h_contents, _)) => {
                let (oq, oh) = oracle(&cfg, stream, resume_from);
                if q_contents != oq || h_contents != oh {
                    matches = false;
                }
            }
        }
    }

    // Resume: re-execute the rest of the stream, then final-verify.
    let mut replayed = 0;
    for op in stream.ops().iter().skip(resume_from as usize) {
        w.replay_op(&mut sys, op);
        replayed += 1;
    }
    match w.audit_contents(&mut sys) {
        Err(_) => matches = false,
        Ok((q_contents, h_contents, reachable)) => {
            if w.audit_partition(&mut sys, &reachable).is_err() {
                matches = false;
            }
            let (oq, oh) = oracle(&cfg, stream, stream.len());
            if q_contents != oq || h_contents != oh {
                matches = false;
            }
        }
    }

    DsRecovery {
        detected,
        resume_from,
        replayed,
        matches,
        in_flight,
        sim_time_ps: (sys.now() - t0).ps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::crash::CrashTrigger;

    fn run_to_completion(cfg: WorkloadCfg) -> (Workload, MemorySystem) {
        let stream = OpStream::generate(cfg.stream);
        let mut emu = CrashEmulator::new(cfg.system(), CrashTrigger::Never);
        let mut w = Workload::setup(emu.system_mut(), cfg);
        for op in stream.ops() {
            assert!(w.apply_op(&mut emu, op, None).completed().is_some());
        }
        (w, emu.into_system())
    }

    #[test]
    fn undo_queue_full_run_matches_oracle() {
        let cfg = WorkloadCfg::queue(Protection::Undo, OpStreamCfg::default());
        let stream = OpStream::generate(cfg.stream);
        let (w, mut sys) = run_to_completion(cfg);
        let (contents, _, _) = w.audit_contents(&mut sys).unwrap();
        assert_eq!(
            contents,
            crate::replay::host_queue_contents(&stream, stream.len())
        );
        assert!(w.log_stats().appends > 0);
        assert!(
            w.log_stats().meta_appends > 0,
            "allocator metadata attributed"
        );
    }

    #[test]
    fn baseline_hash_full_run_matches_oracle() {
        let cfg = WorkloadCfg::hash(Protection::Baseline, OpStreamCfg::default());
        let stream = OpStream::generate(cfg.stream);
        let (w, mut sys) = run_to_completion(cfg);
        let (_, live, _) = w.audit_contents(&mut sys).unwrap();
        assert_eq!(
            live,
            crate::replay::host_hash_contents(&stream, stream.len())
        );
        assert_eq!(w.log_stats(), LogStats::default(), "baseline logs nothing");
    }

    fn crash_at(cfg: WorkloadCfg, trigger: CrashTrigger) -> (DsLayout, NvmImage, u64) {
        let stream = OpStream::generate(cfg.stream);
        let mut emu = CrashEmulator::new(cfg.system(), trigger);
        let mut w = Workload::setup(emu.system_mut(), cfg);
        for op in stream.ops() {
            if let RunOutcome::Crashed(img) = w.apply_op(&mut emu, op, None) {
                let site = emu.fired_site().expect("crashed");
                return (w.layout(), img, site.index);
            }
        }
        panic!("trigger never fired");
    }

    #[test]
    fn undo_queue_recovers_exactly_from_mid_alloc_crash() {
        let cfg = WorkloadCfg::queue(Protection::Undo, OpStreamCfg::default());
        let stream = OpStream::generate(cfg.stream);
        // Crash inside the allocator metadata window of some mid-stream op.
        let (layout, img, at) = crash_at(
            cfg,
            CrashTrigger::AtPhaseIndex {
                phase: PH_DS_ALLOC,
                index: 20,
            },
        );
        let r = recover_verify_resume(cfg, layout, cfg.system(), &img, &stream);
        assert!(r.detected, "active tx must be detected");
        assert!(r.matches, "undo recovery must be exact: {r:?}");
        assert_eq!(r.resume_from, at - 1, "exactly the crashed op is lost");
        assert_eq!(r.replayed, stream.len() - r.resume_from);
    }

    #[test]
    fn undo_hash_commit_crash_loses_nothing() {
        let cfg = WorkloadCfg::hash(Protection::Undo, OpStreamCfg::default());
        let stream = OpStream::generate(cfg.stream);
        let (layout, img, at) = crash_at(
            cfg,
            CrashTrigger::AtPhaseIndex {
                phase: PH_DS_COMMIT,
                index: 31,
            },
        );
        let r = recover_verify_resume(cfg, layout, cfg.system(), &img, &stream);
        assert!(r.matches, "{r:?}");
        assert_eq!(r.resume_from, at, "committed op is stable at COMMIT");
    }

    #[test]
    fn baseline_crash_is_detected_never_silent() {
        for structure_cfg in [
            WorkloadCfg::queue(Protection::Baseline, OpStreamCfg::default()),
            WorkloadCfg::hash(Protection::Baseline, OpStreamCfg::default()),
        ] {
            let stream = OpStream::generate(structure_cfg.stream);
            for idx in [5u64, 50, 113] {
                let (layout, img, _) = crash_at(
                    structure_cfg,
                    CrashTrigger::AtPhaseIndex {
                        phase: PH_DS_MUT,
                        index: idx,
                    },
                );
                let r = recover_verify_resume(
                    structure_cfg,
                    layout,
                    structure_cfg.system(),
                    &img,
                    &stream,
                );
                assert!(
                    r.matches || r.detected,
                    "silent corruption at op {idx}: {r:?}"
                );
                assert!(r.matches, "recovery must repair and match: {r:?}");
            }
        }
    }

    #[test]
    fn recovery_is_a_pure_function_of_the_image() {
        let cfg = WorkloadCfg::queue(Protection::Undo, OpStreamCfg::default());
        let stream = OpStream::generate(cfg.stream);
        let (layout, img, _) = crash_at(
            cfg,
            CrashTrigger::AtPhaseIndex {
                phase: PH_DS_MUT,
                index: 40,
            },
        );
        let a = recover_verify_resume(cfg, layout, cfg.system(), &img, &stream);
        let b = recover_verify_resume(cfg, layout, cfg.system(), &img, &stream);
        assert_eq!(a.resume_from, b.resume_from);
        assert_eq!(a.replayed, b.replayed);
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.sim_time_ps, b.sim_time_ps);
    }
}
