//! The recoverable checkpoint + CAS primitives (the Memento idiom).
//!
//! Both persistent structures are built from exactly two primitives:
//!
//! * [`Checkpoint`] — a crash-atomic value cell: two sequence-tagged
//!   slots in separate cache lines; `store` writes the losing slot and
//!   persists it, `load` returns the slot with the larger tag. A crash
//!   anywhere inside `store` leaves either the old or the new value
//!   readable — never a torn one.
//! * [`OpTable`] — per-client operation records providing *detectable
//!   recoverability*: each operation persists an announcement before its
//!   body runs and records completion atomically with its effects (inside
//!   the undo transaction). After a crash, `announced > completed` tells
//!   recovery exactly which operation was in flight for each client —
//!   the detectability property a bare CAS cannot offer.

use adcc_sim::parray::PArray;
use adcc_sim::system::MemorySystem;

/// Words per slot line (one cache line).
const LINE_WORDS: usize = 8;

/// A two-slot, sequence-tagged, crash-atomic `u64` cell.
pub struct Checkpoint {
    /// Two lines: words 0..2 = slot A `(tag, value)`, words 8..10 = slot B.
    slots: PArray<u64>,
}

impl Checkpoint {
    /// Allocate and initialize a cell holding `0`.
    pub fn new(sys: &mut MemorySystem) -> Self {
        let slots = PArray::<u64>::alloc_nvm(sys, 2 * LINE_WORDS);
        slots.fill(sys, 0);
        slots.set(sys, 0, 1); // slot A: tag 1, value 0
        slots.persist_all(sys);
        sys.sfence();
        Checkpoint { slots }
    }

    /// Re-attach at a known base address (post-crash).
    pub fn attach(base: u64) -> Self {
        Checkpoint {
            slots: PArray::new(base, 2 * LINE_WORDS),
        }
    }

    /// Base address, for layouts and post-crash discovery.
    pub fn base(&self) -> u64 {
        self.slots.base()
    }

    /// Crash-atomically replace the stored value.
    pub fn store(&self, sys: &mut MemorySystem, value: u64) {
        let tag_a = self.slots.get(sys, 0);
        let tag_b = self.slots.get(sys, LINE_WORDS);
        // Overwrite the slot with the smaller tag; the winner stays valid
        // until the loser's line is durably replaced.
        let (dst, tag) = if tag_a >= tag_b {
            (LINE_WORDS, tag_a + 1)
        } else {
            (0, tag_b + 1)
        };
        self.slots.set(sys, dst, tag);
        self.slots.set(sys, dst + 1, value);
        #[cfg(not(feature = "mutant-ckpt-slot"))]
        sys.persist_line(self.slots.addr(dst));
        // Seeded mutant for the analyzer's mutation suite: persist the
        // *winning* (clean) slot line instead of the one just written —
        // the two-slot publish is reordered and the new value never
        // becomes durable (a redundant flush of a clean line plus an
        // unpersisted store).
        #[cfg(feature = "mutant-ckpt-slot")]
        sys.persist_line(self.slots.addr(if dst == 0 { LINE_WORDS } else { 0 }));
        sys.sfence();
    }

    /// Read the current value (the slot with the larger tag).
    pub fn load(&self, sys: &mut MemorySystem) -> u64 {
        let tag_a = self.slots.get(sys, 0);
        let tag_b = self.slots.get(sys, LINE_WORDS);
        if tag_a >= tag_b {
            self.slots.get(sys, 1)
        } else {
            self.slots.get(sys, LINE_WORDS + 1)
        }
    }

    /// Both slot line addresses (for undo-log snapshotting before an
    /// in-transaction `store`).
    pub fn line_addrs(&self) -> [u64; 2] {
        [self.slots.addr(0), self.slots.addr(LINE_WORDS)]
    }

    /// Reset to the initial state (value 0) — used by rebuild-from-scratch
    /// recovery.
    pub fn reinit(&self, sys: &mut MemorySystem) {
        self.slots.fill(sys, 0);
        self.slots.set(sys, 0, 1);
        self.slots.persist_all(sys);
        sys.sfence();
    }
}

/// Per-client announce/complete records: one cache line per client —
/// `[announced_seq, completed_seq, result]`.
pub struct OpTable {
    table: PArray<u64>,
    clients: u32,
}

impl OpTable {
    /// Allocate a table for `clients` clients, all records zeroed.
    pub fn new(sys: &mut MemorySystem, clients: u32) -> Self {
        let table = PArray::<u64>::alloc_nvm(sys, clients as usize * LINE_WORDS);
        table.fill(sys, 0);
        table.persist_all(sys);
        sys.sfence();
        OpTable { table, clients }
    }

    /// Re-attach at a known base address (post-crash).
    pub fn attach(base: u64, clients: u32) -> Self {
        OpTable {
            table: PArray::new(base, clients as usize * LINE_WORDS),
            clients,
        }
    }

    /// Base address, for layouts and post-crash discovery.
    pub fn base(&self) -> u64 {
        self.table.base()
    }

    /// The client record's line address (for undo-log snapshotting).
    pub fn line_addr(&self, client: u32) -> u64 {
        self.table.addr(client as usize * LINE_WORDS)
    }

    /// Persist the announcement that `client` is starting op `seq`.
    /// Called *before* the operation body (and outside its transaction),
    /// so the announcement survives any crash inside the op.
    pub fn announce(&self, sys: &mut MemorySystem, client: u32, seq: u64) {
        self.table.set(sys, client as usize * LINE_WORDS, seq);
        sys.persist_line(self.line_addr(client));
        sys.sfence();
    }

    /// Record completion of op `seq` with `result`. Durability is the
    /// caller's protocol: inside an undo transaction this is atomic with
    /// the op's effects; unprotected it may leak or be lost.
    pub fn complete(&self, sys: &mut MemorySystem, client: u32, seq: u64, result: u64) {
        let w = client as usize * LINE_WORDS;
        self.table.set(sys, w + 1, seq);
        self.table.set(sys, w + 2, result);
    }

    /// `(announced, completed)` for one client.
    pub fn status(&self, sys: &mut MemorySystem, client: u32) -> (u64, u64) {
        let w = client as usize * LINE_WORDS;
        (self.table.get(sys, w), self.table.get(sys, w + 1))
    }

    /// Clients whose announced op never completed — the recovery-time
    /// detectability report: `(client, in-flight seq)` pairs.
    pub fn in_flight(&self, sys: &mut MemorySystem) -> Vec<(u32, u64)> {
        (0..self.clients)
            .filter_map(|c| {
                let (a, done) = self.status(sys, c);
                (a > done).then_some((c, a))
            })
            .collect()
    }

    /// Zero every record — used by rebuild-from-scratch recovery.
    pub fn reinit(&self, sys: &mut MemorySystem) {
        self.table.fill(sys, 0);
        self.table.persist_all(sys);
        sys.sfence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::system::SystemConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
    }

    #[test]
    fn checkpoint_store_load_roundtrip() {
        let mut s = sys();
        let ck = Checkpoint::new(&mut s);
        assert_eq!(ck.load(&mut s), 0);
        for v in [7u64, 8, 9, 100] {
            ck.store(&mut s, v);
            assert_eq!(ck.load(&mut s), v);
        }
    }

    #[test]
    fn checkpoint_survives_crash_between_stores() {
        let mut s = sys();
        let ck = Checkpoint::new(&mut s);
        ck.store(&mut s, 41);
        ck.store(&mut s, 42);
        let base = ck.base();
        let img = s.crash();
        let mut s2 = MemorySystem::from_image(SystemConfig::nvm_only(4096, 1 << 20), &img);
        let ck2 = Checkpoint::attach(base);
        assert_eq!(ck2.load(&mut s2), 42, "store persists before returning");
    }

    #[test]
    fn checkpoint_torn_store_falls_back_to_old_value() {
        let mut s = sys();
        let ck = Checkpoint::new(&mut s);
        ck.store(&mut s, 10);
        // Simulate a crash mid-store: the losing slot gets a new tag and
        // value written but never persisted (cache-resident only).
        let tag_a = ck.slots.get(&mut s, 0);
        let tag_b = ck.slots.get(&mut s, LINE_WORDS);
        let dst = if tag_a >= tag_b { LINE_WORDS } else { 0 };
        ck.slots.set(&mut s, dst, tag_a.max(tag_b) + 1);
        ck.slots.set(&mut s, dst + 1, 999);
        let base = ck.base();
        let img = s.crash(); // unpersisted slot write lost
        let mut s2 = MemorySystem::from_image(SystemConfig::nvm_only(4096, 1 << 20), &img);
        assert_eq!(Checkpoint::attach(base).load(&mut s2), 10);
    }

    #[test]
    fn optable_reports_in_flight_ops() {
        let mut s = sys();
        let t = OpTable::new(&mut s, 4);
        t.announce(&mut s, 2, 9);
        t.complete(&mut s, 2, 9, 123);
        t.announce(&mut s, 1, 10);
        // Client 1 announced op 10 but never completed it.
        assert_eq!(t.in_flight(&mut s), vec![(1, 10)]);
        assert_eq!(t.status(&mut s, 2), (9, 9));
    }
}
