//! A persistent MSC-style (Michael–Scott) linked queue on allocator
//! blocks.
//!
//! One node per allocator block (a single cache line): `[value, seq,
//! next]`. A sentinel node anchors the queue; `head` points at the
//! sentinel, `tail` at the last node. Control words carry sequence tags
//! in the same line so recovery can detect leaked (post-watermark)
//! head/tail swings — the classic unflushed-pointer bug class.
//!
//! The queue exposes *steps*, not whole operations: the workload driver
//! composes them with allocator phases, detectability records, and crash
//! polls between the steps.

use adcc_pmem::undo::UndoPool;
use adcc_sim::parray::PArray;
use adcc_sim::system::MemorySystem;

use crate::alloc::PAlloc;
use crate::NONE_BLOCK;

/// Control-array words (two lines): word 0 = head block, word 1 = last
/// dequeue seq tag; word 8 = tail block, word 9 = last enqueue seq tag.
const CTRL_WORDS: usize = 16;
const TAIL: usize = 8;

/// One node, read back from a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Enqueued payload.
    pub value: u64,
    /// Sequence number of the enqueuing operation.
    pub seq: u64,
    /// Next block index, or [`NONE_BLOCK`] at the tail.
    pub next: u64,
}

/// The persistent queue handle. The sentinel block is allocated by
/// [`PQueue::init`].
#[derive(Clone)]
pub struct PQueue {
    ctrl: PArray<u64>,
}

impl PQueue {
    /// Allocate the control lines (queue not yet initialized — call
    /// [`init`](Self::init)).
    pub fn new(sys: &mut MemorySystem) -> Self {
        PQueue {
            ctrl: PArray::<u64>::alloc_nvm(sys, CTRL_WORDS),
        }
    }

    /// Re-attach at a known control base address (post-crash).
    pub fn attach(ctrl_base: u64) -> Self {
        PQueue {
            ctrl: PArray::new(ctrl_base, CTRL_WORDS),
        }
    }

    /// Control base address, for layouts and post-crash discovery.
    pub fn ctrl_base(&self) -> u64 {
        self.ctrl.base()
    }

    /// Allocate the sentinel from `alloc` and persist an empty queue —
    /// initialization and rebuild-from-scratch recovery share this path.
    pub fn init(&self, sys: &mut MemorySystem, alloc: &PAlloc) {
        let s = alloc
            .unlink_free(sys, None, 0)
            .expect("sentinel block available");
        alloc.mark_in_use(sys, None, s);
        self.write_node(sys, None, alloc, s, 0, 0);
        self.ctrl.set(sys, 0, s);
        self.ctrl.set(sys, 1, 0);
        self.ctrl.set(sys, TAIL, s);
        self.ctrl.set(sys, TAIL + 1, 0);
        self.ctrl.persist_all(sys);
        sys.persist_line(alloc.block_addr(s));
        sys.sfence();
    }

    /// Head (sentinel) block index.
    pub fn head(&self, sys: &mut MemorySystem) -> u64 {
        self.ctrl.get(sys, 0)
    }

    /// Tail block index.
    pub fn tail(&self, sys: &mut MemorySystem) -> u64 {
        self.ctrl.get(sys, TAIL)
    }

    /// `(dequeue_tag, enqueue_tag)` — the control lines' sequence tags.
    pub fn ctrl_tags(&self, sys: &mut MemorySystem) -> (u64, u64) {
        (self.ctrl.get(sys, 1), self.ctrl.get(sys, TAIL + 1))
    }

    /// Read node `b`.
    pub fn node(&self, sys: &mut MemorySystem, alloc: &PAlloc, b: u64) -> Node {
        let base = alloc.block_addr(b);
        let words = PArray::<u64>::new(base, 3);
        Node {
            value: words.get(sys, 0),
            seq: words.get(sys, 1),
            next: words.get(sys, 2),
        }
    }

    /// Write a fresh node into block `b` (`next` = none), snapshotting the
    /// block line first when undo-logged.
    pub fn write_node(
        &self,
        sys: &mut MemorySystem,
        pool: Option<&mut UndoPool>,
        alloc: &PAlloc,
        b: u64,
        value: u64,
        seq: u64,
    ) {
        let base = alloc.block_addr(b);
        if let Some(pool) = pool {
            pool.tx_add_range(sys, base, 24);
        }
        let words = PArray::<u64>::new(base, 3);
        words.set(sys, 0, value);
        words.set(sys, 1, seq);
        words.set(sys, 2, NONE_BLOCK);
    }

    /// Link `b` after node `prev` (the MSC "link tail.next" step).
    pub fn link(
        &self,
        sys: &mut MemorySystem,
        pool: Option<&mut UndoPool>,
        alloc: &PAlloc,
        prev: u64,
        b: u64,
    ) {
        let next_addr = alloc.block_addr(prev) + 16;
        if let Some(pool) = pool {
            pool.tx_add_range(sys, next_addr, 8);
        }
        PArray::<u64>::new(next_addr, 1).set(sys, 0, b);
    }

    /// Swing the tail pointer to `b`, tagging the line with `seq`.
    pub fn swing_tail(
        &self,
        sys: &mut MemorySystem,
        pool: Option<&mut UndoPool>,
        b: u64,
        seq: u64,
    ) {
        if let Some(pool) = pool {
            pool.tx_add_range(sys, self.ctrl.addr(TAIL), 16);
        }
        self.ctrl.set(sys, TAIL, b);
        self.ctrl.set(sys, TAIL + 1, seq);
    }

    /// Advance the head (dequeue: `first` becomes the new sentinel),
    /// tagging the line with `seq`.
    pub fn advance_head(
        &self,
        sys: &mut MemorySystem,
        pool: Option<&mut UndoPool>,
        first: u64,
        seq: u64,
    ) {
        if let Some(pool) = pool {
            pool.tx_add_range(sys, self.ctrl.addr(0), 16);
        }
        self.ctrl.set(sys, 0, first);
        self.ctrl.set(sys, 1, seq);
    }

    /// The control line addresses `(head_line, tail_line)`.
    pub fn ctrl_addrs(&self) -> (u64, u64) {
        (self.ctrl.addr(0), self.ctrl.addr(TAIL))
    }

    /// Walk the queue: `(contents, reachable_blocks)` where contents are
    /// the `(value, seq)` pairs of the non-sentinel nodes in FIFO order
    /// and `reachable_blocks` includes the sentinel. Errors describe
    /// structural corruption (out-of-range links, cycles, tail mismatch).
    #[allow(clippy::type_complexity)]
    pub fn walk(
        &self,
        sys: &mut MemorySystem,
        alloc: &PAlloc,
    ) -> Result<(Vec<(u64, u64)>, Vec<u64>), String> {
        let head = self.head(sys);
        let tail = self.tail(sys);
        let mut contents = Vec::new();
        let mut reachable = Vec::new();
        let mut seen = vec![false; alloc.blocks() as usize];
        let mut b = head;
        loop {
            if b >= alloc.blocks() {
                return Err(format!("queue link out of range: {b}"));
            }
            if seen[b as usize] {
                return Err(format!("queue cycle at block {b}"));
            }
            seen[b as usize] = true;
            reachable.push(b);
            let node = self.node(sys, alloc, b);
            if b != head {
                contents.push((node.value, node.seq));
            }
            if node.next == NONE_BLOCK {
                break;
            }
            b = node.next;
        }
        if b != tail {
            return Err(format!("tail {tail} is not the last reachable node {b}"));
        }
        Ok((contents, reachable))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::system::SystemConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
    }

    #[test]
    fn enqueue_dequeue_fifo_order() {
        let mut s = sys();
        let alloc = PAlloc::new(&mut s, 8);
        let q = PQueue::new(&mut s);
        q.init(&mut s, &alloc);
        for (i, v) in [10u64, 20, 30].iter().enumerate() {
            let seq = i as u64 + 1;
            let b = alloc.unlink_free(&mut s, None, seq).unwrap();
            alloc.mark_in_use(&mut s, None, b);
            q.write_node(&mut s, None, &alloc, b, *v, seq);
            let t = q.tail(&mut s);
            q.link(&mut s, None, &alloc, t, b);
            q.swing_tail(&mut s, None, b, seq);
        }
        let (contents, reachable) = q.walk(&mut s, &alloc).unwrap();
        assert_eq!(contents, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(reachable.len(), 4, "sentinel + 3 nodes");

        // Dequeue one: head advances, old sentinel freed.
        let sentinel = q.head(&mut s);
        let first = q.node(&mut s, &alloc, sentinel).next;
        q.advance_head(&mut s, None, first, 4);
        alloc.stage_free(&mut s, None, sentinel);
        alloc.push_free(&mut s, None, sentinel, 4);
        let (contents, _) = q.walk(&mut s, &alloc).unwrap();
        assert_eq!(contents, vec![(20, 2), (30, 3)]);
    }

    #[test]
    fn walk_detects_tail_mismatch() {
        let mut s = sys();
        let alloc = PAlloc::new(&mut s, 8);
        let q = PQueue::new(&mut s);
        q.init(&mut s, &alloc);
        q.swing_tail(&mut s, None, 5, 9); // tail points at an unlinked block
        let err = q.walk(&mut s, &alloc).unwrap_err();
        assert!(err.contains("tail"), "{err}");
    }
}
