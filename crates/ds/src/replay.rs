//! Host-side replay oracles.
//!
//! These are plain volatile models of the two persistent structures,
//! driven by an [`OpStream`] prefix. The recovery check replays the
//! surviving persistent structure against the matching prefix, so a
//! recovered state is *linearizable* exactly when it equals the oracle at
//! some prefix length — the definition every ds trial is classified by.

use std::collections::{BTreeMap, VecDeque};

use crate::ops::{OpKind, OpStream};

/// Replay the first `n` ops of `stream` against a volatile FIFO queue.
/// Returns the `(value, enqueue_seq)` pairs still queued, front first —
/// directly comparable to [`crate::PQueue::walk`] contents.
pub fn host_queue(stream: &OpStream, n: u64) -> VecDeque<(u64, u64)> {
    let mut q = VecDeque::new();
    for op in stream.ops().iter().take(n as usize) {
        match op.kind {
            OpKind::Put => q.push_back((op.value, op.seq)),
            OpKind::Del => {
                q.pop_front();
            }
            OpKind::Get => {}
        }
    }
    q
}

/// Replay the first `n` ops of `stream` against a volatile map. Returns
/// `key -> (value, writer_seq)` — directly comparable to
/// [`crate::PHash::scan`] output.
pub fn host_hash(stream: &OpStream, n: u64) -> BTreeMap<u64, (u64, u64)> {
    let mut m = BTreeMap::new();
    for op in stream.ops().iter().take(n as usize) {
        match op.kind {
            OpKind::Put => {
                m.insert(op.key, (op.value, op.seq));
            }
            OpKind::Del => {
                m.remove(&op.key);
            }
            OpKind::Get => {}
        }
    }
    m
}

/// The queue oracle flattened to the `walk` contents shape.
pub fn host_queue_contents(stream: &OpStream, n: u64) -> Vec<(u64, u64)> {
    host_queue(stream, n).into_iter().collect()
}

/// The hash oracle flattened to the `scan` live-slot shape (sorted
/// `(key, value, seq)` triples).
pub fn host_hash_contents(stream: &OpStream, n: u64) -> Vec<(u64, u64, u64)> {
    host_hash(stream, n)
        .into_iter()
        .map(|(k, (v, s))| (k, v, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpStreamCfg;

    #[test]
    fn prefixes_are_monotone_consistent() {
        let s = OpStream::generate(OpStreamCfg::default());
        // A prefix oracle at n must equal replaying the full stream's
        // first n ops — trivially true by construction, but pin the
        // Get-is-a-no-op property: streams with reads only differ from
        // their write-only projection in no way.
        for n in [0, 1, 40, s.len()] {
            let q = host_queue_contents(&s, n);
            let puts: u64 = s
                .ops()
                .iter()
                .take(n as usize)
                .filter(|o| o.kind == OpKind::Put)
                .count() as u64;
            let dels_effective = puts - q.len() as u64;
            let dels: u64 = s
                .ops()
                .iter()
                .take(n as usize)
                .filter(|o| o.kind == OpKind::Del)
                .count() as u64;
            assert!(
                dels_effective <= dels,
                "queue can't lose more than Del count"
            );
        }
    }

    #[test]
    fn hash_overwrite_keeps_latest_writer() {
        let s = OpStream::generate(OpStreamCfg::default());
        let m = host_hash(&s, s.len());
        for (k, (v, seq)) in &m {
            // A live key's last write is a Put (a trailing Del would have
            // removed it), so the oracle must hold exactly that Put.
            let last_put = s
                .ops()
                .iter()
                .rfind(|o| o.kind == OpKind::Put && o.key == *k)
                .expect("live key has a Put");
            assert_eq!((*v, *seq), (last_put.value, last_put.seq));
        }
    }
}
