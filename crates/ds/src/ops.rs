//! The seeded multi-client op-stream generator.
//!
//! A stream is a deterministic function of its configuration: same seed,
//! same clients, same mix → byte-identical operation sequence. Keys are
//! drawn from a skewed (quadratic power-law) distribution so hot keys see
//! repeated overwrites and deletes — the access pattern under which
//! flush-ordering bugs in persistent structures actually surface.

/// One operation kind. The queue workload maps `Put` to *enqueue*, `Del`
/// to *dequeue*, and `Get` to a front peek, so a single generator drives
/// both structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Insert or overwrite `key` with `value` (enqueue for queues).
    Put,
    /// Read `key` (front peek for queues). Never mutates the structure.
    Get,
    /// Remove `key` (dequeue for queues). A no-op if absent/empty.
    Del,
}

/// One generated operation. `seq` is the 1-based global position in the
/// stream — the unit every ds crash site indexes by.
#[derive(Debug, Clone, Copy)]
pub struct Op {
    /// 1-based global sequence number.
    pub seq: u64,
    /// Issuing client (0-based, `< OpStreamCfg::clients`).
    pub client: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// Skew-drawn key (`< OpStreamCfg::keys`).
    pub key: u64,
    /// Payload value, unique per operation (`seq * 1000 + client`).
    pub value: u64,
}

/// Generator knobs. All campaign scenarios derive their streams from a
/// seed plus these, so a report header is enough to regenerate the exact
/// workload.
#[derive(Debug, Clone, Copy)]
pub struct OpStreamCfg {
    /// PRNG seed (split from the campaign seed per scenario).
    pub seed: u64,
    /// Number of interleaved clients.
    pub clients: u32,
    /// Operations in the stream.
    pub ops: u64,
    /// Key-space size; keys are drawn with quadratic skew toward 0.
    pub keys: u64,
    /// Percentage of read (`Get`) operations.
    pub read_pct: u32,
    /// Percentage of delete (`Del`) operations. The remainder are `Put`s.
    pub del_pct: u32,
}

impl Default for OpStreamCfg {
    fn default() -> Self {
        OpStreamCfg {
            seed: 42,
            clients: 4,
            ops: 160,
            keys: 48,
            read_pct: 30,
            del_pct: 20,
        }
    }
}

/// SplitMix64 — the classic 64-bit seed expander; deterministic and
/// dependency-free.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A fully generated operation stream.
#[derive(Debug, Clone)]
pub struct OpStream {
    cfg: OpStreamCfg,
    ops: Vec<Op>,
}

impl OpStream {
    /// Generate the stream for `cfg`. Pure: same `cfg`, same stream.
    pub fn generate(cfg: OpStreamCfg) -> Self {
        let mut rng = SplitMix64::new(cfg.seed);
        let mut ops = Vec::with_capacity(cfg.ops as usize);
        for seq in 1..=cfg.ops {
            let client = rng.below(cfg.clients as u64) as u32;
            let roll = rng.below(100) as u32;
            let kind = if roll < cfg.read_pct {
                OpKind::Get
            } else if roll < cfg.read_pct + cfg.del_pct {
                OpKind::Del
            } else {
                OpKind::Put
            };
            // Quadratic skew: u² maps the uniform draw toward small keys.
            let u = rng.below(1 << 20) as f64 / (1u64 << 20) as f64;
            let key = ((u * u) * cfg.keys as f64) as u64;
            let key = key.min(cfg.keys - 1);
            ops.push(Op {
                seq,
                client,
                kind,
                key,
                value: seq * 1000 + client as u64,
            });
        }
        OpStream { cfg, ops }
    }

    /// The generator configuration this stream was drawn from.
    pub fn cfg(&self) -> &OpStreamCfg {
        &self.cfg
    }

    /// The operations, in global order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Stream length.
    pub fn len(&self) -> u64 {
        self.ops.len() as u64
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = OpStream::generate(OpStreamCfg::default());
        let b = OpStream::generate(OpStreamCfg::default());
        for (x, y) in a.ops().iter().zip(b.ops()) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.client, y.client);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.key, y.key);
            assert_eq!(x.value, y.value);
        }
        let c = OpStream::generate(OpStreamCfg {
            seed: 43,
            ..OpStreamCfg::default()
        });
        assert!(
            a.ops().iter().zip(c.ops()).any(|(x, y)| x.key != y.key),
            "different seeds must diverge"
        );
    }

    #[test]
    fn mix_and_bounds_respect_the_cfg() {
        let cfg = OpStreamCfg {
            ops: 2000,
            ..OpStreamCfg::default()
        };
        let s = OpStream::generate(cfg);
        let gets = s.ops().iter().filter(|o| o.kind == OpKind::Get).count();
        let dels = s.ops().iter().filter(|o| o.kind == OpKind::Del).count();
        assert!((400..800).contains(&gets), "~30% reads, got {gets}");
        assert!((250..550).contains(&dels), "~20% deletes, got {dels}");
        assert!(s.ops().iter().all(|o| o.key < cfg.keys));
        assert!(s.ops().iter().all(|o| o.client < cfg.clients));
        assert!(s
            .ops()
            .iter()
            .enumerate()
            .all(|(i, o)| o.seq == i as u64 + 1));
    }

    #[test]
    fn keys_are_skewed_toward_zero() {
        let s = OpStream::generate(OpStreamCfg {
            ops: 4000,
            ..OpStreamCfg::default()
        });
        let low = s.ops().iter().filter(|o| o.key < 12).count();
        let high = s.ops().iter().filter(|o| o.key >= 36).count();
        assert!(
            low > 2 * high,
            "quadratic skew: bottom quarter ({low}) must dominate top quarter ({high})"
        );
    }
}
