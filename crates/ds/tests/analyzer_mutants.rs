//! Mutation-testing half of the analyzer's validity proof, ds side.
//!
//! Two seeded mutants, each a classic persistent-data-structure bug:
//!
//! - `mutant-alloc-head`: `PAlloc::reinit` skips the ordered head
//!   persist → the hottest metadata line is still dirty when the fence
//!   retires (`unpersisted-store`).
//! - `mutant-ckpt-slot`: `Checkpoint::store` persists the *stale* slot
//!   line instead of the one it just wrote → the two-slot publish is
//!   reordered (`redundant-flush` on the clean line, plus an
//!   `unpersisted-store` on the written one).
//!
//! The clean tree must be silent on both protocols. The nightly
//! `mutants` job runs this file three ways:
//!
//! ```text
//! cargo test -p adcc_ds --test analyzer_mutants
//! cargo test -p adcc_ds --features mutant-alloc-head --test analyzer_mutants
//! cargo test -p adcc_ds --features mutant-ckpt-slot --test analyzer_mutants
//! ```

use adcc_analyze::{analyze, Checks, Diagnostic, Region, Role};
use adcc_ds::{Checkpoint, PAlloc};
use adcc_sim::events::EventRecorder;
use adcc_sim::line::LINE_SIZE;
use adcc_sim::system::{MemorySystem, SystemConfig};

fn sys() -> MemorySystem {
    MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
}

/// Reinitialize an 8-block allocator under the recorder and return the
/// sanitizer's protocol diagnostics.
fn alloc_reinit_diagnostics() -> Vec<Diagnostic> {
    let mut s = sys();
    let a = PAlloc::new(&mut s, 8);
    let layout = a.layout();
    let mut rec = EventRecorder::new();
    rec.track_range(layout.head_base, LINE_SIZE);
    rec.track_range(layout.next_base, 8 * 8);
    s.attach_recorder(rec);
    a.reinit(&mut s);
    let rec = s.take_recorder().expect("recorder attached");
    let regions = vec![
        Region::from_range(
            "ds/alloc-head",
            layout.head_base,
            LINE_SIZE,
            Role::Payload,
            0,
            Checks::ALL,
        ),
        Region::from_range(
            "ds/alloc-next",
            layout.next_base,
            8 * 8,
            Role::Payload,
            0,
            Checks::ALL,
        ),
    ];
    analyze(rec.events(), &regions).protocol
}

/// Store one value through the two-slot checkpoint under the recorder
/// and return the sanitizer's protocol diagnostics.
fn ckpt_store_diagnostics() -> Vec<Diagnostic> {
    let mut s = sys();
    let ck = Checkpoint::new(&mut s);
    let [slot_a, slot_b] = ck.line_addrs();
    let mut rec = EventRecorder::new();
    rec.track_range(slot_a, LINE_SIZE);
    rec.track_range(slot_b, LINE_SIZE);
    s.attach_recorder(rec);
    ck.store(&mut s, 7);
    let rec = s.take_recorder().expect("recorder attached");
    let regions = vec![
        Region::from_range(
            "ds/ckpt-slot-a",
            slot_a,
            LINE_SIZE,
            Role::Payload,
            0,
            Checks::ALL,
        ),
        Region::from_range(
            "ds/ckpt-slot-b",
            slot_b,
            LINE_SIZE,
            Role::Payload,
            0,
            Checks::ALL,
        ),
    ];
    analyze(rec.events(), &regions).protocol
}

#[cfg(not(any(feature = "mutant-alloc-head", feature = "mutant-ckpt-slot")))]
mod clean {
    use super::*;

    #[test]
    fn clean_alloc_reinit_reports_zero_diagnostics() {
        let diags = alloc_reinit_diagnostics();
        assert!(diags.is_empty(), "clean tree must be silent: {diags:?}");
    }

    #[test]
    fn clean_ckpt_store_reports_zero_diagnostics() {
        let diags = ckpt_store_diagnostics();
        assert!(diags.is_empty(), "clean tree must be silent: {diags:?}");
    }
}

#[cfg(feature = "mutant-alloc-head")]
#[test]
fn skipped_head_persist_is_flagged_as_unpersisted_store() {
    use adcc_analyze::Category;
    let diags = alloc_reinit_diagnostics();
    assert!(!diags.is_empty(), "mutant must be caught");
    assert!(
        diags
            .iter()
            .all(|d| d.category == Category::UnpersistedStore && d.region == "ds/alloc-head"),
        "wrong category or region: {diags:?}"
    );
}

#[cfg(feature = "mutant-ckpt-slot")]
#[test]
fn reordered_two_slot_publish_is_flagged() {
    use adcc_analyze::Category;
    let diags = ckpt_store_diagnostics();
    assert!(
        diags.iter().any(|d| d.category == Category::RedundantFlush),
        "the stale-slot flush must be flagged redundant: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.category == Category::UnpersistedStore),
        "the written slot must be flagged unpersisted: {diags:?}"
    );
}
