//! Mutation-testing half of the analyzer's validity proof, sim side.
//!
//! The same epoch-publish protocol runs twice — in the clean tree and
//! under the `mutant-epoch-fence` feature (the barrier flushes without
//! its ordering fence). The persist-order sanitizer must stay silent on
//! the clean tree and flag the mutant with the correct category
//! (`missing-fence`). The nightly `mutants` job runs this file both ways:
//!
//! ```text
//! cargo test -p adcc_sim --test analyzer_mutants
//! cargo test -p adcc_sim --features mutant-epoch-fence --test analyzer_mutants
//! ```

use adcc_analyze::{analyze, Checks, Diagnostic, Region, Role};
use adcc_sim::epoch::EpochPersist;
use adcc_sim::events::EventRecorder;
use adcc_sim::line::LINE_SIZE;
use adcc_sim::system::{MemorySystem, SystemConfig};

/// Dirty four lines, publish them through an epoch barrier, and return
/// the sanitizer's protocol diagnostics.
fn epoch_publish_diagnostics() -> Vec<Diagnostic> {
    let mut s = MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20));
    let a = s.alloc_nvm(4 * LINE_SIZE);
    let mut rec = EventRecorder::new();
    rec.track_range(a, 4 * LINE_SIZE);
    s.attach_recorder(rec);

    for i in 0..4u64 {
        s.write_bytes(a + i * LINE_SIZE as u64, &[i as u8 + 1; 8]);
    }
    let mut e = EpochPersist::new();
    e.note_range(a, 4 * LINE_SIZE);
    e.barrier(&mut s);

    let rec = s.take_recorder().expect("recorder attached");
    let regions = vec![Region::from_range(
        "epoch/payload",
        a,
        4 * LINE_SIZE,
        Role::Payload,
        0,
        Checks::ALL,
    )];
    analyze(rec.events(), &regions).protocol
}

#[cfg(not(feature = "mutant-epoch-fence"))]
#[test]
fn clean_epoch_publish_reports_zero_diagnostics() {
    let diags = epoch_publish_diagnostics();
    assert!(diags.is_empty(), "clean tree must be silent: {diags:?}");
}

#[cfg(feature = "mutant-epoch-fence")]
#[test]
fn dropped_epoch_fence_is_flagged_as_missing_fence() {
    use adcc_analyze::Category;
    let diags = epoch_publish_diagnostics();
    assert_eq!(diags.len(), 4, "one open window per line: {diags:?}");
    assert!(
        diags.iter().all(|d| d.category == Category::MissingFence),
        "wrong category: {diags:?}"
    );
    assert!(diags.iter().all(|d| d.region == "epoch/payload"));
}
