//! Property tests for the crash emulator's core guarantee:
//!
//! For any sequence of writes, reads, flushes and persists, (1) the program
//! always observes its own last write (cache coherence), and (2) after a
//! crash, every line's NVM value is a value that line actually held at some
//! point *no older than its last explicit persist* — i.e. the image is
//! stale-but-prefix-consistent per line, never torn and never older than a
//! persist barrier.

use proptest::prelude::*;

use adcc_sim::prelude::*;

/// One step of the random program.
#[derive(Debug, Clone)]
enum Op {
    /// Write value `v` to slot `i`.
    Write { i: usize, v: u64 },
    /// Read slot `i` and check coherence.
    Read { i: usize },
    /// CLFLUSH the line containing slot `i`.
    Flush { i: usize },
    /// Fully persist the line containing slot `i`.
    Persist { i: usize },
    /// Drain the DRAM cache (hetero only; no-op otherwise).
    Drain,
}

const SLOTS: usize = 64;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..SLOTS, any::<u64>()).prop_map(|(i, v)| Op::Write { i, v }),
        3 => (0..SLOTS).prop_map(|i| Op::Read { i }),
        1 => (0..SLOTS).prop_map(|i| Op::Flush { i }),
        1 => (0..SLOTS).prop_map(|i| Op::Persist { i }),
        1 => Just(Op::Drain),
    ]
}

/// Reference model: per slot, the history of values and the index of the
/// last value that an explicit persist forced into NVM.
struct RefModel {
    history: Vec<Vec<u64>>,
    persisted_floor: Vec<usize>,
}

impl RefModel {
    fn new() -> Self {
        RefModel {
            history: vec![vec![0]; SLOTS],
            persisted_floor: vec![0; SLOTS],
        }
    }

    fn write(&mut self, i: usize, v: u64) {
        self.history[i].push(v);
    }

    fn logical(&self, i: usize) -> u64 {
        *self.history[i].last().unwrap()
    }

    /// An explicit full persist pins the floor at the current value.
    fn persist(&mut self, i: usize) {
        self.persisted_floor[i] = self.history[i].len() - 1;
    }

    /// Acceptable post-crash values: history from the floor onward.
    fn acceptable(&self, i: usize) -> &[u64] {
        &self.history[i][self.persisted_floor[i]..]
    }
}

fn run_scenario(sys_cfg: SystemConfig, ops: &[Op], hetero: bool) -> Result<(), TestCaseError> {
    let mut sys = MemorySystem::new(sys_cfg);
    // One u64 per line so per-slot persistence is exactly per-line.
    let arr = PArray::<u64>::alloc_nvm(&mut sys, SLOTS * 8);
    let slot = |i: usize| i * 8;
    let mut model = RefModel::new();

    for op in ops {
        match *op {
            Op::Write { i, v } => {
                arr.set(&mut sys, slot(i), v);
                model.write(i, v);
            }
            Op::Read { i } => {
                let got = arr.get(&mut sys, slot(i));
                prop_assert_eq!(got, model.logical(i), "coherence violated at slot {}", i);
            }
            Op::Flush { i } => {
                sys.clflush(arr.addr(slot(i)));
                if !hetero {
                    // Without a DRAM cache, CLFLUSH is a full persist.
                    model.persist(i);
                }
            }
            Op::Persist { i } => {
                sys.persist_line(arr.addr(slot(i)));
                model.persist(i);
            }
            Op::Drain => {
                sys.drain_dram_cache();
            }
        }
    }

    let img = sys.crash();
    for i in 0..SLOTS {
        let nvm_val = img.read_u64(arr.addr(slot(i)));
        let ok = model.acceptable(i).contains(&nvm_val);
        prop_assert!(
            ok,
            "slot {i}: NVM value {nvm_val} not in acceptable suffix {:?}",
            model.acceptable(i)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// NVM-only platform: tiny cache forces constant evictions.
    #[test]
    fn persistence_ordering_nvm_only(ops in prop::collection::vec(op_strategy(), 1..300)) {
        // 8 lines of CPU cache over 64 slots: heavy eviction pressure.
        run_scenario(SystemConfig::nvm_only(8 * 64, 1 << 16), &ops, false)?;
    }

    /// Heterogeneous platform: two volatile levels between program and NVM.
    #[test]
    fn persistence_ordering_hetero(ops in prop::collection::vec(op_strategy(), 1..300)) {
        run_scenario(
            SystemConfig::heterogeneous(8 * 64, 16 * 64, 1 << 16),
            &ops,
            true,
        )?;
    }

    /// A persist followed immediately by a crash always lands the exact value.
    #[test]
    fn persist_is_exact(vals in prop::collection::vec(any::<u64>(), 1..SLOTS)) {
        let mut sys = MemorySystem::new(SystemConfig::heterogeneous(8 * 64, 16 * 64, 1 << 16));
        let arr = PArray::<u64>::alloc_nvm(&mut sys, vals.len());
        for (i, v) in vals.iter().enumerate() {
            arr.set(&mut sys, i, *v);
        }
        arr.persist_all(&mut sys);
        let img = sys.crash();
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(img.read_u64(arr.addr(i)), *v);
        }
    }

    /// Copy-on-write crash forks are exact: at arbitrary points of an
    /// arbitrary program, a `DeltaImage` materializes to the byte-exact
    /// `crash_fork` image taken at the same instant — on both platforms,
    /// with forks accumulating against one shared base.
    #[test]
    fn delta_forks_materialize_exactly(
        ops in prop::collection::vec(op_strategy(), 1..300),
        hetero in any::<bool>(),
        fork_every in 1usize..40,
    ) {
        let cfg = if hetero {
            SystemConfig::heterogeneous(8 * 64, 16 * 64, 1 << 16)
        } else {
            SystemConfig::nvm_only(8 * 64, 1 << 16)
        };
        let mut sys = MemorySystem::new(cfg);
        let arr = PArray::<u64>::alloc_nvm(&mut sys, SLOTS * 8);
        let slot = |i: usize| i * 8;
        // Pre-base traffic: the base must absorb it.
        arr.set(&mut sys, 0, 7);
        sys.persist_line(arr.addr(0));
        let base = sys.delta_base();
        for (k, op) in ops.iter().enumerate() {
            match *op {
                Op::Write { i, v } => arr.set(&mut sys, slot(i), v),
                Op::Read { i } => { arr.get(&mut sys, slot(i)); }
                Op::Flush { i } => sys.clflush(arr.addr(slot(i))),
                Op::Persist { i } => sys.persist_line(arr.addr(slot(i))),
                Op::Drain => sys.drain_dram_cache(),
            }
            if k % fork_every == 0 {
                let delta = sys.crash_fork_delta(&base);
                let full = sys.crash_fork();
                let materialized = delta.materialize();
                prop_assert_eq!(materialized.bytes(), full.bytes(), "op {}", k);
                prop_assert_eq!(
                    delta.dirty_lines_at_crash(),
                    full.dirty_lines_at_crash(),
                    "op {}", k
                );
                // Reads through the delta agree with the full image.
                for i in 0..SLOTS {
                    prop_assert_eq!(
                        delta.read_u64(arr.addr(slot(i))),
                        full.read_u64(arr.addr(slot(i)))
                    );
                }
            }
        }
    }

    /// Simulated time is monotone and deterministic for a given op sequence.
    #[test]
    fn clock_is_deterministic(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let run = |ops: &[Op]| -> u64 {
            let mut sys = MemorySystem::new(SystemConfig::heterogeneous(8 * 64, 16 * 64, 1 << 16));
            let arr = PArray::<u64>::alloc_nvm(&mut sys, SLOTS * 8);
            let slot = |i: usize| i * 8;
            let mut last = 0u64;
            for op in ops {
                match *op {
                    Op::Write { i, v } => arr.set(&mut sys, slot(i), v),
                    Op::Read { i } => { arr.get(&mut sys, slot(i)); }
                    Op::Flush { i } => sys.clflush(arr.addr(slot(i))),
                    Op::Persist { i } => sys.persist_line(arr.addr(slot(i))),
                    Op::Drain => sys.drain_dram_cache(),
                }
                let now = sys.now().ps();
                assert!(now >= last, "clock went backwards");
                last = now;
            }
            sys.now().ps()
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
