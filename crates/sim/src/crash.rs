//! The crash emulator: trigger specifications and the poll protocol.
//!
//! The paper's PIN-based emulator lets the user trigger a crash either
//! "after a specific statement is executed" (an inserted
//! `crash_sim_output()` call) or "after a specific number of instructions".
//! We mirror both: applications poll the emulator at instrumented
//! *crash sites* (statement granularity), and an access-count trigger fires
//! at the first poll after the threshold (instruction-count granularity).

use std::ops::{Deref, DerefMut};

use crate::image::NvmImage;
use crate::system::{MemorySystem, SystemConfig};

/// An instrumented program point: a phase identifier plus a loop index.
///
/// Conventions used by `adcc-core`: the phase names the loop or pseudocode
/// line (e.g. "CG line 10", "ABFT loop 1"), the index is the iteration
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrashSite {
    /// Phase identifier (which loop / pseudocode line).
    pub phase: u32,
    /// Loop index within the phase.
    pub index: u64,
}

impl CrashSite {
    /// Site at `(phase, index)`.
    pub const fn new(phase: u32, index: u64) -> Self {
        CrashSite { phase, index }
    }
}

/// When the emulated machine should crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Run to completion.
    Never,
    /// Crash at the `occurrence`-th poll of exactly this site (1-based).
    AtSite {
        /// The instrumented site to watch.
        site: CrashSite,
        /// Which poll of the site fires the crash (1-based).
        occurrence: u32,
    },
    /// Crash at the first poll of any site in this phase with
    /// `index >= index` (useful when indices are data-dependent).
    AtPhaseIndex {
        /// Phase to watch.
        phase: u32,
        /// Minimum index that fires the crash.
        index: u64,
    },
    /// Crash at the first poll after `count` element accesses.
    AtAccessCount(u64),
    /// Crash at the first poll after the simulated clock passes `ps`.
    AtSimTimePs(u64),
}

/// The crash emulator: a [`MemorySystem`] plus a trigger. Dereferences to
/// the system so application code reads/writes through it directly.
pub struct CrashEmulator {
    sys: MemorySystem,
    trigger: CrashTrigger,
    site_hits: u32,
    fired: bool,
}

impl CrashEmulator {
    /// Fresh system from `cfg`, armed with `trigger`.
    pub fn new(cfg: SystemConfig, trigger: CrashTrigger) -> Self {
        CrashEmulator {
            sys: MemorySystem::new(cfg),
            trigger,
            site_hits: 0,
            fired: false,
        }
    }

    /// Wrap an existing system (e.g. one restored from an image).
    pub fn from_system(sys: MemorySystem, trigger: CrashTrigger) -> Self {
        CrashEmulator {
            sys,
            trigger,
            site_hits: 0,
            fired: false,
        }
    }

    /// The trigger this emulator is armed with.
    pub fn trigger(&self) -> CrashTrigger {
        self.trigger
    }

    /// Whether the trigger already fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Poll at an instrumented site; returns `true` when the application
    /// must crash now (it should then call [`CrashEmulator::crash_now`] and
    /// unwind).
    #[inline]
    pub fn poll(&mut self, site: CrashSite) -> bool {
        if self.fired {
            return false;
        }
        let fire = match self.trigger {
            CrashTrigger::Never => false,
            CrashTrigger::AtSite {
                site: s,
                occurrence,
            } => {
                if s == site {
                    self.site_hits += 1;
                    self.site_hits >= occurrence
                } else {
                    false
                }
            }
            CrashTrigger::AtPhaseIndex { phase, index } => {
                site.phase == phase && site.index >= index
            }
            CrashTrigger::AtAccessCount(n) => self.sys.access_count() >= n,
            CrashTrigger::AtSimTimePs(ps) => self.sys.now().ps() >= ps,
        };
        if fire {
            self.fired = true;
        }
        fire
    }

    /// Crash the machine (volatile state discarded) and return the NVM
    /// image a recovery process would see.
    pub fn crash_now(&mut self) -> NvmImage {
        self.fired = true;
        self.sys.crash()
    }

    /// Fork the crash image at the current point without crashing: the
    /// exact image [`CrashEmulator::crash_now`] would return, but the run
    /// keeps going (see [`MemorySystem::crash_fork`]). Campaign engines
    /// use this to harvest many crash states from one execution.
    pub fn fork_image(&self) -> NvmImage {
        self.sys.crash_fork()
    }

    /// Consume the emulator, returning the underlying system (run completed
    /// without a crash).
    pub fn into_system(self) -> MemorySystem {
        self.sys
    }

    /// Access the underlying system explicitly.
    pub fn system(&self) -> &MemorySystem {
        &self.sys
    }

    /// Access the underlying system explicitly (mutable).
    pub fn system_mut(&mut self) -> &mut MemorySystem {
        &mut self.sys
    }
}

impl Deref for CrashEmulator {
    type Target = MemorySystem;
    fn deref(&self) -> &MemorySystem {
        &self.sys
    }
}

impl DerefMut for CrashEmulator {
    fn deref_mut(&mut self) -> &mut MemorySystem {
        &mut self.sys
    }
}

/// Outcome of running an instrumented application on a [`CrashEmulator`].
pub enum RunOutcome<T> {
    /// The run finished; the emulator (with final state) is returned.
    Completed(T),
    /// The trigger fired; recovery can inspect the image.
    Crashed(NvmImage),
}

impl<T> RunOutcome<T> {
    /// The completion value, if the run finished.
    pub fn completed(self) -> Option<T> {
        match self {
            RunOutcome::Completed(t) => Some(t),
            RunOutcome::Crashed(_) => None,
        }
    }

    /// The crash image, if the trigger fired.
    pub fn crashed(self) -> Option<NvmImage> {
        match self {
            RunOutcome::Completed(_) => None,
            RunOutcome::Crashed(img) => Some(img),
        }
    }

    /// Whether the trigger fired.
    pub fn is_crashed(&self) -> bool {
        matches!(self, RunOutcome::Crashed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parray::PArray;

    fn emu(trigger: CrashTrigger) -> CrashEmulator {
        CrashEmulator::new(SystemConfig::nvm_only(4096, 1 << 16), trigger)
    }

    #[test]
    fn never_trigger_never_fires() {
        let mut e = emu(CrashTrigger::Never);
        for i in 0..100 {
            assert!(!e.poll(CrashSite::new(0, i)));
        }
    }

    #[test]
    fn site_trigger_fires_on_nth_occurrence() {
        let site = CrashSite::new(2, 7);
        let mut e = emu(CrashTrigger::AtSite {
            site,
            occurrence: 3,
        });
        assert!(!e.poll(site));
        assert!(!e.poll(CrashSite::new(2, 8))); // different site
        assert!(!e.poll(site));
        assert!(e.poll(site));
        // After firing, polls return false (application already crashed).
        assert!(!e.poll(site));
    }

    #[test]
    fn phase_index_trigger() {
        let mut e = emu(CrashTrigger::AtPhaseIndex { phase: 1, index: 5 });
        assert!(!e.poll(CrashSite::new(1, 4)));
        assert!(!e.poll(CrashSite::new(0, 10)));
        assert!(e.poll(CrashSite::new(1, 5)));
    }

    #[test]
    fn access_count_trigger_fires_at_next_poll() {
        let mut e = emu(CrashTrigger::AtAccessCount(5));
        let a = PArray::<u64>::alloc_nvm(&mut e, 16);
        assert!(!e.poll(CrashSite::new(0, 0)));
        for i in 0..5 {
            a.set(&mut e, i, i as u64);
        }
        assert!(e.poll(CrashSite::new(0, 1)));
    }

    #[test]
    fn sim_time_trigger() {
        let mut e = emu(CrashTrigger::AtSimTimePs(1));
        let a = PArray::<u64>::alloc_nvm(&mut e, 1);
        assert!(!e.poll(CrashSite::new(0, 0)));
        a.set(&mut e, 0, 1);
        assert!(e.poll(CrashSite::new(0, 1)));
    }

    #[test]
    fn crash_now_returns_consistent_image() {
        let mut e = emu(CrashTrigger::AtSite {
            site: CrashSite::new(0, 1),
            occurrence: 1,
        });
        let a = PArray::<u64>::alloc_nvm(&mut e, 1);
        a.set(&mut e, 0, 42);
        a.persist_all(&mut e);
        assert!(e.poll(CrashSite::new(0, 1)));
        let img = e.crash_now();
        assert_eq!(img.read_u64(a.addr(0)), 42);
    }

    #[test]
    fn fork_image_matches_crash_now_and_keeps_running() {
        let mut e = emu(CrashTrigger::Never);
        let a = PArray::<u64>::alloc_nvm(&mut e, 4);
        a.set(&mut e, 0, 1);
        a.persist_all(&mut e);
        a.set(&mut e, 1, 2); // stranded in cache
        let fork = e.fork_image();
        // The run continues unharmed...
        assert_eq!(a.get(&mut e, 1), 2);
        // ...and the fork equals the real crash image taken at that point.
        let crashed = e.crash_now();
        assert_eq!(fork.bytes(), crashed.bytes());
        assert_eq!(fork.read_u64(a.addr(0)), 1);
        assert_eq!(fork.read_u64(a.addr(1)), 0);
    }

    #[test]
    fn run_outcome_accessors() {
        let o: RunOutcome<i32> = RunOutcome::Completed(3);
        assert!(!o.is_crashed());
        assert_eq!(o.completed(), Some(3));
        let o: RunOutcome<i32> = RunOutcome::Crashed(NvmImage::new(vec![]));
        assert!(o.is_crashed());
        assert!(o.crashed().is_some());
    }
}
