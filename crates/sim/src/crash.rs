//! The crash emulator: trigger specifications and the poll protocol.
//!
//! The paper's PIN-based emulator lets the user trigger a crash either
//! "after a specific statement is executed" (an inserted
//! `crash_sim_output()` call) or "after a specific number of instructions".
//! We mirror both: applications poll the emulator at instrumented
//! *crash sites* (statement granularity), and an access-count trigger fires
//! at the first poll after the threshold (instruction-count granularity).

use std::ops::{Deref, DerefMut};

use crate::image::{DeltaImage, NvmImage};
use crate::system::{CounterSnapshot, DeltaBase, MemorySystem, SystemConfig};

/// An instrumented program point: a phase identifier plus a loop index.
///
/// Conventions used by `adcc-core`: the phase names the loop or pseudocode
/// line (e.g. "CG line 10", "ABFT loop 1"), the index is the iteration
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrashSite {
    /// Phase identifier (which loop / pseudocode line).
    pub phase: u32,
    /// Loop index within the phase.
    pub index: u64,
}

impl CrashSite {
    /// Site at `(phase, index)`.
    pub const fn new(phase: u32, index: u64) -> Self {
        CrashSite { phase, index }
    }
}

/// When the emulated machine should crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Run to completion.
    Never,
    /// Crash at the `occurrence`-th poll of exactly this site (1-based).
    AtSite {
        /// The instrumented site to watch.
        site: CrashSite,
        /// Which poll of the site fires the crash (1-based).
        occurrence: u32,
    },
    /// Crash at the first poll of any site in this phase with
    /// `index >= index` (useful when indices are data-dependent).
    AtPhaseIndex {
        /// Phase to watch.
        phase: u32,
        /// Minimum index that fires the crash.
        index: u64,
    },
    /// Crash at the first poll after `count` element accesses.
    AtAccessCount(u64),
    /// Crash at the first poll after the simulated clock passes `ps`.
    AtSimTimePs(u64),
}

/// One crash state captured by an armed harvest plan (see
/// [`CrashEmulator::arm_harvest`]): the copy-on-write image plus the poll
/// site and counter snapshot at the fork instant. Together they are
/// everything a campaign needs to classify the crash point later — the
/// image for recovery, the site for loss attribution, the counters for a
/// cumulative cost profile — while the shared execution keeps running.
#[derive(Debug)]
pub struct Harvest {
    /// The scheduled unit this crash state belongs to.
    pub unit: u64,
    /// The instrumented site whose poll captured the state.
    pub site: CrashSite,
    /// Copy-on-write crash image at the fork instant.
    pub image: DeltaImage,
    /// Deterministic counters at the fork instant.
    pub at: CounterSnapshot,
}

/// One pending harvest point: the trigger condition to watch plus the unit
/// it belongs to. Site-occurrence counting mirrors [`CrashTrigger::AtSite`].
#[derive(Debug)]
struct PlanPoint {
    trigger: CrashTrigger,
    unit: u64,
    site_hits: u32,
    done: bool,
}

/// The armed harvest state: the delta base every capture is diffed
/// against, the pending points, and the captures so far.
#[derive(Debug)]
struct HarvestState {
    base: DeltaBase,
    points: Vec<PlanPoint>,
    pending: usize,
    out: Vec<Harvest>,
}

/// The crash emulator: a [`MemorySystem`] plus a trigger. Dereferences to
/// the system so application code reads/writes through it directly.
pub struct CrashEmulator {
    sys: MemorySystem,
    trigger: CrashTrigger,
    site_hits: u32,
    fired: bool,
    fired_site: Option<CrashSite>,
    harvest: Option<HarvestState>,
}

impl CrashEmulator {
    /// Fresh system from `cfg`, armed with `trigger`.
    pub fn new(cfg: SystemConfig, trigger: CrashTrigger) -> Self {
        Self::from_system(MemorySystem::new(cfg), trigger)
    }

    /// Wrap an existing system (e.g. one restored from an image).
    pub fn from_system(sys: MemorySystem, trigger: CrashTrigger) -> Self {
        CrashEmulator {
            sys,
            trigger,
            site_hits: 0,
            fired: false,
            fired_site: None,
            harvest: None,
        }
    }

    /// The trigger this emulator is armed with.
    pub fn trigger(&self) -> CrashTrigger {
        self.trigger
    }

    /// Whether the trigger already fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The site whose poll fired the trigger, if it has fired. For
    /// access-count and sim-time triggers this is how the application
    /// learns *where* in the computation the crash actually landed.
    pub fn fired_site(&self) -> Option<CrashSite> {
        self.fired_site
    }

    /// Arm a harvest plan: at every poll, any listed trigger condition
    /// that is met captures a copy-on-write crash image (plus site and
    /// counter snapshot) for its unit — without crashing, so one
    /// instrumented execution yields an image per scheduled crash point.
    /// Each point fires at most once; capture order is poll order. The
    /// delta base is taken now (see [`MemorySystem::delta_base`]).
    ///
    /// The armed crash `trigger` still works independently; a poll that
    /// both harvests and fires the trigger captures the harvest first, so
    /// the image equals what [`CrashEmulator::crash_now`] is about to
    /// return.
    pub fn arm_harvest(&mut self, points: impl IntoIterator<Item = (CrashTrigger, u64)>) {
        let base = self.sys.delta_base();
        let points: Vec<PlanPoint> = points
            .into_iter()
            .map(|(trigger, unit)| PlanPoint {
                trigger,
                unit,
                site_hits: 0,
                done: matches!(trigger, CrashTrigger::Never),
            })
            .collect();
        let pending = points.iter().filter(|p| !p.done).count();
        self.harvest = Some(HarvestState {
            base,
            points,
            pending,
            out: Vec::new(),
        });
    }

    /// Crash states captured so far by the armed harvest plan.
    pub fn harvest_count(&self) -> usize {
        self.harvest.as_ref().map_or(0, |h| h.out.len())
    }

    /// Disarm the harvest plan and take the captured crash states (poll
    /// order). Empty if no plan was armed.
    pub fn take_harvests(&mut self) -> Vec<Harvest> {
        self.harvest.take().map(|h| h.out).unwrap_or_default()
    }

    /// Take the crash states captured since the last drain, leaving the
    /// plan armed (poll order). Batch drivers drain at phase boundaries so
    /// each harvested state can be replayed while the cluster state at its
    /// capture boundary is still live; [`CrashEmulator::take_harvests`]
    /// at the end would be too late for that.
    pub fn drain_harvests(&mut self) -> Vec<Harvest> {
        self.harvest
            .as_mut()
            .map(|h| std::mem::take(&mut h.out))
            .unwrap_or_default()
    }

    /// Evaluate the armed harvest plan at a poll of `site`.
    fn harvest_at(&mut self, site: CrashSite) {
        let Some(h) = self.harvest.as_mut() else {
            return;
        };
        if h.pending == 0 {
            return;
        }
        let access = self.sys.access_count();
        let now_ps = self.sys.now().ps();
        let mut fired: Vec<u64> = Vec::new();
        for p in h.points.iter_mut() {
            if p.done {
                continue;
            }
            if trigger_fires(p.trigger, site, &mut p.site_hits, access, now_ps) {
                p.done = true;
                h.pending -= 1;
                fired.push(p.unit);
            }
        }
        if fired.is_empty() {
            return;
        }
        let base = h.base.clone();
        let at = self.sys.counter_snapshot();
        // Points firing at the same poll see the same machine state: fork
        // the delta once and share it (dense access-grain points are often
        // spaced closer than the polls that can capture them).
        let image = self.sys.crash_fork_delta(&base);
        // Mark each harvested crash point in the (optional) persistency
        // event stream so the analyzer can tie diagnostics to units.
        for &unit in &fired {
            self.sys.record_crash_mark(unit);
        }
        let h = self.harvest.as_mut().expect("harvest armed");
        for unit in fired {
            h.out.push(Harvest {
                unit,
                site,
                image: image.clone(),
                at,
            });
        }
    }

    /// Poll at an instrumented site; returns `true` when the application
    /// must crash now (it should then call [`CrashEmulator::crash_now`] and
    /// unwind).
    #[inline]
    pub fn poll(&mut self, site: CrashSite) -> bool {
        self.harvest_at(site);
        if self.fired {
            return false;
        }
        let fire = trigger_fires(
            self.trigger,
            site,
            &mut self.site_hits,
            self.sys.access_count(),
            self.sys.now().ps(),
        );
        if fire {
            self.fired = true;
            self.fired_site = Some(site);
        }
        fire
    }

    /// Crash the machine (volatile state discarded) and return the NVM
    /// image a recovery process would see.
    pub fn crash_now(&mut self) -> NvmImage {
        self.fired = true;
        self.sys.crash()
    }

    /// Fork the crash image at the current point without crashing: the
    /// exact image [`CrashEmulator::crash_now`] would return, but the run
    /// keeps going (see [`MemorySystem::crash_fork`]). Campaign engines
    /// use this to harvest many crash states from one execution.
    pub fn fork_image(&self) -> NvmImage {
        self.sys.crash_fork()
    }

    /// Consume the emulator, returning the underlying system (run completed
    /// without a crash).
    pub fn into_system(self) -> MemorySystem {
        self.sys
    }

    /// Access the underlying system explicitly.
    pub fn system(&self) -> &MemorySystem {
        &self.sys
    }

    /// Access the underlying system explicitly (mutable).
    pub fn system_mut(&mut self) -> &mut MemorySystem {
        &mut self.sys
    }
}

impl Deref for CrashEmulator {
    type Target = MemorySystem;
    fn deref(&self) -> &MemorySystem {
        &self.sys
    }
}

impl DerefMut for CrashEmulator {
    fn deref_mut(&mut self) -> &mut MemorySystem {
        &mut self.sys
    }
}

/// The one trigger-evaluation rule, shared by the crash path
/// ([`CrashEmulator::poll`]) and the harvest path — the two must never
/// drift, or batch-harvested crash states stop matching per-trial ones.
/// `site_hits` is the caller's per-trigger occurrence counter (bumped here
/// on every poll of a watched site).
#[inline]
fn trigger_fires(
    trigger: CrashTrigger,
    site: CrashSite,
    site_hits: &mut u32,
    access_count: u64,
    now_ps: u64,
) -> bool {
    match trigger {
        CrashTrigger::Never => false,
        CrashTrigger::AtSite {
            site: s,
            occurrence,
        } => {
            if s == site {
                *site_hits += 1;
                *site_hits >= occurrence
            } else {
                false
            }
        }
        CrashTrigger::AtPhaseIndex { phase, index } => site.phase == phase && site.index >= index,
        CrashTrigger::AtAccessCount(n) => access_count >= n,
        CrashTrigger::AtSimTimePs(ps) => now_ps >= ps,
    }
}

/// Outcome of running an instrumented application on a [`CrashEmulator`].
pub enum RunOutcome<T> {
    /// The run finished; the emulator (with final state) is returned.
    Completed(T),
    /// The trigger fired; recovery can inspect the image.
    Crashed(NvmImage),
}

impl<T> RunOutcome<T> {
    /// The completion value, if the run finished.
    pub fn completed(self) -> Option<T> {
        match self {
            RunOutcome::Completed(t) => Some(t),
            RunOutcome::Crashed(_) => None,
        }
    }

    /// The crash image, if the trigger fired.
    pub fn crashed(self) -> Option<NvmImage> {
        match self {
            RunOutcome::Completed(_) => None,
            RunOutcome::Crashed(img) => Some(img),
        }
    }

    /// Whether the trigger fired.
    pub fn is_crashed(&self) -> bool {
        matches!(self, RunOutcome::Crashed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parray::PArray;

    fn emu(trigger: CrashTrigger) -> CrashEmulator {
        CrashEmulator::new(SystemConfig::nvm_only(4096, 1 << 16), trigger)
    }

    #[test]
    fn never_trigger_never_fires() {
        let mut e = emu(CrashTrigger::Never);
        for i in 0..100 {
            assert!(!e.poll(CrashSite::new(0, i)));
        }
    }

    #[test]
    fn site_trigger_fires_on_nth_occurrence() {
        let site = CrashSite::new(2, 7);
        let mut e = emu(CrashTrigger::AtSite {
            site,
            occurrence: 3,
        });
        assert!(!e.poll(site));
        assert!(!e.poll(CrashSite::new(2, 8))); // different site
        assert!(!e.poll(site));
        assert!(e.poll(site));
        // After firing, polls return false (application already crashed).
        assert!(!e.poll(site));
    }

    #[test]
    fn phase_index_trigger() {
        let mut e = emu(CrashTrigger::AtPhaseIndex { phase: 1, index: 5 });
        assert!(!e.poll(CrashSite::new(1, 4)));
        assert!(!e.poll(CrashSite::new(0, 10)));
        assert!(e.poll(CrashSite::new(1, 5)));
    }

    #[test]
    fn access_count_trigger_fires_at_next_poll() {
        let mut e = emu(CrashTrigger::AtAccessCount(5));
        let a = PArray::<u64>::alloc_nvm(&mut e, 16);
        assert!(!e.poll(CrashSite::new(0, 0)));
        for i in 0..5 {
            a.set(&mut e, i, i as u64);
        }
        assert!(e.poll(CrashSite::new(0, 1)));
    }

    #[test]
    fn sim_time_trigger() {
        let mut e = emu(CrashTrigger::AtSimTimePs(1));
        let a = PArray::<u64>::alloc_nvm(&mut e, 1);
        assert!(!e.poll(CrashSite::new(0, 0)));
        a.set(&mut e, 0, 1);
        assert!(e.poll(CrashSite::new(0, 1)));
    }

    #[test]
    fn crash_now_returns_consistent_image() {
        let mut e = emu(CrashTrigger::AtSite {
            site: CrashSite::new(0, 1),
            occurrence: 1,
        });
        let a = PArray::<u64>::alloc_nvm(&mut e, 1);
        a.set(&mut e, 0, 42);
        a.persist_all(&mut e);
        assert!(e.poll(CrashSite::new(0, 1)));
        let img = e.crash_now();
        assert_eq!(img.read_u64(a.addr(0)), 42);
    }

    #[test]
    fn fork_image_matches_crash_now_and_keeps_running() {
        let mut e = emu(CrashTrigger::Never);
        let a = PArray::<u64>::alloc_nvm(&mut e, 4);
        a.set(&mut e, 0, 1);
        a.persist_all(&mut e);
        a.set(&mut e, 1, 2); // stranded in cache
        let fork = e.fork_image();
        // The run continues unharmed...
        assert_eq!(a.get(&mut e, 1), 2);
        // ...and the fork equals the real crash image taken at that point.
        let crashed = e.crash_now();
        assert_eq!(fork.bytes(), crashed.bytes());
        assert_eq!(fork.read_u64(a.addr(0)), 1);
        assert_eq!(fork.read_u64(a.addr(1)), 0);
    }

    #[test]
    fn armed_harvest_captures_images_without_crashing() {
        let mut e = emu(CrashTrigger::Never);
        let a = PArray::<u64>::alloc_nvm(&mut e, 8);
        e.arm_harvest([
            (
                CrashTrigger::AtSite {
                    site: CrashSite::new(0, 1),
                    occurrence: 1,
                },
                10,
            ),
            (
                CrashTrigger::AtSite {
                    site: CrashSite::new(0, 3),
                    occurrence: 1,
                },
                11,
            ),
        ]);
        for i in 0..6u64 {
            a.set(&mut e, i as usize, i + 100);
            a.persist_all(&mut e);
            assert!(!e.poll(CrashSite::new(0, i)), "harvesting never crashes");
        }
        let harvests = e.take_harvests();
        assert_eq!(harvests.len(), 2);
        assert_eq!(harvests[0].unit, 10);
        assert_eq!(harvests[0].site, CrashSite::new(0, 1));
        // The image is the state at the fork instant, not the end.
        assert_eq!(harvests[0].image.read_u64(a.addr(1)), 101);
        assert_eq!(harvests[0].image.read_u64(a.addr(3)), 0);
        assert_eq!(harvests[1].image.read_u64(a.addr(3)), 103);
        // Counter snapshots are cumulative and ordered.
        assert!(harvests[0].at.now_ps < harvests[1].at.now_ps);
    }

    #[test]
    fn harvest_matches_the_crash_image_at_the_same_poll() {
        // Two emulators, identical executions: one crashes at the site,
        // one harvests it. Images must be byte-identical.
        let site = CrashSite::new(2, 3);
        let run = |e: &mut CrashEmulator| -> Option<NvmImage> {
            let a = PArray::<u64>::alloc_nvm(e, 8);
            for i in 0..6u64 {
                a.set(e, i as usize, i * 7);
                if i.is_multiple_of(2) {
                    a.persist_all(e);
                }
                if e.poll(CrashSite::new(2, i)) {
                    return Some(e.crash_now());
                }
            }
            None
        };
        let mut crasher = emu(CrashTrigger::AtSite {
            site,
            occurrence: 1,
        });
        let crashed = run(&mut crasher).expect("trigger fires");
        assert_eq!(crasher.fired_site(), Some(site));

        let mut harvester = emu(CrashTrigger::Never);
        harvester.arm_harvest([(
            CrashTrigger::AtSite {
                site,
                occurrence: 1,
            },
            0,
        )]);
        assert!(run(&mut harvester).is_none());
        let h = harvester.take_harvests().remove(0);
        assert_eq!(h.image.materialize().bytes(), crashed.bytes());
        assert_eq!(
            h.image.dirty_lines_at_crash(),
            crashed.dirty_lines_at_crash()
        );
    }

    #[test]
    fn harvest_supports_occurrence_access_and_time_points() {
        let mut e = emu(CrashTrigger::Never);
        let a = PArray::<u64>::alloc_nvm(&mut e, 8);
        e.arm_harvest([
            (
                CrashTrigger::AtSite {
                    site: CrashSite::new(1, 0),
                    occurrence: 3,
                },
                0,
            ),
            (CrashTrigger::AtAccessCount(4), 1),
            (CrashTrigger::AtSimTimePs(1), 2),
        ]);
        for i in 0..5u64 {
            a.set(&mut e, i as usize, i);
            assert!(!e.poll(CrashSite::new(1, 0)));
        }
        let mut harvests = e.take_harvests();
        assert_eq!(harvests.len(), 3);
        harvests.sort_by_key(|h| h.unit);
        // Occurrence 3 of the repeated site fired on the third poll.
        assert_eq!(harvests[0].at.stats.accesses, 3);
        // Access threshold 4 fired at the first poll with >= 4 accesses.
        assert_eq!(harvests[1].at.stats.accesses, 4);
        // The sim-time point fired at the first poll after time advanced.
        assert_eq!(harvests[2].at.stats.accesses, 1);
    }

    #[test]
    fn harvest_and_trigger_can_fire_at_the_same_poll() {
        let site = CrashSite::new(4, 2);
        let mut e = emu(CrashTrigger::AtSite {
            site,
            occurrence: 1,
        });
        let a = PArray::<u64>::alloc_nvm(&mut e, 4);
        e.arm_harvest([(
            CrashTrigger::AtSite {
                site,
                occurrence: 1,
            },
            9,
        )]);
        a.set(&mut e, 0, 5);
        a.persist_all(&mut e);
        assert!(e.poll(site), "the armed trigger still fires");
        let img = e.crash_now();
        let h = e.take_harvests().remove(0);
        assert_eq!(h.unit, 9);
        assert_eq!(h.image.materialize().bytes(), img.bytes());
    }

    #[test]
    fn run_outcome_accessors() {
        let o: RunOutcome<i32> = RunOutcome::Completed(3);
        assert!(!o.is_crashed());
        assert_eq!(o.completed(), Some(3));
        let o: RunOutcome<i32> = RunOutcome::Crashed(NvmImage::new(vec![]));
        assert!(o.is_crashed());
        assert!(o.crashed().is_some());
    }
}
