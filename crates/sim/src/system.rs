//! The simulated memory system: CPU cache → optional volatile DRAM cache →
//! NVM, plus a volatile DRAM-direct region.
//!
//! This is the reproduction of the paper's PIN-based *crash emulator*
//! combined with its Quartz-based *NVM performance emulator*:
//!
//! * Every access goes through a data-tracking write-back cache, so the NVM
//!   backing store only observes values at eviction or flush time. At a
//!   crash, all volatile levels are discarded and the NVM image is exactly
//!   what recovery can see.
//! * Every hierarchy event charges picoseconds on a deterministic
//!   [`SimClock`] according to a [`PlatformTiming`] table, with DRAM-level
//!   stream prefetching and latency-bound NVM, mirroring the paper's
//!   "1/8 bandwidth, DRAM cache bridging the gap" configuration.
//!
//! Address map: `[0, nvm_capacity)` is NVM-homed (persistent);
//! `[DRAM_BASE, DRAM_BASE + dram_capacity)` is DRAM-homed (volatile,
//! bypasses the DRAM cache, lost at crash).

use std::sync::Arc;

use crate::alloc::Bump;
use crate::backing::Backing;
use crate::clock::{Bucket, SimClock, SimTime};
use crate::image::{DeltaImage, NvmImage};
use crate::line::{is_dram_addr, line_of, DRAM_BASE, LINE_SHIFT, LINE_SIZE};
use crate::lru::{CacheConfig, SetAssocCache, Victim};
use crate::stats::MemStats;
use crate::timing::{PlatformTiming, StreamDetector};

/// Placement class for an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Persistent: survives crashes once evicted/flushed from caches.
    Nvm,
    /// Volatile scratch in the DRAM-direct region: fast, lost at crash.
    DramDirect,
}

/// Which cache-line write-back instruction the platform's persistence
/// helpers use (paper §II: `CLFLUSH` is what the paper measures; it notes
/// that `CLFLUSHOPT`/`CLWB` "should further improve performance" — the
/// `repro ablation-flush` runner quantifies by how much).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushOp {
    /// Serializing flush: evicts the line, full per-instruction stall.
    #[default]
    Clflush,
    /// Unordered flush: evicts the line, much smaller stall.
    ClflushOpt,
    /// Unordered write-back: persists the line but keeps it resident
    /// (clean), so later re-reads still hit.
    Clwb,
}

impl FlushOp {
    /// Every flush instruction, for ablation sweeps.
    pub const ALL: [FlushOp; 3] = [FlushOp::Clflush, FlushOp::ClflushOpt, FlushOp::Clwb];

    /// Stable identifier used in tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            FlushOp::Clflush => "clflush",
            FlushOp::ClflushOpt => "clflushopt",
            FlushOp::Clwb => "clwb",
        }
    }
}

/// Static configuration of a [`MemorySystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Geometry of the (unified, last-level) CPU cache.
    pub cpu_cache: CacheConfig,
    /// Geometry of the volatile DRAM cache in front of NVM, if present
    /// (the paper's heterogeneous platform uses 32 MB).
    pub dram_cache: Option<CacheConfig>,
    /// Cost table.
    pub timing: PlatformTiming,
    /// Capacity of the NVM region in bytes.
    pub nvm_capacity: usize,
    /// Capacity of the volatile DRAM-direct region in bytes.
    pub dram_capacity: usize,
    /// Instruction used by [`MemorySystem::flush_line`] and the
    /// `flush_range`/`persist_*` helpers built on it.
    pub flush_op: FlushOp,
    /// Kiln/whole-system-persistence ablation: caches in front of NVM are
    /// battery-backed, so a crash drains dirty NVM-homed lines instead of
    /// discarding them (the DRAM-direct scratch region stays volatile).
    pub persistent_caches: bool,
}

impl SystemConfig {
    /// Same configuration with a different flush instruction.
    pub fn with_flush_op(mut self, op: FlushOp) -> Self {
        self.flush_op = op;
        self
    }

    /// Same configuration with battery-backed (persistent) caches.
    pub fn with_persistent_caches(mut self, on: bool) -> Self {
        self.persistent_caches = on;
        self
    }
}

impl SystemConfig {
    /// The paper's NVM-only system: NVM performs like DRAM, no DRAM cache.
    pub fn nvm_only(cpu_cache_bytes: usize, nvm_capacity: usize) -> Self {
        SystemConfig {
            cpu_cache: CacheConfig::new(cpu_cache_bytes, 8),
            dram_cache: None,
            timing: PlatformTiming::nvm_only_dram_speed(),
            nvm_capacity,
            dram_capacity: 64 << 20,
            flush_op: FlushOp::Clflush,
            persistent_caches: false,
        }
    }

    /// The paper's heterogeneous NVM/DRAM system: PCM-like NVM fronted by a
    /// volatile DRAM cache.
    pub fn heterogeneous(
        cpu_cache_bytes: usize,
        dram_cache_bytes: usize,
        nvm_capacity: usize,
    ) -> Self {
        SystemConfig {
            cpu_cache: CacheConfig::new(cpu_cache_bytes, 8),
            dram_cache: Some(CacheConfig::new(dram_cache_bytes, 8)),
            timing: PlatformTiming::heterogeneous(),
            nvm_capacity,
            dram_capacity: 64 << 20,
            flush_op: FlushOp::Clflush,
            persistent_caches: false,
        }
    }
}

/// A host-side snapshot of every deterministic counter a telemetry probe
/// diffs: event counters, per-bucket attributed time, and the clock.
///
/// Taking one is free of simulated cost. Crash-image harvesting records a
/// snapshot at each fork instant so cumulative cost profiles can be
/// reconstructed after the shared execution has moved on.
#[derive(Debug, Clone, Copy)]
pub struct CounterSnapshot {
    /// Event counters at the snapshot instant.
    pub stats: MemStats,
    /// Attributed picoseconds per [`Bucket`], in `Bucket::ALL` order.
    pub bucket_ps: [u64; Bucket::COUNT],
    /// Simulated clock at the snapshot instant, picoseconds.
    pub now_ps: u64,
}

/// The shared base a run's [`DeltaImage`]s are diffed against: an immutable
/// NVM snapshot (behind an [`Arc`], so every delta of the run shares one
/// copy) plus the write-journal epoch that validates it.
///
/// Created by [`MemorySystem::delta_base`]. Taking a new base invalidates
/// the previous one (the journal restarts); so do whole-store mutations
/// like booting the system from an image. A stale base panics at fork time
/// rather than producing a wrong image.
#[derive(Clone)]
pub struct DeltaBase {
    base: Arc<NvmImage>,
    epoch: u64,
}

impl DeltaBase {
    /// The shared base snapshot.
    pub fn image(&self) -> &Arc<NvmImage> {
        &self.base
    }

    /// Size of the base snapshot in bytes (the NVM pool size).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the base snapshot holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }
}

impl std::fmt::Debug for DeltaBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeltaBase({} bytes, epoch {})",
            self.base.len(),
            self.epoch
        )
    }
}

/// The simulated memory system.
///
/// Cloning copies the whole machine — caches with their payloads and LRU
/// state, backing stores, clock, counters, stream detectors — so a clone
/// continues bit-identically to the original. Cluster-level crash-state
/// harvesting forks per-rank systems this way to replay recovery from a
/// mid-execution boundary.
#[derive(Clone)]
pub struct MemorySystem {
    cfg: SystemConfig,
    cpu: SetAssocCache,
    dramc: Option<SetAssocCache>,
    nvm: Backing,
    dram: Backing,
    nvm_alloc: Bump,
    dram_alloc: Bump,
    clock: SimClock,
    stats: MemStats,
    nvm_streams: StreamDetector,
    dram_streams: StreamDetector,
    access_count: u64,
    events: Option<Box<crate::events::EventRecorder>>,
}

impl MemorySystem {
    /// Cold system (empty caches, zeroed media) from `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        MemorySystem {
            cpu: SetAssocCache::new(cfg.cpu_cache),
            dramc: cfg.dram_cache.map(SetAssocCache::new),
            nvm: Backing::new(0, cfg.nvm_capacity),
            dram: Backing::new(DRAM_BASE, cfg.dram_capacity),
            nvm_alloc: Bump::new(0, cfg.nvm_capacity),
            dram_alloc: Bump::new(DRAM_BASE, cfg.dram_capacity),
            clock: SimClock::new(),
            stats: MemStats::default(),
            nvm_streams: StreamDetector::new(),
            dram_streams: StreamDetector::new(),
            access_count: 0,
            events: None,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Persistency event recording (opt-in, outcome-neutral)
    // ------------------------------------------------------------------

    /// Attach a persistency [`EventRecorder`](crate::events::EventRecorder).
    /// Recording is outcome-neutral: it never charges time or bumps stats,
    /// so an instrumented run stays bit-identical to an uninstrumented one.
    pub fn attach_recorder(&mut self, rec: crate::events::EventRecorder) {
        self.events = Some(Box::new(rec));
    }

    /// Detach and return the recorder, if one is attached.
    pub fn take_recorder(&mut self) -> Option<crate::events::EventRecorder> {
        self.events.take().map(|b| *b)
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&crate::events::EventRecorder> {
        self.events.as_deref()
    }

    /// Record a harvested crash point for a scheduled campaign `unit`
    /// (no-op without a recorder; called by the crash emulator).
    pub fn record_crash_mark(&mut self, unit: u64) {
        if self.events.is_some() {
            let epoch = self.nvm.journal_epoch();
            if let Some(r) = self.events.as_deref_mut() {
                r.crash(epoch, unit);
            }
        }
    }

    #[inline]
    fn record_store_event(&mut self, line: u64) {
        if self.events.is_some() {
            let epoch = self.nvm.journal_epoch();
            if let Some(r) = self.events.as_deref_mut() {
                r.store(epoch, line);
            }
        }
    }

    #[inline]
    fn record_flush_event(&mut self, line: u64) {
        if self.events.is_some() {
            let epoch = self.nvm.journal_epoch();
            if let Some(r) = self.events.as_deref_mut() {
                r.flush(epoch, line);
            }
        }
    }

    #[inline]
    fn record_flush_batched_event(&mut self, line: u64) {
        if self.events.is_some() {
            let epoch = self.nvm.journal_epoch();
            if let Some(r) = self.events.as_deref_mut() {
                r.flush_batched(epoch, line);
            }
        }
    }

    #[inline]
    fn record_fence_event(&mut self) {
        if self.events.is_some() {
            let epoch = self.nvm.journal_epoch();
            if let Some(r) = self.events.as_deref_mut() {
                r.fence(epoch);
            }
        }
    }

    /// Recreate a system from a post-crash NVM image (recovery boots with
    /// cold caches over the surviving persistent bytes).
    pub fn from_image(cfg: SystemConfig, image: &NvmImage) -> Self {
        let mut sys = MemorySystem::new(cfg);
        sys.nvm.restore(image.bytes());
        sys
    }

    /// Dirty reboot: boot from the raw post-crash image with **no**
    /// consistency mechanism, leaving the clock in [`Bucket::Resume`] so
    /// the whole dirty continuation is attributed as recovery-resume time
    /// (EasyCrash-style restarts run *extra* iterations; this is where
    /// their cost lands).
    pub fn dirty_reboot(cfg: SystemConfig, image: &NvmImage) -> Self {
        let mut sys = MemorySystem::from_image(cfg, image);
        sys.clock_mut().set_bucket(Bucket::Resume);
        sys
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocate a line-aligned persistent region.
    pub fn alloc_nvm(&mut self, size: usize) -> u64 {
        self.nvm_alloc.alloc_lines(size)
    }

    /// Allocate a persistent region starting at a chosen in-line offset
    /// (deliberate line straddling).
    pub fn alloc_nvm_at_line_offset(&mut self, size: usize, offset: usize) -> u64 {
        self.nvm_alloc.alloc_at_line_offset(size, offset)
    }

    /// Allocate a line-aligned volatile region.
    pub fn alloc_dram(&mut self, size: usize) -> u64 {
        self.dram_alloc.alloc_lines(size)
    }

    /// Allocate with an explicit placement.
    pub fn alloc(&mut self, size: usize, placement: Placement) -> u64 {
        match placement {
            Placement::Nvm => self.alloc_nvm(size),
            Placement::DramDirect => self.alloc_dram(size),
        }
    }

    // ------------------------------------------------------------------
    // Charged element accesses
    // ------------------------------------------------------------------

    /// Charged read of `buf.len()` bytes at `addr` (may span lines).
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.access_count += 1;
        self.stats.accesses += 1;
        self.clock.charge(self.cfg.timing.cpu_access_ps);
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let off = crate::line::offset_in_line(a);
            let take = (LINE_SIZE - off).min(buf.len() - done);
            let line = line_of(a);
            self.with_line(line, |data| {
                buf[done..done + take].copy_from_slice(&data[off..off + take]);
                false
            });
            done += take;
        }
    }

    /// Charged write of `src` at `addr` (may span lines).
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) {
        self.access_count += 1;
        self.stats.accesses += 1;
        self.clock.charge(self.cfg.timing.cpu_access_ps);
        let mut done = 0usize;
        while done < src.len() {
            let a = addr + done as u64;
            let off = crate::line::offset_in_line(a);
            let take = (LINE_SIZE - off).min(src.len() - done);
            let line = line_of(a);
            self.record_store_event(line);
            self.with_line(line, |data| {
                data[off..off + take].copy_from_slice(&src[done..done + take]);
                true
            });
            done += take;
        }
    }

    /// Bring `line` into the CPU cache (fetching/evicting as needed) and
    /// apply `f` to its payload; `f` returns whether it dirtied the line.
    fn with_line<F: FnOnce(&mut [u8; LINE_SIZE]) -> bool>(&mut self, line: u64, f: F) {
        // Fast path: CPU hit.
        if let Some(mut r) = self.cpu.lookup(line) {
            self.stats.cpu.hits += 1;
            if f(r.data()) {
                r.mark_dirty();
            }
            return;
        }
        self.stats.cpu.misses += 1;
        let mut data = self.fetch_below(line);
        let dirty = f(&mut data);
        if let Some(victim) = self.cpu.insert(line, data, dirty) {
            self.writeback(victim);
        }
    }

    /// Fetch a line's data from below the CPU cache, charging costs.
    fn fetch_below(&mut self, line: u64) -> [u8; LINE_SIZE] {
        let addr = line << LINE_SHIFT;
        let t = self.cfg.timing;
        if is_dram_addr(addr) {
            let hit = self.dram_streams.note(line);
            self.clock.charge(t.dram.read_cost(hit));
            self.stats.dram_line_reads += 1;
            return self.dram.read_line(line);
        }
        // NVM-homed: consult the DRAM cache first if present.
        if let Some(dc) = self.dramc.as_mut() {
            if let Some(r) = dc.lookup(line) {
                self.stats.dram_cache.hits += 1;
                self.clock.charge(t.dram.read_cost(false));
                return *r.data_ref();
            }
            self.stats.dram_cache.misses += 1;
            let hit = self.nvm_streams.note(line);
            self.clock.charge(t.nvm.read_cost(hit));
            self.stats.nvm_line_reads += 1;
            let data = self.nvm.read_line(line);
            if let Some(v) = dc.insert(line, data, false) {
                if v.dirty {
                    let s = self.nvm_streams.note(v.line);
                    self.clock.charge(t.nvm.write_cost(s));
                    self.stats.nvm_line_writes += 1;
                    self.stats.dram_cache.dirty_evictions += 1;
                    self.nvm.write_line(v.line, &v.data);
                } else {
                    self.stats.dram_cache.clean_evictions += 1;
                }
            }
            return data;
        }
        let hit = self.nvm_streams.note(line);
        self.clock.charge(t.nvm.read_cost(hit));
        self.stats.nvm_line_reads += 1;
        self.nvm.read_line(line)
    }

    /// Write back a line evicted from the CPU cache.
    fn writeback(&mut self, v: Victim) {
        if !v.dirty {
            self.stats.cpu.clean_evictions += 1;
            return;
        }
        self.stats.cpu.dirty_evictions += 1;
        let addr = v.line << LINE_SHIFT;
        let t = self.cfg.timing;
        if is_dram_addr(addr) {
            let hit = self.dram_streams.note(v.line);
            self.clock.charge(t.dram.write_cost(hit));
            self.stats.dram_line_writes += 1;
            self.dram.write_line(v.line, &v.data);
            return;
        }
        if let Some(dc) = self.dramc.as_mut() {
            self.clock.charge(t.dram.write_cost(false));
            if let Some(mut r) = dc.lookup(v.line) {
                *r.data() = v.data;
                r.mark_dirty();
                return;
            }
            // Full-line write allocation: no fill needed.
            if let Some(v2) = dc.insert(v.line, v.data, true) {
                if v2.dirty {
                    let s = self.nvm_streams.note(v2.line);
                    self.clock.charge(t.nvm.write_cost(s));
                    self.stats.nvm_line_writes += 1;
                    self.stats.dram_cache.dirty_evictions += 1;
                    self.nvm.write_line(v2.line, &v2.data);
                } else {
                    self.stats.dram_cache.clean_evictions += 1;
                }
            }
            return;
        }
        let hit = self.nvm_streams.note(v.line);
        self.clock.charge(t.nvm.write_cost(hit));
        self.stats.nvm_line_writes += 1;
        self.nvm.write_line(v.line, &v.data);
    }

    // ------------------------------------------------------------------
    // Flush / persist primitives
    // ------------------------------------------------------------------

    /// `CLFLUSH`: evict the line containing `addr` from the CPU cache,
    /// writing it back one level if dirty. Does **not** guarantee the data
    /// reached NVM on the heterogeneous platform (it may land in the
    /// volatile DRAM cache) — that is the paper's motivating pitfall; use
    /// [`MemorySystem::persist_line`] for durability.
    pub fn clflush(&mut self, addr: u64) {
        self.stats.clflushes += 1;
        self.clock.charge(self.cfg.timing.clflush_ps);
        self.record_flush_event(line_of(addr));
        if let Some(v) = self.cpu.remove(line_of(addr)) {
            self.writeback(v);
        }
    }

    /// `CLFLUSHOPT`: like [`MemorySystem::clflush`] but unordered, so the
    /// per-instruction stall is much smaller.
    pub fn clflushopt(&mut self, addr: u64) {
        self.stats.clflushopts += 1;
        self.clock.charge(self.cfg.timing.clflushopt_ps);
        self.record_flush_event(line_of(addr));
        if let Some(v) = self.cpu.remove(line_of(addr)) {
            self.writeback(v);
        }
    }

    /// `CLWB`: write the line back one level if dirty, but keep it resident
    /// (clean) in the CPU cache — later re-reads still hit.
    pub fn clwb(&mut self, addr: u64) {
        self.stats.clwbs += 1;
        self.clock.charge(self.cfg.timing.clwb_ps);
        self.record_flush_event(line_of(addr));
        if let Some(v) = self.cpu.clean_line(line_of(addr)) {
            self.writeback(v);
        }
    }

    /// Flush the line containing `addr` using the configured
    /// [`FlushOp`] (see [`SystemConfig::flush_op`]).
    pub fn flush_line(&mut self, addr: u64) {
        match self.cfg.flush_op {
            FlushOp::Clflush => self.clflush(addr),
            FlushOp::ClflushOpt => self.clflushopt(addr),
            FlushOp::Clwb => self.clwb(addr),
        }
    }

    /// Flush every line of `[addr, addr + len)` from the CPU cache using
    /// the configured [`FlushOp`].
    pub fn flush_range(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = line_of(addr);
        let last = line_of(addr + len as u64 - 1);
        for line in first..=last {
            self.flush_line(line << LINE_SHIFT);
        }
    }

    /// Push the line containing `addr` all the way to its home medium:
    /// CPU flush plus, for NVM-homed lines on the heterogeneous platform,
    /// eviction of the DRAM-cache copy to NVM (the paper's "flush the DRAM
    /// cache using memory copy", at line granularity).
    pub fn persist_line(&mut self, addr: u64) {
        self.flush_line(addr);
        if is_dram_addr(addr) {
            return;
        }
        let line = line_of(addr);
        let t = self.cfg.timing;
        if let Some(dc) = self.dramc.as_mut() {
            if let Some(v) = dc.remove(line) {
                if v.dirty {
                    let s = self.nvm_streams.note(v.line);
                    self.clock.charge(t.nvm.write_cost(s));
                    self.stats.nvm_line_writes += 1;
                    self.nvm.write_line(v.line, &v.data);
                }
            }
        }
    }

    /// Persist every line of `[addr, addr + len)` (see
    /// [`MemorySystem::persist_line`]).
    pub fn persist_range(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = line_of(addr);
        let last = line_of(addr + len as u64 - 1);
        for line in first..=last {
            self.persist_line(line << LINE_SHIFT);
        }
    }

    /// Batched epoch persist (Pelley et al. "Memory Persistency", Joshi
    /// et al. "Efficient Persist Barriers"): persist a whole epoch's worth
    /// of lines at once. Persists within an epoch are unordered with
    /// respect to each other, so each line pays only its issue overhead and
    /// medium transfer; the medium latency is paid **once** at the barrier
    /// (all in-flight persists overlap), followed by one fence.
    ///
    /// An **empty** line set is free: no barrier is counted, no fence is
    /// issued, no time is charged. There is nothing in flight to order, and
    /// mechanisms that call this unconditionally per epoch must not have
    /// their flush/fence telemetry skewed by no-op epochs (the telemetry
    /// neutrality suite pins this).
    ///
    /// Contrast with a `persist_line` loop, which pays latency + fence
    /// serialization per line. The `repro ablation-epoch` runner compares
    /// both for the ABFT checksum flushing, where the paper's related-work
    /// section says these proposals "can be complementary to our work".
    pub fn persist_lines_batched(&mut self, lines_in: &[u64]) {
        if lines_in.is_empty() {
            return;
        }
        self.stats.epoch_barriers += 1;
        let mut lines: Vec<u64> = lines_in.to_vec();
        lines.sort_unstable();
        lines.dedup();
        let t = self.cfg.timing;
        let mut max_lat = 0u64;
        for &line in &lines {
            self.stats.clflushopts += 1;
            self.clock.charge(t.clflushopt_ps);
            self.record_flush_batched_event(line);
            let addr = line << LINE_SHIFT;
            let cpu_victim = self.cpu.remove(line);
            if is_dram_addr(addr) {
                if let Some(v) = cpu_victim {
                    if v.dirty {
                        self.clock.charge(t.dram.line_transfer_ps);
                        self.stats.dram_line_writes += 1;
                        self.dram.write_line(line, &v.data);
                        max_lat = max_lat.max(t.dram.write_lat_ps);
                    }
                }
                continue;
            }
            // NVM-homed: the newest copy is the CPU one if dirty, else a
            // possibly-dirty DRAM-cache copy. Either way the DRAM-cache
            // copy must not linger (it would shadow NVM with stale data).
            let dc_victim = self.dramc.as_mut().and_then(|dc| dc.remove(line));
            let newest = match cpu_victim {
                Some(v) if v.dirty => Some(v.data),
                _ => dc_victim.filter(|v| v.dirty).map(|v| v.data),
            };
            if let Some(data) = newest {
                self.clock.charge(t.nvm.line_transfer_ps);
                self.stats.nvm_line_writes += 1;
                self.nvm.write_line(line, &data);
                max_lat = max_lat.max(t.nvm.write_lat_ps);
            }
        }
        self.clock.charge(max_lat);
        self.sfence();
    }

    /// `SFENCE`: order earlier flushes before later stores. Pure cost.
    pub fn sfence(&mut self) {
        self.stats.sfences += 1;
        self.record_fence_event();
        self.clock
            .charge_to(Bucket::Fence, self.cfg.timing.sfence_ps);
    }

    /// Write back every dirty line of the volatile DRAM cache to NVM,
    /// leaving lines resident but clean. The scan walks the whole cache
    /// directory (there is no per-line flush instruction for a memory-side
    /// cache), which is what makes heterogeneous checkpoints expensive.
    pub fn drain_dram_cache(&mut self) {
        let t = self.cfg.timing;
        let Some(dc) = self.dramc.as_mut() else {
            return;
        };
        self.stats.dram_drains += 1;
        let scan = dc.capacity_lines() as u64 * t.dram_drain_scan_ps;
        self.clock.charge(scan);
        let dirty = dc.clean_all();
        for v in dirty {
            let s = self.nvm_streams.note(v.line);
            self.clock.charge(t.nvm.write_cost(s));
            self.stats.nvm_line_writes += 1;
            self.nvm.write_line(v.line, &v.data);
        }
    }

    // ------------------------------------------------------------------
    // Bulk helpers
    // ------------------------------------------------------------------

    /// Charged copy of `len` bytes from `src` to `dst`, line by line
    /// through the cache hierarchy (what a checkpoint memcpy does).
    pub fn copy_range(&mut self, dst: u64, src: u64, len: usize) {
        let mut done = 0usize;
        let mut buf = [0u8; LINE_SIZE];
        while done < len {
            let take = LINE_SIZE.min(len - done);
            let chunk = &mut buf[..take];
            self.read_bytes(src + done as u64, chunk);
            let chunk = &buf[..take];
            self.write_bytes(dst + done as u64, chunk);
            done += take;
        }
    }

    /// Uncharged write directly into the backing store, bypassing caches.
    /// Used to seed input data that is "already in NVM" before the measured
    /// execution begins (matrices, grids).
    pub fn seed_bytes(&mut self, addr: u64, src: &[u8]) {
        if is_dram_addr(addr) {
            self.dram.write_bytes(addr, src);
        } else {
            self.nvm.write_bytes(addr, src);
        }
    }

    /// Uncharged logical read: the value the program would observe (checking
    /// caches first). Does not disturb LRU state. For tests and debugging.
    pub fn peek_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let off = crate::line::offset_in_line(a);
            let take = (LINE_SIZE - off).min(buf.len() - done);
            let line = line_of(a);
            let data = self.peek_line(line);
            buf[done..done + take].copy_from_slice(&data[off..off + take]);
            done += take;
        }
    }

    fn peek_line(&self, line: u64) -> [u8; LINE_SIZE] {
        if let Some(data) = self.cpu.probe(line) {
            return *data;
        }
        if let Some(dc) = &self.dramc {
            if let Some(data) = dc.probe(line) {
                return *data;
            }
        }
        let addr = line << LINE_SHIFT;
        if is_dram_addr(addr) {
            self.dram.read_line(line)
        } else {
            self.nvm.read_line(line)
        }
    }

    // ------------------------------------------------------------------
    // Compute charging and clock access
    // ------------------------------------------------------------------

    /// Charge `n` floating-point operations.
    #[inline]
    pub fn charge_flops(&mut self, n: u64) {
        self.clock
            .charge_to(Bucket::Compute, n * self.cfg.timing.flop_ps);
    }

    /// Charge raw picoseconds to the current bucket.
    #[inline]
    pub fn charge_ps(&mut self, ps: u64) {
        self.clock.charge(ps);
    }

    /// Charge I/O device time.
    #[inline]
    pub fn charge_io(&mut self, ps: u64) {
        self.clock.charge_to(Bucket::Io, ps);
    }

    /// Charge one outbound fabric message: `ps` of network time on this
    /// rank's clock plus the send counters a telemetry probe diffs. The
    /// fabric computes `ps` from its own timing model; the memory system
    /// only records it (multi-rank executions, `adcc::dist`).
    #[inline]
    pub fn charge_net_send(&mut self, bytes: u64, ps: u64) {
        self.stats.net_msgs_sent += 1;
        self.stats.net_bytes_sent += bytes;
        self.clock.charge_to(Bucket::Network, ps);
    }

    /// Charge network time that moves no payload owned by this rank:
    /// receive-side latency and barrier-synchronization waits.
    #[inline]
    pub fn charge_net_wait(&mut self, ps: u64) {
        self.clock.charge_to(Bucket::Network, ps);
    }

    /// Charge the cost of masking injected fabric faults on this rank:
    /// `dropped` lost attempts retransmitted (`retries` of them), one
    /// spurious `duplicated` transmit, a message marked `reordered`, and
    /// `ps` of network time covering the extra wire work. The fabric's
    /// fault plan computes the counts and the time; the memory system only
    /// records them (multi-rank executions, `adcc::dist`).
    #[inline]
    pub fn charge_net_faults(
        &mut self,
        dropped: u64,
        duplicated: u64,
        reordered: u64,
        retries: u64,
        ps: u64,
    ) {
        self.stats.net_dropped += dropped;
        self.stats.net_duplicated += duplicated;
        self.stats.net_reordered += reordered;
        self.stats.net_retries += retries;
        self.clock.charge_to(Bucket::Network, ps);
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The simulated clock (mutable, e.g. for bucket switching).
    pub fn clock_mut(&mut self) -> &mut SimClock {
        &mut self.clock
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Event counters since construction (they survive crashes).
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The static configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Total element accesses so far (crash-trigger granularity).
    pub fn access_count(&self) -> u64 {
        self.access_count
    }

    /// Count the distinct dirty NVM-homed cache lines currently resident in
    /// the volatile hierarchy (CPU cache and, on the heterogeneous
    /// platform, the DRAM cache). This is the paper's "dirty data in the
    /// cache hierarchy" residency: the bytes a crash at this instant would
    /// expose to recovery as stale NVM. Uncharged; telemetry hook.
    pub fn dirty_nvm_lines(&self) -> u64 {
        let mut lines: Vec<u64> = self
            .cpu
            .iter_resident()
            .chain(self.dramc.iter().flat_map(|dc| dc.iter_resident()))
            .filter(|&(line, dirty, _)| dirty && !is_dram_addr(line << LINE_SHIFT))
            .map(|(line, _, _)| line)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    }

    // ------------------------------------------------------------------
    // Crash
    // ------------------------------------------------------------------

    /// Crash the machine: every volatile level (CPU cache, DRAM cache,
    /// DRAM-direct region) is discarded and the surviving NVM image is
    /// returned. The system itself is left cold (cleared caches) so it can
    /// model the post-restart machine.
    ///
    /// With [`SystemConfig::persistent_caches`] (the Kiln /
    /// whole-system-persistence ablation), dirty NVM-homed lines are
    /// drained into NVM by the battery *before* the volatile state is
    /// discarded — uncharged, because the drain happens after the
    /// application has already died. The DRAM-direct scratch region is
    /// still lost.
    pub fn crash(&mut self) -> NvmImage {
        // Residency metadata is taken pre-drain: with battery-backed caches
        // it measures what *would* have been exposed, not what was lost.
        let dirty_lines = self.dirty_nvm_lines();
        if self.cfg.persistent_caches {
            for v in self.cpu.clean_all() {
                let addr = v.line << LINE_SHIFT;
                if is_dram_addr(addr) {
                    continue;
                }
                if let Some(dc) = self.dramc.as_mut() {
                    // Route through the DRAM cache level so its (possibly
                    // newer-than-NVM, older-than-CPU) copy is superseded.
                    if let Some(mut r) = dc.lookup(v.line) {
                        *r.data() = v.data;
                        r.mark_dirty();
                        continue;
                    }
                }
                self.nvm.write_line(v.line, &v.data);
            }
            if let Some(dc) = self.dramc.as_mut() {
                for v in dc.clean_all() {
                    self.nvm.write_line(v.line, &v.data);
                }
            }
        }
        self.cpu.clear();
        if let Some(dc) = self.dramc.as_mut() {
            dc.clear();
        }
        self.dram.wipe();
        self.nvm_streams.reset();
        self.dram_streams.reset();
        NvmImage::new(self.nvm.snapshot()).with_dirty_lines(dirty_lines)
    }

    /// Non-destructive snapshot of the current NVM backing store (what
    /// *would* survive a crash right now). Uncharged; for tests/analysis.
    pub fn nvm_snapshot(&self) -> NvmImage {
        NvmImage::new(self.nvm.snapshot())
    }

    /// Snapshot every deterministic counter (see [`CounterSnapshot`]).
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            stats: self.stats,
            bucket_ps: self.clock.bucket_totals(),
            now_ps: self.clock.now().ps(),
        }
    }

    /// Take the shared base for copy-on-write crash images: snapshot the
    /// NVM pool once and start the backing store's write journal. Every
    /// subsequent [`MemorySystem::crash_fork_delta`] captures only the
    /// lines written since this call (diffed against the base, so
    /// rewrites of identical bytes are dropped too).
    ///
    /// Taking a new base restarts the journal and invalidates the previous
    /// base. Uncharged.
    pub fn delta_base(&mut self) -> DeltaBase {
        let epoch = self.nvm.mark_journal();
        DeltaBase {
            base: Arc::new(NvmImage::new(self.nvm.snapshot())),
            epoch,
        }
    }

    /// Fork the crash image at the current point as a copy-on-write delta
    /// against `base`: semantically identical to
    /// [`MemorySystem::crash_fork`] (honoring
    /// [`SystemConfig::persistent_caches`] the same way), but storing only
    /// the NVM lines that differ from the base snapshot. Panics if `base`
    /// is stale (a newer base was taken, or the pool was wholesale
    /// restored/wiped since). Uncharged.
    pub fn crash_fork_delta(&self, base: &DeltaBase) -> DeltaImage {
        assert_eq!(
            base.epoch,
            self.nvm.journal_epoch(),
            "stale DeltaBase: the NVM write journal was restarted since this base was taken"
        );
        let nvm_base = self.nvm.base();
        // Lines the battery would drain may never have reached the backing
        // store; overlay them (DRAM-cache copies first, then the newer CPU
        // copies on top — the real drain's supersession order).
        let mut overlay: Vec<(u64, [u8; LINE_SIZE])> = Vec::new();
        if self.cfg.persistent_caches {
            overlay.extend(
                self.dramc
                    .iter()
                    .flat_map(|dc| dc.iter_resident())
                    .chain(self.cpu.iter_resident())
                    .filter(|&(line, dirty, _)| dirty && !is_dram_addr(line << LINE_SHIFT))
                    .map(|(line, _, data)| (line, *data)),
            );
        }
        let mut lines: Vec<u64> = self.nvm.journal_lines().to_vec();
        lines.extend(overlay.iter().map(|&(line, _)| line));
        lines.sort_unstable();
        lines.dedup();
        // Stable sort keeps insertion order within a line, so the last
        // entry of an equal-line run is the newest (CPU-level) copy.
        overlay.sort_by_key(|&(line, _)| line);
        let base_bytes = base.base.bytes();
        let mut kept = Vec::with_capacity(lines.len());
        let mut data = Vec::with_capacity(lines.len() * LINE_SIZE);
        for &line in &lines {
            let mut payload = self.nvm.read_line(line);
            let after = overlay.partition_point(|&(l, _)| l <= line);
            if after > 0 && overlay[after - 1].0 == line {
                payload = overlay[after - 1].1;
            }
            let off = ((line << LINE_SHIFT) - nvm_base) as usize;
            if payload[..] != base_bytes[off..off + LINE_SIZE] {
                kept.push(line);
                data.extend_from_slice(&payload);
            }
        }
        DeltaImage::new(Arc::clone(&base.base), kept, data).with_dirty_lines(self.dirty_nvm_lines())
    }

    /// Fork the crash image at the current point: exactly the [`NvmImage`]
    /// that [`MemorySystem::crash`] would return *right now*, without
    /// discarding any volatile state, so execution can continue.
    ///
    /// This is the cheap snapshot hook crash-injection campaigns build on:
    /// one instrumented execution can yield an image per crash point
    /// instead of re-running the application once per point. Honors
    /// [`SystemConfig::persistent_caches`] by overlaying the dirty
    /// NVM-homed cache lines the battery would drain (CPU copies supersede
    /// DRAM-cache copies, like the real drain). Uncharged.
    pub fn crash_fork(&self) -> NvmImage {
        let mut bytes = self.nvm.snapshot();
        if self.cfg.persistent_caches {
            let base = self.nvm.base();
            // DRAM-cache copies first, then CPU copies (newer) on top.
            let levels = self
                .dramc
                .iter()
                .flat_map(|dc| dc.iter_resident())
                .chain(self.cpu.iter_resident());
            for (line, dirty, data) in levels {
                let addr = line << LINE_SHIFT;
                if !dirty || is_dram_addr(addr) {
                    continue;
                }
                let off = (addr - base) as usize;
                bytes[off..off + LINE_SIZE].copy_from_slice(data);
            }
        }
        NvmImage::new(bytes).with_dirty_lines(self.dirty_nvm_lines())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sys() -> MemorySystem {
        // 4 KiB CPU cache, no DRAM cache, 1 MiB NVM.
        MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
    }

    fn hetero_sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::heterogeneous(4096, 16384, 1 << 20))
    }

    #[test]
    fn read_after_write_same_value() {
        let mut s = small_sys();
        let a = s.alloc_nvm(128);
        s.write_bytes(a, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        s.read_bytes(a, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn dirty_data_not_in_nvm_until_flush() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[9; 8]);
        // NVM still holds zeros: the write is stranded in cache.
        let img = s.nvm_snapshot();
        assert_eq!(img.read_u8(a), 0);
        s.clflush(a);
        let img = s.nvm_snapshot();
        assert_eq!(img.read_u8(a), 9);
    }

    #[test]
    fn crash_discards_cached_writes() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        let b = s.alloc_nvm(64);
        s.write_bytes(a, &[7; 8]);
        s.clflush(a);
        s.write_bytes(b, &[8; 8]);
        let img = s.crash();
        assert_eq!(img.read_u8(a), 7, "flushed line survives");
        assert_eq!(img.read_u8(b), 0, "unflushed line lost");
    }

    #[test]
    fn eviction_writes_back_dirty_lines() {
        let mut s = small_sys();
        // Cache is 4 KiB = 64 lines; write 128 distinct lines to force
        // evictions of the earliest ones.
        let a = s.alloc_nvm(128 * 64);
        for i in 0..128u64 {
            s.write_bytes(a + i * 64, &[i as u8; 8]);
        }
        let img = s.nvm_snapshot();
        // The very first line must have been evicted (written back).
        assert_eq!(img.read_u8(a), 0u8.wrapping_sub(0)); // value was 0
        assert_eq!(img.read_u8(a + 64), 1);
    }

    #[test]
    fn clflush_on_hetero_lands_in_dram_cache_not_nvm() {
        let mut s = hetero_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[5; 8]);
        s.clflush(a);
        // CLFLUSH pushed it only into the volatile DRAM cache.
        let img = s.nvm_snapshot();
        assert_eq!(img.read_u8(a), 0, "CLFLUSH alone is not durable on hetero");
        // A crash loses it.
        let img = s.crash();
        assert_eq!(img.read_u8(a), 0);
    }

    #[test]
    fn persist_line_is_durable_on_hetero() {
        let mut s = hetero_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[5; 8]);
        s.persist_line(a);
        let img = s.crash();
        assert_eq!(img.read_u8(a), 5);
    }

    #[test]
    fn drain_dram_cache_persists_evicted_writes() {
        let mut s = hetero_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[6; 8]);
        s.clflush(a); // now dirty in DRAM cache
        s.drain_dram_cache();
        let img = s.crash();
        assert_eq!(img.read_u8(a), 6);
    }

    #[test]
    fn copy_range_copies_values() {
        let mut s = small_sys();
        let src = s.alloc_nvm(256);
        let dst = s.alloc_nvm(256);
        let data: Vec<u8> = (0..=255u8).collect();
        s.write_bytes(src, &data[..64]);
        s.write_bytes(src + 64, &data[64..128]);
        s.write_bytes(src + 128, &data[128..192]);
        s.write_bytes(src + 192, &data[192..]);
        s.copy_range(dst, src, 256);
        let mut out = vec![0u8; 256];
        s.peek_bytes(dst, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn seed_bytes_bypasses_cache_and_clock() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        let before = s.now();
        s.seed_bytes(a, &[3; 64]);
        assert_eq!(s.now(), before);
        let mut out = [0u8; 4];
        s.read_bytes(a, &mut out);
        assert_eq!(out, [3; 4]);
    }

    #[test]
    fn dram_direct_lost_on_crash() {
        let mut s = small_sys();
        let a = s.alloc_dram(64);
        s.write_bytes(a, &[4; 8]);
        s.clflush(a);
        let mut out = [0u8; 8];
        s.peek_bytes(a, &mut out);
        assert_eq!(out, [4; 8]);
        s.crash();
        let mut out = [1u8; 8];
        s.peek_bytes(a, &mut out);
        assert_eq!(out, [0; 8], "DRAM-direct region wiped at crash");
    }

    #[test]
    fn time_advances_and_nvm_slower_than_cache_hits() {
        let mut s = hetero_sys();
        let a = s.alloc_nvm(64);
        let t0 = s.now();
        s.read_bytes(a, &mut [0u8; 8]); // cold miss -> NVM
        let t_miss = s.now() - t0;
        let t1 = s.now();
        s.read_bytes(a, &mut [0u8; 8]); // hit
        let t_hit = s.now() - t1;
        assert!(t_miss.ps() > 10 * t_hit.ps(), "{t_miss} !>> {t_hit}");
    }

    #[test]
    fn sfence_counts_and_charges() {
        let mut s = small_sys();
        let t0 = s.now();
        s.sfence();
        assert_eq!(s.stats().sfences, 1);
        assert!(s.now() > t0);
    }

    #[test]
    fn multi_line_access_straddles_correctly() {
        let mut s = small_sys();
        let a = s.alloc_nvm(192);
        let src: Vec<u8> = (0..100u8).collect();
        // Write 100 bytes starting 30 bytes into a line.
        s.write_bytes(a + 30, &src);
        let mut out = vec![0u8; 100];
        s.read_bytes(a + 30, &mut out);
        assert_eq!(out, src);
    }

    #[test]
    fn clflushopt_is_cheaper_but_equally_durable() {
        let mut s1 = small_sys();
        let a = s1.alloc_nvm(64);
        s1.write_bytes(a, &[5; 8]);
        let t0 = s1.now();
        s1.clflush(a);
        let t_clflush = s1.now() - t0;

        let mut s2 = small_sys();
        let b = s2.alloc_nvm(64);
        s2.write_bytes(b, &[5; 8]);
        let t0 = s2.now();
        s2.clflushopt(b);
        let t_opt = s2.now() - t0;

        assert!(t_opt < t_clflush, "{t_opt} !< {t_clflush}");
        assert_eq!(s2.crash().read_u8(b), 5);
        assert_eq!(s2.stats().clflushopts, 1);
    }

    #[test]
    fn clwb_persists_but_line_stays_hot() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[6; 8]);
        s.clwb(a);
        // Durable...
        assert_eq!(s.nvm_snapshot().read_u8(a), 6);
        // ...and still a cache hit (no new NVM read).
        let reads_before = s.stats().nvm_line_reads;
        s.read_bytes(a, &mut [0u8; 8]);
        assert_eq!(s.stats().nvm_line_reads, reads_before);
        assert_eq!(s.stats().clwbs, 1);
    }

    #[test]
    fn clwb_on_clean_line_writes_nothing() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        s.read_bytes(a, &mut [0u8; 8]); // resident, clean
        let writes = s.stats().nvm_line_writes;
        s.clwb(a);
        assert_eq!(s.stats().nvm_line_writes, writes);
    }

    #[test]
    fn configured_flush_op_routes_helpers() {
        let cfg = SystemConfig::nvm_only(4096, 1 << 20).with_flush_op(FlushOp::Clwb);
        let mut s = MemorySystem::new(cfg);
        let a = s.alloc_nvm(256);
        s.write_bytes(a, &[8; 8]);
        s.persist_range(a, 256);
        assert_eq!(s.stats().clflushes, 0);
        assert!(s.stats().clwbs >= 4);
        assert_eq!(s.crash().read_u8(a), 8);
    }

    #[test]
    fn persistent_caches_save_unflushed_data_at_crash() {
        let cfg = SystemConfig::nvm_only(4096, 1 << 20).with_persistent_caches(true);
        let mut s = MemorySystem::new(cfg);
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[9; 8]);
        // No flush at all — the battery drains the cache at crash time.
        let img = s.crash();
        assert_eq!(img.read_u8(a), 9);
    }

    #[test]
    fn persistent_caches_on_hetero_drain_both_levels() {
        let cfg = SystemConfig::heterogeneous(4096, 16384, 1 << 20).with_persistent_caches(true);
        let mut s = MemorySystem::new(cfg);
        let a = s.alloc_nvm(128);
        s.write_bytes(a, &[1; 8]);
        s.clflush(a); // dirty in the DRAM cache now
        s.write_bytes(a + 64, &[2; 8]); // dirty in the CPU cache
        let img = s.crash();
        assert_eq!(img.read_u8(a), 1);
        assert_eq!(img.read_u8(a + 64), 2);
    }

    #[test]
    fn persistent_caches_still_lose_dram_direct() {
        let cfg = SystemConfig::nvm_only(4096, 1 << 20).with_persistent_caches(true);
        let mut s = MemorySystem::new(cfg);
        let a = s.alloc_dram(64);
        s.write_bytes(a, &[7; 8]);
        s.crash();
        let mut out = [9u8; 8];
        s.peek_bytes(a, &mut out);
        assert_eq!(out, [0; 8]);
    }

    #[test]
    fn crash_fork_equals_crash_image_and_preserves_the_run() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        let b = s.alloc_nvm(64);
        s.write_bytes(a, &[7; 8]);
        s.clflush(a);
        s.write_bytes(b, &[8; 8]); // stranded in cache
        let fork = s.crash_fork();
        // The fork is non-destructive: cached data is still visible...
        let mut out = [0u8; 8];
        s.peek_bytes(b, &mut out);
        assert_eq!(out, [8; 8]);
        // ...and the image matches what a real crash produces.
        let crashed = s.crash();
        assert_eq!(fork.bytes(), crashed.bytes());
        assert_eq!(fork.read_u8(a), 7);
        assert_eq!(fork.read_u8(b), 0);
    }

    #[test]
    fn crash_fork_equals_crash_on_hetero() {
        let mut s = hetero_sys();
        let a = s.alloc_nvm(128);
        s.write_bytes(a, &[5; 8]);
        s.clflush(a); // dirty in the volatile DRAM cache
        s.write_bytes(a + 64, &[6; 8]); // dirty in the CPU cache
        let fork = s.crash_fork();
        let crashed = s.crash();
        assert_eq!(fork.bytes(), crashed.bytes());
        assert_eq!(fork.read_u8(a), 0, "DRAM-cache copy is volatile");
    }

    #[test]
    fn crash_fork_drains_persistent_caches_like_crash() {
        let cfg = SystemConfig::heterogeneous(4096, 16384, 1 << 20).with_persistent_caches(true);
        let mut s = MemorySystem::new(cfg);
        let a = s.alloc_nvm(128);
        s.write_bytes(a, &[1; 8]);
        s.clflush(a); // dirty in the DRAM cache
        s.write_bytes(a + 64, &[2; 8]); // dirty in the CPU cache
        let fork = s.crash_fork();
        let crashed = s.crash();
        assert_eq!(fork.bytes(), crashed.bytes());
        assert_eq!(fork.read_u8(a), 1);
        assert_eq!(fork.read_u8(a + 64), 2);
    }

    #[test]
    fn dirty_nvm_lines_track_unflushed_writes() {
        let mut s = small_sys();
        let a = s.alloc_nvm(256);
        assert_eq!(s.dirty_nvm_lines(), 0);
        s.write_bytes(a, &[1; 8]); // one dirty line
        s.write_bytes(a + 64, &[2; 8]); // second dirty line
        assert_eq!(s.dirty_nvm_lines(), 2);
        s.clflush(a); // persisted: no longer dirty anywhere
        assert_eq!(s.dirty_nvm_lines(), 1);
        // DRAM-direct writes never count as dirty persistent data.
        let d = s.alloc_dram(64);
        s.write_bytes(d, &[3; 8]);
        assert_eq!(s.dirty_nvm_lines(), 1);
        // The crash image carries the residency it observed.
        let img = s.crash();
        assert_eq!(img.dirty_lines_at_crash(), 1);
        assert_eq!(img.dirty_bytes_at_crash(), 64);
    }

    #[test]
    fn dirty_nvm_lines_dedup_across_hetero_levels() {
        let mut s = hetero_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[5; 8]);
        s.clflush(a); // dirty copy now in the DRAM cache
        assert_eq!(s.dirty_nvm_lines(), 1);
        s.write_bytes(a, &[6; 8]); // dirty again in the CPU cache too
        assert_eq!(s.dirty_nvm_lines(), 1, "same line counted once");
        let fork = s.crash_fork();
        assert_eq!(fork.dirty_lines_at_crash(), 1);
    }

    #[test]
    fn delta_fork_materializes_to_the_full_crash_fork_image() {
        let mut s = small_sys();
        let a = s.alloc_nvm(256);
        s.write_bytes(a, &[1; 8]);
        s.clflush(a); // in NVM before the base is taken
        let base = s.delta_base();
        s.write_bytes(a + 64, &[2; 8]);
        s.clflush(a + 64); // persisted after the base: must be in the delta
        s.write_bytes(a + 128, &[3; 8]); // stranded in cache: not in NVM
        let delta = s.crash_fork_delta(&base);
        let full = s.crash_fork();
        assert_eq!(delta.materialize().bytes(), full.bytes());
        assert_eq!(delta.read_u8(a), 1, "pre-base bytes come from the base");
        assert_eq!(delta.read_u8(a + 64), 2, "post-base bytes from the delta");
        assert_eq!(delta.read_u8(a + 128), 0, "cached write not durable");
        assert_eq!(delta.delta_line_count(), 1, "only the flushed line");
        assert_eq!(delta.dirty_lines_at_crash(), full.dirty_lines_at_crash());
    }

    #[test]
    fn delta_fork_drops_rewrites_of_identical_bytes() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[7; 8]);
        s.clflush(a);
        let base = s.delta_base();
        s.write_bytes(a, &[7; 8]); // same bytes again
        s.clflush(a);
        let delta = s.crash_fork_delta(&base);
        assert_eq!(delta.delta_line_count(), 0);
        assert_eq!(delta.materialize().bytes(), s.crash_fork().bytes());
    }

    #[test]
    fn delta_forks_accumulate_as_the_run_advances() {
        let mut s = small_sys();
        let a = s.alloc_nvm(4 * 64);
        let base = s.delta_base();
        let mut deltas = Vec::new();
        for i in 0..4u64 {
            s.write_bytes(a + i * 64, &[i as u8 + 1; 8]);
            s.clflush(a + i * 64);
            deltas.push(s.crash_fork_delta(&base));
        }
        for (i, d) in deltas.iter().enumerate() {
            assert_eq!(d.delta_line_count(), i as u64 + 1);
            // Earlier forks are unaffected by later writes.
            assert_eq!(d.read_u8(a + i as u64 * 64), i as u8 + 1);
            if i + 1 < 4 {
                assert_eq!(d.read_u8(a + (i as u64 + 1) * 64), 0);
            }
        }
        // All deltas share one base allocation.
        assert_eq!(Arc::strong_count(deltas[0].base()), 5);
    }

    #[test]
    fn delta_fork_equals_crash_fork_with_persistent_caches() {
        let cfg = SystemConfig::heterogeneous(4096, 16384, 1 << 20).with_persistent_caches(true);
        let mut s = MemorySystem::new(cfg);
        let a = s.alloc_nvm(128);
        let base = s.delta_base();
        s.write_bytes(a, &[1; 8]);
        s.clflush(a); // dirty in the DRAM cache
        s.write_bytes(a + 64, &[2; 8]); // dirty in the CPU cache
        let delta = s.crash_fork_delta(&base);
        let full = s.crash_fork();
        assert_eq!(delta.materialize().bytes(), full.bytes());
        assert_eq!(delta.read_u8(a), 1);
        assert_eq!(delta.read_u8(a + 64), 2);
    }

    #[test]
    #[should_panic(expected = "stale DeltaBase")]
    fn stale_delta_base_panics_at_fork() {
        let mut s = small_sys();
        let old = s.delta_base();
        let _new = s.delta_base();
        let _ = s.crash_fork_delta(&old);
    }

    #[test]
    fn empty_batched_persist_is_free() {
        let mut s = small_sys();
        let t0 = s.now();
        let stats0 = *s.stats();
        s.persist_lines_batched(&[]);
        assert_eq!(s.now(), t0, "no time charged");
        assert_eq!(s.stats().sfences, stats0.sfences, "no fence issued");
        assert_eq!(
            s.stats().epoch_barriers,
            stats0.epoch_barriers,
            "no barrier counted"
        );
    }

    #[test]
    fn net_charges_hit_the_network_bucket_and_counters() {
        let mut s = small_sys();
        s.charge_net_send(128, 5_000);
        s.charge_net_wait(1_000);
        assert_eq!(s.stats().net_msgs_sent, 1);
        assert_eq!(s.stats().net_bytes_sent, 128);
        assert_eq!(s.clock().bucket_total(Bucket::Network), SimTime(6_000));
        assert_eq!(s.now(), SimTime(6_000));
    }

    #[test]
    fn counter_snapshot_matches_live_counters() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[1; 8]);
        s.persist_line(a);
        s.sfence();
        let snap = s.counter_snapshot();
        assert_eq!(snap.now_ps, s.now().ps());
        assert_eq!(snap.stats.sfences, s.stats().sfences);
        assert_eq!(snap.bucket_ps, s.clock().bucket_totals());
    }

    #[test]
    fn from_image_restores_persistent_state() {
        let mut s = small_sys();
        let a = s.alloc_nvm(64);
        s.write_bytes(a, &[42; 8]);
        s.persist_line(a);
        let img = s.crash();
        let mut s2 = MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20));
        s2.nvm.restore(img.bytes());
        let mut out = [0u8; 8];
        s2.read_bytes(a, &mut out);
        assert_eq!(out, [42; 8]);
    }
}
