//! Post-crash NVM images.
//!
//! An [`NvmImage`] is what the paper's crash emulator outputs: "the values
//! of data in ... main memory" at the moment of the crash. Recovery logic
//! reads the image (or boots a fresh [`crate::system::MemorySystem`] from
//! it, so that detection work is charged on the simulated clock).
//!
//! A [`DeltaImage`] is the copy-on-write form a crash-injection campaign
//! harvests at scale: an immutable base snapshot shared via [`Arc`] plus
//! only the NVM lines that changed since the base was taken, so storing a
//! crash state costs O(dirty lines) instead of O(pool size). Recovery
//! lazily [`DeltaImage::materialize`]s a full image when it needs one.

use std::sync::Arc;

use crate::line::{line_of, offset_in_line, LINE_SHIFT, LINE_SIZE};
use crate::parray::{PArray, Pod};

/// A byte-exact snapshot of the NVM region at crash time.
#[derive(Clone)]
pub struct NvmImage {
    bytes: Vec<u8>,
    /// Distinct dirty NVM-homed cache lines resident in volatile levels at
    /// the crash instant (telemetry metadata; zero when not recorded).
    dirty_lines: u64,
}

impl NvmImage {
    /// Wrap raw snapshot bytes (no dirty-residency metadata attached).
    pub fn new(bytes: Vec<u8>) -> Self {
        NvmImage {
            bytes,
            dirty_lines: 0,
        }
    }

    /// Attach the number of dirty NVM-homed cache lines that were resident
    /// in the volatile hierarchy when this image was taken — the paper's
    /// "dirty data in the cache hierarchy" residency metric. Recorded by
    /// [`crate::system::MemorySystem::crash`] and
    /// [`crate::system::MemorySystem::crash_fork`].
    pub fn with_dirty_lines(mut self, lines: u64) -> Self {
        self.dirty_lines = lines;
        self
    }

    /// Dirty NVM-homed cache lines resident in volatile levels at crash
    /// time (zero when the image was built without residency metadata).
    ///
    /// With battery-backed caches ([`crate::system::SystemConfig::persistent_caches`])
    /// this still reports the pre-drain residency: it measures how much data
    /// *would* have been exposed, not how much was lost.
    pub fn dirty_lines_at_crash(&self) -> u64 {
        self.dirty_lines
    }

    /// [`NvmImage::dirty_lines_at_crash`] converted to bytes.
    pub fn dirty_bytes_at_crash(&self) -> u64 {
        crate::line::lines_to_bytes(self.dirty_lines)
    }

    /// Raw bytes of the snapshot (NVM addresses index directly).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Snapshot size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the snapshot holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read a typed value at an NVM address.
    pub fn read<T: Pod>(&self, addr: u64) -> T {
        let a = addr as usize;
        assert!(
            a + T::SIZE <= self.bytes.len(),
            "image read at {addr:#x}+{} out of range {}",
            T::SIZE,
            self.bytes.len()
        );
        T::from_bytes(&self.bytes[a..a + T::SIZE])
    }

    /// Read one byte at an NVM address.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.read(addr)
    }

    /// Read a little-endian `u64` at an NVM address.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr)
    }

    /// Read an `f64` at an NVM address.
    pub fn read_f64(&self, addr: u64) -> f64 {
        self.read(addr)
    }

    /// Read a whole typed array (by its simulated-memory handle).
    pub fn read_array<T: Pod>(&self, arr: &PArray<T>) -> Vec<T> {
        (0..arr.len()).map(|i| self.read(arr.addr(i))).collect()
    }

    /// Convenience alias for the common f64 case.
    pub fn read_f64_array(&self, arr: &PArray<f64>) -> Vec<f64> {
        self.read_array(arr)
    }
}

impl std::fmt::Debug for NvmImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NvmImage({} bytes)", self.bytes.len())
    }
}

/// A copy-on-write crash image: a shared base snapshot plus the NVM lines
/// that differ from it at crash time.
///
/// Built by [`crate::system::MemorySystem::crash_fork_delta`] against a
/// [`crate::system::DeltaBase`]. Reads see exactly the bytes a full
/// [`crate::system::MemorySystem::crash_fork`] image taken at the same
/// instant would hold; [`DeltaImage::materialize`] proves it by producing
/// that byte-identical [`NvmImage`].
#[derive(Clone)]
pub struct DeltaImage {
    base: Arc<NvmImage>,
    /// Sorted line numbers present in the delta.
    lines: Vec<u64>,
    /// Concatenated payload: `lines[i]`'s bytes live at `i * LINE_SIZE`.
    data: Vec<u8>,
    dirty_lines: u64,
}

impl DeltaImage {
    /// Assemble a delta over `base`. `lines` must be sorted, distinct line
    /// numbers; `data` holds one [`LINE_SIZE`] payload per line.
    pub(crate) fn new(base: Arc<NvmImage>, lines: Vec<u64>, data: Vec<u8>) -> Self {
        debug_assert_eq!(lines.len() * LINE_SIZE, data.len());
        debug_assert!(lines.windows(2).all(|w| w[0] < w[1]), "lines unsorted");
        DeltaImage {
            base,
            lines,
            data,
            dirty_lines: 0,
        }
    }

    /// Attach dirty-residency metadata (see [`NvmImage::with_dirty_lines`]).
    pub fn with_dirty_lines(mut self, lines: u64) -> Self {
        self.dirty_lines = lines;
        self
    }

    /// Dirty NVM-homed cache lines resident in volatile levels at crash
    /// time (the same residency metric [`NvmImage::dirty_lines_at_crash`]
    /// carries; it survives materialization).
    pub fn dirty_lines_at_crash(&self) -> u64 {
        self.dirty_lines
    }

    /// [`DeltaImage::dirty_lines_at_crash`] converted to bytes.
    pub fn dirty_bytes_at_crash(&self) -> u64 {
        crate::line::lines_to_bytes(self.dirty_lines)
    }

    /// The shared base snapshot this delta applies to.
    pub fn base(&self) -> &Arc<NvmImage> {
        &self.base
    }

    /// Number of lines stored in the delta.
    pub fn delta_line_count(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Bytes of delta payload this crash state owns (excludes the shared
    /// base). This is the per-state memory cost campaigns report.
    pub fn delta_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// Logical size of the image in bytes (same as the base snapshot).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the logical image holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Copy `buf.len()` bytes starting at NVM address `addr` out of the
    /// logical image (delta lines shadow the base).
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        assert!(
            addr as usize + buf.len() <= self.base.len(),
            "image read at {addr:#x}+{} out of range {}",
            buf.len(),
            self.base.len()
        );
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let off = offset_in_line(a);
            let take = (LINE_SIZE - off).min(buf.len() - done);
            let line = line_of(a);
            let src = match self.lines.binary_search(&line) {
                Ok(i) => &self.data[i * LINE_SIZE..(i + 1) * LINE_SIZE],
                Err(_) => {
                    let base = (line << LINE_SHIFT) as usize;
                    &self.base.bytes()[base..base + LINE_SIZE]
                }
            };
            buf[done..done + take].copy_from_slice(&src[off..off + take]);
            done += take;
        }
    }

    /// Read a typed value at an NVM address.
    pub fn read<T: Pod>(&self, addr: u64) -> T {
        let mut buf = [0u8; 16];
        assert!(T::SIZE <= buf.len(), "oversized Pod read");
        self.read_bytes(addr, &mut buf[..T::SIZE]);
        T::from_bytes(&buf[..T::SIZE])
    }

    /// Read one byte at an NVM address.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.read(addr)
    }

    /// Read a little-endian `u64` at an NVM address.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr)
    }

    /// Read an `f64` at an NVM address.
    pub fn read_f64(&self, addr: u64) -> f64 {
        self.read(addr)
    }

    /// Read a whole typed array (by its simulated-memory handle).
    pub fn read_array<T: Pod>(&self, arr: &PArray<T>) -> Vec<T> {
        (0..arr.len()).map(|i| self.read(arr.addr(i))).collect()
    }

    /// Expand to a standalone full [`NvmImage`]: base bytes with the delta
    /// lines applied, dirty-residency metadata carried over. Byte-identical
    /// to the full crash image taken at the same instant.
    pub fn materialize(&self) -> NvmImage {
        let mut bytes = self.base.bytes().to_vec();
        for (i, &line) in self.lines.iter().enumerate() {
            let off = (line << LINE_SHIFT) as usize;
            bytes[off..off + LINE_SIZE]
                .copy_from_slice(&self.data[i * LINE_SIZE..(i + 1) * LINE_SIZE]);
        }
        NvmImage::new(bytes).with_dirty_lines(self.dirty_lines)
    }
}

impl std::fmt::Debug for DeltaImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeltaImage({} lines over {}-byte base)",
            self.lines.len(),
            self.base.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{MemorySystem, SystemConfig};

    #[test]
    fn image_reads_typed_values() {
        let mut s = MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 16));
        let a = PArray::<f64>::alloc_nvm(&mut s, 4);
        a.store_slice(&mut s, &[1.0, 2.0, 3.0, 4.0]);
        a.persist_all(&mut s);
        let img = s.crash();
        assert_eq!(img.read_f64(a.addr(2)), 3.0);
        assert_eq!(img.read_f64_array(&a), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn image_bounds_checked() {
        let img = NvmImage::new(vec![0; 8]);
        let _ = img.read_u64(4);
    }
}
