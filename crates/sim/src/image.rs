//! Post-crash NVM images.
//!
//! An [`NvmImage`] is what the paper's crash emulator outputs: "the values
//! of data in ... main memory" at the moment of the crash. Recovery logic
//! reads the image (or boots a fresh [`crate::system::MemorySystem`] from
//! it, so that detection work is charged on the simulated clock).

use crate::parray::{PArray, Pod};

/// A byte-exact snapshot of the NVM region at crash time.
#[derive(Clone)]
pub struct NvmImage {
    bytes: Vec<u8>,
    /// Distinct dirty NVM-homed cache lines resident in volatile levels at
    /// the crash instant (telemetry metadata; zero when not recorded).
    dirty_lines: u64,
}

impl NvmImage {
    /// Wrap raw snapshot bytes (no dirty-residency metadata attached).
    pub fn new(bytes: Vec<u8>) -> Self {
        NvmImage {
            bytes,
            dirty_lines: 0,
        }
    }

    /// Attach the number of dirty NVM-homed cache lines that were resident
    /// in the volatile hierarchy when this image was taken — the paper's
    /// "dirty data in the cache hierarchy" residency metric. Recorded by
    /// [`crate::system::MemorySystem::crash`] and
    /// [`crate::system::MemorySystem::crash_fork`].
    pub fn with_dirty_lines(mut self, lines: u64) -> Self {
        self.dirty_lines = lines;
        self
    }

    /// Dirty NVM-homed cache lines resident in volatile levels at crash
    /// time (zero when the image was built without residency metadata).
    ///
    /// With battery-backed caches ([`crate::system::SystemConfig::persistent_caches`])
    /// this still reports the pre-drain residency: it measures how much data
    /// *would* have been exposed, not how much was lost.
    pub fn dirty_lines_at_crash(&self) -> u64 {
        self.dirty_lines
    }

    /// [`NvmImage::dirty_lines_at_crash`] converted to bytes.
    pub fn dirty_bytes_at_crash(&self) -> u64 {
        crate::line::lines_to_bytes(self.dirty_lines)
    }

    /// Raw bytes of the snapshot (NVM addresses index directly).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Snapshot size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the snapshot holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read a typed value at an NVM address.
    pub fn read<T: Pod>(&self, addr: u64) -> T {
        let a = addr as usize;
        assert!(
            a + T::SIZE <= self.bytes.len(),
            "image read at {addr:#x}+{} out of range {}",
            T::SIZE,
            self.bytes.len()
        );
        T::from_bytes(&self.bytes[a..a + T::SIZE])
    }

    /// Read one byte at an NVM address.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.read(addr)
    }

    /// Read a little-endian `u64` at an NVM address.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr)
    }

    /// Read an `f64` at an NVM address.
    pub fn read_f64(&self, addr: u64) -> f64 {
        self.read(addr)
    }

    /// Read a whole typed array (by its simulated-memory handle).
    pub fn read_array<T: Pod>(&self, arr: &PArray<T>) -> Vec<T> {
        (0..arr.len()).map(|i| self.read(arr.addr(i))).collect()
    }

    /// Convenience alias for the common f64 case.
    pub fn read_f64_array(&self, arr: &PArray<f64>) -> Vec<f64> {
        self.read_array(arr)
    }
}

impl std::fmt::Debug for NvmImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NvmImage({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{MemorySystem, SystemConfig};

    #[test]
    fn image_reads_typed_values() {
        let mut s = MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 16));
        let a = PArray::<f64>::alloc_nvm(&mut s, 4);
        a.store_slice(&mut s, &[1.0, 2.0, 3.0, 4.0]);
        a.persist_all(&mut s);
        let img = s.crash();
        assert_eq!(img.read_f64(a.addr(2)), 3.0);
        assert_eq!(img.read_f64_array(&a), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn image_bounds_checked() {
        let img = NvmImage::new(vec![0; 8]);
        let _ = img.read_u64(4);
    }
}
