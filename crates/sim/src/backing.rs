//! Byte-addressable backing stores for the simulated media.
//!
//! The NVM backing store is the ground truth at crash time: whatever bytes
//! it holds when volatile levels are discarded is exactly what a recovery
//! process can observe.

use crate::line::{LINE_SHIFT, LINE_SIZE};

/// A flat byte store with a base address.
pub struct Backing {
    base: u64,
    bytes: Vec<u8>,
}

impl Backing {
    /// Create a zero-initialized store of `capacity` bytes starting at
    /// simulated address `base`. The base must be line-aligned.
    pub fn new(base: u64, capacity: usize) -> Self {
        assert_eq!(base % LINE_SIZE as u64, 0, "base must be line-aligned");
        Backing {
            base,
            bytes: vec![0; capacity],
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Base simulated address.
    pub fn base(&self) -> u64 {
        self.base
    }

    #[inline]
    fn index(&self, addr: u64, len: usize) -> usize {
        let off = addr
            .checked_sub(self.base)
            .unwrap_or_else(|| panic!("address {addr:#x} below backing base {:#x}", self.base));
        let off = off as usize;
        assert!(
            off + len <= self.bytes.len(),
            "address range {addr:#x}+{len} beyond backing capacity {}",
            self.bytes.len()
        );
        off
    }

    /// Read the full line containing byte address `line_addr << 6`.
    #[inline]
    pub fn read_line(&self, line: u64) -> [u8; LINE_SIZE] {
        let addr = line << LINE_SHIFT;
        let off = self.index(addr, LINE_SIZE);
        let mut out = [0u8; LINE_SIZE];
        out.copy_from_slice(&self.bytes[off..off + LINE_SIZE]);
        out
    }

    /// Write a full line.
    #[inline]
    pub fn write_line(&mut self, line: u64, data: &[u8; LINE_SIZE]) {
        let addr = line << LINE_SHIFT;
        let off = self.index(addr, LINE_SIZE);
        self.bytes[off..off + LINE_SIZE].copy_from_slice(data);
    }

    /// Raw (uncharged) byte read, used by image snapshots and debugging.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let off = self.index(addr, buf.len());
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
    }

    /// Raw (uncharged) byte write, used to seed initial state.
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) {
        let off = self.index(addr, src.len());
        self.bytes[off..off + src.len()].copy_from_slice(src);
    }

    /// Clone the full contents (crash snapshot).
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.clone()
    }

    /// Overwrite the full contents (restoring a snapshot).
    pub fn restore(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.bytes.len(), "snapshot size mismatch");
        self.bytes.copy_from_slice(bytes);
    }

    /// Zero everything (volatile medium lost at crash).
    pub fn wipe(&mut self) {
        self.bytes.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_roundtrip() {
        let mut b = Backing::new(0, 1024);
        let mut d = [0u8; LINE_SIZE];
        d[7] = 77;
        b.write_line(3, &d);
        assert_eq!(b.read_line(3)[7], 77);
        assert_eq!(b.read_line(2)[7], 0);
    }

    #[test]
    fn byte_roundtrip_with_base() {
        let base = 1 << 40;
        let mut b = Backing::new(base, 256);
        b.write_bytes(base + 10, &[1, 2, 3]);
        let mut out = [0u8; 3];
        b.read_bytes(base + 10, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "beyond backing capacity")]
    fn out_of_range_panics() {
        let b = Backing::new(0, 64);
        let mut buf = [0u8; 8];
        b.read_bytes(60, &mut buf);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut b = Backing::new(0, 128);
        b.write_bytes(0, &[9; 128]);
        let snap = b.snapshot();
        b.wipe();
        assert_eq!(b.read_line(0)[0], 0);
        b.restore(&snap);
        assert_eq!(b.read_line(0)[0], 9);
    }
}
