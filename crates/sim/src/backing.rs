//! Byte-addressable backing stores for the simulated media.
//!
//! The NVM backing store is the ground truth at crash time: whatever bytes
//! it holds when volatile levels are discarded is exactly what a recovery
//! process can observe.

use crate::line::{LINE_SHIFT, LINE_SIZE};

/// A flat byte store with a base address.
///
/// The store can optionally journal writes at line granularity (see
/// [`Backing::mark_journal`]): after a mark, the distinct lines written are
/// recorded, which is what lets a crash-image fork capture only the lines
/// that changed since a base snapshot instead of copying the whole pool.
///
/// Storage is materialized lazily: `bytes` holds only the written prefix
/// of the pool, and everything from `bytes.len()` up to `cap` is logically
/// zero. A simulated pool is typically far larger than the data living in
/// it, so this keeps [`Clone`] — the engine of cluster forks in batched
/// crash replays — O(live data) instead of O(pool capacity).
#[derive(Clone)]
pub struct Backing {
    base: u64,
    /// The written prefix of the pool; offsets beyond `bytes.len()` (up to
    /// `cap`) read as zero. Grows on write, never past `cap`.
    bytes: Vec<u8>,
    /// Logical pool capacity in bytes.
    cap: usize,
    /// Monotonic epoch; bumped by [`Backing::mark_journal`] and by the
    /// whole-store mutations ([`Backing::restore`], [`Backing::wipe`]) that
    /// invalidate any outstanding journal consumer.
    journal_epoch: u64,
    /// Per-line epoch of the last journal entry (avoids duplicate pushes).
    line_mark: Vec<u64>,
    /// Distinct lines written since the last mark (unsorted).
    journal: Vec<u64>,
    journaling: bool,
}

impl Backing {
    /// Create a zero-initialized store of `capacity` bytes starting at
    /// simulated address `base`. The base must be line-aligned.
    pub fn new(base: u64, capacity: usize) -> Self {
        assert_eq!(base % LINE_SIZE as u64, 0, "base must be line-aligned");
        Backing {
            base,
            bytes: Vec::new(),
            cap: capacity,
            journal_epoch: 0,
            line_mark: Vec::new(),
            journal: Vec::new(),
            journaling: false,
        }
    }

    /// Start (or restart) the write journal: clears any previous journal
    /// and returns the new journal epoch. From now on every line written
    /// is recorded once; [`Backing::journal_lines`] lists them. The
    /// per-line mark table (12.5% of pool size) is allocated here, on
    /// first use — stores that never journal never pay for it.
    pub fn mark_journal(&mut self) -> u64 {
        if self.line_mark.is_empty() {
            self.line_mark = vec![0; self.cap.div_ceil(LINE_SIZE)];
        }
        self.journal_epoch += 1;
        self.journal.clear();
        self.journaling = true;
        self.journal_epoch
    }

    /// The current journal epoch (compare against the epoch returned by
    /// [`Backing::mark_journal`] to detect a stale journal consumer).
    pub fn journal_epoch(&self) -> u64 {
        self.journal_epoch
    }

    /// Distinct lines written since the last [`Backing::mark_journal`]
    /// (unsorted; empty when journaling is off).
    pub fn journal_lines(&self) -> &[u64] {
        &self.journal
    }

    #[inline]
    fn note_line(&mut self, line: u64) {
        if !self.journaling {
            return;
        }
        let idx = (line - (self.base >> LINE_SHIFT)) as usize;
        if self.line_mark[idx] != self.journal_epoch {
            self.line_mark[idx] = self.journal_epoch;
            self.journal.push(line);
        }
    }

    #[inline]
    fn note_range(&mut self, addr: u64, len: usize) {
        if !self.journaling || len == 0 {
            return;
        }
        let first = addr >> LINE_SHIFT;
        let last = (addr + len as u64 - 1) >> LINE_SHIFT;
        for line in first..=last {
            self.note_line(line);
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Base simulated address.
    pub fn base(&self) -> u64 {
        self.base
    }

    #[inline]
    fn index(&self, addr: u64, len: usize) -> usize {
        let off = addr
            .checked_sub(self.base)
            .unwrap_or_else(|| panic!("address {addr:#x} below backing base {:#x}", self.base));
        let off = off as usize;
        assert!(
            off + len <= self.cap,
            "address range {addr:#x}+{len} beyond backing capacity {}",
            self.cap
        );
        off
    }

    /// Materialize the zero fill up to `end` so a write there lands in
    /// allocated storage.
    #[inline]
    fn grow(&mut self, end: usize) {
        if end > self.bytes.len() {
            self.bytes.resize(end, 0);
        }
    }

    /// Read the full line containing byte address `line_addr << 6`.
    #[inline]
    pub fn read_line(&self, line: u64) -> [u8; LINE_SIZE] {
        let addr = line << LINE_SHIFT;
        let off = self.index(addr, LINE_SIZE);
        let mut out = [0u8; LINE_SIZE];
        let have = self.bytes.len().saturating_sub(off).min(LINE_SIZE);
        if have > 0 {
            out[..have].copy_from_slice(&self.bytes[off..off + have]);
        }
        out
    }

    /// Write a full line.
    #[inline]
    pub fn write_line(&mut self, line: u64, data: &[u8; LINE_SIZE]) {
        let addr = line << LINE_SHIFT;
        let off = self.index(addr, LINE_SIZE);
        self.note_line(line);
        self.grow(off + LINE_SIZE);
        self.bytes[off..off + LINE_SIZE].copy_from_slice(data);
    }

    /// Raw (uncharged) byte read, used by image snapshots and debugging.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let off = self.index(addr, buf.len());
        let have = self.bytes.len().saturating_sub(off).min(buf.len());
        if have > 0 {
            buf[..have].copy_from_slice(&self.bytes[off..off + have]);
        }
        buf[have..].fill(0);
    }

    /// Raw (uncharged) byte write, used to seed initial state.
    pub fn write_bytes(&mut self, addr: u64, src: &[u8]) {
        let off = self.index(addr, src.len());
        self.note_range(addr, src.len());
        self.grow(off + src.len());
        self.bytes[off..off + src.len()].copy_from_slice(src);
    }

    /// Clone the full contents (crash snapshot). Always `capacity` bytes:
    /// the unwritten tail is materialized as zeros so image consumers see
    /// the whole pool.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.cap];
        out[..self.bytes.len()].copy_from_slice(&self.bytes);
        out
    }

    /// Overwrite the full contents (restoring a snapshot). Invalidates any
    /// outstanding write journal: the whole store changed at once.
    pub fn restore(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.cap, "snapshot size mismatch");
        self.journal_epoch += 1;
        self.journal.clear();
        self.journaling = false;
        // Trim the snapshot's trailing zeros so a restored store keeps the
        // cheap-to-clone written-prefix invariant. Chunked comparison so
        // the scan runs at memcmp speed, not byte-at-a-time.
        const CHUNK: usize = 1024;
        const ZERO: [u8; CHUNK] = [0; CHUNK];
        let mut live = bytes.len();
        while live >= CHUNK && bytes[live - CHUNK..live] == ZERO {
            live -= CHUNK;
        }
        while live > 0 && bytes[live - 1] == 0 {
            live -= 1;
        }
        self.bytes.clear();
        self.bytes.extend_from_slice(&bytes[..live]);
    }

    /// Zero everything (volatile medium lost at crash). Invalidates any
    /// outstanding write journal, like [`Backing::restore`].
    pub fn wipe(&mut self) {
        self.journal_epoch += 1;
        self.journal.clear();
        self.journaling = false;
        self.bytes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_roundtrip() {
        let mut b = Backing::new(0, 1024);
        let mut d = [0u8; LINE_SIZE];
        d[7] = 77;
        b.write_line(3, &d);
        assert_eq!(b.read_line(3)[7], 77);
        assert_eq!(b.read_line(2)[7], 0);
        assert_eq!(b.read_line(15)[7], 0, "beyond the written prefix");
    }

    #[test]
    fn byte_roundtrip_with_base() {
        let base = 1 << 40;
        let mut b = Backing::new(base, 256);
        b.write_bytes(base + 10, &[1, 2, 3]);
        let mut out = [0u8; 3];
        b.read_bytes(base + 10, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn reads_straddling_the_written_prefix_zero_fill() {
        let mut b = Backing::new(0, 1024);
        b.write_bytes(0, &[9; 10]);
        let mut out = [1u8; 20];
        b.read_bytes(4, &mut out);
        assert_eq!(&out[..6], &[9; 6]);
        assert_eq!(&out[6..], &[0; 14]);
    }

    #[test]
    #[should_panic(expected = "beyond backing capacity")]
    fn out_of_range_panics() {
        let b = Backing::new(0, 64);
        let mut buf = [0u8; 8];
        b.read_bytes(60, &mut buf);
    }

    #[test]
    fn journal_records_distinct_written_lines() {
        let mut b = Backing::new(0, 1024);
        b.write_bytes(0, &[1; 8]); // pre-mark write: not journaled
        let epoch = b.mark_journal();
        assert_eq!(b.journal_epoch(), epoch);
        assert!(b.journal_lines().is_empty());
        b.write_bytes(70, &[2; 8]); // line 1
        b.write_line(3, &[3; LINE_SIZE]);
        b.write_bytes(64, &[4; 8]); // line 1 again: no duplicate entry
        let mut lines = b.journal_lines().to_vec();
        lines.sort_unstable();
        assert_eq!(lines, vec![1, 3]);
        // A straddling write journals both lines.
        b.write_bytes(60, &[5; 8]); // lines 0 and 1
        let mut lines = b.journal_lines().to_vec();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 3]);
    }

    #[test]
    fn remark_clears_journal_and_bumps_epoch() {
        let mut b = Backing::new(0, 1024);
        let e1 = b.mark_journal();
        b.write_bytes(0, &[1; 8]);
        let e2 = b.mark_journal();
        assert!(e2 > e1);
        assert!(b.journal_lines().is_empty());
        b.write_bytes(128, &[2; 8]);
        assert_eq!(b.journal_lines(), &[2]);
    }

    #[test]
    fn restore_and_wipe_invalidate_the_journal() {
        let mut b = Backing::new(0, 256);
        let snap = b.snapshot();
        let e = b.mark_journal();
        b.write_bytes(0, &[1; 8]);
        b.restore(&snap);
        assert!(b.journal_epoch() > e, "restore bumps the epoch");
        assert!(b.journal_lines().is_empty());
        b.write_bytes(0, &[2; 8]);
        assert!(b.journal_lines().is_empty(), "journaling off after restore");
        let e = b.mark_journal();
        b.wipe();
        assert!(b.journal_epoch() > e);
        assert!(b.journal_lines().is_empty());
    }

    #[test]
    fn clone_preserves_contents_journal_and_tail_zeros() {
        let mut b = Backing::new(0, 1024);
        b.write_bytes(100, &[7; 16]);
        b.mark_journal();
        b.write_line(3, &[9; LINE_SIZE]);
        let c = b.clone();
        // Live prefix, untouched tail, and journal state all survive.
        let mut buf = [0u8; 16];
        c.read_bytes(100, &mut buf);
        assert_eq!(buf, [7; 16]);
        assert_eq!(c.read_line(3), [9; LINE_SIZE]);
        assert_eq!(c.read_line(15), [0; LINE_SIZE]);
        assert_eq!(c.journal_epoch(), b.journal_epoch());
        assert_eq!(c.journal_lines(), b.journal_lines());
        // The clone's mark table still suppresses duplicate journal
        // entries for lines already recorded.
        let mut c = c;
        c.write_line(3, &[1; LINE_SIZE]);
        assert_eq!(c.journal_lines(), &[3]);
        // Writes past the written prefix journal normally.
        c.write_line(10, &[2; LINE_SIZE]);
        let mut lines = c.journal_lines().to_vec();
        lines.sort_unstable();
        assert_eq!(lines, vec![3, 10]);
    }

    #[test]
    fn wipe_then_write_keeps_clone_exact() {
        let mut b = Backing::new(0, 512);
        b.write_bytes(0, &[5; 512]);
        b.wipe();
        b.write_bytes(8, &[6; 8]);
        let c = b.clone();
        let mut buf = [0u8; 8];
        c.read_bytes(8, &mut buf);
        assert_eq!(buf, [6; 8]);
        assert_eq!(c.read_line(7), [0; LINE_SIZE], "wiped tail stays zero");
    }

    #[test]
    fn snapshot_is_always_full_capacity_and_roundtrips() {
        let mut b = Backing::new(0, 128);
        b.write_bytes(0, &[9; 16]);
        let snap = b.snapshot();
        assert_eq!(snap.len(), 128, "snapshot materializes the whole pool");
        assert_eq!(&snap[..16], &[9; 16]);
        assert_eq!(&snap[16..], &[0; 112]);
        b.wipe();
        assert_eq!(b.read_line(0)[0], 0);
        b.restore(&snap);
        assert_eq!(b.read_line(0)[0], 9);
    }
}
