//! The NVM performance model.
//!
//! The paper emulates NVM with Quartz (a DRAM-based emulator that throttles
//! bandwidth and inflates latency) and configures NVM at 1/8 the DRAM
//! bandwidth (and, per its cited sources, up to 4x the latency). We replace
//! Quartz with a deterministic cost model: every cache miss, write-back,
//! flush, fence and floating-point operation charges picoseconds from a
//! [`MediaTiming`]/[`PlatformTiming`] table onto the simulated clock.
//!
//! Two details matter for reproducing the paper's overhead ratios:
//!
//! * **Stream prefetching.** Sequential misses to DRAM are amortized by
//!   hardware prefetchers on real machines, so DRAM-level streaming charges
//!   only the line-transfer cost; PCM-like NVM (and Quartz's per-miss delay
//!   injection) is latency-bound, so NVM misses charge full latency unless
//!   the preset enables prefetch for NVM too (the paper's "NVM performs the
//!   same as DRAM" configuration).
//! * **Fences.** Persist ordering (`SFENCE` after `CLFLUSH`) stalls the
//!   pipeline; logging approaches issue them per-range and pay dearly.

use serde::Serialize;

/// Timing parameters of one memory medium (DRAM or an NVM technology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MediaTiming {
    /// Access latency for a read miss, in picoseconds.
    pub read_lat_ps: u64,
    /// Access latency for a write (write-back of one line), in picoseconds.
    pub write_lat_ps: u64,
    /// Per-line transfer time (64 bytes over the medium's bandwidth), in
    /// picoseconds.
    pub line_transfer_ps: u64,
    /// Whether sequential-stream misses to this medium are prefetched
    /// (charge transfer only, not latency).
    pub prefetch: bool,
}

impl MediaTiming {
    /// DDR3-class DRAM: ~80 ns access, ~12.8 GB/s per channel
    /// (64 B / 12.8 GB/s = 5 ns per line), prefetch-friendly.
    pub const fn dram() -> Self {
        MediaTiming {
            read_lat_ps: 80_000,
            write_lat_ps: 80_000,
            line_transfer_ps: 5_000,
            prefetch: true,
        }
    }

    /// PCM-like NVM at the paper's configuration: 4x DRAM latency and 1/8
    /// DRAM bandwidth, with no effective prefetching (Quartz injects the
    /// full extra latency per miss).
    pub const fn pcm_like() -> Self {
        MediaTiming {
            read_lat_ps: 320_000,
            write_lat_ps: 320_000,
            line_transfer_ps: 40_000,
            prefetch: false,
        }
    }

    /// The paper's optimistic configuration: NVM with the same bandwidth and
    /// latency as DRAM ("with this configuration, NVM is the same as DRAM").
    pub const fn nvm_as_dram() -> Self {
        MediaTiming::dram()
    }

    /// Cost of one line read miss given whether it continued a sequential
    /// stream.
    #[inline]
    pub fn read_cost(&self, stream_hit: bool) -> u64 {
        if stream_hit && self.prefetch {
            self.line_transfer_ps
        } else {
            self.read_lat_ps + self.line_transfer_ps
        }
    }

    /// Cost of one line write-back given whether it continued a sequential
    /// stream.
    #[inline]
    pub fn write_cost(&self, stream_hit: bool) -> u64 {
        if stream_hit && self.prefetch {
            self.line_transfer_ps
        } else {
            self.write_lat_ps + self.line_transfer_ps
        }
    }
}

/// Timing parameters of the rotating-disk checkpoint target (paper test
/// case 2: "checkpoint based on a local hard drive").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HddTiming {
    /// Positioning (seek + rotational) latency charged once per checkpoint
    /// write, in picoseconds.
    pub seek_ps: u64,
    /// Sequential bandwidth in bytes per microsecond (= MB/s).
    pub bytes_per_us: u64,
}

impl HddTiming {
    /// A local 7200 rpm drive: ~2 ms average positioning for short bursts of
    /// sequential appends, ~150 MB/s sequential bandwidth.
    pub const fn local_disk() -> Self {
        HddTiming {
            seek_ps: 2_000_000_000,
            bytes_per_us: 150,
        }
    }

    /// Cost of one contiguous write of `bytes`.
    #[inline]
    pub fn write_cost_ps(&self, bytes: u64) -> u64 {
        self.seek_ps + bytes * 1_000_000 / self.bytes_per_us
    }
}

/// Full platform cost table used by [`crate::system::MemorySystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PlatformTiming {
    /// Cost charged for every element access (address generation + L1
    /// pipeline), in picoseconds.
    pub cpu_access_ps: u64,
    /// DRAM medium timing (used for the DRAM-direct region and for the DRAM
    /// cache level in the heterogeneous platform).
    pub dram: MediaTiming,
    /// NVM medium timing.
    pub nvm: MediaTiming,
    /// Instruction overhead of one `CLFLUSH`, excluding the write-back
    /// traffic it causes, in picoseconds.
    pub clflush_ps: u64,
    /// Instruction overhead of one `CLFLUSHOPT`: unordered with respect to
    /// other flushes, so the per-instruction stall is much smaller than
    /// serializing `CLFLUSH` (the paper notes using it "should further
    /// improve performance"), in picoseconds.
    pub clflushopt_ps: u64,
    /// Instruction overhead of one `CLWB`: like `CLFLUSHOPT` but the line
    /// stays resident (clean), so re-reads after persisting stay hits, in
    /// picoseconds.
    pub clwb_ps: u64,
    /// Cost of one `SFENCE` (persist barrier), in picoseconds.
    pub sfence_ps: u64,
    /// Cost of one double-precision floating-point operation, in
    /// picoseconds.
    pub flop_ps: u64,
    /// Per-line directory-scan cost charged when draining the DRAM cache
    /// (the heterogeneous checkpoint must walk the whole cache to find
    /// dirty lines), in picoseconds.
    pub dram_drain_scan_ps: u64,
}

impl PlatformTiming {
    /// The paper's "NVM-only" system: NVM with DRAM's performance, no DRAM
    /// cache in front.
    pub const fn nvm_only_dram_speed() -> Self {
        PlatformTiming {
            cpu_access_ps: 1_000,
            dram: MediaTiming::dram(),
            nvm: MediaTiming::nvm_as_dram(),
            clflush_ps: 20_000,
            clflushopt_ps: 6_000,
            clwb_ps: 6_000,
            sfence_ps: 100_000,
            flop_ps: 500,
            dram_drain_scan_ps: 2_500,
        }
    }

    /// The paper's heterogeneous NVM/DRAM system: PCM-like NVM (1/8
    /// bandwidth, 4x latency) with a volatile DRAM cache bridging the gap.
    pub const fn heterogeneous() -> Self {
        PlatformTiming {
            cpu_access_ps: 1_000,
            dram: MediaTiming::dram(),
            nvm: MediaTiming::pcm_like(),
            clflush_ps: 20_000,
            clflushopt_ps: 6_000,
            clwb_ps: 6_000,
            sfence_ps: 100_000,
            flop_ps: 500,
            dram_drain_scan_ps: 2_500,
        }
    }
}

/// A small next-line stream detector modelling hardware prefetch. Tracks the
/// last few miss streams; a miss that continues one of them is a "stream
/// hit" and is charged transfer-only by prefetch-capable media.
#[derive(Debug, Clone)]
pub struct StreamDetector {
    streams: [u64; Self::WAYS],
    next: usize,
}

impl StreamDetector {
    const WAYS: usize = 8;

    /// Detector with no active streams.
    pub fn new() -> Self {
        StreamDetector {
            streams: [u64::MAX - 1; Self::WAYS],
            next: 0,
        }
    }

    /// Record a miss to `line` and report whether it continued (or repeated
    /// the head of) an active stream.
    #[inline]
    pub fn note(&mut self, line: u64) -> bool {
        for s in &mut self.streams {
            if line == s.wrapping_add(1) || line == *s {
                *s = line;
                return true;
            }
        }
        self.streams[self.next] = line;
        self.next = (self.next + 1) % Self::WAYS;
        false
    }

    /// Forget all streams (e.g. across a crash).
    pub fn reset(&mut self) {
        *self = StreamDetector::new();
    }
}

impl Default for StreamDetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_prefetch_amortizes_streams() {
        let d = MediaTiming::dram();
        assert!(d.read_cost(true) < d.read_cost(false));
        assert_eq!(d.read_cost(true), d.line_transfer_ps);
        assert_eq!(d.read_cost(false), d.read_lat_ps + d.line_transfer_ps);
    }

    #[test]
    fn pcm_is_latency_bound_even_for_streams() {
        let p = MediaTiming::pcm_like();
        assert_eq!(p.read_cost(true), p.read_cost(false));
        assert_eq!(p.read_cost(false), p.read_lat_ps + p.line_transfer_ps);
    }

    #[test]
    fn pcm_matches_paper_ratios() {
        let d = MediaTiming::dram();
        let p = MediaTiming::pcm_like();
        assert_eq!(p.read_lat_ps, 4 * d.read_lat_ps);
        assert_eq!(p.line_transfer_ps, 8 * d.line_transfer_ps);
    }

    #[test]
    fn stream_detector_tracks_sequences() {
        let mut s = StreamDetector::new();
        assert!(!s.note(100));
        assert!(s.note(101));
        assert!(s.note(102));
        assert!(s.note(102)); // repeated line = row-buffer hit
        assert!(!s.note(200));
        // 103 continues the first stream (still tracked in another way).
        assert!(s.note(103));
    }

    #[test]
    fn stream_detector_handles_interleaved_streams() {
        let mut s = StreamDetector::new();
        s.note(10);
        s.note(500);
        s.note(9000);
        assert!(s.note(11));
        assert!(s.note(501));
        assert!(s.note(9001));
    }

    #[test]
    fn hdd_cost_is_seek_plus_bandwidth() {
        let h = HddTiming::local_disk();
        let one_mb = h.write_cost_ps(1 << 20);
        assert!(one_mb > h.seek_ps);
        // 1 MiB at 150 MB/s is ~7 ms; with 2 ms seek total is below 10 ms.
        assert!(one_mb < 10_000_000_000);
    }
}
