//! Deterministic simulated clock with named cost buckets.
//!
//! All costs are integer picoseconds, so simulated times are exactly
//! reproducible across runs and platforms (no floating-point accumulation).
//! The buckets let experiment runners answer questions such as the paper's
//! "51.9% of the checkpoint overhead comes from data copying and 48.1% from
//! cache flushing".

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::Serialize;

/// A point in (or duration of) simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash, Serialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant/duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Exact picoseconds.
    #[inline]
    pub fn ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds (lossy, display only).
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in microseconds (lossy, display only).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in milliseconds (lossy, display only).
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in seconds (lossy, display only).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", self.as_secs())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.as_ms())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us())
        } else {
            write!(f, "{:.3} ns", self.as_ns())
        }
    }
}

/// Cost attribution buckets. Every charge lands in exactly one bucket (the
/// one currently selected on the clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[repr(usize)]
pub enum Bucket {
    /// Arithmetic (FLOPs and integer ops charged by the application).
    Compute = 0,
    /// Demand memory traffic of the algorithm itself.
    Memory = 1,
    /// Checkpoint data copying.
    CkptCopy = 2,
    /// Cache flushing (CLFLUSH traffic and DRAM-cache draining).
    Flush = 3,
    /// Persist barriers (SFENCE).
    Fence = 4,
    /// Undo/redo-log traffic and bookkeeping.
    Log = 5,
    /// I/O device time (HDD checkpoints).
    Io = 6,
    /// Network fabric time: message transfer and synchronization waits in
    /// multi-rank executions (`adcc::dist`).
    Network = 7,
    /// Post-crash work: deciding where to restart.
    Detect = 8,
    /// Post-crash work: re-executing lost computation.
    Resume = 9,
    /// Anything else.
    Other = 10,
}

impl Bucket {
    /// Number of buckets.
    pub const COUNT: usize = 11;

    /// Every bucket, in `Bucket as usize` order.
    pub const ALL: [Bucket; Bucket::COUNT] = [
        Bucket::Compute,
        Bucket::Memory,
        Bucket::CkptCopy,
        Bucket::Flush,
        Bucket::Fence,
        Bucket::Log,
        Bucket::Io,
        Bucket::Network,
        Bucket::Detect,
        Bucket::Resume,
        Bucket::Other,
    ];

    /// Stable identifier used in tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Compute => "compute",
            Bucket::Memory => "memory",
            Bucket::CkptCopy => "ckpt-copy",
            Bucket::Flush => "flush",
            Bucket::Fence => "fence",
            Bucket::Log => "log",
            Bucket::Io => "io",
            Bucket::Network => "network",
            Bucket::Detect => "detect",
            Bucket::Resume => "resume",
            Bucket::Other => "other",
        }
    }
}

/// The simulated clock: a monotone total plus a per-bucket breakdown.
#[derive(Debug, Clone)]
pub struct SimClock {
    now_ps: u64,
    current: Bucket,
    buckets: [u64; Bucket::COUNT],
}

impl SimClock {
    /// A zeroed clock charging to [`Bucket::Memory`].
    pub fn new() -> Self {
        SimClock {
            now_ps: 0,
            current: Bucket::Memory,
            buckets: [0; Bucket::COUNT],
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.now_ps)
    }

    /// Charge `ps` picoseconds to the currently-selected bucket.
    #[inline]
    pub fn charge(&mut self, ps: u64) {
        self.now_ps += ps;
        self.buckets[self.current as usize] += ps;
    }

    /// Charge `ps` picoseconds to an explicit bucket.
    #[inline]
    pub fn charge_to(&mut self, bucket: Bucket, ps: u64) {
        self.now_ps += ps;
        self.buckets[bucket as usize] += ps;
    }

    /// Select the bucket that subsequent [`SimClock::charge`] calls hit.
    /// Returns the previously-selected bucket so callers can restore it.
    #[inline]
    pub fn set_bucket(&mut self, bucket: Bucket) -> Bucket {
        std::mem::replace(&mut self.current, bucket)
    }

    /// Currently-selected bucket.
    #[inline]
    pub fn bucket(&self) -> Bucket {
        self.current
    }

    /// Total time charged to `bucket`.
    #[inline]
    pub fn bucket_total(&self, bucket: Bucket) -> SimTime {
        SimTime(self.buckets[bucket as usize])
    }

    /// Snapshot of every bucket's total, indexed by `Bucket as usize`.
    /// Telemetry probes diff two snapshots to attribute an execution
    /// window's time to flush/fence/log work.
    #[inline]
    pub fn bucket_totals(&self) -> [u64; Bucket::COUNT] {
        self.buckets
    }

    /// Reset the clock to zero (all buckets cleared).
    pub fn reset(&mut self) {
        *self = SimClock::new();
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard switching the clock bucket for a scope.
pub struct BucketGuard<'a> {
    clock: &'a mut SimClock,
    prev: Bucket,
}

impl<'a> BucketGuard<'a> {
    /// Switch `clock` to `bucket` until the guard drops.
    pub fn new(clock: &'a mut SimClock, bucket: Bucket) -> Self {
        let prev = clock.set_bucket(bucket);
        BucketGuard { clock, prev }
    }
}

impl Drop for BucketGuard<'_> {
    fn drop(&mut self) {
        self.clock.set_bucket(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_in_buckets() {
        let mut c = SimClock::new();
        c.set_bucket(Bucket::Compute);
        c.charge(10);
        c.set_bucket(Bucket::Flush);
        c.charge(5);
        c.charge_to(Bucket::Fence, 3);
        assert_eq!(c.now(), SimTime(18));
        assert_eq!(c.bucket_total(Bucket::Compute), SimTime(10));
        assert_eq!(c.bucket_total(Bucket::Flush), SimTime(5));
        assert_eq!(c.bucket_total(Bucket::Fence), SimTime(3));
    }

    #[test]
    fn bucket_totals_sum_to_now() {
        let mut c = SimClock::new();
        for (i, b) in Bucket::ALL.iter().enumerate() {
            c.charge_to(*b, (i as u64 + 1) * 7);
        }
        let sum: u64 = Bucket::ALL.iter().map(|b| c.bucket_total(*b).ps()).sum();
        assert_eq!(sum, c.now().ps());
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime(1_500)), "1.500 ns");
        assert_eq!(format!("{}", SimTime(2_500_000)), "2.500 us");
        assert_eq!(format!("{}", SimTime(3_000_000_000)), "3.000 ms");
        assert_eq!(format!("{}", SimTime(4_200_000_000_000)), "4.200 s");
    }

    #[test]
    fn set_bucket_returns_previous() {
        let mut c = SimClock::new();
        let prev = c.set_bucket(Bucket::Log);
        assert_eq!(prev, Bucket::Memory);
        assert_eq!(c.bucket(), Bucket::Log);
    }

    #[test]
    fn bucket_guard_restores() {
        let mut c = SimClock::new();
        c.set_bucket(Bucket::Compute);
        {
            let g = BucketGuard::new(&mut c, Bucket::Io);
            g.clock.charge(4);
        }
        assert_eq!(c.bucket(), Bucket::Compute);
        assert_eq!(c.bucket_total(Bucket::Io), SimTime(4));
    }
}
