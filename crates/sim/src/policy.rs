//! Cache replacement policies.
//!
//! The paper's crash emulator models an LRU cache, and its central
//! "opportunistic consistence" argument — data from older iterations gets
//! evicted to NVM by normal cache operation — implicitly depends on the
//! replacement policy preferring old data. Real LLCs are rarely true LRU
//! (tree-PLRU and pseudo-random are common), so `adcc` makes the policy
//! pluggable and ships an ablation (`repro ablation-policy`) showing how
//! much of the recomputation-cost result survives under FIFO, tree-PLRU
//! and pseudo-random replacement.

/// Which victim a set picks when it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (stamp-based). The paper's model.
    #[default]
    Lru,
    /// First-in-first-out: insertion order, hits do not refresh.
    Fifo,
    /// Tree pseudo-LRU (the common hardware approximation). Requires a
    /// power-of-two associativity; other geometries fall back to LRU.
    TreePlru,
    /// Pseudo-random replacement (deterministic xorshift, seeded).
    Random,
}

impl ReplacementPolicy {
    /// Every policy, for ablation sweeps.
    pub const ALL: [ReplacementPolicy; 4] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ];

    /// Stable identifier used in tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::TreePlru => "tree-plru",
            ReplacementPolicy::Random => "random",
        }
    }
}

/// Tree-PLRU bookkeeping for one set, packed into a `u64`.
///
/// For associativity `a` (a power of two) there are `a - 1` internal tree
/// nodes; node 0 is the root, node `i`'s children are `2i + 1` and
/// `2i + 2`. A bit value of 0 means "the PLRU victim is in the left
/// subtree". Touching a way flips the bits on its root-to-leaf path to
/// point *away* from it.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlruBits(pub u64);

impl PlruBits {
    /// Record an access to `way` (0-based) in a set of `assoc` ways.
    #[inline]
    pub fn touch(&mut self, assoc: usize, way: usize) {
        debug_assert!(assoc.is_power_of_two() && way < assoc);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed left: victim bit points right (1).
                self.0 |= 1 << node;
                node = 2 * node + 1;
                hi = mid;
            } else {
                // Accessed right: victim bit points left (0).
                self.0 &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// The way the tree currently designates as victim.
    #[inline]
    pub fn victim(&self, assoc: usize) -> usize {
        debug_assert!(assoc.is_power_of_two());
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.0 & (1 << node) == 0 {
                node = 2 * node + 1;
                hi = mid;
            } else {
                node = 2 * node + 2;
                lo = mid;
            }
        }
        lo
    }
}

/// Deterministic xorshift64* stream for the `Random` policy.
#[derive(Debug, Clone, Copy)]
pub struct XorShift(u64);

impl XorShift {
    /// Stream seeded with `seed` (zero is mapped to one).
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    /// Next value of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plru_single_way_never_moves() {
        let mut b = PlruBits::default();
        b.touch(1, 0);
        assert_eq!(b.victim(1), 0);
    }

    #[test]
    fn plru_two_ways_alternate() {
        let mut b = PlruBits::default();
        b.touch(2, 0);
        assert_eq!(b.victim(2), 1);
        b.touch(2, 1);
        assert_eq!(b.victim(2), 0);
    }

    #[test]
    fn plru_victim_is_never_most_recent() {
        for assoc in [2usize, 4, 8, 16] {
            let mut b = PlruBits::default();
            for way in 0..assoc {
                b.touch(assoc, way);
                assert_ne!(
                    b.victim(assoc),
                    way,
                    "assoc {assoc}: victim must differ from the way just touched"
                );
            }
        }
    }

    #[test]
    fn plru_victim_tracks_accesses_across_halves() {
        // Tree PLRU guarantees the victim is in the opposite half from the
        // last access at every tree level; a strict round-robin touch
        // pattern therefore alternates victims between the two halves.
        let assoc = 8;
        let mut b = PlruBits::default();
        let mut seen = [false; 8];
        for way in 0..assoc {
            b.touch(assoc, way);
            let v = b.victim(assoc);
            seen[v] = true;
            // Victim must be in the half not containing the touched way.
            assert_eq!(v >= assoc / 2, way < assoc / 2, "way {way} victim {v}");
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 2);
    }

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "no immediate repeats expected");
    }

    #[test]
    fn xorshift_below_in_range() {
        let mut r = XorShift::new(7);
        for _ in 0..100 {
            assert!(r.below(8) < 8);
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn policy_names_unique() {
        let mut names: Vec<_> = ReplacementPolicy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
