//! Bump allocation over the simulated address space.
//!
//! Allocations are line-aligned by default so that distinct persistent
//! objects never share a cache line (sharing would entangle their crash
//! consistence). [`Bump::alloc_at_line_offset`] deliberately mis-aligns an
//! allocation within a line — used to reproduce the paper's observation
//! that the Monte-Carlo counters straddle cache lines and therefore go
//! stale in NVM at *different* times.

use crate::line::LINE_SIZE;

/// A bump allocator handing out simulated addresses in `[base, end)`.
#[derive(Debug, Clone)]
pub struct Bump {
    next: u64,
    end: u64,
}

impl Bump {
    /// Allocator over `[base, base + capacity)`.
    pub fn new(base: u64, capacity: usize) -> Self {
        Bump {
            next: base,
            end: base + capacity as u64,
        }
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.end - self.next
    }

    /// Allocate `size` bytes with the given alignment (power of two).
    pub fn alloc(&mut self, size: usize, align: usize) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align as u64;
        let addr = (self.next + align - 1) & !(align - 1);
        let new_next = addr + size as u64;
        assert!(
            new_next <= self.end,
            "simulated memory exhausted: need {size} bytes, {} remaining",
            self.remaining()
        );
        self.next = new_next;
        addr
    }

    /// Allocate `size` bytes aligned to a cache line.
    pub fn alloc_lines(&mut self, size: usize) -> u64 {
        self.alloc(size, LINE_SIZE)
    }

    /// Allocate `size` bytes starting exactly `offset` bytes into a fresh
    /// cache line (0 <= offset < 64). Used to force an object to straddle
    /// line boundaries.
    pub fn alloc_at_line_offset(&mut self, size: usize, offset: usize) -> u64 {
        assert!(offset < LINE_SIZE);
        let base = self.alloc(size + offset, LINE_SIZE);
        base + offset as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut b = Bump::new(0, 4096);
        let a = b.alloc(10, 8);
        assert_eq!(a % 8, 0);
        let c = b.alloc(1, 64);
        assert_eq!(c % 64, 0);
        assert!(c >= a + 10);
    }

    #[test]
    fn line_offset_alloc_straddles() {
        let mut b = Bump::new(0, 4096);
        let a = b.alloc_at_line_offset(40, 48);
        assert_eq!(a % LINE_SIZE as u64, 48);
        // 40 bytes starting at offset 48 cross into the next line.
        assert!(!crate::line::fits_in_line(a, 40));
    }

    #[test]
    #[should_panic(expected = "simulated memory exhausted")]
    fn exhaustion_panics() {
        let mut b = Bump::new(0, 128);
        b.alloc(64, 64);
        b.alloc(64, 64);
        b.alloc(1, 1);
    }

    #[test]
    fn remaining_decreases() {
        let mut b = Bump::new(0, 1024);
        let before = b.remaining();
        b.alloc(100, 64);
        assert!(b.remaining() < before);
    }
}
