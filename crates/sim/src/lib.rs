//! # adcc-sim — crash emulator and NVM performance model
//!
//! The substrate beneath the `adcc` reproduction of *Algorithm-Directed
//! Crash Consistence in Non-Volatile Memory for HPC* (CLUSTER 2017).
//!
//! The paper studies what survives in NVM when an application crashes with
//! volatile caches in front of persistent memory. Its methodology needs two
//! emulators, both rebuilt here in pure Rust:
//!
//! 1. a **crash emulator** (PIN-based in the paper): every load/store of
//!    persistent data goes through a data-tracking write-back LRU cache
//!    hierarchy ([`system::MemorySystem`]), so the NVM image
//!    ([`image::NvmImage`]) diverges from program state exactly as real
//!    hardware caches make it diverge, and
//! 2. an **NVM performance emulator** (Quartz in the paper): every
//!    hierarchy event charges deterministic picoseconds on a simulated
//!    clock ([`clock::SimClock`]) according to a configurable cost table
//!    ([`timing::PlatformTiming`]), including the paper's PCM-like
//!    "1/8 bandwidth, 4x latency" NVM and the volatile 32 MB DRAM cache of
//!    its heterogeneous platform.
//!
//! ## Quick start
//!
//! ```
//! use adcc_sim::prelude::*;
//!
//! // The paper's NVM-only platform: 4 KiB CPU cache, 1 MiB NVM.
//! let mut sys = MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20));
//! let x = PArray::<f64>::alloc_nvm(&mut sys, 8);
//! x.set(&mut sys, 0, 1.0);          // write lands in cache, not NVM
//! assert_eq!(sys.nvm_snapshot().read_f64(x.addr(0)), 0.0);
//! sys.persist_range(x.addr(0), 8);  // CLFLUSH + (hetero: DRAM-cache evict)
//! let image = sys.crash();          // volatile levels discarded
//! assert_eq!(image.read_f64(x.addr(0)), 1.0);
//! ```

#![deny(missing_docs)]

pub mod alloc;
pub mod backing;
pub mod clock;
pub mod crash;
pub mod epoch;
pub mod events;
pub mod image;
pub mod line;
pub mod lru;
pub mod parray;
pub mod policy;
pub mod stats;
pub mod system;
pub mod timing;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::clock::{Bucket, SimClock, SimTime};
    pub use crate::crash::{CrashEmulator, CrashSite, CrashTrigger, Harvest, RunOutcome};
    pub use crate::epoch::EpochPersist;
    pub use crate::events::{Event, EventKind, EventRecorder};
    pub use crate::image::{DeltaImage, NvmImage};
    pub use crate::line::LINE_SIZE;
    pub use crate::lru::CacheConfig;
    pub use crate::parray::{PArray, PMatrix, PScalar, Pod};
    pub use crate::policy::ReplacementPolicy;
    pub use crate::stats::{LevelStats, MemStats};
    pub use crate::system::{
        CounterSnapshot, DeltaBase, FlushOp, MemorySystem, Placement, SystemConfig,
    };
    pub use crate::timing::{HddTiming, MediaTiming, PlatformTiming};
}
