//! Event counters for the simulated memory hierarchy.

use serde::Serialize;

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LevelStats {
    /// Lookups that found the line resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub dirty_evictions: u64,
    /// Clean lines silently dropped on eviction.
    pub clean_evictions: u64,
}

impl LevelStats {
    /// Hit ratio in [0, 1]; zero when no accesses were recorded.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters for the whole memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MemStats {
    /// CPU cache level.
    pub cpu: LevelStats,
    /// DRAM cache level (meaningful only on the heterogeneous platform).
    pub dram_cache: LevelStats,
    /// Lines read from the NVM medium.
    pub nvm_line_reads: u64,
    /// Lines written to the NVM medium.
    pub nvm_line_writes: u64,
    /// Lines read from the DRAM-direct region.
    pub dram_line_reads: u64,
    /// Lines written to the DRAM-direct region.
    pub dram_line_writes: u64,
    /// CLFLUSH instructions executed.
    pub clflushes: u64,
    /// CLFLUSHOPT instructions executed.
    pub clflushopts: u64,
    /// CLWB instructions executed.
    pub clwbs: u64,
    /// SFENCE instructions executed.
    pub sfences: u64,
    /// Batched epoch persist barriers executed.
    pub epoch_barriers: u64,
    /// Element-level accesses (reads + writes) issued by the program.
    pub accesses: u64,
    /// Full DRAM-cache drains performed.
    pub dram_drains: u64,
    /// Fabric messages sent by this rank (multi-rank executions only).
    pub net_msgs_sent: u64,
    /// Fabric payload bytes sent by this rank.
    pub net_bytes_sent: u64,
    /// Fabric send attempts lost to injected faults (each one implies a
    /// retransmission charged on this rank's clock).
    pub net_dropped: u64,
    /// Fabric messages spuriously duplicated by injected faults (the
    /// duplicate transmit is charged here; delivery stays exactly-once).
    pub net_duplicated: u64,
    /// Fabric messages delayed out of their nominal delivery order by
    /// injected faults (resequencing latency lands on the receiver).
    pub net_reordered: u64,
    /// Retransmissions this rank performed to mask dropped attempts.
    pub net_retries: u64,
}

impl MemStats {
    /// Total bytes moved to/from NVM.
    pub fn nvm_bytes(&self) -> u64 {
        (self.nvm_line_reads + self.nvm_line_writes) * crate::line::LINE_SIZE as u64
    }

    /// Total cache-line write-back instructions of any flavour
    /// (`CLFLUSH` + `CLFLUSHOPT` + `CLWB`) — the paper's headline
    /// per-iteration cost for algorithm-directed schemes.
    pub fn flush_total(&self) -> u64 {
        self.clflushes + self.clflushopts + self.clwbs
    }

    /// Persist barriers issued: every `SFENCE`, including the one ending
    /// each batched epoch persist. The gaps between consecutive barriers
    /// are the execution's natural consistency windows.
    pub fn persist_barriers(&self) -> u64 {
        self.sfences
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_zero() {
        let s = LevelStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_math() {
        let s = LevelStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn flush_total_and_persist_barriers() {
        let s = MemStats {
            clflushes: 2,
            clflushopts: 3,
            clwbs: 4,
            sfences: 5,
            ..Default::default()
        };
        assert_eq!(s.flush_total(), 9);
        assert_eq!(s.persist_barriers(), 5);
    }

    #[test]
    fn nvm_bytes_counts_both_directions() {
        let s = MemStats {
            nvm_line_reads: 2,
            nvm_line_writes: 3,
            ..Default::default()
        };
        assert_eq!(s.nvm_bytes(), 5 * 64);
    }
}
