//! Cache-line constants and address arithmetic.
//!
//! Everything in the simulator is expressed in terms of 64-byte cache lines,
//! matching the granularity of `CLFLUSH` on the x86 machines the paper
//! evaluates (two Xeon E5606).

/// Size of one cache line in bytes.
pub const LINE_SIZE: usize = 64;

/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// Base address (40-bit offset) at which the volatile DRAM-direct region of
/// the simulated physical address space begins. Addresses below this value
/// are homed in NVM; addresses at or above it are homed in DRAM and are lost
/// on a crash.
pub const DRAM_BASE: u64 = 1 << 40;

/// Returns the line number (address divided by the line size) containing
/// `addr`.
#[inline(always)]
pub fn line_of(addr: u64) -> u64 {
    addr >> LINE_SHIFT
}

/// Returns the byte address of the first byte of the line containing `addr`.
#[inline(always)]
pub fn line_base(addr: u64) -> u64 {
    addr & !(LINE_SIZE as u64 - 1)
}

/// Returns the offset of `addr` within its cache line.
#[inline(always)]
pub fn offset_in_line(addr: u64) -> usize {
    (addr & (LINE_SIZE as u64 - 1)) as usize
}

/// Returns true if the half-open byte range `[addr, addr + len)` lies within
/// a single cache line.
#[inline(always)]
pub fn fits_in_line(addr: u64, len: usize) -> bool {
    len == 0 || line_of(addr) == line_of(addr + len as u64 - 1)
}

/// Number of lines spanned by the half-open byte range `[addr, addr + len)`.
#[inline]
pub fn lines_spanned(addr: u64, len: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    line_of(addr + len as u64 - 1) - line_of(addr) + 1
}

/// Converts a line count into a byte count (telemetry helper: dirty-line
/// residency and flush tallies are kept in lines, reports print bytes).
#[inline(always)]
pub const fn lines_to_bytes(lines: u64) -> u64 {
    lines * LINE_SIZE as u64
}

/// Returns true if the address is homed in the volatile DRAM-direct region.
#[inline(always)]
pub fn is_dram_addr(addr: u64) -> bool {
    addr >= DRAM_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_arithmetic_basics() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_base(65), 64);
        assert_eq!(offset_in_line(65), 1);
        assert_eq!(offset_in_line(64), 0);
    }

    #[test]
    fn fits_in_line_boundaries() {
        assert!(fits_in_line(0, 64));
        assert!(!fits_in_line(1, 64));
        assert!(fits_in_line(56, 8));
        assert!(!fits_in_line(60, 8));
        assert!(fits_in_line(127, 1));
        assert!(fits_in_line(12345, 0));
    }

    #[test]
    fn lines_spanned_counts() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 64), 1);
        assert_eq!(lines_spanned(0, 65), 2);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(0, 640), 10);
    }

    #[test]
    fn dram_addr_split() {
        assert!(!is_dram_addr(0));
        assert!(!is_dram_addr(DRAM_BASE - 1));
        assert!(is_dram_addr(DRAM_BASE));
    }
}
