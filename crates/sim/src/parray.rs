//! Typed views over simulated memory.
//!
//! A [`PArray<T>`] is a handle (base address + length) to an array living in
//! the simulated address space; every `get`/`set` routes through the cache
//! hierarchy of a [`MemorySystem`] and is charged on the simulated clock.
//! Handles are `Copy` and do not borrow the system, so algorithms pass
//! `&mut MemorySystem` explicitly — mirroring how the paper's applications
//! address NVM directly.

use std::marker::PhantomData;

use crate::system::MemorySystem;

/// Plain-old-data element types that can live in simulated memory.
///
/// Implementations serialize as little-endian fixed-width bytes so that the
/// NVM image is well-defined and portable.
pub trait Pod: Copy + Default + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Encode into `out[..SIZE]`.
    fn to_bytes(self, out: &mut [u8]);
    /// Decode from `inp[..SIZE]`.
    fn from_bytes(inp: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline(always)]
            fn to_bytes(self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            #[inline(always)]
            fn from_bytes(inp: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&inp[..Self::SIZE]);
                <$t>::from_le_bytes(b)
            }
        }
    )*};
}

impl_pod!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// A typed array in simulated memory.
pub struct PArray<T: Pod> {
    base: u64,
    len: usize,
    _m: PhantomData<T>,
}

// Manual Copy/Clone: `derive` would bound on `T: Copy` needlessly.
impl<T: Pod> Clone for PArray<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for PArray<T> {}

impl<T: Pod> PArray<T> {
    /// View `len` elements at `base`. Callers obtain `base` from the
    /// system's allocator.
    pub fn new(base: u64, len: usize) -> Self {
        PArray {
            base,
            len,
            _m: PhantomData,
        }
    }

    /// Allocate a fresh line-aligned persistent array.
    pub fn alloc_nvm(sys: &mut MemorySystem, len: usize) -> Self {
        let base = sys.alloc_nvm(len * T::SIZE);
        PArray::new(base, len)
    }

    /// Allocate a fresh line-aligned volatile array.
    pub fn alloc_dram(sys: &mut MemorySystem, len: usize) -> Self {
        let base = sys.alloc_dram(len * T::SIZE);
        PArray::new(base, len)
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base simulated address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the array in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.len * T::SIZE
    }

    /// Address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds {}", self.len);
        self.base + (i * T::SIZE) as u64
    }

    /// Charged element read.
    #[inline]
    pub fn get(&self, sys: &mut MemorySystem, i: usize) -> T {
        let mut buf = [0u8; 16];
        sys.read_bytes(self.addr(i), &mut buf[..T::SIZE]);
        T::from_bytes(&buf)
    }

    /// Charged element write.
    #[inline]
    pub fn set(&self, sys: &mut MemorySystem, i: usize, v: T) {
        let mut buf = [0u8; 16];
        v.to_bytes(&mut buf);
        sys.write_bytes(self.addr(i), &buf[..T::SIZE]);
    }

    /// Charged fill of the whole array.
    pub fn fill(&self, sys: &mut MemorySystem, v: T) {
        for i in 0..self.len {
            self.set(sys, i, v);
        }
    }

    /// Charged bulk store from a host slice.
    pub fn store_slice(&self, sys: &mut MemorySystem, src: &[T]) {
        assert_eq!(src.len(), self.len, "slice length mismatch");
        for (i, v) in src.iter().enumerate() {
            self.set(sys, i, *v);
        }
    }

    /// Charged bulk load into a host vector.
    pub fn load_vec(&self, sys: &mut MemorySystem) -> Vec<T> {
        (0..self.len).map(|i| self.get(sys, i)).collect()
    }

    /// Uncharged initialization directly into the backing store ("input
    /// data already resident in NVM").
    pub fn seed_slice(&self, sys: &mut MemorySystem, src: &[T]) {
        assert_eq!(src.len(), self.len, "slice length mismatch");
        let mut bytes = vec![0u8; self.byte_len()];
        for (i, v) in src.iter().enumerate() {
            v.to_bytes(&mut bytes[i * T::SIZE..]);
        }
        sys.seed_bytes(self.base, &bytes);
    }

    /// Uncharged logical peek of element `i` (sees cached values).
    pub fn peek(&self, sys: &MemorySystem, i: usize) -> T {
        let mut buf = [0u8; 16];
        sys.peek_bytes(self.addr(i), &mut buf[..T::SIZE]);
        T::from_bytes(&buf)
    }

    /// Flush all lines of this array from the CPU cache.
    pub fn flush_all(&self, sys: &mut MemorySystem) {
        sys.flush_range(self.base, self.byte_len());
    }

    /// Persist all lines of this array to NVM.
    pub fn persist_all(&self, sys: &mut MemorySystem) {
        sys.persist_range(self.base, self.byte_len());
    }

    /// Subarray view of `count` elements starting at `offset`.
    pub fn slice(&self, offset: usize, count: usize) -> PArray<T> {
        assert!(offset + count <= self.len, "subarray out of bounds");
        PArray::new(self.addr_unchecked(offset), count)
    }

    #[inline]
    fn addr_unchecked(&self, i: usize) -> u64 {
        self.base + (i * T::SIZE) as u64
    }
}

/// A single typed cell in simulated memory (e.g. the iteration counter the
/// paper flushes once per iteration).
pub struct PScalar<T: Pod> {
    addr: u64,
    _m: PhantomData<T>,
}

impl<T: Pod> Clone for PScalar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for PScalar<T> {}

impl<T: Pod> PScalar<T> {
    /// Handle over an existing scalar at `addr`.
    pub fn new(addr: u64) -> Self {
        PScalar {
            addr,
            _m: PhantomData,
        }
    }

    /// Allocate on its own cache line in NVM (so flushing it disturbs
    /// nothing else).
    pub fn alloc_nvm(sys: &mut MemorySystem) -> Self {
        PScalar::new(sys.alloc_nvm(T::SIZE.max(1)))
    }

    #[inline]
    /// The scalar's address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    #[inline]
    /// Charged read of the scalar.
    pub fn get(&self, sys: &mut MemorySystem) -> T {
        let mut buf = [0u8; 16];
        sys.read_bytes(self.addr, &mut buf[..T::SIZE]);
        T::from_bytes(&buf)
    }

    #[inline]
    /// Charged write of the scalar.
    pub fn set(&self, sys: &mut MemorySystem, v: T) {
        let mut buf = [0u8; 16];
        v.to_bytes(&mut buf);
        sys.write_bytes(self.addr, &buf[..T::SIZE]);
    }

    /// Flush the containing line (CPU level, configured [`FlushOp`]).
    ///
    /// [`FlushOp`]: crate::system::FlushOp
    pub fn flush(&self, sys: &mut MemorySystem) {
        sys.flush_line(self.addr);
    }

    /// Persist the containing line to NVM.
    pub fn persist(&self, sys: &mut MemorySystem) {
        sys.persist_line(self.addr);
    }
}

/// A dense row-major typed matrix in simulated memory.
pub struct PMatrix<T: Pod> {
    data: PArray<T>,
    rows: usize,
    cols: usize,
}

impl<T: Pod> Clone for PMatrix<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for PMatrix<T> {}

impl<T: Pod> PMatrix<T> {
    /// Allocate a row-major `rows x cols` matrix in NVM.
    pub fn alloc_nvm(sys: &mut MemorySystem, rows: usize, cols: usize) -> Self {
        PMatrix {
            data: PArray::alloc_nvm(sys, rows * cols),
            rows,
            cols,
        }
    }

    /// View an existing array as a row-major matrix.
    pub fn from_array(data: PArray<T>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols);
        PMatrix { data, rows, cols }
    }

    #[inline]
    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing flat array.
    pub fn array(&self) -> PArray<T> {
        self.data
    }

    #[inline]
    /// Flat element index of `(r, c)`.
    pub fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    #[inline]
    /// Charged read of `(r, c)`.
    pub fn get(&self, sys: &mut MemorySystem, r: usize, c: usize) -> T {
        self.data.get(sys, self.idx(r, c))
    }

    #[inline]
    /// Charged write of `(r, c)`.
    pub fn set(&self, sys: &mut MemorySystem, r: usize, c: usize, v: T) {
        self.data.set(sys, self.idx(r, c), v)
    }

    /// Uncharged logical peek of element `(r, c)` (sees cached values).
    pub fn peek(&self, sys: &MemorySystem, r: usize, c: usize) -> T {
        self.data.peek(sys, self.idx(r, c))
    }

    /// View of one row as a [`PArray`].
    pub fn row(&self, r: usize) -> PArray<T> {
        self.data.slice(r * self.cols, self.cols)
    }

    /// Address of element (r, c).
    pub fn addr(&self, r: usize, c: usize) -> u64 {
        self.data.addr(self.idx(r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
    }

    #[test]
    fn pod_roundtrip_all_types() {
        fn rt<T: Pod + PartialEq + std::fmt::Debug>(v: T) {
            let mut b = [0u8; 16];
            v.to_bytes(&mut b);
            assert_eq!(T::from_bytes(&b), v);
        }
        rt(0xABu8);
        rt(-7i8);
        rt(0xBEEFu16);
        rt(-1234i16);
        rt(0xDEAD_BEEFu32);
        rt(-123456i32);
        rt(0xDEAD_BEEF_CAFE_F00Du64);
        rt(-9_876_543_210i64);
        rt(1.5f32);
        rt(std::f64::consts::PI);
    }

    #[test]
    fn parray_get_set() {
        let mut s = sys();
        let a = PArray::<f64>::alloc_nvm(&mut s, 10);
        a.set(&mut s, 3, 2.5);
        assert_eq!(a.get(&mut s, 3), 2.5);
        assert_eq!(a.get(&mut s, 4), 0.0);
    }

    #[test]
    fn parray_store_load_roundtrip() {
        let mut s = sys();
        let a = PArray::<u32>::alloc_nvm(&mut s, 100);
        let v: Vec<u32> = (0..100).collect();
        a.store_slice(&mut s, &v);
        assert_eq!(a.load_vec(&mut s), v);
    }

    #[test]
    fn seed_slice_is_uncharged_and_visible() {
        let mut s = sys();
        let a = PArray::<f64>::alloc_nvm(&mut s, 8);
        let t0 = s.now();
        a.seed_slice(&mut s, &[1.0; 8]);
        assert_eq!(s.now(), t0);
        assert_eq!(a.get(&mut s, 7), 1.0);
    }

    #[test]
    fn slice_views_alias_parent() {
        let mut s = sys();
        let a = PArray::<u64>::alloc_nvm(&mut s, 16);
        let sub = a.slice(8, 4);
        sub.set(&mut s, 0, 99);
        assert_eq!(a.get(&mut s, 8), 99);
    }

    #[test]
    #[should_panic(expected = "subarray out of bounds")]
    fn slice_bounds_checked() {
        let mut s = sys();
        let a = PArray::<u64>::alloc_nvm(&mut s, 4);
        let _ = a.slice(2, 3);
    }

    #[test]
    fn pscalar_flush_survives_crash() {
        let mut s = sys();
        let c = PScalar::<u64>::alloc_nvm(&mut s);
        c.set(&mut s, 15);
        c.flush(&mut s);
        let img = s.crash();
        assert_eq!(img.read_u64(c.addr()), 15);
    }

    #[test]
    fn pmatrix_row_major_layout() {
        let mut s = sys();
        let m = PMatrix::<f64>::alloc_nvm(&mut s, 3, 4);
        m.set(&mut s, 1, 2, 7.0);
        assert_eq!(m.get(&mut s, 1, 2), 7.0);
        let row = m.row(1);
        assert_eq!(row.get(&mut s, 2), 7.0);
        assert_eq!(m.addr(1, 2), m.array().addr(6));
    }

    #[test]
    fn persist_all_survives_crash() {
        let mut s = sys();
        let a = PArray::<f64>::alloc_nvm(&mut s, 32);
        for i in 0..32 {
            a.set(&mut s, i, i as f64);
        }
        a.persist_all(&mut s);
        let img = s.crash();
        let v = img.read_f64_array(&a);
        assert_eq!(v[31], 31.0);
    }
}
