//! A set-associative, write-back, write-allocate cache that stores actual
//! data payloads.
//!
//! This is the core of the crash emulator: because each resident line holds
//! real bytes, the NVM backing store only sees values at eviction or
//! explicit flush time — exactly the divergence between caches and NVM that
//! the paper's PIN-based emulator observes. Replacement is true LRU within
//! each set (stamp-based).

use crate::line::LINE_SIZE;
use crate::policy::{PlruBits, ReplacementPolicy, XorShift};

/// Static geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Rounded down to a power-of-two number of
    /// sets times `associativity * LINE_SIZE`.
    pub capacity_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Victim-selection policy (LRU unless overridden; see
    /// [`CacheConfig::with_policy`]).
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Geometry for `capacity_bytes` at the given associativity (LRU).
    pub fn new(capacity_bytes: usize, associativity: usize) -> Self {
        assert!(associativity >= 1, "associativity must be at least 1");
        assert!(
            capacity_bytes >= associativity * LINE_SIZE,
            "capacity {capacity_bytes} too small for associativity {associativity}"
        );
        CacheConfig {
            capacity_bytes,
            associativity,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Same geometry with a different replacement policy.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of sets (a power of two).
    pub fn sets(&self) -> usize {
        let raw = self.capacity_bytes / LINE_SIZE / self.associativity;
        if raw.is_power_of_two() {
            raw
        } else {
            (raw + 1).next_power_of_two() / 2
        }
        .max(1)
    }

    /// Effective capacity after rounding, in bytes.
    pub fn effective_capacity(&self) -> usize {
        self.sets() * self.associativity * LINE_SIZE
    }
}

/// One cache line slot.
#[derive(Clone)]
struct Slot {
    /// Full line number (address >> 6); `u64::MAX` marks an invalid slot.
    tag: u64,
    /// LRU stamp; larger is more recent.
    stamp: u64,
    dirty: bool,
    data: [u8; LINE_SIZE],
}

impl Slot {
    const INVALID: u64 = u64::MAX;

    fn invalid() -> Self {
        Slot {
            tag: Slot::INVALID,
            stamp: 0,
            dirty: false,
            data: [0; LINE_SIZE],
        }
    }

    #[inline]
    fn valid(&self) -> bool {
        self.tag != Slot::INVALID
    }
}

/// A line evicted (or removed) from the cache, with its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Victim {
    /// Line number of the evicted line.
    pub line: u64,
    /// Whether the line was dirty (needs write-back).
    pub dirty: bool,
    /// The line's data.
    pub data: [u8; LINE_SIZE],
}

/// Set-associative write-back cache with data payloads.
#[derive(Clone)]
pub struct SetAssocCache {
    sets: usize,
    assoc: usize,
    set_mask: u64,
    slots: Box<[Slot]>,
    tick: u64,
    policy: ReplacementPolicy,
    /// One tree-PLRU bit field per set (only used by `TreePlru`).
    plru: Box<[PlruBits]>,
    /// Deterministic stream for the `Random` policy.
    rng: XorShift,
}

impl SetAssocCache {
    /// Empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let assoc = cfg.associativity;
        // Tree-PLRU needs a power-of-two tree; other geometries degrade to
        // LRU (documented on `ReplacementPolicy::TreePlru`).
        let policy = if cfg.policy == ReplacementPolicy::TreePlru && !assoc.is_power_of_two() {
            ReplacementPolicy::Lru
        } else {
            cfg.policy
        };
        SetAssocCache {
            sets,
            assoc,
            set_mask: sets as u64 - 1,
            slots: vec![Slot::invalid(); sets * assoc].into_boxed_slice(),
            tick: 0,
            policy,
            plru: vec![PlruBits::default(); sets].into_boxed_slice(),
            rng: XorShift::new(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The effective replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of line slots.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.assoc
    }

    /// Number of currently valid lines.
    pub fn resident_lines(&self) -> usize {
        self.slots.iter().filter(|s| s.valid()).count()
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Look up `line`; on a hit, refresh the policy's recency state and
    /// return mutable access to its payload plus a dirty-flag setter.
    #[inline]
    pub fn lookup(&mut self, line: u64) -> Option<LineRef<'_>> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        let policy = self.policy;
        let assoc = self.assoc;
        let range = self.set_range(line);
        let slots = &mut self.slots[range];
        for (way, slot) in slots.iter_mut().enumerate() {
            if slot.tag == line {
                match policy {
                    ReplacementPolicy::Lru => slot.stamp = tick,
                    // FIFO and Random ignore re-references.
                    ReplacementPolicy::Fifo | ReplacementPolicy::Random => {}
                    ReplacementPolicy::TreePlru => self.plru[set].touch(assoc, way),
                }
                return Some(LineRef { slot });
            }
        }
        None
    }

    /// Insert `line` with `data`, evicting the set's policy victim if the
    /// set is full. The line must not already be resident (callers look up
    /// first).
    pub fn insert(&mut self, line: u64, data: [u8; LINE_SIZE], dirty: bool) -> Option<Victim> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        let policy = self.policy;
        let assoc = self.assoc;
        let range = self.set_range(line);
        debug_assert!(
            self.slots[range.clone()].iter().all(|s| s.tag != line),
            "insert of already-resident line {line:#x}"
        );

        // Prefer an invalid slot; otherwise the policy picks the victim.
        let victim_way = {
            let slots = &self.slots[range.clone()];
            match slots.iter().position(|s| !s.valid()) {
                Some(i) => i,
                None => match policy {
                    ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                        let mut idx = 0;
                        let mut stamp = u64::MAX;
                        for (i, slot) in slots.iter().enumerate() {
                            if slot.stamp < stamp {
                                stamp = slot.stamp;
                                idx = i;
                            }
                        }
                        idx
                    }
                    ReplacementPolicy::TreePlru => self.plru[set].victim(assoc),
                    ReplacementPolicy::Random => self.rng.below(assoc),
                },
            }
        };

        let slot = &mut self.slots[range][victim_way];
        let victim = if slot.valid() {
            Some(Victim {
                line: slot.tag,
                dirty: slot.dirty,
                data: slot.data,
            })
        } else {
            None
        };
        *slot = Slot {
            tag: line,
            stamp: tick,
            dirty,
            data,
        };
        if policy == ReplacementPolicy::TreePlru {
            self.plru[set].touch(assoc, victim_way);
        }
        victim
    }

    /// Remove `line` from the cache (CLFLUSH semantics), returning it if it
    /// was resident.
    pub fn remove(&mut self, line: u64) -> Option<Victim> {
        let range = self.set_range(line);
        let slots = &mut self.slots[range];
        for slot in slots.iter_mut() {
            if slot.tag == line {
                let v = Victim {
                    line: slot.tag,
                    dirty: slot.dirty,
                    data: slot.data,
                };
                *slot = Slot::invalid();
                return Some(v);
            }
        }
        None
    }

    /// `CLWB` semantics: if `line` is resident and dirty, mark it clean and
    /// return its payload for write-back — the line stays resident. Returns
    /// `None` if the line is absent or already clean.
    pub fn clean_line(&mut self, line: u64) -> Option<Victim> {
        let range = self.set_range(line);
        for slot in self.slots[range].iter_mut() {
            if slot.tag == line {
                if !slot.dirty {
                    return None;
                }
                slot.dirty = false;
                return Some(Victim {
                    line: slot.tag,
                    dirty: true,
                    data: slot.data,
                });
            }
        }
        None
    }

    /// Non-mutating lookup (does not touch LRU state): the line's payload
    /// if resident.
    pub fn probe(&self, line: u64) -> Option<&[u8; LINE_SIZE]> {
        let range = self.set_range(line);
        self.slots[range]
            .iter()
            .find(|s| s.tag == line)
            .map(|s| &s.data)
    }

    /// Iterate over all resident lines as `(line, dirty, &data)`.
    pub fn iter_resident(&self) -> impl Iterator<Item = (u64, bool, &[u8; LINE_SIZE])> {
        self.slots
            .iter()
            .filter(|s| s.valid())
            .map(|s| (s.tag, s.dirty, &s.data))
    }

    /// Mark every resident line clean and return the formerly-dirty ones
    /// (used for draining a level without invalidating it).
    pub fn clean_all(&mut self) -> Vec<Victim> {
        let mut dirty = Vec::new();
        for slot in self.slots.iter_mut() {
            if slot.valid() && slot.dirty {
                dirty.push(Victim {
                    line: slot.tag,
                    dirty: true,
                    data: slot.data,
                });
                slot.dirty = false;
            }
        }
        // Deterministic order (by line number) regardless of set layout.
        dirty.sort_by_key(|v| v.line);
        dirty
    }

    /// Discard all contents without write-back (a crash).
    pub fn clear(&mut self) {
        for slot in self.slots.iter_mut() {
            *slot = Slot::invalid();
        }
        for bits in self.plru.iter_mut() {
            *bits = PlruBits::default();
        }
        self.tick = 0;
    }
}

/// Mutable view of a resident cache line.
pub struct LineRef<'a> {
    slot: &'a mut Slot,
}

impl LineRef<'_> {
    /// The line's payload.
    #[inline]
    pub fn data(&mut self) -> &mut [u8; LINE_SIZE] {
        &mut self.slot.data
    }

    /// Read-only payload access.
    #[inline]
    pub fn data_ref(&self) -> &[u8; LINE_SIZE] {
        &self.slot.data
    }

    /// Mark the line dirty (after a store).
    #[inline]
    pub fn mark_dirty(&mut self) {
        self.slot.dirty = true;
    }

    /// Whether the line is dirty.
    #[inline]
    pub fn dirty(&self) -> bool {
        self.slot.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways = 8 lines.
        SetAssocCache::new(CacheConfig::new(8 * LINE_SIZE, 2))
    }

    fn data(v: u8) -> [u8; LINE_SIZE] {
        [v; LINE_SIZE]
    }

    #[test]
    fn config_rounds_to_power_of_two_sets() {
        let c = CacheConfig::new(100 * LINE_SIZE, 4);
        assert!(c.sets().is_power_of_two());
        assert!(c.effective_capacity() <= 100 * LINE_SIZE + 4 * LINE_SIZE);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(c.lookup(5).is_none());
        assert!(c.insert(5, data(1), false).is_none());
        let mut r = c.lookup(5).expect("line resident after insert");
        assert_eq!(r.data()[0], 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(0, data(0), false);
        c.insert(4, data(4), false);
        // Touch 0 so 4 becomes LRU.
        assert!(c.lookup(0).is_some());
        let v = c
            .insert(8, data(8), false)
            .expect("set full, victim evicted");
        assert_eq!(v.line, 4);
        assert!(c.lookup(0).is_some());
        assert!(c.lookup(8).is_some());
        assert!(c.lookup(4).is_none());
    }

    #[test]
    fn eviction_carries_dirty_payload() {
        let mut c = tiny();
        c.insert(0, data(7), true);
        c.insert(4, data(9), false);
        let v = c.insert(8, data(1), false).unwrap();
        assert_eq!(v.line, 0);
        assert!(v.dirty);
        assert_eq!(v.data, data(7));
    }

    #[test]
    fn remove_returns_payload_and_invalidates() {
        let mut c = tiny();
        c.insert(3, data(3), true);
        let v = c.remove(3).unwrap();
        assert!(v.dirty);
        assert_eq!(v.data, data(3));
        assert!(c.lookup(3).is_none());
        assert!(c.remove(3).is_none());
    }

    #[test]
    fn clean_all_reports_only_dirty_lines_sorted() {
        let mut c = tiny();
        c.insert(9, data(9), true);
        c.insert(2, data(2), false);
        c.insert(1, data(1), true);
        let drained = c.clean_all();
        let lines: Vec<u64> = drained.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![1, 9]);
        // Second drain finds nothing dirty.
        assert!(c.clean_all().is_empty());
        // Lines remain resident.
        assert!(c.lookup(9).is_some());
    }

    #[test]
    fn clear_discards_everything() {
        let mut c = tiny();
        c.insert(1, data(1), true);
        c.insert(2, data(2), true);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
        assert!(c.lookup(1).is_none());
    }

    #[test]
    fn fifo_ignores_rereferences() {
        let cfg = CacheConfig::new(8 * LINE_SIZE, 2).with_policy(ReplacementPolicy::Fifo);
        let mut c = SetAssocCache::new(cfg);
        // Lines 0, 4, 8 map to set 0.
        c.insert(0, data(0), false);
        c.insert(4, data(4), false);
        // Touch 0: under LRU this would protect it, under FIFO it does not.
        assert!(c.lookup(0).is_some());
        let v = c.insert(8, data(8), false).unwrap();
        assert_eq!(v.line, 0, "FIFO evicts the first-inserted line");
    }

    #[test]
    fn plru_never_evicts_the_just_touched_line() {
        let cfg = CacheConfig::new(16 * LINE_SIZE, 4).with_policy(ReplacementPolicy::TreePlru);
        let mut c = SetAssocCache::new(cfg);
        // Four lines in set 0 (4 sets): 0, 4, 8, 12.
        for (i, l) in [0u64, 4, 8, 12].iter().enumerate() {
            c.insert(*l, data(i as u8), false);
        }
        assert!(c.lookup(12).is_some());
        let v = c.insert(16, data(9), false).unwrap();
        assert_ne!(v.line, 12, "PLRU must not evict the most recent line");
    }

    #[test]
    fn plru_on_non_power_of_two_assoc_degrades_to_lru() {
        let cfg = CacheConfig::new(12 * LINE_SIZE, 3).with_policy(ReplacementPolicy::TreePlru);
        let c = SetAssocCache::new(cfg);
        assert_eq!(c.policy(), ReplacementPolicy::Lru);
    }

    #[test]
    fn random_policy_is_deterministic_across_runs() {
        let run = || {
            let cfg = CacheConfig::new(8 * LINE_SIZE, 2).with_policy(ReplacementPolicy::Random);
            let mut c = SetAssocCache::new(cfg);
            let mut evicted = Vec::new();
            for l in 0..32u64 {
                if let Some(v) = c.insert(l * 4, data(l as u8), false) {
                    evicted.push(v.line);
                }
            }
            evicted
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_policies_preserve_payload_integrity() {
        for policy in ReplacementPolicy::ALL {
            let cfg = CacheConfig::new(8 * LINE_SIZE, 2).with_policy(policy);
            let mut c = SetAssocCache::new(cfg);
            c.insert(3, data(33), true);
            let v = c.remove(3).unwrap();
            assert_eq!(v.data, data(33), "{policy:?} corrupted payload");
            assert!(v.dirty);
        }
    }

    #[test]
    fn writes_mark_dirty() {
        let mut c = tiny();
        c.insert(6, data(0), false);
        {
            let mut r = c.lookup(6).unwrap();
            r.data()[3] = 42;
            r.mark_dirty();
        }
        let v = c.remove(6).unwrap();
        assert!(v.dirty);
        assert_eq!(v.data[3], 42);
    }
}
