//! Opt-in, outcome-neutral persistency event recording.
//!
//! A [`EventRecorder`] attached to a [`MemorySystem`](crate::system::MemorySystem)
//! observes the persistency-relevant instruction stream — NVM stores,
//! `CLFLUSH`/`CLFLUSHOPT`/`CLWB`, batched epoch persists, `SFENCE`, and
//! harvested crash points — without charging a single picosecond or
//! bumping any event counter. Recording on vs. off is therefore invisible
//! to the simulated execution (the `proptest_analyze_neutrality` suite
//! pins this), which is what lets the persist-order analyzer
//! (`adcc::analyze`) run against the exact campaigns CI already replays
//! byte-for-byte.
//!
//! Store and flush events are recorded only for *tracked* line ranges
//! (registered via [`EventRecorder::track_range`]), keeping the stream
//! proportional to the protocol under analysis rather than the whole
//! working set. Fences and crash marks are global ordering points and are
//! always recorded. Each event carries the NVM write-journal epoch
//! current at record time (see `Backing::journal_epoch`), so analysis can
//! segment the stream at delta-base boundaries.
//!
//! Cache evictions are deliberately **not** events: an evicted dirty line
//! is durable without any flush instruction having touched it, so the
//! analyzer must treat the event stream as the *protocol's* persist
//! ordering claims, not as ground truth about media state.

/// What a recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A store dirtied this tracked NVM line.
    Store {
        /// The line written (line index, i.e. address >> LINE_SHIFT).
        line: u64,
    },
    /// An explicit flush instruction (`CLFLUSH`/`CLFLUSHOPT`/`CLWB`)
    /// targeted this tracked line.
    Flush {
        /// The line flushed.
        line: u64,
    },
    /// A batched epoch persist (`persist_lines_batched`) wrote this
    /// tracked line back; the batch's single fence follows as its own
    /// [`EventKind::Fence`] event.
    FlushBatched {
        /// The line persisted by the batch.
        line: u64,
    },
    /// An `SFENCE`: every earlier flush is ordered before later stores.
    Fence,
    /// A crash image was harvested for a scheduled campaign unit at this
    /// point of the stream (see `CrashEmulator::arm_harvest`).
    Crash {
        /// The scheduled unit whose crash state was captured here.
        unit: u64,
    },
}

/// One recorded persistency event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Position in the recorded stream (0-based, dense).
    pub seq: u64,
    /// NVM write-journal epoch at record time.
    pub epoch: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The recorder: tracked line ranges plus the event stream.
///
/// Construct one, register the protocol's line ranges with
/// [`EventRecorder::track_range`], attach it with
/// `MemorySystem::attach_recorder`, run, and take it back with
/// `MemorySystem::take_recorder`. Recording never touches the clock,
/// the stats, or the caches.
#[derive(Debug, Clone, Default)]
pub struct EventRecorder {
    /// Inclusive tracked line ranges, `(first_line, last_line)`.
    ranges: Vec<(u64, u64)>,
    events: Vec<Event>,
}

impl EventRecorder {
    /// Empty recorder tracking no lines (fences and crash marks are still
    /// recorded once attached).
    pub fn new() -> Self {
        EventRecorder::default()
    }

    /// Track every line of `[addr, addr + len)`.
    pub fn track_range(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = crate::line::line_of(addr);
        let last = crate::line::line_of(addr + len as u64 - 1);
        self.ranges.push((first, last));
    }

    /// Whether store/flush events on `line` are recorded.
    #[inline]
    pub fn tracks_line(&self, line: u64) -> bool {
        self.ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The recorded stream, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consume the recorder, returning the stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    #[inline]
    fn push(&mut self, epoch: u64, kind: EventKind) {
        let seq = self.events.len() as u64;
        self.events.push(Event { seq, epoch, kind });
    }

    /// Record a store to `line` if tracked.
    #[inline]
    pub(crate) fn store(&mut self, epoch: u64, line: u64) {
        if self.tracks_line(line) {
            self.push(epoch, EventKind::Store { line });
        }
    }

    /// Record an explicit flush of `line` if tracked.
    #[inline]
    pub(crate) fn flush(&mut self, epoch: u64, line: u64) {
        if self.tracks_line(line) {
            self.push(epoch, EventKind::Flush { line });
        }
    }

    /// Record a batched persist of `line` if tracked.
    #[inline]
    pub(crate) fn flush_batched(&mut self, epoch: u64, line: u64) {
        if self.tracks_line(line) {
            self.push(epoch, EventKind::FlushBatched { line });
        }
    }

    /// Record a fence (always).
    #[inline]
    pub(crate) fn fence(&mut self, epoch: u64) {
        self.push(epoch, EventKind::Fence);
    }

    /// Record a harvested crash point for `unit` (always).
    #[inline]
    pub(crate) fn crash(&mut self, epoch: u64, unit: u64) {
        self.push(epoch, EventKind::Crash { unit });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LINE_SIZE;
    use crate::system::{MemorySystem, SystemConfig};

    fn sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
    }

    #[test]
    fn untracked_lines_record_nothing() {
        let mut rec = EventRecorder::new();
        rec.track_range(0, 0);
        assert!(!rec.tracks_line(0));
        rec.store(0, 5);
        rec.flush(0, 5);
        assert!(rec.is_empty());
    }

    #[test]
    fn tracked_range_is_inclusive_of_straddled_lines() {
        let mut rec = EventRecorder::new();
        // 100 bytes starting 30 bytes into line 2: lines 2..=4.
        rec.track_range(2 * LINE_SIZE as u64 + 30, 100);
        assert!(!rec.tracks_line(1));
        assert!(rec.tracks_line(2));
        assert!(rec.tracks_line(4));
        assert!(!rec.tracks_line(5));
    }

    #[test]
    fn recording_is_outcome_neutral() {
        // Identical executions with and without a recorder attached must
        // agree on every deterministic counter and the clock.
        let run = |record: bool| -> (u64, crate::stats::MemStats, Vec<Event>) {
            let mut s = sys();
            let a = s.alloc_nvm(4 * LINE_SIZE);
            if record {
                let mut rec = EventRecorder::new();
                rec.track_range(a, 4 * LINE_SIZE);
                s.attach_recorder(rec);
            }
            for i in 0..4u64 {
                s.write_bytes(a + i * LINE_SIZE as u64, &[i as u8 + 1; 8]);
            }
            s.clflush(a);
            s.clwb(a + LINE_SIZE as u64);
            s.persist_lines_batched(&[(a >> 6) + 2, (a >> 6) + 3]);
            s.sfence();
            let events = s
                .take_recorder()
                .map(EventRecorder::into_events)
                .unwrap_or_default();
            (s.now().ps(), *s.stats(), events)
        };
        let (t_off, stats_off, ev_off) = run(false);
        let (t_on, stats_on, ev_on) = run(true);
        assert_eq!(t_off, t_on, "recording must not charge time");
        assert_eq!(stats_off, stats_on, "recording must not bump counters");
        assert!(ev_off.is_empty());
        assert!(!ev_on.is_empty());
    }

    #[test]
    fn the_stream_orders_stores_flushes_and_fences() {
        let mut s = sys();
        let a = s.alloc_nvm(2 * LINE_SIZE);
        let line = a >> 6;
        let mut rec = EventRecorder::new();
        rec.track_range(a, 2 * LINE_SIZE);
        s.attach_recorder(rec);
        s.write_bytes(a, &[1; 8]);
        s.clflushopt(a);
        s.sfence();
        let rec = s.take_recorder().expect("recorder attached");
        let kinds: Vec<EventKind> = rec.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Store { line },
                EventKind::Flush { line },
                EventKind::Fence,
            ]
        );
        // Sequence numbers are dense and ordered.
        for (i, e) in rec.events().iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn batched_persist_records_per_line_writebacks_then_one_fence() {
        let mut s = sys();
        let a = s.alloc_nvm(3 * LINE_SIZE);
        let mut rec = EventRecorder::new();
        rec.track_range(a, 3 * LINE_SIZE);
        s.attach_recorder(rec);
        for i in 0..3u64 {
            s.write_bytes(a + i * LINE_SIZE as u64, &[7; 8]);
        }
        let lines: Vec<u64> = (0..3).map(|i| (a >> 6) + i).collect();
        s.persist_lines_batched(&lines);
        let rec = s.take_recorder().unwrap();
        let tail: Vec<EventKind> = rec.events()[3..].iter().map(|e| e.kind).collect();
        assert_eq!(
            tail,
            vec![
                EventKind::FlushBatched { line: lines[0] },
                EventKind::FlushBatched { line: lines[1] },
                EventKind::FlushBatched { line: lines[2] },
                EventKind::Fence,
            ]
        );
    }

    #[test]
    fn events_carry_the_journal_epoch() {
        let mut s = sys();
        let a = s.alloc_nvm(LINE_SIZE);
        let mut rec = EventRecorder::new();
        rec.track_range(a, LINE_SIZE);
        s.attach_recorder(rec);
        s.write_bytes(a, &[1; 8]);
        let _base = s.delta_base(); // bumps the journal epoch
        s.write_bytes(a, &[2; 8]);
        let rec = s.take_recorder().unwrap();
        let epochs: Vec<u64> = rec.events().iter().map(|e| e.epoch).collect();
        assert_eq!(epochs.len(), 2);
        assert!(epochs[0] < epochs[1], "{epochs:?}");
    }

    #[test]
    fn cloning_the_system_clones_the_recorder() {
        let mut s = sys();
        let a = s.alloc_nvm(LINE_SIZE);
        let mut rec = EventRecorder::new();
        rec.track_range(a, LINE_SIZE);
        s.attach_recorder(rec);
        s.write_bytes(a, &[1; 8]);
        let mut s2 = s.clone();
        s2.write_bytes(a, &[2; 8]);
        assert_eq!(s.take_recorder().unwrap().len(), 1);
        assert_eq!(s2.take_recorder().unwrap().len(), 2);
    }
}
