//! Epoch persistency helper.
//!
//! The paper's related work (Pelley et al. \[52\], Joshi et al. \[53\], Kolli
//! et al. \[54\]) relaxes persist ordering *within* an epoch: persists issued
//! between two barriers may proceed concurrently, and only the barrier
//! orders them against later stores. The paper notes these proposals "can
//! be complementary to our work to improve the performance of cache
//! flushing (especially for algorithm-directed crash consistence based on
//! ABFT for matrix multiplication)" — this module is that combination.
//!
//! [`EpochPersist`] accumulates the lines an algorithm wants persisted
//! during an epoch and issues them as one batched persist at
//! [`EpochPersist::barrier`], which charges overlapped (not serialized)
//! medium latency via [`MemorySystem::persist_lines_batched`].

use crate::line::line_of;
#[cfg(test)]
use crate::line::LINE_SIZE;
use crate::system::MemorySystem;

/// Accumulates persist requests for one epoch.
#[derive(Debug, Default)]
pub struct EpochPersist {
    lines: Vec<u64>,
    lines_persisted: u64,
}

impl EpochPersist {
    /// New accumulator with no pending requests.
    pub fn new() -> Self {
        EpochPersist {
            lines: Vec::new(),
            lines_persisted: 0,
        }
    }

    /// Number of (not yet deduplicated) pending line requests.
    pub fn pending(&self) -> usize {
        self.lines.len()
    }

    /// Total distinct lines persisted across all barriers issued through
    /// this accumulator (telemetry hook: epoch-batched flush volume).
    pub fn lines_persisted(&self) -> u64 {
        self.lines_persisted
    }

    /// Request persistence of the line containing `addr`.
    #[inline]
    pub fn note(&mut self, addr: u64) {
        self.lines.push(line_of(addr));
    }

    /// Request persistence of every line of `[addr, addr + len)`.
    pub fn note_range(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = line_of(addr);
        let last = line_of(addr + len as u64 - 1);
        // Dedup happens at the barrier; pushing a run here is cheap.
        for line in first..=last {
            self.lines.push(line);
        }
    }

    /// Issue the epoch's persists as one batch and clear the buffer.
    /// Returns the number of distinct lines persisted.
    pub fn barrier(&mut self, sys: &mut MemorySystem) -> usize {
        self.lines.sort_unstable();
        self.lines.dedup();
        let n = self.lines.len();
        #[cfg(not(feature = "mutant-epoch-fence"))]
        sys.persist_lines_batched(&self.lines);
        // Seeded mutant for the analyzer's mutation suite: flush the
        // epoch's lines but drop the ordering fence, opening the
        // missing-fence publish window the sanitizer must flag.
        #[cfg(feature = "mutant-epoch-fence")]
        for &line in &self.lines {
            sys.clflushopt(line << crate::line::LINE_SHIFT);
        }
        self.lines.clear();
        self.lines_persisted += n as u64;
        n
    }

    /// Drop pending requests without persisting (e.g. the epoch's data was
    /// superseded).
    pub fn discard(&mut self) {
        self.lines.clear();
    }
}

/// Convenience: persist `[addr, addr + len)` as a single epoch.
pub fn persist_range_epoch(sys: &mut MemorySystem, addr: u64, len: usize) {
    let mut e = EpochPersist::new();
    e.note_range(addr, len);
    e.barrier(sys);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn sys() -> MemorySystem {
        MemorySystem::new(SystemConfig::nvm_only(4096, 1 << 20))
    }

    #[test]
    fn barrier_makes_lines_durable() {
        let mut s = sys();
        let a = s.alloc_nvm(4 * LINE_SIZE);
        for i in 0..4u64 {
            s.write_bytes(a + i * LINE_SIZE as u64, &[i as u8 + 1; 8]);
        }
        let mut e = EpochPersist::new();
        e.note_range(a, 4 * LINE_SIZE);
        assert_eq!(e.barrier(&mut s), 4);
        let img = s.crash();
        for i in 0..4u64 {
            assert_eq!(img.read_u8(a + i * LINE_SIZE as u64), i as u8 + 1);
        }
    }

    #[test]
    fn batched_is_cheaper_than_serialized() {
        let n_lines = 32usize;
        // Serialized: persist_line + sfence per line.
        let mut s1 = sys();
        let a1 = s1.alloc_nvm(n_lines * LINE_SIZE);
        for i in 0..n_lines {
            s1.write_bytes(a1 + (i * LINE_SIZE) as u64, &[7; 8]);
        }
        let t0 = s1.now();
        for i in 0..n_lines {
            s1.persist_line(a1 + (i * LINE_SIZE) as u64);
            s1.sfence();
        }
        let serialized = s1.now() - t0;

        // Batched epoch.
        let mut s2 = sys();
        let a2 = s2.alloc_nvm(n_lines * LINE_SIZE);
        for i in 0..n_lines {
            s2.write_bytes(a2 + (i * LINE_SIZE) as u64, &[7; 8]);
        }
        let t0 = s2.now();
        let mut e = EpochPersist::new();
        e.note_range(a2, n_lines * LINE_SIZE);
        e.barrier(&mut s2);
        let batched = s2.now() - t0;

        assert!(
            batched.ps() * 2 < serialized.ps(),
            "epoch batching should be at least 2x cheaper: {batched} vs {serialized}"
        );
    }

    #[test]
    fn duplicate_notes_are_deduplicated() {
        let mut s = sys();
        let a = s.alloc_nvm(LINE_SIZE);
        s.write_bytes(a, &[9; 8]);
        let mut e = EpochPersist::new();
        e.note(a);
        e.note(a + 8);
        e.note(a);
        assert_eq!(e.barrier(&mut s), 1);
    }

    #[test]
    fn lines_persisted_accumulates_across_barriers() {
        let mut s = sys();
        let a = s.alloc_nvm(4 * LINE_SIZE);
        let mut e = EpochPersist::new();
        assert_eq!(e.lines_persisted(), 0);
        e.note_range(a, 3 * LINE_SIZE);
        e.barrier(&mut s);
        assert_eq!(e.lines_persisted(), 3);
        e.note(a); // second epoch re-persists a line: still counted
        e.barrier(&mut s);
        assert_eq!(e.lines_persisted(), 4);
        // Discarded requests never count.
        e.note(a + 64);
        e.discard();
        e.barrier(&mut s);
        assert_eq!(e.lines_persisted(), 4);
    }

    #[test]
    fn discard_drops_pending() {
        let mut e = EpochPersist::new();
        e.note(0);
        e.note(64);
        assert_eq!(e.pending(), 2);
        e.discard();
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn empty_barrier_is_free() {
        // An epoch with nothing pending must not skew flush/fence
        // telemetry or the clock (mechanisms may issue barriers
        // unconditionally per epoch).
        let mut s = sys();
        let fences = s.stats().sfences;
        let barriers = s.stats().epoch_barriers;
        let t0 = s.now();
        let mut e = EpochPersist::new();
        assert_eq!(e.barrier(&mut s), 0);
        assert_eq!(s.stats().sfences, fences, "no fence for an empty epoch");
        assert_eq!(s.stats().epoch_barriers, barriers, "no barrier counted");
        assert_eq!(s.now(), t0, "no time charged");
        assert_eq!(e.lines_persisted(), 0);
    }

    #[test]
    fn batched_persist_works_on_hetero() {
        let mut s = MemorySystem::new(SystemConfig::heterogeneous(4096, 16384, 1 << 20));
        let a = s.alloc_nvm(2 * LINE_SIZE);
        s.write_bytes(a, &[3; 8]);
        // Push one line into the DRAM cache first (dirty there).
        s.clflush(a);
        s.write_bytes(a + LINE_SIZE as u64, &[4; 8]);
        let mut e = EpochPersist::new();
        e.note_range(a, 2 * LINE_SIZE);
        e.barrier(&mut s);
        let img = s.crash();
        assert_eq!(img.read_u8(a), 3, "dirty-in-DRAM-cache line persisted");
        assert_eq!(
            img.read_u8(a + LINE_SIZE as u64),
            4,
            "dirty-in-CPU line persisted"
        );
    }
}
