//! # adcc-core — algorithm-directed crash consistence
//!
//! The primary contribution of *Algorithm-Directed Crash Consistence in
//! Non-Volatile Memory for HPC* (CLUSTER 2017), reproduced in Rust over the
//! [`adcc_sim`] crash emulator.
//!
//! Instead of maintaining a consistent NVM state at runtime (checkpoints,
//! undo logs), the application is *slightly extended* so that, at recovery
//! time, **algorithm knowledge decides which data in NVM is consistent**:
//!
//! * [`cg`] — conjugate gradient with an iteration-history dimension on
//!   `p, q, r, z` and one flushed cache line per iteration; recovery scans
//!   backwards checking the invariants `p(i+1)ᵀ·q(i) = 0` and
//!   `r(i+1) = b − A·z(i+1)`.
//! * [`abft`] — checksum-encoded matrix multiplication restructured into a
//!   product loop and an addition loop over temporal matrices whose
//!   checksums are selectively flushed; recovery verifies (and sometimes
//!   corrects) blocks by their checksums and recomputes only the
//!   inconsistent ones.
//! * [`mc`] — Monte-Carlo transport (XSBench-like) where the interaction
//!   counters are selectively flushed every 0.01% of lookups; recovery
//!   restarts from the flushed loop index and replays.
//!
//! Every scheme also ships its baselines (checkpointed and
//! PMEM-transactional variants) so the paper's seven test cases can be
//! compared on identical workloads.
//!
//! ## Extensions beyond the paper (DESIGN.md §5a)
//!
//! The paper's recipe — *history dimension + sparse flushing + invariant
//! checking at recovery* — generalizes past its three case studies. Three
//! more kernels instantiate it:
//!
//! * [`jacobi`] — weighted Jacobi iteration, whose update equation
//!   `x(i+1) = x(i) + ω·D⁻¹·(b − A·x(i))` is directly checkable.
//! * [`bicgstab`] — BiCGSTAB for nonsymmetric systems: the residual
//!   identity plus a scalar-assisted direction-recurrence check (the
//!   iteration's three scalars are flushed as one line per iteration).
//! * [`lu`] — left-looking blocked LU with ABFT column checksums; each
//!   completed panel's `L`/`U` checksum invariants are flushed and verified
//!   at recovery, and only torn panels are refactored.
//! * [`stencil`] — a 2-D heat (5-point Jacobi) stencil over a ring of
//!   sweep buffers with per-row-block checksums flushed during the sweep;
//!   recovery restarts from the newest fully-verified sweep.

pub mod abft;
pub mod bicgstab;
pub mod cg;
pub mod jacobi;
pub mod lu;
pub mod mc;
pub mod stencil;
pub mod traits;

pub use traits::{DirtyRestart, RecoveryReport};
