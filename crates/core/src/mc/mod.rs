//! Algorithm-directed crash consistence for Monte-Carlo transport
//! (paper §III-D).
//!
//! The workload is modelled on XSBench: each lookup samples a neutron
//! energy and a material, binary-searches per-nuclide energy grids,
//! interpolates five microscopic cross sections per nuclide and
//! accumulates them into the five-element `macro_xs_vector`. The paper's
//! extension turns the result into something with verifiable physical
//! meaning: a CDF over the five macroscopic cross sections selects an
//! *interaction type*, counted across all lookups — with enough samples
//! the five counters converge to equal shares.
//!
//! The crash-consistence findings reproduced here:
//!
//! * the "basic idea" (flush only the loop index, rely on eviction) loses
//!   the counter updates stranded in cache, visibly skewing the counts
//!   after restart (Fig. 10);
//! * selectively flushing `macro_xs_vector`, the counters and the loop
//!   index every 0.01% of lookups bounds the loss and restores correct
//!   statistics (Figs. 11–12) at negligible cost (Fig. 13).

pub mod grids;
pub mod rng;
pub mod sim;
pub mod variants;

pub use grids::{McProblem, SimMcGrids};
pub use sim::{McMode, McRecovery, McSim};

/// Number of interaction types / cross-section channels.
pub const XS_CHANNELS: usize = 5;

/// Crash-site phases for MC.
pub mod sites {
    /// End of one lookup iteration; index = lookup number.
    pub const PH_LOOKUP: u32 = 30;
}
