//! MC under the baseline mechanisms (checkpoint / PMEM transactions),
//! checkpointing the same state at the same frequency as the paper:
//! "macro_xs_vector and five counters at every 0.01% of total number of
//! iterations".

use adcc_ckpt::manager::CkptManager;
use adcc_pmem::undo::UndoPool;
use adcc_sim::crash::{CrashEmulator, CrashSite, RunOutcome};

use super::sim::McSim;
use super::sites;

/// The regions a checkpoint (or transaction) must protect.
pub fn mc_regions(mc: &McSim) -> Vec<(u64, usize)> {
    vec![
        (mc.macro_xs.base(), mc.macro_xs.byte_len()),
        (mc.counters.base(), mc.counters.byte_len()),
        (mc.idx_cell.addr(), 8),
    ]
}

/// Run MC checkpointing every `interval` lookups. The [`McSim`] should be
/// in [`super::sim::McMode::Native`] (the checkpoint replaces flushing).
pub fn run_with_ckpt(
    emu: &mut CrashEmulator,
    mc: &McSim,
    mgr: &mut CkptManager,
    interval: u64,
) -> RunOutcome<()> {
    for i in 0..mc.lookups {
        let t = one_lookup_step(mc, emu, i);
        let c = mc.counters.get(emu, t) + 1;
        mc.counters.set(emu, t, c);
        if (i + 1) % interval.max(1) == 0 {
            mc.idx_cell.set(emu, i + 1);
            mgr.checkpoint(emu);
        }
        if emu.poll(CrashSite::new(sites::PH_LOOKUP, i)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

/// Restore the newest checkpoint and replay to completion. Returns the
/// lookup index resumed from.
pub fn ckpt_restore_and_resume(emu: &mut CrashEmulator, mc: &McSim, mgr: &mut CkptManager) -> u64 {
    let resumed_from = match mgr.restore(emu) {
        Some(_) => mc.idx_cell.get(emu),
        None => {
            // No checkpoint yet: zero the state and restart.
            for c in 0..super::XS_CHANNELS {
                mc.counters.set(emu, c, 0);
            }
            0
        }
    };
    mc.run(emu, resumed_from, mc.lookups)
        .completed()
        .expect("resume must not crash");
    resumed_from
}

/// Run MC with an undo-log transaction spanning each `interval`-lookup
/// chunk (pre-images of the counters/accumulator/index taken at chunk
/// start, committed at chunk end).
pub fn run_with_pmem(
    emu: &mut CrashEmulator,
    mc: &McSim,
    pool: &mut UndoPool,
    interval: u64,
) -> RunOutcome<()> {
    let interval = interval.max(1);
    let mut in_tx = false;
    for i in 0..mc.lookups {
        if !in_tx {
            pool.tx_begin(emu);
            for (addr, len) in mc_regions(mc) {
                pool.tx_add_range(emu, addr, len);
            }
            in_tx = true;
        }
        let t = one_lookup_step(mc, emu, i);
        let c = mc.counters.get(emu, t) + 1;
        mc.counters.set(emu, t, c);
        if (i + 1) % interval == 0 {
            mc.idx_cell.set(emu, i + 1);
            pool.tx_commit(emu);
            in_tx = false;
        }
        if emu.poll(CrashSite::new(sites::PH_LOOKUP, i)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    if in_tx {
        mc.idx_cell.set(emu, mc.lookups);
        pool.tx_commit(emu);
    }
    RunOutcome::Completed(())
}

/// One lookup + interaction selection, shared with the variants (kept in
/// sync with [`McSim::run`]'s loop body via the module tests).
fn one_lookup_step(mc: &McSim, emu: &mut CrashEmulator, i: u64) -> usize {
    use super::rng::{sample, unit_f64};
    use super::XS_CHANNELS;
    let e = unit_f64(sample(mc.seed, i, 0));
    let mat = mc.problem.pick_material(unit_f64(sample(mc.seed, i, 1)));
    for c in 0..XS_CHANNELS {
        mc.macro_xs.set(emu, c, 0.0);
    }
    for idx in 0..mc.problem.materials[mat].len() {
        let nuc = mc.problem.materials[mat][idx] as usize;
        let g = mc.grids.search(emu, nuc, e);
        let xs = mc.grids.interpolate(emu, nuc, g, e);
        for (c, v) in xs.iter().enumerate() {
            let acc = mc.macro_xs.get(emu, c) + v;
            mc.macro_xs.set(emu, c, acc);
        }
        emu.charge_flops(XS_CHANNELS as u64);
    }
    let mut cdf = [0.0f64; XS_CHANNELS];
    let mut acc = 0.0;
    for (c, entry) in cdf.iter_mut().enumerate() {
        acc += mc.macro_xs.get(emu, c);
        *entry = acc;
    }
    let total = cdf[XS_CHANNELS - 1];
    let x = unit_f64(sample(mc.seed, i, 2));
    emu.charge_flops(2 * XS_CHANNELS as u64);
    cdf.iter()
        .position(|&c| x <= c / total)
        .unwrap_or(XS_CHANNELS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::grids::McProblem;
    use crate::mc::sim::McMode;
    use adcc_sim::crash::CrashTrigger;
    use adcc_sim::system::{MemorySystem, SystemConfig};

    fn problem() -> McProblem {
        McProblem::generate(36, 128, 21)
    }

    fn cfg(p: &McProblem) -> SystemConfig {
        SystemConfig::nvm_only(16 << 10, (p.grid_bytes() + (1 << 20)).next_power_of_two())
    }

    fn reference_counts(p: &McProblem, lookups: u64) -> [u64; 5] {
        let mut sys = MemorySystem::new(cfg(p));
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, McMode::Native);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        mc.run(&mut emu, 0, lookups).completed().unwrap();
        mc.peek_counts(&emu)
    }

    #[test]
    fn variant_loop_body_matches_mcsim() {
        let p = problem();
        let lookups = 300;
        let want = reference_counts(&p, lookups);
        // Checkpoint variant without crash must count identically.
        let mut sys = MemorySystem::new(cfg(&p));
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, McMode::Native);
        let mut mgr = CkptManager::new_nvm(&mut sys, mc_regions(&mc), false);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        run_with_ckpt(&mut emu, &mc, &mut mgr, 50)
            .completed()
            .unwrap();
        assert_eq!(mc.peek_counts(&emu), want);
    }

    #[test]
    fn ckpt_crash_restore_reproduces_counts() {
        let p = problem();
        let lookups = 1_000;
        let want = reference_counts(&p, lookups);
        let mut sys = MemorySystem::new(cfg(&p));
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, McMode::Native);
        let mut mgr = CkptManager::new_nvm(&mut sys, mc_regions(&mc), false);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LOOKUP, 620),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_ckpt(&mut emu, &mc, &mut mgr, 100)
            .crashed()
            .unwrap();
        let sys2 = MemorySystem::from_image(cfg(&p), &image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let resumed = ckpt_restore_and_resume(&mut emu2, &mc, &mut mgr);
        assert_eq!(resumed, 600);
        assert_eq!(mc.peek_counts(&emu2), want);
    }

    #[test]
    fn pmem_variant_counts_match_reference() {
        let p = problem();
        let lookups = 400;
        let want = reference_counts(&p, lookups);
        let mut sys = MemorySystem::new(cfg(&p));
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, McMode::Native);
        let mut pool = UndoPool::new(&mut sys, 16);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        run_with_pmem(&mut emu, &mc, &mut pool, 50)
            .completed()
            .unwrap();
        assert_eq!(mc.peek_counts(&emu), want);
    }

    #[test]
    fn pmem_crash_recovers_to_committed_chunk() {
        let p = problem();
        let lookups = 1_000;
        let want = reference_counts(&p, lookups);
        let mut sys = MemorySystem::new(cfg(&p));
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, McMode::Native);
        let mut pool = UndoPool::new(&mut sys, 16);
        let layout = pool.layout();
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LOOKUP, 730),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_pmem(&mut emu, &mc, &mut pool, 100)
            .crashed()
            .unwrap();
        let mut sys2 = MemorySystem::from_image(cfg(&p), &image);
        UndoPool::recover(layout, &mut sys2);
        let resumed = mc.idx_cell.get(&mut sys2);
        assert_eq!(resumed, 700, "undo must land on the last committed chunk");
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        mc.run(&mut emu2, resumed, lookups).completed().unwrap();
        assert_eq!(mc.peek_counts(&emu2), want);
    }
}
