//! The instrumented MC transport simulation: native / basic-idea /
//! selective-flush modes, and replay-based recovery.

use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PArray, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::grids::{McProblem, SimMcGrids};
use super::rng::{sample, unit_f64};
use super::{sites, XS_CHANNELS};
use crate::traits::{DirtyRestart, RecoveryReport};

/// Persistence mode of the MC loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McMode {
    /// No flushing at all (runtime baseline).
    Native,
    /// The paper's first attempt: flush only the cache line holding the
    /// loop index, every iteration (Fig. 10's "basic idea").
    Basic,
    /// The paper's fix (Fig. 11): flush `macro_xs_vector`, the five
    /// counters and the loop index every `interval` lookups (0.01% of the
    /// total in the paper).
    Selective { interval: u64 },
    /// Ablation: flush the state every iteration (the configuration the
    /// paper reports costs 16%).
    EveryIteration,
    /// Extension beyond the paper: each counter line carries an *epoch*
    /// field (the index of the last lookup that updated the line),
    /// written in the same line as the counters so NVM always holds a
    /// per-line-consistent `(counters, epoch)` pair. Recovery replays
    /// each line independently from its own epoch — **exact** results
    /// even when lines are evicted at arbitrary times, closing the
    /// small double-count window of [`McMode::Selective`]. The periodic
    /// flush only bounds the replay distance.
    Epoch { interval: u64 },
}

/// Result of a recovery + replay.
#[derive(Debug, Clone)]
pub struct McRecovery {
    /// Lookup index execution resumed from (the flushed loop index).
    pub resumed_from: u64,
    /// Final interaction-type counts after replay to completion.
    pub counts: [u64; XS_CHANNELS],
    /// Detect/resume split; `lost_units` = lookups re-executed.
    pub report: RecoveryReport,
}

/// Counter storage for [`McMode::Epoch`]: two cache lines, each holding
/// its counters *and* the index of the last lookup that updated them.
/// Because a line is written atomically, any NVM version of it is the
/// exact state "as of" its stored epoch.
#[derive(Clone, Copy)]
pub struct EpochCounters {
    /// Line 0: counters 0-1 then the epoch word.
    lo: PArray<u64>,
    /// Line 1: counters 2-4 then the epoch word.
    hi: PArray<u64>,
}

impl EpochCounters {
    /// Number of counters on the first line.
    const LO: usize = 2;

    fn alloc(sys: &mut MemorySystem) -> Self {
        let base = sys.alloc_nvm(2 * adcc_sim::line::LINE_SIZE);
        EpochCounters {
            lo: PArray::new(base, Self::LO + 1),
            hi: PArray::new(
                base + adcc_sim::line::LINE_SIZE as u64,
                XS_CHANNELS - Self::LO + 1,
            ),
        }
    }

    /// Record one interaction of type `t` at lookup `i` (counter += 1 and
    /// epoch := i + 1, in the same line).
    fn increment(&self, sys: &mut MemorySystem, t: usize, i: u64) {
        let (arr, idx) = if t < Self::LO {
            (self.lo, t)
        } else {
            (self.hi, t - Self::LO)
        };
        let c = arr.get(sys, idx) + 1;
        arr.set(sys, idx, c);
        arr.set(sys, arr.len() - 1, i + 1);
    }

    /// Persist both counter lines (bounds replay distance).
    fn flush(&self, sys: &mut MemorySystem) {
        sys.persist_line(self.lo.base());
        sys.persist_line(self.hi.base());
        sys.sfence();
    }

    /// The per-line epochs currently visible (charged reads).
    fn epochs(&self, sys: &mut MemorySystem) -> (u64, u64) {
        (
            self.lo.get(sys, self.lo.len() - 1),
            self.hi.get(sys, self.hi.len() - 1),
        )
    }

    /// Uncharged counter extraction.
    fn peek_counts(&self, sys: &MemorySystem) -> [u64; XS_CHANNELS] {
        let mut out = [0u64; XS_CHANNELS];
        for (t, o) in out.iter_mut().enumerate() {
            *o = if t < Self::LO {
                self.lo.peek(sys, t)
            } else {
                self.hi.peek(sys, t - Self::LO)
            };
        }
        out
    }
}

/// The MC simulation state over simulated memory.
pub struct McSim {
    pub grids: SimMcGrids,
    pub problem: McProblem,
    /// The five-element macroscopic cross-section accumulator
    /// (one cache line; hot, hence chronically stale in NVM).
    pub macro_xs: PArray<f64>,
    /// The five interaction-type counters. Deliberately allocated
    /// straddling a cache-line boundary (counters 0–1 on one line, 2–4 on
    /// the next) to reproduce the paper's observation that they go stale
    /// in NVM at different times.
    pub counters: PArray<u64>,
    /// The loop index cell, alone on its cache line.
    pub idx_cell: PScalar<u64>,
    /// Epoch-tagged counter storage (only used by [`McMode::Epoch`]).
    pub epoch_counters: EpochCounters,
    pub lookups: u64,
    pub seed: u64,
    pub mode: McMode,
}

impl McSim {
    /// Seed the problem into simulated NVM and zero the mutable state.
    pub fn setup(
        sys: &mut MemorySystem,
        problem: McProblem,
        lookups: u64,
        seed: u64,
        mode: McMode,
    ) -> Self {
        let grids = SimMcGrids::seed_from(sys, &problem);
        let macro_xs = PArray::<f64>::alloc_nvm(sys, XS_CHANNELS);
        // 5 u64 counters starting 48 bytes into a line: elements 0-1 on
        // the first line, 2-4 on the second.
        let counters_base = sys.alloc_nvm_at_line_offset(XS_CHANNELS * 8, 48);
        let counters = PArray::<u64>::new(counters_base, XS_CHANNELS);
        let idx_cell = PScalar::<u64>::alloc_nvm(sys);
        let epoch_counters = EpochCounters::alloc(sys);
        McSim {
            grids,
            problem,
            macro_xs,
            counters,
            idx_cell,
            epoch_counters,
            lookups,
            seed,
            mode,
        }
    }

    /// One lookup: sample inputs, search + interpolate every nuclide of
    /// the material, accumulate `macro_xs`, and choose the interaction
    /// type via the paper's normalized-CDF extension.
    fn one_lookup(&self, sys: &mut MemorySystem, i: u64) -> usize {
        let e = unit_f64(sample(self.seed, i, 0));
        let mat = self
            .problem
            .pick_material(unit_f64(sample(self.seed, i, 1)));
        for c in 0..XS_CHANNELS {
            self.macro_xs.set(sys, c, 0.0);
        }
        // Iterate a clone-free index list (host-side config data).
        for idx in 0..self.problem.materials[mat].len() {
            let nuc = self.problem.materials[mat][idx] as usize;
            let g = self.grids.search(sys, nuc, e);
            let xs = self.grids.interpolate(sys, nuc, g, e);
            for (c, v) in xs.iter().enumerate() {
                let acc = self.macro_xs.get(sys, c) + v;
                self.macro_xs.set(sys, c, acc);
            }
            sys.charge_flops(XS_CHANNELS as u64);
        }
        // CDF over the five macroscopic cross sections, normalized by the
        // total; a uniform draw picks the interaction type.
        let mut cdf = [0.0f64; XS_CHANNELS];
        let mut acc = 0.0;
        for (c, entry) in cdf.iter_mut().enumerate() {
            acc += self.macro_xs.get(sys, c);
            *entry = acc;
        }
        let total = cdf[XS_CHANNELS - 1];
        let x = unit_f64(sample(self.seed, i, 2));
        sys.charge_flops(2 * XS_CHANNELS as u64);
        cdf.iter()
            .position(|&c| x <= c / total)
            .unwrap_or(XS_CHANNELS - 1)
    }

    /// Flush the persistent MC state (macro_xs + counters + index).
    fn flush_state(&self, sys: &mut MemorySystem) {
        sys.persist_range(self.macro_xs.base(), self.macro_xs.byte_len());
        sys.persist_range(self.counters.base(), self.counters.byte_len());
        self.idx_cell.persist(sys);
        sys.sfence();
    }

    /// Run lookups `[from, to)`, applying the mode's flushing policy and
    /// polling the crash emulator after every lookup.
    pub fn run(&self, emu: &mut CrashEmulator, from: u64, to: u64) -> RunOutcome<()> {
        for i in from..to.min(self.lookups) {
            let t = self.one_lookup(emu, i);
            if matches!(self.mode, McMode::Epoch { .. }) {
                self.epoch_counters.increment(emu, t, i);
            } else {
                let c = self.counters.get(emu, t) + 1;
                self.counters.set(emu, t, c);
            }
            match self.mode {
                McMode::Native => {}
                McMode::Basic => {
                    // Flush only the loop-index line, every iteration.
                    self.idx_cell.set(emu, i + 1);
                    self.idx_cell.persist(emu);
                }
                McMode::Selective { interval } => {
                    if (i + 1) % interval.max(1) == 0 {
                        self.idx_cell.set(emu, i + 1);
                        self.flush_state(emu);
                    }
                }
                McMode::EveryIteration => {
                    self.idx_cell.set(emu, i + 1);
                    self.flush_state(emu);
                }
                McMode::Epoch { interval } => {
                    if (i + 1) % interval.max(1) == 0 {
                        self.epoch_counters.flush(emu);
                    }
                }
            }
            if emu.poll(CrashSite::new(sites::PH_LOOKUP, i)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        RunOutcome::Completed(())
    }

    /// Epoch-mode replay: re-execute lookups from each line's own epoch,
    /// applying only the increments that line missed. Exact by
    /// construction (each NVM line is a consistent `(counters, epoch)`
    /// pair).
    fn replay_epochs(&self, sys: &mut MemorySystem) {
        let (e_lo, e_hi) = self.epoch_counters.epochs(sys);
        let start = e_lo.min(e_hi);
        for i in start..self.lookups {
            let t = self.one_lookup(sys, i);
            let line_epoch = if t < EpochCounters::LO { e_lo } else { e_hi };
            if i >= line_epoch {
                self.epoch_counters.increment(sys, t, i);
            }
        }
    }

    /// Uncharged extraction of the counters (logical values).
    pub fn peek_counts(&self, sys: &MemorySystem) -> [u64; XS_CHANNELS] {
        if matches!(self.mode, McMode::Epoch { .. }) {
            return self.epoch_counters.peek_counts(sys);
        }
        let mut out = [0u64; XS_CHANNELS];
        for (c, o) in out.iter_mut().enumerate() {
            *o = self.counters.peek(sys, c);
        }
        out
    }

    /// EasyCrash-style dirty restart: reboot from the raw image, trust the
    /// surviving `idx_cell` verbatim, and run the remaining lookups on top
    /// of whatever counter values survived. The tally audit every MC run
    /// ends with (Σ counts = lookups) rejects double- or under-counted
    /// dirty totals.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let idx = self.idx_cell.get(&mut sys);
        if idx > self.lookups {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        self.run(&mut emu, idx, self.lookups)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();
        let counts = self.peek_counts(&sys);
        let total: u64 = counts.iter().sum();
        let extra = self.lookups - idx;
        let time = (sys.now() - t0).ps();
        if total != self.lookups {
            return DirtyRestart {
                solution: None,
                extra_units: extra,
                sim_time_ps: time,
            };
        }
        DirtyRestart {
            solution: Some(counts.iter().map(|&c| c as f64).collect()),
            extra_units: extra,
            sim_time_ps: time,
        }
    }

    /// Reseeded recovery: like [`McSim::recover_and_resume`], but the
    /// resumed lookups draw *fresh* randomness (a restarted production
    /// run without a replayable RNG). Results are statistically — not
    /// bitwise — equivalent to the no-crash run; MC's error tolerance is
    /// exactly why the paper's scheme works for it.
    pub fn recover_and_resume_reseeded(
        &self,
        image: &NvmImage,
        cfg: SystemConfig,
        crashed_at: u64,
        new_seed: u64,
    ) -> McRecovery {
        let reseeded = McSim {
            grids: self.grids,
            problem: self.problem.clone(),
            macro_xs: self.macro_xs,
            counters: self.counters,
            idx_cell: self.idx_cell,
            epoch_counters: self.epoch_counters,
            lookups: self.lookups,
            seed: new_seed,
            mode: self.mode,
        };
        reseeded.recover_and_resume(image, cfg, crashed_at)
    }

    /// Replay-based recovery: boot from the image, read the flushed loop
    /// index (and whatever counter values NVM holds), and re-execute the
    /// remaining lookups with the *same sampled inputs* (counter-based
    /// RNG). `crashed_at` is the lookup the crash interrupted (known to
    /// the harness), used only for loss accounting.
    pub fn recover_and_resume(
        &self,
        image: &NvmImage,
        cfg: SystemConfig,
        crashed_at: u64,
    ) -> McRecovery {
        let mut sys = MemorySystem::from_image(cfg, image);
        if matches!(self.mode, McMode::Epoch { .. }) {
            let t0 = sys.now();
            let (e_lo, e_hi) = self.epoch_counters.epochs(&mut sys);
            let resumed_from = e_lo.min(e_hi);
            let t1 = sys.now();
            self.replay_epochs(&mut sys);
            let t2 = sys.now();
            return McRecovery {
                resumed_from,
                counts: self.peek_counts(&sys),
                report: RecoveryReport {
                    detect_time: t1 - t0,
                    resume_time: t2 - t1,
                    lost_units: crashed_at.saturating_sub(resumed_from),
                    restart_unit: resumed_from,
                },
            };
        }
        let t0 = sys.now();
        let resumed_from = self.idx_cell.get(&mut sys);
        let t1 = sys.now();
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        // Re-execute back to the crash point (measured as resume time).
        self.run(&mut emu, resumed_from, crashed_at)
            .completed()
            .expect("trigger is Never");
        let t2 = emu.now();
        // Continue to completion.
        self.run(&mut emu, crashed_at, self.lookups)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();
        McRecovery {
            resumed_from,
            counts: self.peek_counts(&sys),
            report: RecoveryReport {
                detect_time: t1 - t0,
                resume_time: t2 - t1,
                lost_units: crashed_at.saturating_sub(resumed_from),
                restart_unit: resumed_from,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_problem() -> McProblem {
        McProblem::generate(36, 128, 11)
    }

    fn cfg(p: &McProblem) -> SystemConfig {
        SystemConfig::nvm_only(16 << 10, (p.grid_bytes() + (1 << 20)).next_power_of_two())
    }

    fn no_crash_counts(p: &McProblem, lookups: u64, mode: McMode) -> [u64; XS_CHANNELS] {
        let c = cfg(p);
        let mut sys = MemorySystem::new(c);
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, mode);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        mc.run(&mut emu, 0, lookups).completed().unwrap();
        mc.peek_counts(&emu)
    }

    #[test]
    fn counts_sum_to_lookups() {
        let p = small_problem();
        let counts = no_crash_counts(&p, 500, McMode::Native);
        assert_eq!(counts.iter().sum::<u64>(), 500);
    }

    #[test]
    fn counts_are_roughly_uniform() {
        let p = small_problem();
        let n = 5_000u64;
        let counts = no_crash_counts(&p, n, McMode::Native);
        let expect = n as f64 / 5.0;
        for c in counts {
            assert!(
                (c as f64 - expect).abs() < 0.15 * expect,
                "skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn modes_do_not_change_results() {
        let p = small_problem();
        let a = no_crash_counts(&p, 400, McMode::Native);
        let b = no_crash_counts(&p, 400, McMode::Basic);
        let c = no_crash_counts(&p, 400, McMode::Selective { interval: 50 });
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn counters_straddle_two_lines() {
        let p = small_problem();
        let mut sys = MemorySystem::new(cfg(&p));
        let mc = McSim::setup(&mut sys, p, 10, 1, McMode::Native);
        let first = adcc_sim::line::line_of(mc.counters.addr(0));
        let last = adcc_sim::line::line_of(mc.counters.addr(4) + 7);
        assert_eq!(last, first + 1, "counters must straddle two lines");
    }

    #[test]
    fn selective_flush_recovery_matches_no_crash_exactly() {
        let p = small_problem();
        let lookups = 2_000u64;
        let want = no_crash_counts(&p, lookups, McMode::Native);

        let c = cfg(&p);
        let mut sys = MemorySystem::new(c.clone());
        let mode = McMode::Selective { interval: 100 };
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, mode);
        let crash_at = 900u64;
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LOOKUP, crash_at),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = mc.run(&mut emu, 0, lookups).crashed().unwrap();
        let rec = mc.recover_and_resume(&image, c, crash_at + 1);
        // Replay RNG: with the counters snapshot-consistent at the last
        // flush, recovery reproduces the exact no-crash counts (modulo the
        // rare natural eviction between flushes; none at this small size).
        let total: u64 = rec.counts.iter().sum();
        let want_total: u64 = want.iter().sum();
        assert_eq!(total, want_total, "total samples must match");
        assert_eq!(rec.counts, want, "selective flushing must preserve results");
        assert!(
            rec.resumed_from >= 800,
            "resumed too early: {}",
            rec.resumed_from
        );
        assert!(rec.report.lost_units <= 101);
    }

    #[test]
    fn reseeded_recovery_is_statistically_equivalent() {
        let p = small_problem();
        let lookups = 8_000u64;
        let want = no_crash_counts(&p, lookups, McMode::Native);

        let c = cfg(&p);
        let mut sys = MemorySystem::new(c.clone());
        let mode = McMode::Selective { interval: 200 };
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, mode);
        let crash_at = 2_000u64;
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LOOKUP, crash_at),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = mc.run(&mut emu, 0, lookups).crashed().unwrap();
        let rec = mc.recover_and_resume_reseeded(&image, c, crash_at + 1, 777);
        // Different randomness after restart: totals match (no samples
        // lost), shares agree statistically (within a few percent).
        assert_eq!(rec.counts.iter().sum::<u64>(), lookups);
        for t in 0..XS_CHANNELS {
            let a = want[t] as f64 / lookups as f64;
            let b = rec.counts[t] as f64 / lookups as f64;
            assert!(
                (a - b).abs() < 0.03,
                "type {t}: {a:.4} vs {b:.4} beyond statistical tolerance"
            );
        }
    }

    #[test]
    fn epoch_mode_counts_match_other_modes_without_crash() {
        let p = small_problem();
        let a = no_crash_counts(&p, 600, McMode::Native);
        let b = no_crash_counts(&p, 600, McMode::Epoch { interval: 50 });
        assert_eq!(a, b);
    }

    #[test]
    fn epoch_recovery_is_exact_even_under_heavy_eviction() {
        // Tiny heterogeneous caches: counter lines are evicted at
        // arbitrary times between flushes — the scenario where Selective
        // replay double-counts. Epoch recovery must stay exact.
        let p = small_problem();
        let lookups = 3_000u64;
        let want = no_crash_counts(&p, lookups, McMode::Native);
        let cfg = adcc_sim::system::SystemConfig::heterogeneous(
            4 << 10,
            16 << 10,
            (p.grid_bytes() + (1 << 20)).next_power_of_two(),
        );
        for crash_at in [500u64, 1_500, 2_900] {
            let mut sys = MemorySystem::new(cfg.clone());
            let mc = McSim::setup(
                &mut sys,
                p.clone(),
                lookups,
                42,
                McMode::Epoch { interval: 100 },
            );
            let trig = CrashTrigger::AtSite {
                site: CrashSite::new(sites::PH_LOOKUP, crash_at),
                occurrence: 1,
            };
            let mut emu = CrashEmulator::from_system(sys, trig);
            let image = mc.run(&mut emu, 0, lookups).crashed().unwrap();
            let rec = mc.recover_and_resume(&image, cfg.clone(), crash_at + 1);
            assert_eq!(
                rec.counts, want,
                "epoch recovery must be exact (crash at {crash_at})"
            );
        }
    }

    #[test]
    fn basic_idea_recovery_skews_results() {
        let p = small_problem();
        let lookups = 2_000u64;
        let want = no_crash_counts(&p, lookups, McMode::Native);

        let c = cfg(&p);
        let mut sys = MemorySystem::new(c.clone());
        let mc = McSim::setup(&mut sys, p.clone(), lookups, 42, McMode::Basic);
        let crash_at = 900u64;
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LOOKUP, crash_at),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = mc.run(&mut emu, 0, lookups).crashed().unwrap();
        let rec = mc.recover_and_resume(&image, c, crash_at + 1);
        // The counter increments stranded in cache are lost: totals fall
        // short of the no-crash run.
        let total: u64 = rec.counts.iter().sum();
        let want_total: u64 = want.iter().sum();
        assert!(
            total < want_total,
            "basic idea should lose counts: {total} vs {want_total}"
        );
    }
}
