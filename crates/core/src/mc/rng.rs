//! Counter-based random sampling.
//!
//! The paper's methodology requires that a restarted run sees "the same
//! randomly sampled inputs" per lookup. A counter-based generator makes
//! the sample for lookup `i` a pure function of `(seed, i)`, so replaying
//! from any iteration reproduces the exact original inputs — no RNG state
//! needs to survive the crash.

/// SplitMix64 finalizer: a high-quality 64-bit mix.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The sample for `(seed, counter, stream)`.
#[inline]
pub fn sample(seed: u64, counter: u64, stream: u64) -> u64 {
    mix64(seed ^ mix64(counter.wrapping_add(stream.wrapping_mul(0xa076_1d64_78bd_642f))))
}

/// Map 64 random bits to a double in [0, 1).
#[inline]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in [0, n) from 64 random bits (n small; modulo bias is
/// negligible for the n used here).
#[inline]
pub fn bounded(bits: u64, n: usize) -> usize {
    (bits % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_counter() {
        assert_eq!(sample(1, 2, 3), sample(1, 2, 3));
        assert_ne!(sample(1, 2, 3), sample(1, 3, 3));
        assert_ne!(sample(1, 2, 3), sample(2, 2, 3));
        assert_ne!(sample(1, 2, 3), sample(1, 2, 4));
    }

    #[test]
    fn unit_range() {
        for i in 0..10_000u64 {
            let u = unit_f64(sample(42, i, 0));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut buckets = [0u32; 10];
        let n = 100_000u64;
        for i in 0..n {
            let u = unit_f64(sample(7, i, 1));
            buckets[(u * 10.0) as usize] += 1;
        }
        for b in buckets {
            let expect = n as f64 / 10.0;
            assert!(
                (b as f64 - expect).abs() < 0.05 * expect,
                "bucket off: {b} vs {expect}"
            );
        }
    }
}
