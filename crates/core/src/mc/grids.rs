//! XSBench-like nuclide/energy grids and materials.
//!
//! The Hoogenboom–Martin reactor model drives XSBench's defaults: 12
//! materials, fuel containing 34 nuclides, large read-only energy/cross-
//! section grids. We reproduce the structure at configurable scale: each
//! nuclide has a sorted energy grid of `grid_points` entries with 5
//! cross-section values per point; a lookup binary-searches the grid of
//! every nuclide in the sampled material and interpolates.

use adcc_sim::parray::PArray;
use adcc_sim::system::MemorySystem;

use super::rng::{mix64, unit_f64};
use super::XS_CHANNELS;

/// Host-side description of the MC problem.
#[derive(Debug, Clone)]
pub struct McProblem {
    pub n_nuclides: usize,
    pub grid_points: usize,
    /// Per-material nuclide lists; material 0 is fuel (the largest).
    pub materials: Vec<Vec<u16>>,
    /// Cumulative material-selection distribution.
    pub mat_cdf: Vec<f64>,
    /// Sorted energies, nuclide-major: `energy[nuc * grid_points + g]`.
    pub energy: Vec<f64>,
    /// Cross sections: `xs[(nuc * grid_points + g) * 5 + c]`.
    pub xs: Vec<f64>,
}

/// XSBench's material-selection probabilities (H-M model, `pick_mat`).
const MAT_PROBS: [f64; 12] = [
    0.140, 0.052, 0.275, 0.134, 0.154, 0.064, 0.066, 0.055, 0.008, 0.015, 0.025, 0.013,
];

/// XSBench's H-M-small per-material nuclide counts (fuel first).
const MAT_NUCLIDES: [usize; 12] = [34, 5, 4, 4, 27, 21, 21, 21, 21, 21, 9, 9];

impl McProblem {
    /// Generate a deterministic problem. `n_nuclides` should be at least
    /// 34 + 34 = 68 (fuel nuclides are `0..34`, others drawn from the
    /// rest, as in the paper's "34 fuel nuclides in a Hoogenboom-Martin
    /// reactor model").
    pub fn generate(n_nuclides: usize, grid_points: usize, seed: u64) -> Self {
        assert!(n_nuclides >= 35, "need at least 35 nuclides");
        assert!(grid_points >= 2);
        // Materials: fuel gets nuclides 0..34; the rest sample from the
        // full range deterministically.
        let mut materials = Vec::with_capacity(12);
        materials.push((0u16..34).collect::<Vec<u16>>());
        for (m, &count) in MAT_NUCLIDES.iter().enumerate().skip(1) {
            let mut list = Vec::with_capacity(count);
            let mut x = mix64(seed ^ (m as u64) << 32);
            for _ in 0..count {
                x = mix64(x);
                list.push((x % n_nuclides as u64) as u16);
            }
            list.sort_unstable();
            list.dedup();
            materials.push(list);
        }
        let total: f64 = MAT_PROBS.iter().sum();
        let mut acc = 0.0;
        let mat_cdf = MAT_PROBS
            .iter()
            .map(|p| {
                acc += p / total;
                acc
            })
            .collect();

        // Energy grids: sorted uniform-with-jitter in (0, 1); cross
        // sections positive in (0.1, 1.1).
        let mut energy = Vec::with_capacity(n_nuclides * grid_points);
        let mut xs = Vec::with_capacity(n_nuclides * grid_points * XS_CHANNELS);
        for nuc in 0..n_nuclides as u64 {
            for g in 0..grid_points as u64 {
                let jitter = unit_f64(mix64(seed ^ (nuc << 32) ^ g));
                let e = (g as f64 + jitter) / grid_points as f64;
                energy.push(e);
                for c in 0..XS_CHANNELS as u64 {
                    let v = 0.1 + unit_f64(mix64(seed ^ (nuc << 40) ^ (g << 8) ^ c));
                    xs.push(v);
                }
            }
        }
        McProblem {
            n_nuclides,
            grid_points,
            materials,
            mat_cdf,
            energy,
            xs,
        }
    }

    /// Select a material from a unit sample.
    pub fn pick_material(&self, u: f64) -> usize {
        self.mat_cdf
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.mat_cdf.len() - 1)
    }

    /// Grid bytes (for sizing the simulated NVM).
    pub fn grid_bytes(&self) -> usize {
        (self.energy.len() + self.xs.len()) * 8
    }
}

/// The grids resident in simulated NVM (read-only at run time).
#[derive(Clone, Copy)]
pub struct SimMcGrids {
    pub energy: PArray<f64>,
    pub xs: PArray<f64>,
    pub n_nuclides: usize,
    pub grid_points: usize,
}

impl SimMcGrids {
    /// Seed the problem's grids into NVM (uncharged input state).
    pub fn seed_from(sys: &mut MemorySystem, p: &McProblem) -> Self {
        let energy = PArray::<f64>::alloc_nvm(sys, p.energy.len());
        let xs = PArray::<f64>::alloc_nvm(sys, p.xs.len());
        energy.seed_slice(sys, &p.energy);
        xs.seed_slice(sys, &p.xs);
        SimMcGrids {
            energy,
            xs,
            n_nuclides: p.n_nuclides,
            grid_points: p.grid_points,
        }
    }

    /// Binary search nuclide `nuc`'s energy grid for the last index with
    /// `energy[idx] <= e` (clamped to `grid_points - 2` so idx+1 is
    /// valid). Charged reads + integer ops.
    pub fn search(&self, sys: &mut MemorySystem, nuc: usize, e: f64) -> usize {
        let base = nuc * self.grid_points;
        let mut lo = 0usize;
        let mut hi = self.grid_points - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            let v = self.energy.get(sys, base + mid);
            if v <= e {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo.min(self.grid_points - 2)
    }

    /// Interpolate the five cross sections of nuclide `nuc` at energy `e`
    /// between grid points `g` and `g+1`. Charged.
    pub fn interpolate(
        &self,
        sys: &mut MemorySystem,
        nuc: usize,
        g: usize,
        e: f64,
    ) -> [f64; XS_CHANNELS] {
        let base = nuc * self.grid_points;
        let e0 = self.energy.get(sys, base + g);
        let e1 = self.energy.get(sys, base + g + 1);
        let f = if e1 > e0 { (e - e0) / (e1 - e0) } else { 0.0 };
        let f = f.clamp(0.0, 1.0);
        let mut out = [0.0; XS_CHANNELS];
        let row0 = (base + g) * XS_CHANNELS;
        let row1 = (base + g + 1) * XS_CHANNELS;
        for (c, o) in out.iter_mut().enumerate() {
            let lo = self.xs.get(sys, row0 + c);
            let hi = self.xs.get(sys, row1 + c);
            *o = lo + f * (hi - lo);
        }
        sys.charge_flops(3 + 3 * XS_CHANNELS as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::system::SystemConfig;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let p = McProblem::generate(40, 64, 1);
        let q = McProblem::generate(40, 64, 1);
        assert_eq!(p.energy, q.energy);
        assert_eq!(p.materials.len(), 12);
        assert_eq!(p.materials[0].len(), 34);
        assert_eq!(p.energy.len(), 40 * 64);
        assert_eq!(p.xs.len(), 40 * 64 * 5);
    }

    #[test]
    fn energy_grids_are_sorted_per_nuclide() {
        let p = McProblem::generate(36, 128, 2);
        for nuc in 0..p.n_nuclides {
            let g = &p.energy[nuc * 128..(nuc + 1) * 128];
            assert!(g.windows(2).all(|w| w[0] <= w[1]), "nuclide {nuc} unsorted");
        }
    }

    #[test]
    fn material_cdf_covers_unit_interval() {
        let p = McProblem::generate(36, 16, 3);
        assert!((p.mat_cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(p.pick_material(0.0), 0);
        assert_eq!(p.pick_material(1.0), 11);
    }

    #[test]
    fn search_brackets_energy() {
        let p = McProblem::generate(36, 256, 4);
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(
            32 << 10,
            (p.grid_bytes() + (1 << 20)).next_power_of_two(),
        ));
        let g = SimMcGrids::seed_from(&mut sys, &p);
        for &e in &[0.001, 0.25, 0.5, 0.75, 0.999] {
            for nuc in [0usize, 17, 35] {
                let idx = g.search(&mut sys, nuc, e);
                let base = nuc * 256;
                let lo = p.energy[base + idx];
                let hi = p.energy[base + idx + 1];
                // e is inside or clamped to an end bracket.
                assert!(
                    (lo <= e && e <= hi) || idx == 0 || idx == 254,
                    "nuc {nuc} e {e}: [{lo}, {hi}] idx {idx}"
                );
            }
        }
    }

    #[test]
    fn interpolation_is_convex() {
        let p = McProblem::generate(36, 64, 5);
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(32 << 10, 8 << 20));
        let g = SimMcGrids::seed_from(&mut sys, &p);
        let e = 0.4;
        let idx = g.search(&mut sys, 3, e);
        let out = g.interpolate(&mut sys, 3, idx, e);
        for (c, v) in out.iter().enumerate() {
            let lo = p.xs[(3 * 64 + idx) * 5 + c];
            let hi = p.xs[(3 * 64 + idx + 1) * 5 + c];
            let (mn, mx) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            assert!(*v >= mn - 1e-12 && *v <= mx + 1e-12);
        }
    }
}
