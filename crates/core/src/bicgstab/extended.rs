//! Extended BiCGSTAB: histories on `x, r, p`, one flushed scalar line per
//! iteration, and two-invariant recovery.

use adcc_linalg::csr::CsrMatrix;
use adcc_linalg::simops::{self, SimCsr};
use adcc_sim::clock::SimTime;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PArray, PMatrix, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::sites;
use crate::traits::{DirtyRestart, RecoveryReport};

/// Relative tolerance for the residual identity, scaled by ‖b‖.
const TOL_RESID: f64 = 1e-6;
/// Relative tolerance for the direction recurrence, scaled by the
/// recomputed direction's norm.
const TOL_DIR: f64 = 1e-6;

/// Scalar-history row layout: `[alpha, omega, beta, rho_next]`.
const SCALARS: usize = 4;

/// What recovery did, plus the iterate it produced.
#[derive(Debug, Clone)]
pub struct BiRecovery {
    /// The completed iteration accepted as the restart point
    /// (`None` = restart from the initial state).
    pub restart_from: Option<usize>,
    /// Report in the paper's units.
    pub report: RecoveryReport,
    /// The recovered iterate after all `iters` iterations.
    pub solution: Vec<f64>,
}

/// Extended BiCGSTAB state over simulated NVM.
pub struct ExtendedBiCgStab {
    pub a: SimCsr,
    pub b: PArray<f64>,
    /// `x[i]`, `r[i]`, `p[i]` enter iteration `i` (row `i % window`).
    pub x: PMatrix<f64>,
    pub r: PMatrix<f64>,
    pub p: PMatrix<f64>,
    /// Per-iteration scalars, flushed when the iteration completes
    /// (row `i` = `[alpha_i, omega_i, beta_i, rho_{i+1}]`).
    pub scalars: PMatrix<f64>,
    /// Flushed iteration counter.
    pub iter_cell: PScalar<u64>,
    /// Volatile scratch: `v`, `s`, `t`.
    v: PArray<f64>,
    s: PArray<f64>,
    t: PArray<f64>,
    pub n: usize,
    pub iters: usize,
    /// History rows; iteration `i` lives in row `i % window`.
    pub window: usize,
}

impl ExtendedBiCgStab {
    /// Full-history setup. `r̂ = b` and `x(0) = 0`, so `p(0) = r(0) = b`.
    pub fn setup(sys: &mut MemorySystem, a_host: &CsrMatrix, b_host: &[f64], iters: usize) -> Self {
        Self::setup_windowed(sys, a_host, b_host, iters, iters + 1)
    }

    /// Bounded-history setup (`window >= 3`).
    pub fn setup_windowed(
        sys: &mut MemorySystem,
        a_host: &CsrMatrix,
        b_host: &[f64],
        iters: usize,
        window: usize,
    ) -> Self {
        let n = a_host.n();
        assert_eq!(b_host.len(), n);
        assert!(window >= 3, "window must hold at least 3 iterations");
        let window = window.min(iters + 1);
        let a = SimCsr::seed_from(sys, a_host);
        let b = PArray::<f64>::alloc_nvm(sys, n);
        b.seed_slice(sys, b_host);
        let x = PMatrix::<f64>::alloc_nvm(sys, window, n);
        let r = PMatrix::<f64>::alloc_nvm(sys, window, n);
        let p = PMatrix::<f64>::alloc_nvm(sys, window, n);
        r.row(0).seed_slice(sys, b_host);
        p.row(0).seed_slice(sys, b_host);
        // The scalar history is small (32 B/iteration); keep it full-length
        // so flushed scalars are never overwritten.
        let scalars = PMatrix::<f64>::alloc_nvm(sys, iters + 1, SCALARS);
        let iter_cell = PScalar::<u64>::alloc_nvm(sys);
        let v = PArray::<f64>::alloc_dram(sys, n);
        let s = PArray::<f64>::alloc_dram(sys, n);
        let t = PArray::<f64>::alloc_dram(sys, n);
        ExtendedBiCgStab {
            a,
            b,
            x,
            r,
            p,
            scalars,
            iter_cell,
            v,
            s,
            t,
            n,
            iters,
            window,
        }
    }

    #[inline]
    fn x_row(&self, i: usize) -> PArray<f64> {
        self.x.row(i % self.window)
    }
    #[inline]
    fn r_row(&self, i: usize) -> PArray<f64> {
        self.r.row(i % self.window)
    }
    #[inline]
    fn p_row(&self, i: usize) -> PArray<f64> {
        self.p.row(i % self.window)
    }

    /// Run iterations `[from, to)`; `rho` must be `r(from) · r̂`.
    pub fn run(
        &self,
        emu: &mut CrashEmulator,
        from: usize,
        to: usize,
        rho_in: f64,
    ) -> RunOutcome<f64> {
        let mut rho = rho_in;
        for i in from..to.min(self.iters) {
            self.iter_cell.set(emu, i as u64);
            self.iter_cell.persist(emu);
            emu.sfence();

            let x_i = self.x_row(i);
            let r_i = self.r_row(i);
            let p_i = self.p_row(i);
            let x_next = self.x_row(i + 1);
            let r_next = self.r_row(i + 1);
            let p_next = self.p_row(i + 1);

            self.a.spmv(emu, p_i, self.v);
            let alpha = rho / simops::dot(emu, self.v, self.b);
            // s = r - alpha v
            simops::xpby(emu, r_i, -alpha, self.v, self.s);
            self.a.spmv(emu, self.s, self.t);
            let omega = simops::dot(emu, self.t, self.s) / simops::dot(emu, self.t, self.t);
            // x(i+1) = x + alpha p + omega s
            for j in 0..self.n {
                let val = x_i.get(emu, j) + alpha * p_i.get(emu, j) + omega * self.s.get(emu, j);
                x_next.set(emu, j, val);
            }
            emu.charge_flops(4 * self.n as u64);
            // r(i+1) = s - omega t
            simops::xpby(emu, self.s, -omega, self.t, r_next);
            if emu.poll(CrashSite::new(sites::PH_AFTER_XR, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
            let rho_new = simops::dot(emu, r_next, self.b);
            let beta = (rho_new / rho) * (alpha / omega);
            // p(i+1) = r(i+1) + beta (p - omega v)
            for j in 0..self.n {
                let val =
                    r_next.get(emu, j) + beta * (p_i.get(emu, j) - omega * self.v.get(emu, j));
                p_next.set(emu, j, val);
            }
            emu.charge_flops(4 * self.n as u64);

            // Publish this iteration's scalars and flush their line — the
            // only extra persistence beyond the counter.
            self.scalars.set(emu, i, 0, alpha);
            self.scalars.set(emu, i, 1, omega);
            self.scalars.set(emu, i, 2, beta);
            self.scalars.set(emu, i, 3, rho_new);
            emu.persist_range(self.scalars.addr(i, 0), SCALARS * 8);
            emu.sfence();

            rho = rho_new;
            if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        RunOutcome::Completed(rho)
    }

    /// Uncharged extraction of the iterate after iteration `iters`.
    pub fn peek_solution(&self, sys: &MemorySystem) -> Vec<f64> {
        let last = self.x_row(self.iters);
        (0..self.n).map(|j| last.peek(sys, j)).collect()
    }

    /// Candidate check, invariant 1: `‖r(j+1) − (b − A·x(j+1))‖ <= tol‖b‖`.
    fn check_residual(&self, sys: &mut MemorySystem, j: usize, norm_b: f64) -> bool {
        self.a.spmv(sys, self.x_row(j + 1), self.v);
        let r_next = self.r_row(j + 1);
        let mut err2 = 0.0f64;
        let mut norm_r2 = 0.0f64;
        for k in 0..self.n {
            let want = self.b.get(sys, k) - self.v.get(sys, k);
            let got = r_next.get(sys, k);
            err2 += (want - got) * (want - got);
            norm_r2 += got * got;
        }
        sys.charge_flops(5 * self.n as u64);
        // Degenerate all-zero rows (never written) only pass if x solves
        // the system exactly, which the norm guard below rejects.
        err2.is_finite() && norm_r2 > 0.0 && err2.sqrt() <= TOL_RESID * norm_b
    }

    /// Candidate check, invariant 2: the direction recurrence
    /// `p(j+1) = r(j+1) + β_j (p(j) − ω_j v(j))` with `v(j) = A·p(j)`
    /// recomputed and `(β_j, ω_j)` from the flushed scalar line.
    fn check_direction(&self, sys: &mut MemorySystem, j: usize) -> bool {
        let omega = self.scalars.get(sys, j, 1);
        let beta = self.scalars.get(sys, j, 2);
        if !(omega.is_finite() && beta.is_finite()) || (omega == 0.0 && beta == 0.0) {
            return false;
        }
        self.a.spmv(sys, self.p_row(j), self.v);
        let r_next = self.r_row(j + 1);
        let p_j = self.p_row(j);
        let p_next = self.p_row(j + 1);
        let mut err2 = 0.0f64;
        let mut ref2 = 0.0f64;
        for k in 0..self.n {
            let want = r_next.get(sys, k) + beta * (p_j.get(sys, k) - omega * self.v.get(sys, k));
            let got = p_next.get(sys, k);
            err2 += (want - got) * (want - got);
            ref2 += want * want;
        }
        sys.charge_flops(8 * self.n as u64);
        err2.is_finite() && ref2 > 0.0 && err2.sqrt() <= TOL_DIR * ref2.sqrt()
    }

    /// Backwards scan for the newest iteration whose `(x, r, p)` triple in
    /// NVM satisfies both invariants.
    pub fn detect_restart(&self, sys: &mut MemorySystem) -> Option<usize> {
        let crashed = self.iter_cell.get(sys) as usize;
        let norm_b = simops::dot(sys, self.b, self.b).sqrt();
        let hi = crashed.min(self.iters - 1);
        let lo = (crashed + 1).saturating_sub(self.window.saturating_sub(1));
        (lo..=hi)
            .rev()
            .find(|&j| self.check_residual(sys, j, norm_b) && self.check_direction(sys, j))
    }

    /// Full recovery: detect, rebuild the initial state if needed, resume
    /// to the crashed iteration, then run to completion.
    pub fn recover_and_resume(&self, image: &NvmImage, cfg: SystemConfig) -> BiRecovery {
        let mut sys = MemorySystem::from_image(cfg, image);
        let crashed = self.iter_cell.get(&mut sys) as usize;

        let t0 = sys.now();
        let restart_from = self.detect_restart(&mut sys);
        let t1 = sys.now();

        let (resume_at, rho) = match restart_from {
            Some(j) => {
                let rho = self.scalars.get(&mut sys, j, 3);
                (j + 1, rho)
            }
            None => {
                // Rebuild x(0) = 0, r(0) = p(0) = b.
                let x0 = self.x_row(0);
                let r0 = self.r_row(0);
                let p0 = self.p_row(0);
                for k in 0..self.n {
                    let bv = self.b.get(&mut sys, k);
                    x0.set(&mut sys, k, 0.0);
                    r0.set(&mut sys, k, bv);
                    p0.set(&mut sys, k, bv);
                }
                let rho = simops::dot(&mut sys, self.b, self.b);
                (0, rho)
            }
        };

        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let back_at_crash = (crashed + 1).min(self.iters).max(resume_at);
        let rho = self
            .run(&mut emu, resume_at, back_at_crash, rho)
            .completed()
            .expect("trigger is Never");
        let t2 = emu.now();
        self.run(&mut emu, back_at_crash, self.iters, rho)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();

        BiRecovery {
            restart_from,
            report: RecoveryReport {
                detect_time: t1 - t0,
                resume_time: t2 - t1,
                lost_units: (crashed + 1 - resume_at) as u64,
                restart_unit: resume_at as u64,
            },
            solution: self.peek_solution(&sys),
        }
    }

    /// EasyCrash-style dirty restart: reboot from the raw image, trust the
    /// surviving `iter_cell` verbatim (no invariant scan), recompute
    /// `rho = r(c)·r̂` from whatever residual row survived, and run the
    /// remaining iterations.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let c = self.iter_cell.get(&mut sys) as usize;
        if c >= self.iters {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        // r̂ = b throughout, so the entering rho is r(c)ᵀ b.
        let rho = simops::dot(&mut sys, self.r_row(c), self.b);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        self.run(&mut emu, c, self.iters, rho)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();
        DirtyRestart {
            solution: Some(self.peek_solution(&sys)),
            extra_units: (self.iters - c) as u64,
            sim_time_ps: (sys.now() - t0).ps(),
        }
    }

    /// Average per-iteration simulated time of a crash-free run.
    pub fn timed_full_run(&self, sys: MemorySystem, rho0: f64) -> (MemorySystem, SimTime) {
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        self.run(&mut emu, 0, self.iters, rho0)
            .completed()
            .expect("trigger is Never");
        let per_iter = SimTime((emu.now() - t0).ps() / self.iters as u64);
        (emu.into_system(), per_iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::plain::bicgstab_host;
    use adcc_linalg::spd::CgClass;

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(32 << 10, 64 << 20)
    }

    fn problem() -> (CsrMatrix, Vec<f64>) {
        let class = CgClass::TEST;
        let a = class.matrix(95);
        let b = class.rhs(&a);
        (a, b)
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn extended_matches_host_reference() {
        let (a, b) = problem();
        let mut sys = MemorySystem::new(cfg());
        let bi = ExtendedBiCgStab::setup(&mut sys, &a, &b, 8);
        let rho0: f64 = b.iter().map(|v| v * v).sum();
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        bi.run(&mut emu, 0, 8, rho0).completed().unwrap();
        let got = bi.peek_solution(&emu);
        assert!(
            max_diff(&got, &bicgstab_host(&a, &b, 8)) < 1e-10,
            "sim diverged from host by {}",
            max_diff(&got, &bicgstab_host(&a, &b, 8))
        );
    }

    #[test]
    fn crash_and_recovery_reproduce_no_crash_solution() {
        let (a, b) = problem();
        let want = bicgstab_host(&a, &b, 10);
        let mut sys = MemorySystem::new(cfg());
        let bi = ExtendedBiCgStab::setup(&mut sys, &a, &b, 10);
        let rho0: f64 = b.iter().map(|v| v * v).sum();
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_ITER_END, 7),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = bi.run(&mut emu, 0, 10, rho0).crashed().expect("must crash");
        let rec = bi.recover_and_resume(&image, cfg());
        assert!(
            max_diff(&rec.solution, &want) < 1e-8,
            "recovered iterate diverged: {}",
            max_diff(&rec.solution, &want)
        );
        assert!(rec.report.lost_units >= 1);
    }

    #[test]
    fn small_cache_recovers_recent_iteration() {
        let (a, b) = problem();
        let tiny = SystemConfig::nvm_only(2 << 10, 64 << 20);
        let mut sys = MemorySystem::new(tiny.clone());
        let bi = ExtendedBiCgStab::setup(&mut sys, &a, &b, 10);
        let rho0: f64 = b.iter().map(|v| v * v).sum();
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_ITER_END, 7),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = bi.run(&mut emu, 0, 10, rho0).crashed().unwrap();
        let rec = bi.recover_and_resume(&image, tiny);
        assert!(rec.restart_from.is_some());
        assert!(rec.report.lost_units <= 3, "lost {}", rec.report.lost_units);
    }

    #[test]
    fn large_cache_restarts_from_scratch() {
        let (a, b) = problem();
        let want = bicgstab_host(&a, &b, 10);
        let big = SystemConfig::nvm_only(8 << 20, 64 << 20);
        let mut sys = MemorySystem::new(big.clone());
        let bi = ExtendedBiCgStab::setup(&mut sys, &a, &b, 10);
        let rho0: f64 = b.iter().map(|v| v * v).sum();
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_ITER_END, 7),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = bi.run(&mut emu, 0, 10, rho0).crashed().unwrap();
        let rec = bi.recover_and_resume(&image, big);
        assert_eq!(rec.restart_from, None);
        assert!(max_diff(&rec.solution, &want) < 1e-8);
    }

    #[test]
    fn direction_check_rejects_corrupt_p() {
        // Corrupt p[6] in NVM; candidates using it must be rejected.
        let (a, b) = problem();
        let mut sys = MemorySystem::new(cfg());
        let bi = ExtendedBiCgStab::setup(&mut sys, &a, &b, 8);
        let rho0: f64 = b.iter().map(|v| v * v).sum();
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        bi.run(&mut emu, 0, 8, rho0).completed().unwrap();
        let mut sys = emu.into_system();
        bi.x.array().persist_all(&mut sys);
        bi.r.array().persist_all(&mut sys);
        bi.p.array().persist_all(&mut sys);
        bi.iter_cell.set(&mut sys, 6);
        bi.iter_cell.persist(&mut sys);
        let p6 = bi.p_row(6);
        for k in 0..bi.n / 4 {
            p6.set(&mut sys, k, 1e20);
        }
        p6.persist_all(&mut sys);
        let image = sys.crash();
        let mut sys2 = MemorySystem::from_image(cfg(), &image);
        // j = 6 (pair p6/p7): p6 corrupt -> direction check fails.
        // j = 5 (pair p5/p6): p6 corrupt as p_next -> fails.
        // j = 4: intact.
        assert_eq!(bi.detect_restart(&mut sys2), Some(4));
    }

    #[test]
    fn flush_budget_is_two_lines_per_iteration() {
        let (a, b) = problem();
        let mut sys = MemorySystem::new(cfg());
        let bi = ExtendedBiCgStab::setup(&mut sys, &a, &b, 6);
        let rho0: f64 = b.iter().map(|v| v * v).sum();
        let before = sys.stats().clflushes;
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        bi.run(&mut emu, 0, 6, rho0).completed().unwrap();
        let flushes = emu.stats().clflushes - before;
        assert!(
            flushes <= 2 * 6,
            "BiCGSTAB must flush at most 2 lines per iteration, got {flushes} for 6 iters"
        );
    }
}
