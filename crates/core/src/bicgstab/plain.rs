//! Host-side BiCGSTAB reference (x0 = 0, r̂ = b), with the exact
//! arithmetic order the simulated implementation reproduces.

use adcc_linalg::csr::CsrMatrix;

/// Run `iters` BiCGSTAB iterations from `x0 = 0`; returns the iterate.
/// No convergence tricks (no early exit, no restarting) — the recovery
/// experiments need a fixed, deterministic iteration schedule.
pub fn bicgstab_host(a: &CsrMatrix, b: &[f64], iters: usize) -> Vec<f64> {
    let n = a.n();
    assert_eq!(b.len(), n);
    let r_hat = b.to_vec();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = b.to_vec();
    let mut v = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut rho: f64 = dot(&r, &r_hat);
    for _ in 0..iters {
        a.spmv(&p, &mut v);
        let alpha = rho / dot(&v, &r_hat);
        for j in 0..n {
            s[j] = r[j] - alpha * v[j];
        }
        a.spmv(&s, &mut t);
        let omega = dot(&t, &s) / dot(&t, &t);
        for j in 0..n {
            x[j] += alpha * p[j] + omega * s[j];
        }
        for j in 0..n {
            r[j] = s[j] - omega * t[j];
        }
        let rho_new = dot(&r, &r_hat);
        let beta = (rho_new / rho) * (alpha / omega);
        for j in 0..n {
            p[j] = r[j] + beta * (p[j] - omega * v[j]);
        }
        rho = rho_new;
    }
    x
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_linalg::spd::CgClass;

    #[test]
    fn bicgstab_converges_on_dominant_system() {
        let class = CgClass::TEST;
        let a = class.matrix(91);
        let b = class.rhs(&a);
        // Solution is the ones vector (b = A·1).
        let x = bicgstab_host(&a, &b, 30);
        let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "BiCGSTAB failed to converge, err={err}");
    }

    #[test]
    fn bicgstab_converges_faster_than_jacobi() {
        let class = CgClass::TEST;
        let a = class.matrix(92);
        let b = class.rhs(&a);
        let bi = bicgstab_host(&a, &b, 10);
        let jac = crate::jacobi::jacobi_host(&a, &b, 10);
        let err = |x: &[f64]| x.iter().map(|v| (v - 1.0f64).abs()).fold(0.0, f64::max);
        assert!(
            err(&bi) < err(&jac),
            "Krylov should beat stationary: {} vs {}",
            err(&bi),
            err(&jac)
        );
    }

    #[test]
    fn residual_identity_holds() {
        let class = CgClass::TEST;
        let a = class.matrix(93);
        let b = class.rhs(&a);
        let x = bicgstab_host(&a, &b, 6);
        // Recompute r from scratch and compare to b - A x (the identity
        // recovery relies on; here we just sanity-check magnitudes).
        let mut ax = vec![0.0; a.n()];
        a.spmv(&x, &mut ax);
        let resid: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, ai)| (bi - ai).powi(2))
            .sum::<f64>()
            .sqrt();
        let norm_b: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(resid < norm_b, "residual should have shrunk");
    }
}
