//! Algorithm-directed crash consistence for BiCGSTAB (an extension
//! beyond the paper; DESIGN.md §5a).
//!
//! CG's invariants rely on symmetry (A-conjugacy of search directions).
//! BiCGSTAB is the workhorse for *nonsymmetric* systems, and it shows the
//! paper's recipe surviving a harder invariant landscape:
//!
//! * the **residual identity** `r(i+1) = b − A·x(i+1)` still holds and is
//!   still one SpMV to check; but
//! * the search direction `p(i+1) = r(i+1) + β_i (p(i) − ω_i v(i))` has no
//!   orthogonality shortcut — verifying it needs the iteration's scalars
//!   `(α_i, ω_i, β_i)`.
//!
//! The fix is in the paper's own currency: the three scalars fit in one
//! cache line, so the runtime extension flushes **one scalar line per
//! iteration** (plus the iteration counter), and recovery recomputes
//! `v(i) = A·p(i)` to check the direction recurrence. Two SpMVs per
//! candidate instead of CG's one — still O(recovery), never O(runtime).

pub mod extended;
pub mod plain;

pub use extended::{BiRecovery, ExtendedBiCgStab};
pub use plain::bicgstab_host;

/// Crash-site phases for BiCGSTAB (see [`adcc_sim::crash::CrashSite`]).
pub mod sites {
    /// After the `x`/`r` updates of one iteration.
    pub const PH_AFTER_XR: u32 = 60;
    /// End of one main-loop iteration (after the `p` update).
    pub const PH_ITER_END: u32 = 61;
}
