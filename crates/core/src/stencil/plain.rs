//! Plain heat stencil: host reference and simulated ping-pong baseline.

use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PMatrix, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::{initial_value, ALPHA};
use crate::traits::DirtyRestart;

/// Host-side reference: `sweeps` explicit 5-point sweeps of the heat
/// equation on a `rows × cols` grid with fixed boundary. Returns the final
/// grid row-major.
pub fn heat_host(rows: usize, cols: usize, sweeps: usize) -> Vec<f64> {
    let mut cur = vec![0.0f64; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            cur[r * cols + c] = initial_value(rows, cols, r, c);
        }
    }
    let mut next = cur.clone();
    for _ in 0..sweeps {
        for r in 1..rows - 1 {
            for c in 1..cols - 1 {
                let i = r * cols + c;
                let v = cur[i]
                    + ALPHA
                        * (cur[i - cols] + cur[i + cols] + cur[i - 1] + cur[i + 1] - 4.0 * cur[i]);
                next[i] = v;
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Plain ping-pong stencil in simulated NVM (two buffers, overwritten in
/// alternation) — the application under the baseline mechanisms.
pub struct PlainStencil {
    pub bufs: [PMatrix<f64>; 2],
    /// Persistent sweep counter for checkpoint/PMEM variants.
    pub sweep_cell: PScalar<u64>,
    pub rows: usize,
    pub cols: usize,
    pub sweeps: usize,
}

impl PlainStencil {
    /// Seed both buffers with the initial condition (uncharged input
    /// state; the boundary never changes afterwards).
    pub fn setup(sys: &mut MemorySystem, rows: usize, cols: usize, sweeps: usize) -> Self {
        assert!(
            rows >= 3 && cols >= 3,
            "grid too small for a 5-point stencil"
        );
        let bufs = [
            PMatrix::<f64>::alloc_nvm(sys, rows, cols),
            PMatrix::<f64>::alloc_nvm(sys, rows, cols),
        ];
        let mut row = vec![0.0f64; cols];
        for b in &bufs {
            for r in 0..rows {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = initial_value(rows, cols, r, c);
                }
                b.row(r).seed_slice(sys, &row);
            }
        }
        let sweep_cell = PScalar::<u64>::alloc_nvm(sys);
        PlainStencil {
            bufs,
            sweep_cell,
            rows,
            cols,
            sweeps,
        }
    }

    /// One sweep: read `bufs[t % 2]`, write `bufs[(t + 1) % 2]`.
    pub fn sweep(&self, sys: &mut MemorySystem, t: usize) {
        let src = self.bufs[t % 2];
        let dst = self.bufs[(t + 1) % 2];
        for r in 1..self.rows - 1 {
            for c in 1..self.cols - 1 {
                let v = src.get(sys, r, c)
                    + ALPHA
                        * (src.get(sys, r - 1, c)
                            + src.get(sys, r + 1, c)
                            + src.get(sys, r, c - 1)
                            + src.get(sys, r, c + 1)
                            - 4.0 * src.get(sys, r, c));
                dst.set(sys, r, c, v);
            }
        }
        sys.charge_flops(6 * ((self.rows - 2) * (self.cols - 2)) as u64);
    }

    /// The checkpointable critical regions (both buffers + the counter;
    /// the ping-pong overwrite makes anything less unsafe).
    pub fn ckpt_regions(&self) -> Vec<(u64, usize)> {
        vec![
            (self.bufs[0].array().base(), self.bufs[0].array().byte_len()),
            (self.bufs[1].array().base(), self.bufs[1].array().byte_len()),
            (self.sweep_cell.addr(), 8),
        ]
    }

    /// Uncharged extraction of the grid after `t` completed sweeps.
    pub fn peek_grid(&self, sys: &MemorySystem, t: usize) -> Vec<f64> {
        let b = self.bufs[t % 2];
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(b.peek(sys, r, c));
            }
        }
        out
    }

    /// EasyCrash-style dirty restart: reboot from the raw image and finish
    /// the sweeps from the surviving `sweep_cell` on whatever mix of
    /// generations survived in the ping-pong buffers.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let c = self.sweep_cell.get(&mut sys) as usize;
        if c > self.sweeps {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        for t in c..self.sweeps {
            self.sweep(&mut sys, t);
        }
        DirtyRestart {
            solution: Some(self.peek_grid(&sys, self.sweeps)),
            extra_units: (self.sweeps - c) as u64,
            sim_time_ps: (sys.now() - t0).ps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::system::SystemConfig;

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn host_heat_diffuses_and_conserves_sanity() {
        let g0 = heat_host(16, 16, 0);
        let g = heat_host(16, 16, 50);
        // The bump spreads: the global max decreases.
        let max0 = g0.iter().cloned().fold(f64::MIN, f64::max);
        let max = g.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < max0, "diffusion must lower the peak: {max} vs {max0}");
        // Values stay within the initial range (maximum principle).
        let min0 = g0.iter().cloned().fold(f64::MAX, f64::min);
        for &v in &g {
            assert!(v >= min0 - 1e-12 && v <= max0 + 1e-12);
        }
    }

    #[test]
    fn boundary_stays_fixed() {
        let rows = 12;
        let cols = 10;
        let g = heat_host(rows, cols, 30);
        for r in 0..rows {
            assert_eq!(g[r * cols], initial_value(rows, cols, r, 0));
            assert_eq!(
                g[r * cols + cols - 1],
                initial_value(rows, cols, r, cols - 1)
            );
        }
        for c in 0..cols {
            assert_eq!(g[c], initial_value(rows, cols, 0, c));
            assert_eq!(
                g[(rows - 1) * cols + c],
                initial_value(rows, cols, rows - 1, c)
            );
        }
    }

    #[test]
    fn sim_stencil_matches_host() {
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(16 << 10, 16 << 20));
        let st = PlainStencil::setup(&mut sys, 12, 12, 8);
        for t in 0..8 {
            st.sweep(&mut sys, t);
        }
        let got = st.peek_grid(&sys, 8);
        let want = heat_host(12, 12, 8);
        assert!(max_diff(&got, &want) < 1e-12);
    }
}
