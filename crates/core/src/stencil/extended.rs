//! Extended stencil: generation ring + per-row-block tagged checksums,
//! with sweep-granular recovery.

use adcc_sim::clock::SimTime;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PMatrix, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::{initial_value, sites, ALPHA};
use crate::traits::{DirtyRestart, RecoveryReport};

/// How block sums are compared during recovery.
///
/// The scan reads the same stored values in the same order the sweep
/// accumulated them, so a consistent block reproduces its flushed sum
/// **bitwise** — [`VerifyMode::Exact`] guarantees the recovered run is
/// identical to a crash-free run.
///
/// [`VerifyMode::Tolerant`] deliberately trades that guarantee away: as
/// the diffusion converges, a generation with a few stale (one-window-old)
/// lines differs from the true one by less than the tolerance, and
/// accepting it restarts *closer to the crash* at the cost of a bounded,
/// self-damping perturbation — the same argument the paper makes for
/// Monte-Carlo ("the inconsistency data is an error" the algorithm
/// tolerates). Only sound for contractive iterations like diffusion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VerifyMode {
    /// Bitwise block-sum comparison (the default).
    Exact,
    /// Accept `|sum − flushed| <= tol · (1 + Σ|value|)`.
    Tolerant(f64),
}

/// What recovery did, plus the grid it produced.
#[derive(Debug, Clone)]
pub struct StencilRecovery {
    /// The completed sweep accepted as the restart point
    /// (`None` = restart from the initial condition).
    pub restart_from: Option<usize>,
    /// Report in the paper's units (sweeps lost, detect/resume split).
    pub report: RecoveryReport,
    /// The recovered final grid (row-major).
    pub solution: Vec<f64>,
}

/// Extended stencil state: a ring of sweep generations over simulated NVM.
pub struct ExtendedStencil {
    /// Generation ring; sweep `t` reads `bufs[t % window]` and writes
    /// `bufs[(t + 1) % window]`.
    pub bufs: Vec<PMatrix<f64>>,
    /// Read-only copy of the initial grid (for from-scratch restarts).
    pub g0: PMatrix<f64>,
    /// Per-slot checksum pairs: `cs[slot][2b] = sweep tag`,
    /// `cs[slot][2b + 1] = block sum`. Flushed per block during the sweep.
    pub cs: PMatrix<f64>,
    /// The one additional cache line flushed at every sweep start.
    pub sweep_cell: PScalar<u64>,
    pub rows: usize,
    pub cols: usize,
    pub sweeps: usize,
    /// Ring size (>= 3).
    pub window: usize,
    /// Rows per checksummed block.
    pub rb: usize,
    /// Recovery verification mode (see [`VerifyMode`]).
    pub verify: VerifyMode,
}

impl ExtendedStencil {
    /// Switch the recovery verification mode.
    pub fn with_verify(mut self, mode: VerifyMode) -> Self {
        self.verify = mode;
        self
    }
}

impl ExtendedStencil {
    /// Seed the ring (every generation starts as the initial condition, so
    /// boundaries are correct in all slots forever) — uncharged input
    /// state.
    pub fn setup(
        sys: &mut MemorySystem,
        rows: usize,
        cols: usize,
        sweeps: usize,
        window: usize,
        rb: usize,
    ) -> Self {
        assert!(
            rows >= 3 && cols >= 3,
            "grid too small for a 5-point stencil"
        );
        assert!(window >= 3, "ring must hold at least 3 generations");
        assert!(rb >= 1, "row block must be positive");
        let mut row = vec![0.0f64; cols];
        let mut seed_grid = |sys: &mut MemorySystem, m: &PMatrix<f64>| {
            for r in 0..rows {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = initial_value(rows, cols, r, c);
                }
                m.row(r).seed_slice(sys, &row);
            }
        };
        let bufs: Vec<PMatrix<f64>> = (0..window)
            .map(|_| PMatrix::<f64>::alloc_nvm(sys, rows, cols))
            .collect();
        for b in &bufs {
            seed_grid(sys, b);
        }
        let g0 = PMatrix::<f64>::alloc_nvm(sys, rows, cols);
        seed_grid(sys, &g0);
        let nblocks = (rows - 2).div_ceil(rb);
        let cs = PMatrix::<f64>::alloc_nvm(sys, window, 2 * nblocks);
        // Tag everything with an impossible sweep so nothing pre-verifies.
        for s in 0..window {
            for b in 0..nblocks {
                cs.set(sys, s, 2 * b, -1.0);
            }
        }
        cs.array().persist_all(sys);
        let sweep_cell = PScalar::<u64>::alloc_nvm(sys);
        ExtendedStencil {
            bufs,
            g0,
            cs,
            sweep_cell,
            rows,
            cols,
            sweeps,
            window,
            rb,
            verify: VerifyMode::Exact,
        }
    }

    /// Number of checksummed row blocks per sweep.
    pub fn blocks(&self) -> usize {
        (self.rows - 2).div_ceil(self.rb)
    }

    /// Interior-row range of block `b`.
    fn block_rows(&self, b: usize) -> std::ops::Range<usize> {
        let lo = 1 + b * self.rb;
        lo..(lo + self.rb).min(self.rows - 1)
    }

    /// Run sweeps `[from, to)`. Returns the crash image if the trigger
    /// fires.
    pub fn run(&self, emu: &mut CrashEmulator, from: usize, to: usize) -> RunOutcome<()> {
        for t in from..to.min(self.sweeps) {
            self.sweep_cell.set(emu, t as u64);
            self.sweep_cell.persist(emu);
            emu.sfence();

            let src = self.bufs[t % self.window];
            let dst = self.bufs[(t + 1) % self.window];
            let slot = (t + 1) % self.window;
            for b in 0..self.blocks() {
                let mut sum = 0.0f64;
                for r in self.block_rows(b) {
                    for c in 1..self.cols - 1 {
                        let v = src.get(emu, r, c)
                            + ALPHA
                                * (src.get(emu, r - 1, c)
                                    + src.get(emu, r + 1, c)
                                    + src.get(emu, r, c - 1)
                                    + src.get(emu, r, c + 1)
                                    - 4.0 * src.get(emu, r, c));
                        dst.set(emu, r, c, v);
                        sum += v;
                    }
                }
                let rows_in_block = self.block_rows(b).len();
                emu.charge_flops(7 * (rows_in_block * (self.cols - 2)) as u64);
                // Publish the block's (tag, sum) pair and flush just it.
                self.cs.set(emu, slot, 2 * b, t as f64);
                self.cs.set(emu, slot, 2 * b + 1, sum);
                emu.persist_range(self.cs.addr(slot, 2 * b), 16);
                if emu.poll(CrashSite::new(sites::PH_AFTER_BLOCK, b as u64)) {
                    return RunOutcome::Crashed(emu.crash_now());
                }
            }
            emu.sfence();
            if emu.poll(CrashSite::new(sites::PH_SWEEP_END, t as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        RunOutcome::Completed(())
    }

    /// Verify that sweep `s`'s output generation is complete and
    /// consistent in NVM: every block pair carries tag `s` and the block
    /// data reproduces the flushed sum (charged reads).
    pub fn verify_sweep(&self, sys: &mut MemorySystem, s: usize) -> bool {
        let slot = (s + 1) % self.window;
        let buf = self.bufs[slot];
        for b in 0..self.blocks() {
            let tag = self.cs.get(sys, slot, 2 * b);
            if tag != s as f64 {
                return false;
            }
            let want = self.cs.get(sys, slot, 2 * b + 1);
            let mut sum = 0.0f64;
            let mut scale = 1.0f64;
            for r in self.block_rows(b) {
                for c in 1..self.cols - 1 {
                    let v = buf.get(sys, r, c);
                    sum += v;
                    scale += v.abs();
                }
            }
            let rows_in_block = self.block_rows(b).len();
            sys.charge_flops(2 * (rows_in_block * (self.cols - 2)) as u64);
            if !sum.is_finite() {
                return false;
            }
            let ok = match self.verify {
                VerifyMode::Exact => sum.to_bits() == want.to_bits(),
                VerifyMode::Tolerant(tol) => (sum - want).abs() <= tol * scale,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Algorithm-directed restart detection: the newest sweep `s` whose
    /// output generation verifies. `None` = restart from the initial
    /// condition.
    pub fn detect_restart(&self, sys: &mut MemorySystem) -> Option<usize> {
        let crashed = self.sweep_cell.get(sys) as usize;
        let hi = crashed.min(self.sweeps - 1);
        // Ring constraint: sweep s's output slot is rewritten at sweep
        // s + window, so only the last window-1 generations can survive.
        let lo = (crashed + 1).saturating_sub(self.window - 1);
        (lo..=hi).rev().find(|&s| self.verify_sweep(sys, s))
    }

    /// Full recovery: detect, rebuild the initial generation if needed,
    /// resume to the crashed sweep, then run to completion.
    pub fn recover_and_resume(&self, image: &NvmImage, cfg: SystemConfig) -> StencilRecovery {
        let mut sys = MemorySystem::from_image(cfg, image);
        let crashed = self.sweep_cell.get(&mut sys) as usize;

        let t0 = sys.now();
        let restart_from = self.detect_restart(&mut sys);
        let t1 = sys.now();

        let resume_at = match restart_from {
            Some(s) => s + 1,
            None => {
                // Rebuild generation 0 from the read-only initial grid
                // (charged copy — part of the recovery bill).
                let b0 = self.bufs[0];
                for r in 0..self.rows {
                    for c in 0..self.cols {
                        let v = self.g0.get(&mut sys, r, c);
                        b0.set(&mut sys, r, c, v);
                    }
                }
                0
            }
        };

        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let back_at_crash = (crashed + 1).min(self.sweeps).max(resume_at);
        self.run(&mut emu, resume_at, back_at_crash)
            .completed()
            .expect("trigger is Never");
        let t2 = emu.now();
        self.run(&mut emu, back_at_crash, self.sweeps)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();

        StencilRecovery {
            restart_from,
            report: RecoveryReport {
                detect_time: t1 - t0,
                resume_time: t2 - t1,
                lost_units: (crashed + 1 - resume_at) as u64,
                restart_unit: resume_at as u64,
            },
            solution: self.peek_grid(&sys, self.sweeps),
        }
    }

    /// Uncharged extraction of the grid after `t` completed sweeps.
    pub fn peek_grid(&self, sys: &MemorySystem, t: usize) -> Vec<f64> {
        let b = self.bufs[t % self.window];
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(b.peek(sys, r, c));
            }
        }
        out
    }

    /// EasyCrash-style dirty restart: reboot from the raw image, trust the
    /// surviving `sweep_cell` verbatim (no checksum scan), and finish the
    /// sweeps on whatever ring contents survived.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let c = self.sweep_cell.get(&mut sys) as usize;
        if c >= self.sweeps {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        self.run(&mut emu, c, self.sweeps)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();
        DirtyRestart {
            solution: Some(self.peek_grid(&sys, self.sweeps)),
            extra_units: (self.sweeps - c) as u64,
            sim_time_ps: (sys.now() - t0).ps(),
        }
    }

    /// Average per-sweep simulated time of a crash-free run.
    pub fn timed_full_run(&self, sys: MemorySystem) -> (MemorySystem, SimTime) {
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        self.run(&mut emu, 0, self.sweeps)
            .completed()
            .expect("trigger is Never");
        let per_sweep = SimTime((emu.now() - t0).ps() / self.sweeps as u64);
        (emu.into_system(), per_sweep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::plain::heat_host;

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(8 << 10, 64 << 20)
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn extended_matches_host_reference() {
        let mut sys = MemorySystem::new(cfg());
        let st = ExtendedStencil::setup(&mut sys, 14, 14, 9, 3, 4);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        st.run(&mut emu, 0, 9).completed().unwrap();
        let got = st.peek_grid(&emu, 9);
        assert!(max_diff(&got, &heat_host(14, 14, 9)) < 1e-12);
    }

    #[test]
    fn completed_sweeps_verify_incomplete_do_not() {
        let mut sys = MemorySystem::new(cfg());
        let st = ExtendedStencil::setup(&mut sys, 14, 14, 8, 3, 4);
        // Crash after the second block of sweep 5.
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_BLOCK, 1),
            occurrence: 6, // blocks 0,1 of sweeps 0..4 = 10 polls; 6th of block-1 is sweep 5
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = st.run(&mut emu, 0, 8).crashed().expect("must crash");
        let mut sys2 = MemorySystem::from_image(cfg(), &image);
        assert!(
            !st.verify_sweep(&mut sys2, 5),
            "the in-flight sweep must not verify (some blocks carry old tags)"
        );
    }

    #[test]
    fn crash_and_recovery_reproduce_no_crash_grid() {
        let want = heat_host(14, 14, 10);
        let mut sys = MemorySystem::new(cfg());
        let st = ExtendedStencil::setup(&mut sys, 14, 14, 10, 3, 4);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_BLOCK, 1),
            occurrence: 7,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = st.run(&mut emu, 0, 10).crashed().expect("must crash");
        let rec = st.recover_and_resume(&image, cfg());
        assert!(
            max_diff(&rec.solution, &want) < 1e-12,
            "recovered grid diverged by {}",
            max_diff(&rec.solution, &want)
        );
        assert!(rec.report.lost_units >= 1);
    }

    #[test]
    fn small_cache_loses_one_sweep() {
        let tiny = SystemConfig::nvm_only(2 << 10, 64 << 20);
        let mut sys = MemorySystem::new(tiny.clone());
        let st = ExtendedStencil::setup(&mut sys, 18, 18, 10, 3, 4);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_SWEEP_END, 7),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = st.run(&mut emu, 0, 10).crashed().unwrap();
        let rec = st.recover_and_resume(&image, tiny);
        assert!(rec.restart_from.is_some());
        assert!(
            rec.report.lost_units <= 2,
            "a tiny cache should keep old generations consistent, lost {}",
            rec.report.lost_units
        );
        assert!(max_diff(&rec.solution, &heat_host(18, 18, 10)) < 1e-12);
    }

    #[test]
    fn huge_cache_restarts_from_scratch_correctly() {
        let big = SystemConfig::nvm_only(8 << 20, 64 << 20);
        let mut sys = MemorySystem::new(big.clone());
        let st = ExtendedStencil::setup(&mut sys, 14, 14, 9, 3, 4);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_SWEEP_END, 6),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = st.run(&mut emu, 0, 9).crashed().unwrap();
        let rec = st.recover_and_resume(&image, big);
        // Nothing was evicted, and the checksum pairs were persisted but
        // the payload was not: every candidate fails, scratch restart.
        assert_eq!(rec.restart_from, None);
        assert_eq!(rec.report.lost_units, 7);
        assert!(max_diff(&rec.solution, &heat_host(14, 14, 9)) < 1e-12);
    }

    #[test]
    fn stale_generation_with_old_tag_is_rejected() {
        // After `window` sweeps a slot holds data from two sweeps ago with
        // matching old checksums; the sweep TAG is what rejects it.
        let mut sys = MemorySystem::new(cfg());
        let st = ExtendedStencil::setup(&mut sys, 14, 14, 8, 3, 4);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        st.run(&mut emu, 0, 8).completed().unwrap();
        let mut sys = emu.into_system();
        // Persist everything: now every slot's payload is consistent with
        // its checksums in NVM — but only with its OWN sweep's tag.
        for b in &st.bufs {
            b.array().persist_all(&mut sys);
        }
        st.cs.array().persist_all(&mut sys);
        st.sweep_cell.set(&mut sys, 7);
        st.sweep_cell.persist(&mut sys);
        let image = sys.crash();
        let mut sys2 = MemorySystem::from_image(cfg(), &image);
        // Sweep 7 wrote slot 2; slot 2's tag is 7: verifies.
        assert!(st.verify_sweep(&mut sys2, 7));
        // Sweep 4 also wrote slot 2 (window 3) — same slot, old content
        // replaced: tag is 7, not 4, so 4 must NOT verify.
        assert!(!st.verify_sweep(&mut sys2, 4));
    }

    #[test]
    fn tolerant_mode_restarts_closer_with_bounded_perturbation() {
        // After many sweeps the diffusion has nearly converged; a crash
        // mid-sweep leaves the previous generation's tail lines dirty in
        // cache (stale in NVM by ~1e-9). Exact verification rejects it and
        // restarts further back; tolerant verification accepts it and the
        // perturbation self-damps.
        let want = heat_host(14, 14, 16);
        let run_with = |mode: VerifyMode| -> (Option<usize>, f64) {
            let mut sys = MemorySystem::new(cfg());
            let st = ExtendedStencil::setup(&mut sys, 14, 14, 16, 3, 4).with_verify(mode);
            let trig = CrashTrigger::AtSite {
                site: CrashSite::new(sites::PH_AFTER_BLOCK, 1),
                occurrence: 15, // mid-sweep 14
            };
            let mut emu = CrashEmulator::from_system(sys, trig);
            let image = st.run(&mut emu, 0, 16).crashed().expect("must crash");
            let rec = st.recover_and_resume(&image, cfg());
            let err = rec
                .solution
                .iter()
                .zip(&want)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            (rec.restart_from, err)
        };
        let (exact_from, exact_err) = run_with(VerifyMode::Exact);
        let (tol_from, tol_err) = run_with(VerifyMode::Tolerant(1e-6));
        assert_eq!(exact_err, 0.0, "exact mode must reproduce bitwise");
        assert!(tol_err < 1e-6, "tolerant perturbation must stay bounded");
        assert!(
            tol_from.unwrap_or(0) >= exact_from.unwrap_or(0),
            "tolerant mode must never restart further back than exact"
        );
    }

    #[test]
    fn flush_budget_is_per_block_not_per_grid() {
        let mut sys = MemorySystem::new(cfg());
        let st = ExtendedStencil::setup(&mut sys, 18, 18, 6, 3, 4);
        let before = sys.stats().clflushes;
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        st.run(&mut emu, 0, 6).completed().unwrap();
        let flushes = emu.stats().clflushes - before;
        // Per sweep: 1 counter line + <= blocks() pair flushes (1–2 lines
        // each); far below the grid's line count.
        let per_sweep = flushes / 6;
        let grid_lines = (st.rows * st.cols * 8).div_ceil(64) as u64;
        assert!(
            per_sweep <= 2 * st.blocks() as u64 + 2,
            "per-sweep flushes {per_sweep} exceed the sparse budget"
        );
        assert!(per_sweep < grid_lines);
    }
}
