//! Stencil under the baseline mechanisms: per-sweep checkpointing and
//! PMDK-style undo-log transactions.

use adcc_ckpt::manager::CkptManager;
use adcc_pmem::undo::UndoPool;
use adcc_sim::crash::{CrashEmulator, CrashSite, RunOutcome};

use super::plain::PlainStencil;
use super::sites;

/// Run the ping-pong stencil natively.
pub fn run_native(emu: &mut CrashEmulator, st: &PlainStencil) -> RunOutcome<()> {
    for t in 0..st.sweeps {
        st.sweep(emu, t);
        if emu.poll(CrashSite::new(sites::PH_SWEEP_END, t as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

/// Run with a full checkpoint (both buffers + counter) after every sweep.
pub fn run_with_ckpt(
    emu: &mut CrashEmulator,
    st: &PlainStencil,
    mgr: &mut CkptManager,
) -> RunOutcome<()> {
    for t in 0..st.sweeps {
        st.sweep(emu, t);
        st.sweep_cell.set(emu, (t + 1) as u64);
        mgr.checkpoint(emu);
        if emu.poll(CrashSite::new(sites::PH_SWEEP_END, t as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

/// Re-seed both ping-pong buffers from the initial condition (charged —
/// part of the recovery bill when no checkpoint exists yet).
pub fn reseed_initial(emu: &mut CrashEmulator, st: &PlainStencil) {
    for b in &st.bufs {
        for r in 0..st.rows {
            for c in 0..st.cols {
                b.set(emu, r, c, super::initial_value(st.rows, st.cols, r, c));
            }
        }
    }
}

/// Restore from the newest checkpoint, or re-seed the initial condition
/// when none exists yet. Returns `(completed_sweeps, restored)`.
pub fn ckpt_restore(
    emu: &mut CrashEmulator,
    st: &PlainStencil,
    mgr: &mut CkptManager,
) -> (usize, bool) {
    match mgr.restore(emu) {
        Some(_) => (st.sweep_cell.get(emu) as usize, true),
        None => {
            reseed_initial(emu, st);
            (0, false)
        }
    }
}

/// Restore from the newest checkpoint and resume. Returns the number of
/// sweeps re-executed.
pub fn ckpt_restore_and_resume(
    emu: &mut CrashEmulator,
    st: &PlainStencil,
    mgr: &mut CkptManager,
) -> u64 {
    let (start, _) = ckpt_restore(emu, st, mgr);
    let mut executed = 0u64;
    for t in start..st.sweeps {
        st.sweep(emu, t);
        executed += 1;
    }
    executed
}

/// Run with each sweep's destination buffer wrapped in an undo-log
/// transaction (the naive PMDK port).
pub fn run_with_pmem(
    emu: &mut CrashEmulator,
    st: &PlainStencil,
    pool: &mut UndoPool,
) -> RunOutcome<()> {
    for t in 0..st.sweeps {
        pool.tx_begin(emu);
        let dst = st.bufs[(t + 1) % 2];
        for r in 1..st.rows - 1 {
            pool.tx_add_range(emu, dst.addr(r, 1), (st.cols - 2) * 8);
        }
        pool.tx_add_range(emu, st.sweep_cell.addr(), 8);
        st.sweep(emu, t);
        st.sweep_cell.set(emu, (t + 1) as u64);
        pool.tx_commit(emu);
        if emu.poll(CrashSite::new(sites::PH_SWEEP_END, t as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::plain::heat_host;
    use adcc_sim::crash::CrashTrigger;
    use adcc_sim::system::{MemorySystem, SystemConfig};

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(16 << 10, 64 << 20)
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn ckpt_variant_matches_reference_without_crash() {
        let mut sys = MemorySystem::new(cfg());
        let st = PlainStencil::setup(&mut sys, 12, 12, 6);
        let mut mgr = CkptManager::new_nvm(&mut sys, st.ckpt_regions(), false);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        run_with_ckpt(&mut emu, &st, &mut mgr).completed().unwrap();
        assert!(max_diff(&st.peek_grid(&emu, 6), &heat_host(12, 12, 6)) < 1e-12);
    }

    #[test]
    fn ckpt_crash_restore_loses_at_most_one_sweep() {
        let mut sys = MemorySystem::new(cfg());
        let st = PlainStencil::setup(&mut sys, 12, 12, 9);
        let mut mgr = CkptManager::new_nvm(&mut sys, st.ckpt_regions(), false);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_SWEEP_END, 5),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_ckpt(&mut emu, &st, &mut mgr).crashed().unwrap();
        let sys2 = MemorySystem::from_image(cfg(), &image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let redone = ckpt_restore_and_resume(&mut emu2, &st, &mut mgr);
        assert_eq!(redone, 3, "restored at sweep 6, reruns 6..9");
        assert!(max_diff(&st.peek_grid(&emu2, 9), &heat_host(12, 12, 9)) < 1e-12);
    }

    #[test]
    fn pmem_variant_matches_reference_and_costs_more() {
        let mut sys = MemorySystem::new(cfg());
        let st = PlainStencil::setup(&mut sys, 12, 12, 5);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        run_native(&mut emu, &st).completed().unwrap();
        let native_time = (emu.now() - t0).ps();

        let mut sys = MemorySystem::new(cfg());
        let st = PlainStencil::setup(&mut sys, 12, 12, 5);
        let lines = 12 * 12 / 8 + 32;
        let mut pool = UndoPool::new(&mut sys, lines);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        run_with_pmem(&mut emu, &st, &mut pool).completed().unwrap();
        let pmem_time = (emu.now() - t0).ps();

        assert!(max_diff(&st.peek_grid(&emu, 5), &heat_host(12, 12, 5)) < 1e-12);
        assert!(
            pmem_time > native_time,
            "undo logging must cost more: {pmem_time} vs {native_time}"
        );
    }

    #[test]
    fn pmem_crash_recovers_to_committed_sweep() {
        let mut sys = MemorySystem::new(cfg());
        let st = PlainStencil::setup(&mut sys, 12, 12, 7);
        let lines = 12 * 12 / 8 + 32;
        let mut pool = UndoPool::new(&mut sys, lines);
        let layout = pool.layout();
        let trig = CrashTrigger::AtAccessCount(4_000);
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_pmem(&mut emu, &st, &mut pool)
            .crashed()
            .expect("access budget must trigger");
        let mut sys2 = MemorySystem::from_image(cfg(), &image);
        UndoPool::recover(layout, &mut sys2);
        let committed = st.sweep_cell.get(&mut sys2) as usize;
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        for t in committed..st.sweeps {
            st.sweep(&mut emu2, t);
        }
        assert!(max_diff(&st.peek_grid(&emu2, 7), &heat_host(12, 12, 7)) < 1e-12);
    }
}
