//! Algorithm-directed crash consistence for a 2-D heat-diffusion stencil
//! (an extension beyond the paper; DESIGN.md §5a).
//!
//! Structured-grid sweeps are the third great HPC kernel family after
//! solvers and dense kernels, and the paper's recipe maps onto them
//! cleanly by *combining* its two techniques:
//!
//! * like extended CG, the sweep buffers form a **ring of `window >= 3`
//!   generations**, so no sweep overwrites its predecessor and old
//!   generations drift to NVM by normal eviction; and
//! * like the ABFT matrix multiplication, each **row block** gets a tiny
//!   checksum — `(sweep tag, block sum)` — computed while the block is
//!   swept and flushed immediately (a line per block), while the O(grid)
//!   payload is never flushed.
//!
//! The sweep tag matters: a slot reused from sweep `s − window` still has
//! matching *old* data + *old* checksum pairs in NVM, so a bare sum check
//! would accept a half-updated buffer. Tagging each checksum with its
//! sweep number makes stale blocks self-identifying.
//!
//! Recovery scans back from the crashed sweep for the newest generation
//! whose blocks all carry the right tag and reproduce their flushed sums,
//! then resumes from the following sweep.

pub mod extended;
pub mod plain;
pub mod variants;

pub use extended::{ExtendedStencil, StencilRecovery};
pub use plain::{heat_host, PlainStencil};

/// Diffusion coefficient (stable for the 5-point explicit scheme).
pub const ALPHA: f64 = 0.2;

/// Deterministic initial condition: a hot gaussian bump off-center on a
/// cold plate, plus a warm west edge.
pub fn initial_value(rows: usize, cols: usize, r: usize, c: usize) -> f64 {
    let (rf, cf) = (r as f64 / rows as f64, c as f64 / cols as f64);
    let bump = 80.0 * (-((rf - 0.3).powi(2) + (cf - 0.6).powi(2)) / 0.02).exp();
    let edge = if c == 0 { 40.0 } else { 0.0 };
    bump + edge
}

/// Crash-site phases for the stencil (see [`adcc_sim::crash::CrashSite`]).
pub mod sites {
    /// After one row block of the current sweep completes.
    pub const PH_AFTER_BLOCK: u32 = 50;
    /// End of one sweep.
    pub const PH_SWEEP_END: u32 = 51;
}
