//! Checksum encoding (Eqs. 3–4), verification (Eq. 6) and single-error
//! correction for full-checksum matrices.

use adcc_linalg::dense::Matrix;
use adcc_sim::parray::PMatrix;
use adcc_sim::system::MemorySystem;

/// Relative tolerance for checksum comparisons, scaled by the magnitude of
/// the row/column (floating-point summation differs in order between the
/// checksum row and the recomputed sum).
pub const CKSUM_RTOL: f64 = 1e-9;
/// Absolute floor for the comparison tolerance.
pub const CKSUM_ATOL: f64 = 1e-9;

/// Column-checksum encoding (Eq. 3): append a row of column sums.
/// Input `m x k`, output `(m+1) x k`.
pub fn encode_ac(a: &Matrix) -> Matrix {
    let (m, k) = (a.rows(), a.cols());
    let mut out = Matrix::zeros(m + 1, k);
    for i in 0..m {
        for j in 0..k {
            out.set(i, j, a.get(i, j));
        }
    }
    for j in 0..k {
        out.set(m, j, a.col_sum(j));
    }
    out
}

/// Row-checksum encoding (Eq. 4): append a column of row sums.
/// Input `k x n`, output `k x (n+1)`.
pub fn encode_br(b: &Matrix) -> Matrix {
    let (k, n) = (b.rows(), b.cols());
    let mut out = Matrix::zeros(k, n + 1);
    for i in 0..k {
        for j in 0..n {
            out.set(i, j, b.get(i, j));
        }
        out.set(i, n, b.row_sum(i));
    }
    out
}

/// Which rows/columns of a full-checksum matrix failed verification.
#[derive(Debug, Clone, Default)]
pub struct ChecksumReport {
    pub bad_rows: Vec<usize>,
    pub bad_cols: Vec<usize>,
}

impl ChecksumReport {
    /// No inconsistency detected.
    pub fn is_consistent(&self) -> bool {
        self.bad_rows.is_empty() && self.bad_cols.is_empty()
    }

    /// Exactly one element can be pinpointed (one bad row and one bad
    /// column).
    pub fn is_single_error(&self) -> bool {
        self.bad_rows.len() == 1 && self.bad_cols.len() == 1
    }
}

#[inline]
fn mismatch(sum: f64, stored: f64, magnitude: f64) -> bool {
    !(sum.is_finite() && stored.is_finite())
        || (sum - stored).abs() > CKSUM_RTOL * magnitude.max(stored.abs()) + CKSUM_ATOL
}

/// Verify the full checksum relationship (Eq. 6) of an `(m+1) x (n+1)`
/// matrix in simulated memory; data rows/cols are `0..m` / `0..n`, the
/// checksum row is `m`, the checksum column is `n`. Charged reads + FLOPs.
pub fn verify_full(sys: &mut MemorySystem, mat: &PMatrix<f64>) -> ChecksumReport {
    let m = mat.rows() - 1;
    let n = mat.cols() - 1;
    let mut report = ChecksumReport::default();
    // Row sums vs checksum column, and column sums accumulated in one pass.
    let mut col_sums = vec![0.0f64; n];
    let mut col_mags = vec![0.0f64; n];
    for i in 0..m {
        let mut sum = 0.0;
        let mut mag = 0.0;
        for j in 0..n {
            let v = mat.get(sys, i, j);
            sum += v;
            mag += v.abs();
            col_sums[j] += v;
            col_mags[j] += v.abs();
        }
        let stored = mat.get(sys, i, n);
        if mismatch(sum, stored, mag) {
            report.bad_rows.push(i);
        }
    }
    sys.charge_flops((m * n * 3) as u64);
    for (j, (&sum, &mag)) in col_sums.iter().zip(col_mags.iter()).enumerate() {
        let stored = mat.get(sys, m, j);
        if mismatch(sum, stored, mag) {
            report.bad_cols.push(j);
        }
    }
    report
}

/// Verify only the row checksums of rows `rows` (used by the second-loop
/// recovery, where only row checksums are maintained). Returns the bad
/// row indices.
pub fn verify_rows(
    sys: &mut MemorySystem,
    mat: &PMatrix<f64>,
    rows: std::ops::Range<usize>,
) -> Vec<usize> {
    let n = mat.cols() - 1;
    let mut bad = Vec::new();
    for i in rows {
        let mut sum = 0.0;
        let mut mag = 0.0;
        for j in 0..n {
            let v = mat.get(sys, i, j);
            sum += v;
            mag += v.abs();
        }
        let stored = mat.get(sys, i, n);
        sys.charge_flops(3 * n as u64);
        if mismatch(sum, stored, mag) {
            bad.push(i);
        }
    }
    bad
}

/// Attempt single-element correction: if the report pinpoints exactly one
/// element `(r, c)`, overwrite it with the value implied by its row
/// checksum and re-verify. Returns whether the matrix is now consistent.
pub fn correct_single(sys: &mut MemorySystem, mat: &PMatrix<f64>, report: &ChecksumReport) -> bool {
    if !report.is_single_error() {
        return false;
    }
    let r = report.bad_rows[0];
    let c = report.bad_cols[0];
    let n = mat.cols() - 1;
    // Correct value = row checksum - sum of the row's other data elements.
    let mut others = 0.0;
    for j in 0..n {
        if j != c {
            others += mat.get(sys, r, j);
        }
    }
    let fixed = mat.get(sys, r, n) - others;
    mat.set(sys, r, c, fixed);
    sys.charge_flops(n as u64);
    verify_full(sys, mat).is_consistent()
}

/// Host-side full-checksum verification for tests.
pub fn verify_full_host(m: &Matrix) -> ChecksumReport {
    let rows = m.rows() - 1;
    let cols = m.cols() - 1;
    let mut report = ChecksumReport::default();
    for i in 0..rows {
        let sum: f64 = (0..cols).map(|j| m.get(i, j)).sum();
        let mag: f64 = (0..cols).map(|j| m.get(i, j).abs()).sum();
        if mismatch(sum, m.get(i, cols), mag) {
            report.bad_rows.push(i);
        }
    }
    for j in 0..cols {
        let sum: f64 = (0..rows).map(|i| m.get(i, j)).sum();
        let mag: f64 = (0..rows).map(|i| m.get(i, j).abs()).sum();
        if mismatch(sum, m.get(rows, j), mag) {
            report.bad_cols.push(j);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::system::SystemConfig;

    #[test]
    fn encoding_shapes_and_sums() {
        let a = Matrix::random(5, 4, 1);
        let ac = encode_ac(&a);
        assert_eq!((ac.rows(), ac.cols()), (6, 4));
        for j in 0..4 {
            assert!((ac.get(5, j) - a.col_sum(j)).abs() < 1e-12);
        }
        let b = Matrix::random(4, 7, 2);
        let br = encode_br(&b);
        assert_eq!((br.rows(), br.cols()), (4, 8));
        for i in 0..4 {
            assert!((br.get(i, 7) - b.row_sum(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn product_of_encoded_matrices_has_full_checksums() {
        // Cf = Ac x Br carries both checksum structures (Eq. 5).
        let a = Matrix::random(6, 5, 3);
        let b = Matrix::random(5, 7, 4);
        let cf = encode_ac(&a).mul_naive(&encode_br(&b));
        assert!(verify_full_host(&cf).is_consistent());
    }

    #[test]
    fn verification_detects_corruption_in_sim() {
        let a = Matrix::random(6, 5, 5);
        let b = Matrix::random(5, 7, 6);
        let cf = encode_ac(&a).mul_naive(&encode_br(&b));
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(32 << 10, 8 << 20));
        let m = PMatrix::<f64>::alloc_nvm(&mut sys, 7, 8);
        m.array().seed_slice(&mut sys, cf.data());
        assert!(verify_full(&mut sys, &m).is_consistent());

        let v = m.get(&mut sys, 2, 3);
        m.set(&mut sys, 2, 3, v + 1.0);
        let report = verify_full(&mut sys, &m);
        assert_eq!(report.bad_rows, vec![2]);
        assert_eq!(report.bad_cols, vec![3]);
        assert!(report.is_single_error());
    }

    #[test]
    fn single_error_is_corrected_exactly() {
        let a = Matrix::random(8, 8, 7);
        let b = Matrix::random(8, 8, 8);
        let cf = encode_ac(&a).mul_naive(&encode_br(&b));
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(32 << 10, 8 << 20));
        let m = PMatrix::<f64>::alloc_nvm(&mut sys, 9, 9);
        m.array().seed_slice(&mut sys, cf.data());
        let original = m.get(&mut sys, 4, 5);
        m.set(&mut sys, 4, 5, -999.0);
        let report = verify_full(&mut sys, &m);
        assert!(correct_single(&mut sys, &m, &report));
        assert!((m.get(&mut sys, 4, 5) - original).abs() < 1e-7);
    }

    #[test]
    fn multi_error_is_not_correctable() {
        let a = Matrix::random(6, 6, 9);
        let b = Matrix::random(6, 6, 10);
        let cf = encode_ac(&a).mul_naive(&encode_br(&b));
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(32 << 10, 8 << 20));
        let m = PMatrix::<f64>::alloc_nvm(&mut sys, 7, 7);
        m.array().seed_slice(&mut sys, cf.data());
        m.set(&mut sys, 1, 1, 100.0);
        m.set(&mut sys, 2, 4, -100.0);
        let report = verify_full(&mut sys, &m);
        assert!(!report.is_consistent());
        assert!(!correct_single(&mut sys, &m, &report));
    }

    #[test]
    fn row_only_verification() {
        let a = Matrix::random(6, 6, 11);
        let b = Matrix::random(6, 6, 12);
        let cf = encode_ac(&a).mul_naive(&encode_br(&b));
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(32 << 10, 8 << 20));
        let m = PMatrix::<f64>::alloc_nvm(&mut sys, 7, 7);
        m.array().seed_slice(&mut sys, cf.data());
        assert!(verify_rows(&mut sys, &m, 0..6).is_empty());
        m.set(&mut sys, 3, 0, 1e6);
        assert_eq!(verify_rows(&mut sys, &m, 0..6), vec![3]);
    }
}
