//! Algorithm-directed crash consistence for ABFT matrix multiplication
//! (paper §III-C).
//!
//! `C = A × B` is computed on checksum-encoded matrices: `Ac` carries an
//! extra row of column sums, `Br` an extra column of row sums, so the full
//! product `Cf = Ac × Br` carries both (Eqs. 3–6). The paper restructures
//! the classic rank-k-update ABFT loop (Fig. 5) into two loops (Fig. 6):
//!
//! 1. each rank-k panel product is stored in its own *temporal matrix*
//!    `Cˢ_tmp` whose row/column checksums are flushed, and
//! 2. the temporal matrices are added row-block by row-block into `C_tmp`,
//!    whose row checksums are flushed per block.
//!
//! Because flushed checksums are never overwritten, they reliably identify
//! inconsistent blocks/row-blocks in NVM after a crash; only those are
//! recomputed (or, for isolated single-element damage, corrected in place).

pub mod checksum;
pub mod original;
pub mod two_loop;
pub mod variants;

pub use checksum::{encode_ac, encode_br, ChecksumReport};
pub use original::OriginalAbft;
pub use two_loop::{AbftRecovery, BlockStatus, TwoLoopAbft};

/// Crash-site phases for ABFT MM.
pub mod sites {
    /// End of one rank-k iteration of the original ABFT loop (Fig. 5).
    pub const PH_ORIG_ITER: u32 = 20;
    /// End of one sub-matrix multiplication (Fig. 6 first loop).
    pub const PH_LOOP1: u32 = 21;
    /// End of one sub-matrix addition row block (Fig. 6 second loop).
    pub const PH_LOOP2: u32 = 22;
}

/// Phase markers persisted by the two-loop algorithm so recovery knows
/// which loop was interrupted.
pub mod phases {
    pub const LOOP1: u64 = 0;
    pub const LOOP2: u64 = 1;
    pub const DONE: u64 = 2;
}
