//! The original rank-k-update ABFT matrix multiplication (paper Fig. 5):
//! `Cf += Ac(:, s:s+k) × Br(s:s+k, :)` with a checksum verification at the
//! top of every iteration. This is the paper's *native* baseline for the
//! runtime comparison, and the application under the checkpoint and PMEM
//! mechanisms.

use adcc_linalg::dense::Matrix;
use adcc_sim::crash::{CrashEmulator, CrashSite, RunOutcome};
use adcc_sim::parray::PMatrix;
use adcc_sim::system::MemorySystem;

use super::checksum::{encode_ac, encode_br, verify_full};
use super::sites;

/// The Fig. 5 implementation over simulated memory.
pub struct OriginalAbft {
    pub ac: PMatrix<f64>,
    pub br: PMatrix<f64>,
    pub cf: PMatrix<f64>,
    /// Matrix dimension n (data part; encoded matrices are n+1 on one
    /// axis).
    pub n: usize,
    /// Rank of each panel update.
    pub k: usize,
    /// Verify Cf's checksums at every iteration (Fig. 5 line 2).
    pub verify_each_iter: bool,
}

impl OriginalAbft {
    /// Encode `a x b` and seed everything into simulated NVM (uncharged
    /// input state). Requires `k` to divide `n`.
    pub fn setup(
        sys: &mut MemorySystem,
        a: &Matrix,
        b: &Matrix,
        k: usize,
        verify_each_iter: bool,
    ) -> Self {
        let n = a.rows();
        assert_eq!(a.cols(), n, "square matrices only");
        assert_eq!(b.rows(), n);
        assert_eq!(b.cols(), n);
        assert!(k >= 1 && n.is_multiple_of(k), "k must divide n");
        let ac_host = encode_ac(a);
        let br_host = encode_br(b);
        let ac = PMatrix::<f64>::alloc_nvm(sys, n + 1, n);
        let br = PMatrix::<f64>::alloc_nvm(sys, n, n + 1);
        let cf = PMatrix::<f64>::alloc_nvm(sys, n + 1, n + 1);
        ac.array().seed_slice(sys, ac_host.data());
        br.array().seed_slice(sys, br_host.data());
        OriginalAbft {
            ac,
            br,
            cf,
            n,
            k,
            verify_each_iter,
        }
    }

    /// Number of rank-k panels.
    pub fn panels(&self) -> usize {
        self.n / self.k
    }

    /// One panel update: `Cf += Ac(:, s*k .. (s+1)*k) × Br(s*k .., :)`.
    /// Row-buffered kernel (one Cf row is read, accumulated in registers
    /// and written back once — register blocking, as a real kernel does).
    pub fn panel_update(&self, sys: &mut MemorySystem, s: usize) {
        let n = self.n;
        let k = self.k;
        let base = s * k;
        let mut row = vec![0.0f64; n + 1];
        for i in 0..=n {
            for (j, r) in row.iter_mut().enumerate() {
                *r = self.cf.get(sys, i, j);
            }
            for l in 0..k {
                let a = self.ac.get(sys, i, base + l);
                for (j, r) in row.iter_mut().enumerate() {
                    *r += a * self.br.get(sys, base + l, j);
                }
            }
            sys.charge_flops((2 * k * (n + 1)) as u64);
            for (j, r) in row.iter().enumerate() {
                self.cf.set(sys, i, j, *r);
            }
        }
    }

    /// Run the full Fig. 5 loop, polling the crash emulator after each
    /// panel. `hook` runs after every panel (checkpoint / transaction
    /// boundaries for the baseline variants are injected there by the
    /// variants module).
    pub fn run(&self, emu: &mut CrashEmulator) -> RunOutcome<()> {
        self.run_with_hook(emu, |_, _| {})
    }

    /// As [`OriginalAbft::run`] but invoking `hook(sys, s)` after panel
    /// `s` completes.
    pub fn run_with_hook(
        &self,
        emu: &mut CrashEmulator,
        mut hook: impl FnMut(&mut CrashEmulator, usize),
    ) -> RunOutcome<()> {
        for s in 0..self.panels() {
            if self.verify_each_iter {
                let report = verify_full(emu, &self.cf);
                debug_assert!(report.is_consistent(), "soft error detected mid-run");
            }
            self.panel_update(emu, s);
            hook(emu, s);
            if emu.poll(CrashSite::new(sites::PH_ORIG_ITER, s as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        RunOutcome::Completed(())
    }

    /// Uncharged extraction of the data part of `Cf` (without checksums).
    pub fn peek_product(&self, sys: &MemorySystem) -> Matrix {
        let n = self.n;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                out.set(i, j, self.cf.array().peek(sys, i * (n + 1) + j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_sim::crash::CrashTrigger;
    use adcc_sim::system::SystemConfig;

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(64 << 10, 64 << 20)
    }

    #[test]
    fn original_abft_computes_correct_product() {
        let n = 24;
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        let mut sys = MemorySystem::new(cfg());
        let mm = OriginalAbft::setup(&mut sys, &a, &b, 6, true);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        mm.run(&mut emu).completed().unwrap();
        let got = mm.peek_product(&emu);
        let want = a.mul_naive(&b);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn final_cf_has_consistent_checksums() {
        let n = 16;
        let a = Matrix::random(n, n, 3);
        let b = Matrix::random(n, n, 4);
        let mut sys = MemorySystem::new(cfg());
        let mm = OriginalAbft::setup(&mut sys, &a, &b, 4, false);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        mm.run(&mut emu).completed().unwrap();
        let mut sys = emu.into_system();
        assert!(verify_full(&mut sys, &mm.cf).is_consistent());
    }

    #[test]
    fn crash_trigger_interrupts_at_panel() {
        let n = 16;
        let a = Matrix::random(n, n, 5);
        let b = Matrix::random(n, n, 6);
        let mut sys = MemorySystem::new(cfg());
        let mm = OriginalAbft::setup(&mut sys, &a, &b, 4, false);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_ORIG_ITER, 1),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        assert!(mm.run(&mut emu).is_crashed());
    }
}
