//! The paper's new ABFT algorithm (Fig. 6): sub-matrix products into
//! temporal matrices (loop 1) followed by row-block additions (loop 2),
//! with checksums selectively flushed so they are reliable in NVM — plus
//! the checksum-guided recovery procedure.

use adcc_linalg::dense::Matrix;
use adcc_sim::clock::SimTime;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PMatrix, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::checksum::{correct_single, encode_ac, encode_br, verify_full, verify_rows};
use super::{phases, sites};
use crate::traits::RecoveryReport;

/// How recovery classified one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStatus {
    /// Checksums verified: the block in NVM is consistent and reusable.
    Consistent,
    /// A single damaged element was repaired from its checksums.
    Corrected,
    /// The block had to be recomputed.
    Recomputed,
}

/// Outcome of a two-loop recovery.
#[derive(Debug, Clone)]
pub struct AbftRecovery {
    /// Which phase the crash interrupted ([`phases`]).
    pub crashed_phase: u64,
    /// Status per temporal matrix (loop-1 blocks).
    pub loop1_status: Vec<BlockStatus>,
    /// Status per row block of `C_tmp` (loop-2 blocks); empty when the
    /// crash hit loop 1.
    pub loop2_status: Vec<BlockStatus>,
    /// Sub-matrix multiplications re-executed to get back to the crash
    /// point.
    pub lost_multiplications: u64,
    /// Sub-matrix additions re-executed to get back to the crash point.
    pub lost_additions: u64,
    /// Rows of temporal matrices found stale in NVM while re-executing
    /// loop-2 additions, healed by targeted partial products.
    pub healed_source_rows: u64,
    /// Timing in the paper's detect/resume split.
    pub report: RecoveryReport,
}

/// The Fig. 6 implementation over simulated memory.
pub struct TwoLoopAbft {
    pub ac: PMatrix<f64>,
    pub br: PMatrix<f64>,
    /// Temporal matrices `Cˢ_tmp`, one per rank-k panel, each
    /// `(n+1) x (n+1)` with full checksum structure.
    pub ctemps: Vec<PMatrix<f64>>,
    /// The addition target `C_tmp` with row checksums.
    pub ctemp: PMatrix<f64>,
    /// The final result (`Cf ← Cf + C_tmp`; idempotent copy here since a
    /// single product is computed).
    pub cf: PMatrix<f64>,
    /// Persisted phase marker.
    pub phase_cell: PScalar<u64>,
    /// Persisted loop-1 progress (block in progress).
    pub loop1_cell: PScalar<u64>,
    /// Persisted loop-2 progress (row block in progress).
    pub loop2_cell: PScalar<u64>,
    pub n: usize,
    pub k: usize,
}

impl TwoLoopAbft {
    /// Encode and seed the inputs (uncharged); requires `k | n`.
    pub fn setup(sys: &mut MemorySystem, a: &Matrix, b: &Matrix, k: usize) -> Self {
        let n = a.rows();
        assert_eq!(a.cols(), n, "square matrices only");
        assert_eq!(b.rows(), n);
        assert_eq!(b.cols(), n);
        assert!(k >= 1 && n.is_multiple_of(k), "k must divide n");
        let s_blocks = n / k;
        let ac_host = encode_ac(a);
        let br_host = encode_br(b);
        let ac = PMatrix::<f64>::alloc_nvm(sys, n + 1, n);
        let br = PMatrix::<f64>::alloc_nvm(sys, n, n + 1);
        ac.array().seed_slice(sys, ac_host.data());
        br.array().seed_slice(sys, br_host.data());
        let ctemps = (0..s_blocks)
            .map(|_| PMatrix::<f64>::alloc_nvm(sys, n + 1, n + 1))
            .collect();
        let ctemp = PMatrix::<f64>::alloc_nvm(sys, n + 1, n + 1);
        let cf = PMatrix::<f64>::alloc_nvm(sys, n + 1, n + 1);
        let phase_cell = PScalar::<u64>::alloc_nvm(sys);
        let loop1_cell = PScalar::<u64>::alloc_nvm(sys);
        let loop2_cell = PScalar::<u64>::alloc_nvm(sys);
        TwoLoopAbft {
            ac,
            br,
            ctemps,
            ctemp,
            cf,
            phase_cell,
            loop1_cell,
            loop2_cell,
            n,
            k,
        }
    }

    /// Number of loop-1 blocks (sub-matrix multiplications).
    pub fn s_blocks(&self) -> usize {
        self.n / self.k
    }

    /// Number of loop-2 row blocks (sub-matrix additions).
    pub fn row_blocks(&self) -> usize {
        (self.n + 1).div_ceil(self.k)
    }

    /// Rows of loop-2 block `blk`.
    fn block_rows(&self, blk: usize) -> std::ops::Range<usize> {
        let lo = blk * self.k;
        let hi = ((blk + 1) * self.k).min(self.n + 1);
        lo..hi
    }

    /// Loop-1 body: `Cˢ_tmp = Ac(:, s·k..) × Br(s·k.., :)` (fresh write).
    pub fn product_block(&self, sys: &mut MemorySystem, s: usize) {
        let n = self.n;
        let k = self.k;
        let base = s * k;
        let ct = &self.ctemps[s];
        let mut row = vec![0.0f64; n + 1];
        for i in 0..=n {
            row.fill(0.0);
            for l in 0..k {
                let a = self.ac.get(sys, i, base + l);
                for (j, r) in row.iter_mut().enumerate() {
                    *r += a * self.br.get(sys, base + l, j);
                }
            }
            sys.charge_flops((2 * k * (n + 1)) as u64);
            for (j, r) in row.iter().enumerate() {
                ct.set(sys, i, j, *r);
            }
        }
    }

    /// Flush the row and column checksums of a temporal matrix (Fig. 6
    /// line 5): the last row plus the last column.
    fn flush_full_checksums(&self, sys: &mut MemorySystem, s: usize) {
        let n = self.n;
        let ct = &self.ctemps[s];
        // Column-checksum row (row n): contiguous.
        sys.persist_range(ct.addr(n, 0), (n + 1) * 8);
        // Row-checksum column (column n): one line per row.
        for i in 0..n {
            sys.persist_line(ct.addr(i, n));
        }
        sys.sfence();
    }

    /// Recompute only the given rows of temporal matrix `s` (targeted
    /// healing during loop-2 recovery).
    pub fn product_block_rows(&self, sys: &mut MemorySystem, s: usize, rows: &[usize]) {
        let n = self.n;
        let k = self.k;
        let base = s * k;
        let ct = &self.ctemps[s];
        let mut row = vec![0.0f64; n + 1];
        for &i in rows {
            row.fill(0.0);
            for l in 0..k {
                let a = self.ac.get(sys, i, base + l);
                for (j, r) in row.iter_mut().enumerate() {
                    *r += a * self.br.get(sys, base + l, j);
                }
            }
            sys.charge_flops((2 * k * (n + 1)) as u64);
            for (j, r) in row.iter().enumerate() {
                ct.set(sys, i, j, *r);
            }
        }
    }

    /// Loop-2 body: `C_tmp(rows, :) = Σ_s Cˢ_tmp(rows, :)`.
    pub fn addition_block(&self, sys: &mut MemorySystem, blk: usize) {
        let n = self.n;
        let s_blocks = self.s_blocks();
        let mut row = vec![0.0f64; n + 1];
        for i in self.block_rows(blk) {
            row.fill(0.0);
            for ct in &self.ctemps {
                for (j, r) in row.iter_mut().enumerate() {
                    *r += ct.get(sys, i, j);
                }
            }
            sys.charge_flops((s_blocks * (n + 1)) as u64);
            for (j, r) in row.iter().enumerate() {
                self.ctemp.set(sys, i, j, *r);
            }
        }
    }

    /// Flush the row checksums of loop-2 block `blk` (Fig. 6 line 13).
    fn flush_row_checksums(&self, sys: &mut MemorySystem, blk: usize) {
        for i in self.block_rows(blk) {
            sys.persist_line(self.ctemp.addr(i, self.n));
        }
        sys.sfence();
    }

    /// Run loop 1 from block `from_s`, polling after each block.
    pub fn run_loop1(&self, emu: &mut CrashEmulator, from_s: usize) -> RunOutcome<()> {
        if from_s == 0 {
            self.phase_cell.set(emu, phases::LOOP1);
            self.phase_cell.persist(emu);
        }
        for s in from_s..self.s_blocks() {
            self.loop1_cell.set(emu, s as u64);
            self.loop1_cell.persist(emu);
            emu.sfence();
            self.product_block(emu, s);
            self.flush_full_checksums(emu, s);
            if emu.poll(CrashSite::new(sites::PH_LOOP1, s as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        RunOutcome::Completed(())
    }

    /// Run loop 2 from row block `from_blk`, polling after each block.
    pub fn run_loop2(&self, emu: &mut CrashEmulator, from_blk: usize) -> RunOutcome<()> {
        if from_blk == 0 {
            self.phase_cell.set(emu, phases::LOOP2);
            self.phase_cell.persist(emu);
        }
        for blk in from_blk..self.row_blocks() {
            self.loop2_cell.set(emu, blk as u64);
            self.loop2_cell.persist(emu);
            emu.sfence();
            self.addition_block(emu, blk);
            self.flush_row_checksums(emu, blk);
            if emu.poll(CrashSite::new(sites::PH_LOOP2, blk as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        RunOutcome::Completed(())
    }

    /// `Cf ← C_tmp` (idempotent finalization; the paper's outer
    /// accumulation context reduces to a copy for a single product).
    pub fn finalize(&self, sys: &mut MemorySystem) {
        let n = self.n;
        for i in 0..=n {
            for j in 0..=n {
                let v = self.ctemp.get(sys, i, j);
                self.cf.set(sys, i, j, v);
            }
        }
        self.phase_cell.set(sys, phases::DONE);
        self.phase_cell.persist(sys);
        sys.sfence();
    }

    /// Full run: loop 1, loop 2, finalize.
    pub fn run(&self, emu: &mut CrashEmulator) -> RunOutcome<()> {
        match self.run_loop1(emu, 0) {
            RunOutcome::Crashed(img) => return RunOutcome::Crashed(img),
            RunOutcome::Completed(()) => {}
        }
        match self.run_loop2(emu, 0) {
            RunOutcome::Crashed(img) => return RunOutcome::Crashed(img),
            RunOutcome::Completed(()) => {}
        }
        self.finalize(emu);
        RunOutcome::Completed(())
    }

    /// Checksum-guided recovery on a crash image, resuming to completion.
    /// Returns the post-recovery system (holding the finished product)
    /// and the recovery report.
    pub fn recover_and_resume(
        &self,
        image: &NvmImage,
        cfg: SystemConfig,
    ) -> (MemorySystem, AbftRecovery) {
        let mut sys = MemorySystem::from_image(cfg, image);
        let crashed_phase = self.phase_cell.get(&mut sys);
        let s_blocks = self.s_blocks();
        let row_blocks = self.row_blocks();

        let t0 = sys.now();
        // --- Detection. ---
        // Crash in loop 1: classify every attempted block by its full
        // checksums. Blocks at or beyond the persisted progress counter
        // were in progress (or untouched) and are recomputed
        // unconditionally; an untouched all-zero block would pass checksum
        // verification vacuously, so the counter — not the checksum —
        // must gate them.
        let s_done = if crashed_phase == phases::LOOP1 {
            self.loop1_cell.get(&mut sys) as usize
        } else {
            s_blocks
        };
        let mut loop1_status = vec![BlockStatus::Consistent; s_blocks];
        if crashed_phase == phases::LOOP1 {
            for (s, status) in loop1_status.iter_mut().enumerate() {
                if s >= s_done {
                    *status = BlockStatus::Recomputed;
                    continue;
                }
                let report = verify_full(&mut sys, &self.ctemps[s]);
                *status = if report.is_consistent() {
                    BlockStatus::Consistent
                } else if correct_single(&mut sys, &self.ctemps[s], &report) {
                    BlockStatus::Corrected
                } else {
                    BlockStatus::Recomputed
                };
            }
        }
        // Crash in loop 2: the paper checks only C_tmp's row checksums
        // ("the row checksums in Ctemp can decide which rows are not
        // consistent and should be recalculated"); temporal-matrix rows
        // are verified lazily, only where an addition must be re-executed.
        let mut loop2_status = Vec::new();
        let blk_done = if crashed_phase == phases::LOOP2 {
            self.loop2_cell.get(&mut sys) as usize
        } else {
            0
        };
        if crashed_phase == phases::LOOP2 {
            loop2_status = vec![BlockStatus::Recomputed; row_blocks];
            for (blk, status) in loop2_status.iter_mut().enumerate().take(blk_done) {
                let bad = verify_rows(&mut sys, &self.ctemp, self.block_rows(blk));
                if bad.is_empty() {
                    *status = BlockStatus::Consistent;
                }
            }
        }
        let t1 = sys.now();

        // --- Resume: re-execute only what was lost up to the crash point. ---
        let mut lost_multiplications = 0u64;
        if crashed_phase == phases::LOOP1 {
            for s in 0..=s_done.min(s_blocks - 1) {
                if loop1_status[s] == BlockStatus::Recomputed {
                    self.product_block(&mut sys, s);
                    self.flush_full_checksums(&mut sys, s);
                    lost_multiplications += 1;
                }
            }
        }
        let mut lost_additions = 0u64;
        let mut healed_source_rows = 0u64;
        if crashed_phase == phases::LOOP2 {
            for blk in 0..=blk_done.min(row_blocks - 1) {
                if loop2_status[blk] != BlockStatus::Recomputed {
                    continue;
                }
                // Heal stale source rows first: each temporal matrix's
                // rows carry row checksums (flushed in loop 1), so
                // staleness is detectable per row and repairable by a
                // targeted partial product.
                let rows = self.block_rows(blk);
                for s in 0..s_blocks {
                    let bad = verify_rows(&mut sys, &self.ctemps[s], rows.clone());
                    if !bad.is_empty() {
                        healed_source_rows += bad.len() as u64;
                        self.product_block_rows(&mut sys, s, &bad);
                    }
                }
                self.addition_block(&mut sys, blk);
                self.flush_row_checksums(&mut sys, blk);
                lost_additions += 1;
            }
        }
        let t2 = sys.now();

        // --- Continue: the rest of the run that never executed. ---
        // After a loop-1 crash every temporal matrix was verified or
        // recomputed, so loop 2 can run normally. After a loop-2 crash the
        // *future* addition blocks must also verify their source rows:
        // any temporal-matrix line still dirty in a volatile cache at
        // crash time is stale in NVM, wherever loop 2's cursor stood.
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        if crashed_phase == phases::LOOP1 {
            let next = (s_done + 1).min(s_blocks);
            self.run_loop1(&mut emu, next).completed().unwrap();
            self.run_loop2(&mut emu, 0).completed().unwrap();
        } else if crashed_phase == phases::LOOP2 {
            let next = (blk_done + 1).min(row_blocks);
            for blk in next..row_blocks {
                let rows = self.block_rows(blk);
                for s in 0..s_blocks {
                    let bad = verify_rows(&mut emu, &self.ctemps[s], rows.clone());
                    if !bad.is_empty() {
                        healed_source_rows += bad.len() as u64;
                        self.product_block_rows(&mut emu, s, &bad);
                    }
                }
                self.addition_block(&mut emu, blk);
                self.flush_row_checksums(&mut emu, blk);
            }
        }
        let mut sys = emu.into_system();
        if crashed_phase != phases::DONE {
            self.finalize(&mut sys);
        }

        let recovery = AbftRecovery {
            crashed_phase,
            loop1_status,
            loop2_status,
            lost_multiplications,
            lost_additions,
            healed_source_rows,
            report: RecoveryReport {
                detect_time: t1 - t0,
                resume_time: t2 - t1,
                lost_units: lost_multiplications + lost_additions,
                restart_unit: 0,
            },
        };
        (sys, recovery)
    }

    /// Average per-block times of a crash-free run (for the paper's
    /// normalization of Fig. 7): `(per multiplication, per addition)`.
    pub fn timed_full_run(&self, sys: MemorySystem) -> (MemorySystem, SimTime, SimTime) {
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        self.run_loop1(&mut emu, 0).completed().unwrap();
        let t1 = emu.now();
        self.run_loop2(&mut emu, 0).completed().unwrap();
        let t2 = emu.now();
        let mut sys = emu.into_system();
        self.finalize(&mut sys);
        let per_mult = SimTime((t1 - t0).ps() / self.s_blocks() as u64);
        let per_add = SimTime((t2 - t1).ps() / self.row_blocks() as u64);
        (sys, per_mult, per_add)
    }

    /// Uncharged extraction of the data part of the final product.
    pub fn peek_product(&self, sys: &MemorySystem) -> Matrix {
        let n = self.n;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                out.set(i, j, self.cf.array().peek(sys, i * (n + 1) + j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(16 << 10, 64 << 20)
    }

    fn product_test(n: usize, k: usize, crash: Option<CrashTrigger>) -> Option<AbftRecovery> {
        let a = Matrix::random(n, n, 100 + n as u64);
        let b = Matrix::random(n, n, 200 + n as u64);
        let want = a.mul_naive(&b);
        let mut sys = MemorySystem::new(cfg());
        let mm = TwoLoopAbft::setup(&mut sys, &a, &b, k);
        let trig = crash.unwrap_or(CrashTrigger::Never);
        let mut emu = CrashEmulator::from_system(sys, trig);
        match mm.run(&mut emu) {
            RunOutcome::Completed(()) => {
                let got = mm.peek_product(&emu);
                assert!(got.max_abs_diff(&want) < 1e-9);
                None
            }
            RunOutcome::Crashed(img) => {
                let (sys, rec) = mm.recover_and_resume(&img, cfg());
                let got = mm.peek_product(&sys);
                assert!(
                    got.max_abs_diff(&want) < 1e-9,
                    "recovered product wrong by {}",
                    got.max_abs_diff(&want)
                );
                Some(rec)
            }
        }
    }

    #[test]
    fn two_loop_computes_correct_product() {
        assert!(product_test(24, 6, None).is_none());
        assert!(product_test(20, 4, None).is_none());
    }

    #[test]
    fn crash_in_loop1_recovers_exact_product() {
        let rec = product_test(
            24,
            6,
            Some(CrashTrigger::AtSite {
                site: CrashSite::new(sites::PH_LOOP1, 2),
                occurrence: 1,
            }),
        )
        .expect("must crash");
        assert_eq!(rec.crashed_phase, phases::LOOP1);
        assert!(rec.lost_multiplications >= 1);
        assert_eq!(rec.lost_additions, 0);
    }

    #[test]
    fn crash_in_loop2_recovers_exact_product() {
        let rec = product_test(
            24,
            6,
            Some(CrashTrigger::AtSite {
                site: CrashSite::new(sites::PH_LOOP2, 1),
                occurrence: 1,
            }),
        )
        .expect("must crash");
        assert_eq!(rec.crashed_phase, phases::LOOP2);
        assert!(rec.lost_additions >= 1);
    }

    #[test]
    fn crash_at_every_loop1_block_recovers() {
        for s in 0..4 {
            let rec = product_test(
                16,
                4,
                Some(CrashTrigger::AtSite {
                    site: CrashSite::new(sites::PH_LOOP1, s),
                    occurrence: 1,
                }),
            )
            .expect("must crash");
            assert!(rec.lost_multiplications >= 1);
        }
    }

    #[test]
    fn crash_at_every_loop2_block_recovers() {
        for blk in 0..4 {
            product_test(
                16,
                4,
                Some(CrashTrigger::AtSite {
                    site: CrashSite::new(sites::PH_LOOP2, blk),
                    occurrence: 1,
                }),
            )
            .expect("must crash");
        }
    }

    #[test]
    fn detect_and_resume_times_are_recorded() {
        let rec = product_test(
            24,
            6,
            Some(CrashTrigger::AtSite {
                site: CrashSite::new(sites::PH_LOOP1, 3),
                occurrence: 1,
            }),
        )
        .expect("must crash");
        assert!(rec.report.detect_time.ps() > 0);
        assert!(rec.report.resume_time.ps() > 0);
    }

    #[test]
    fn tiny_cache_loses_only_current_block() {
        // With a very small cache, earlier blocks are fully evicted and
        // verify as consistent: only the in-progress block is recomputed.
        let n = 24;
        let k = 4;
        let small = SystemConfig::nvm_only(2 << 10, 64 << 20);
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        let want = a.mul_naive(&b);
        let mut sys = MemorySystem::new(small.clone());
        let mm = TwoLoopAbft::setup(&mut sys, &a, &b, k);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LOOP1, 3),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let img = mm.run(&mut emu).crashed().unwrap();
        let (sys, rec) = mm.recover_and_resume(&img, small);
        assert!(mm.peek_product(&sys).max_abs_diff(&want) < 1e-9);
        assert_eq!(
            rec.lost_multiplications, 1,
            "statuses: {:?}",
            rec.loop1_status
        );
    }
}
