//! ABFT MM under the baseline mechanisms (the paper's Fig. 8 setup):
//! checkpoint `Cf` at the end of each sub-matrix multiplication, or wrap
//! each panel update in an undo-log transaction on `Cf` — both sized so
//! the recomputation cost is one panel, matching the algorithm-directed
//! scheme.

use adcc_ckpt::manager::CkptManager;
use adcc_pmem::undo::UndoPool;
use adcc_sim::crash::{CrashEmulator, CrashSite, RunOutcome};
use adcc_sim::parray::PScalar;

use super::original::OriginalAbft;
use super::sites;

/// Persistent panel-progress cell for the checkpoint variant.
pub struct MmProgress {
    pub cell: PScalar<u64>,
}

impl MmProgress {
    pub fn new(sys: &mut adcc_sim::system::MemorySystem) -> Self {
        MmProgress {
            cell: PScalar::<u64>::alloc_nvm(sys),
        }
    }
}

/// The checkpointable regions: the whole `Cf` plus the progress counter.
pub fn mm_regions(mm: &OriginalAbft, progress: &MmProgress) -> Vec<(u64, usize)> {
    vec![
        (mm.cf.array().base(), mm.cf.array().byte_len()),
        (progress.cell.addr(), 8),
    ]
}

/// Run the original ABFT loop, checkpointing `Cf` after every panel.
pub fn run_with_ckpt(
    emu: &mut CrashEmulator,
    mm: &OriginalAbft,
    progress: &MmProgress,
    mgr: &mut CkptManager,
) -> RunOutcome<()> {
    for s in 0..mm.panels() {
        mm.panel_update(emu, s);
        // Progress counter holds the count of completed panels.
        progress.cell.set(emu, (s + 1) as u64);
        mgr.checkpoint(emu);
        if emu.poll(CrashSite::new(sites::PH_ORIG_ITER, s as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

/// Restore the newest checkpoint and resume. Returns panels re-executed.
pub fn ckpt_restore_and_resume(
    emu: &mut CrashEmulator,
    mm: &OriginalAbft,
    progress: &MmProgress,
    mgr: &mut CkptManager,
) -> u64 {
    let done = match mgr.restore(emu) {
        Some(_) => progress.cell.get(emu) as usize,
        None => {
            // No checkpoint yet: clear Cf and restart.
            for i in 0..=mm.n {
                for j in 0..=mm.n {
                    mm.cf.set(emu, i, j, 0.0);
                }
            }
            0
        }
    };
    let mut executed = 0u64;
    for s in done..mm.panels() {
        mm.panel_update(emu, s);
        executed += 1;
    }
    executed
}

/// Run the original ABFT loop with each panel update wrapped in an
/// undo-log transaction on `Cf` (the paper: "each submatrix multiplication
/// is a transaction and we enable transaction update on the submatrix
/// multiplication result").
pub fn run_with_pmem(
    emu: &mut CrashEmulator,
    mm: &OriginalAbft,
    progress: &MmProgress,
    pool: &mut UndoPool,
) -> RunOutcome<()> {
    for s in 0..mm.panels() {
        pool.tx_begin(emu);
        pool.tx_add_range(emu, mm.cf.array().base(), mm.cf.array().byte_len());
        pool.tx_add_range(emu, progress.cell.addr(), 8);
        mm.panel_update(emu, s);
        progress.cell.set(emu, (s + 1) as u64);
        pool.tx_commit(emu);
        if emu.poll(CrashSite::new(sites::PH_ORIG_ITER, s as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_linalg::dense::Matrix;
    use adcc_sim::crash::CrashTrigger;
    use adcc_sim::system::{MemorySystem, SystemConfig};

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(32 << 10, 64 << 20)
    }

    #[test]
    fn ckpt_crash_restore_computes_exact_product() {
        let n = 16;
        let a = Matrix::random(n, n, 31);
        let b = Matrix::random(n, n, 32);
        let want = a.mul_naive(&b);
        let mut sys = MemorySystem::new(cfg());
        let mm = OriginalAbft::setup(&mut sys, &a, &b, 4, false);
        let progress = MmProgress::new(&mut sys);
        let mut mgr = CkptManager::new_nvm(&mut sys, mm_regions(&mm, &progress), false);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_ORIG_ITER, 2),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_ckpt(&mut emu, &mm, &progress, &mut mgr)
            .crashed()
            .unwrap();
        let sys2 = MemorySystem::from_image(cfg(), &image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let re = ckpt_restore_and_resume(&mut emu2, &mm, &progress, &mut mgr);
        assert_eq!(re, 1, "checkpoint should lose at most one panel");
        assert!(mm.peek_product(&emu2).max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn pmem_crash_recovers_exact_product() {
        let n = 16;
        let a = Matrix::random(n, n, 33);
        let b = Matrix::random(n, n, 34);
        let want = a.mul_naive(&b);
        let mut sys = MemorySystem::new(cfg());
        let mm = OriginalAbft::setup(&mut sys, &a, &b, 4, false);
        let progress = MmProgress::new(&mut sys);
        let lines = ((n + 1) * (n + 1) * 8).div_ceil(64) + 4;
        let mut pool = UndoPool::new(&mut sys, lines);
        let layout = pool.layout();
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_ORIG_ITER, 2),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_pmem(&mut emu, &mm, &progress, &mut pool)
            .crashed()
            .unwrap();
        let mut sys2 = MemorySystem::from_image(cfg(), &image);
        UndoPool::recover(layout, &mut sys2);
        let done = progress.cell.get(&mut sys2) as usize;
        assert_eq!(done, 3, "crash after panel 2 committed");
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        for s in done..mm.panels() {
            mm.panel_update(&mut emu2, s);
        }
        assert!(mm.peek_product(&emu2).max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn pmem_costs_more_than_ckpt_costs_more_than_native() {
        let n = 16;
        let k = 4;
        let a = Matrix::random(n, n, 35);
        let b = Matrix::random(n, n, 36);

        let time_of = |which: u8| -> u64 {
            let mut sys = MemorySystem::new(cfg());
            let mm = OriginalAbft::setup(&mut sys, &a, &b, k, false);
            let progress = MmProgress::new(&mut sys);
            match which {
                0 => {
                    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
                    let t0 = emu.now();
                    mm.run(&mut emu).completed().unwrap();
                    (emu.now() - t0).ps()
                }
                1 => {
                    let mut mgr = CkptManager::new_nvm(&mut sys, mm_regions(&mm, &progress), false);
                    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
                    let t0 = emu.now();
                    run_with_ckpt(&mut emu, &mm, &progress, &mut mgr)
                        .completed()
                        .unwrap();
                    (emu.now() - t0).ps()
                }
                _ => {
                    let lines = ((n + 1) * (n + 1) * 8).div_ceil(64) + 4;
                    let mut pool = UndoPool::new(&mut sys, lines);
                    let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
                    let t0 = emu.now();
                    run_with_pmem(&mut emu, &mm, &progress, &mut pool)
                        .completed()
                        .unwrap();
                    (emu.now() - t0).ps()
                }
            }
        };

        let native = time_of(0);
        let ckpt = time_of(1);
        let pmem = time_of(2);
        assert!(ckpt > native, "ckpt {ckpt} !> native {native}");
        assert!(pmem > ckpt, "pmem {pmem} !> ckpt {ckpt}");
    }
}
