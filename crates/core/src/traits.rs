//! Shared recovery-reporting types.

use adcc_sim::clock::SimTime;

/// What a post-crash recovery cost and recovered, in the units the paper
/// reports (Figs. 3 and 7 break recomputation into "detecting where to
/// restart" and "resuming computation time", normalized by the average
/// cost of one work unit — an iteration, a sub-matrix multiplication, or a
/// sub-matrix addition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Simulated time spent deciding where to restart.
    pub detect_time: SimTime,
    /// Simulated time spent re-executing lost work.
    pub resume_time: SimTime,
    /// Work units lost to the crash (recomputed).
    pub lost_units: u64,
    /// The work-unit index execution resumed from.
    pub restart_unit: u64,
}

impl RecoveryReport {
    /// Total recomputation time.
    pub fn total(&self) -> SimTime {
        self.detect_time + self.resume_time
    }

    /// The paper's normalization: recomputation cost in units of the
    /// average per-unit execution time.
    pub fn normalized(&self, avg_unit_time: SimTime) -> f64 {
        if avg_unit_time.ps() == 0 {
            return 0.0;
        }
        self.total().ps() as f64 / avg_unit_time.ps() as f64
    }
}

/// What an EasyCrash-style dirty restart produced: re-enter the iteration
/// loop from whatever raw counters/values survived in NVM — no invariant
/// scan, no checkpoint rollback, no log replay — and run to the natural
/// termination bound.
#[derive(Debug, Clone, PartialEq)]
pub struct DirtyRestart {
    /// The answer the restarted run terminated with, flattened to the
    /// kernel's scalar result vector. `None` means the application's own
    /// sanity audit (counter out of range, count total mismatch) rejected
    /// the dirty image before producing an answer.
    pub solution: Option<Vec<f64>>,
    /// Work units the restart executed from the surviving counter to the
    /// termination bound.
    pub extra_units: u64,
    /// Simulated time of the dirty continuation.
    pub sim_time_ps: u64,
}

impl DirtyRestart {
    /// A restart rejected by the application's own audit.
    pub fn rejected(sim_time_ps: u64) -> DirtyRestart {
        DirtyRestart {
            solution: None,
            extra_units: 0,
            sim_time_ps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_normalization() {
        let r = RecoveryReport {
            detect_time: SimTime(300),
            resume_time: SimTime(700),
            lost_units: 2,
            restart_unit: 13,
        };
        assert_eq!(r.total(), SimTime(1000));
        assert!((r.normalized(SimTime(500)) - 2.0).abs() < 1e-12);
        assert_eq!(r.normalized(SimTime(0)), 0.0);
    }
}
