//! Algorithm-directed crash consistence for the Conjugate Gradient method
//! (paper §III-B).
//!
//! CG solves `Ax = b` for sparse SPD `A`. The paper's scheme extends the
//! four work vectors `p, q, r, z` with an iteration-history dimension and
//! flushes exactly one cache line per iteration (the one holding the loop
//! index). Recovery exploits two invariants that hold between consecutive
//! iterations' data:
//!
//! ```text
//! p(i+1)ᵀ · q(i)      = 0              (A-conjugacy of search directions)
//! r(i+1)              = b − A · z(i+1) (residual identity, x0 = 0)
//! ```
//!
//! Scanning backwards from the crashed iteration, the first iteration whose
//! NVM data satisfies both invariants is a correct restart point.
//!
//! Note on fidelity: the paper's Fig. 1 pseudocode contains two well-known
//! typos (`r ← r − αp` should use `q`, and `p ← p + βp` should be
//! `p ← r + βp`); we implement standard CG, from which the stated
//! invariants actually follow.

pub mod extended;
pub mod plain;
pub mod variants;

pub use extended::{CgRecovery, CgSolution, ExtendedCg};
pub use plain::{cg_host, PlainCg};

/// Crash-site phases for CG (see [`adcc_sim::crash::CrashSite`]).
pub mod sites {
    /// After `q ← A·p` (Fig. 2 line 4).
    pub const PH_AFTER_Q: u32 = 10;
    /// After the `z` update (Fig. 2 line 6).
    pub const PH_AFTER_Z: u32 = 11;
    /// After the `r` update (Fig. 2 line 8).
    pub const PH_AFTER_R: u32 = 12;
    /// After the `p` update — the paper's "Line 10" crash point.
    pub const PH_LINE10: u32 = 13;
    /// End of one main-loop iteration.
    pub const PH_ITER_END: u32 = 14;
}
