//! The paper's extended CG (Fig. 2) and its algorithm-directed recovery.
//!
//! Each of `p, q, r, z` gains an iteration dimension so no iteration's
//! data is ever overwritten; the hardware cache hierarchy is left to evict
//! old iterations to NVM on its own ("opportunistic" crash consistence).
//! The only explicit persistence is one `persist_line` of the iteration
//! counter per iteration.
//!
//! Recovery scans backwards from the crashed iteration, accepting the
//! first iteration `j` whose NVM data satisfies both invariants
//! (orthogonality, cheap; residual identity, one SpMV) — see
//! [`ExtendedCg::detect_restart`].

use adcc_linalg::csr::CsrMatrix;
use adcc_linalg::simops::{self, SimCsr};
use adcc_sim::clock::SimTime;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PArray, PMatrix, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::sites;
use crate::traits::{DirtyRestart, RecoveryReport};

/// Relative tolerance for the orthogonality invariant
/// `|p(j+1)·q(j)| <= TOL_ORTH * ||p|| * ||q||`.
const TOL_ORTH: f64 = 1e-6;
/// Relative tolerance for the residual invariant
/// `||r(j+1) - (b - A z(j+1))|| <= TOL_RESID * ||b||`.
const TOL_RESID: f64 = 1e-6;

/// Result of a completed (or recovered) CG run.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// Accumulated solution `z` after the final iteration.
    pub z: Vec<f64>,
    /// Final `rho = rᵀr`.
    pub rho: f64,
}

/// What recovery did, plus the solution it produced.
#[derive(Debug, Clone)]
pub struct CgRecovery {
    /// The completed iteration accepted as the restart point
    /// (`None` = restart from the initial state).
    pub restart_from: Option<usize>,
    /// Report in the paper's units (iterations lost, detect/resume split).
    pub report: RecoveryReport,
    /// The recovered solution.
    pub solution: CgSolution,
}

/// Extended CG state (Fig. 2): history matrices over simulated NVM.
///
/// The history may be a full `iters + 1` rows (the paper's formulation) or
/// a bounded ring of `window` rows: row `i % window` holds iteration `i`'s
/// data, trading memory for a bounded recovery horizon.
pub struct ExtendedCg {
    pub a: SimCsr,
    pub b: PArray<f64>,
    /// `p[i]` is the search direction entering iteration `i`.
    pub p: PMatrix<f64>,
    /// `q[i] = A p[i]`, produced by iteration `i`.
    pub q: PMatrix<f64>,
    /// `r[i]` is the residual entering iteration `i`.
    pub r: PMatrix<f64>,
    /// `z[i]` is the accumulated solution entering iteration `i`.
    pub z: PMatrix<f64>,
    /// The one cache line flushed every iteration (Fig. 2 line 3).
    pub iter_cell: PScalar<u64>,
    pub n: usize,
    pub iters: usize,
    /// History rows; iteration `i` lives in row `i % window`.
    pub window: usize,
}

impl ExtendedCg {
    /// Seed the problem and the initial iteration-0 state into NVM
    /// (uncharged input state; `p[0] = r[0] = b`, `z[0] = 0`). Returns the
    /// state and initial `rho = bᵀb`. Full history (the paper's layout).
    pub fn setup(
        sys: &mut MemorySystem,
        a_host: &CsrMatrix,
        b_host: &[f64],
        iters: usize,
    ) -> (Self, f64) {
        Self::setup_windowed(sys, a_host, b_host, iters, iters + 1)
    }

    /// As [`ExtendedCg::setup`] but with a bounded history of `window`
    /// rows (>= 3). Recovery can then restart at most `window - 1`
    /// iterations back; beyond that it falls back to the (always intact)
    /// initial state.
    pub fn setup_windowed(
        sys: &mut MemorySystem,
        a_host: &CsrMatrix,
        b_host: &[f64],
        iters: usize,
        window: usize,
    ) -> (Self, f64) {
        let n = a_host.n();
        assert_eq!(b_host.len(), n);
        assert!(window >= 3, "window must hold at least 3 iterations");
        let window = window.min(iters + 1);
        let a = SimCsr::seed_from(sys, a_host);
        let b = PArray::<f64>::alloc_nvm(sys, n);
        b.seed_slice(sys, b_host);
        let p = PMatrix::<f64>::alloc_nvm(sys, window, n);
        let q = PMatrix::<f64>::alloc_nvm(sys, window, n);
        let r = PMatrix::<f64>::alloc_nvm(sys, window, n);
        let z = PMatrix::<f64>::alloc_nvm(sys, window, n);
        p.row(0).seed_slice(sys, b_host);
        r.row(0).seed_slice(sys, b_host);
        // z[0] and q rows are zero-initialized NVM already.
        let iter_cell = PScalar::<u64>::alloc_nvm(sys);
        let rho0: f64 = b_host.iter().map(|x| x * x).sum();
        (
            ExtendedCg {
                a,
                b,
                p,
                q,
                r,
                z,
                iter_cell,
                n,
                iters,
                window,
            },
            rho0,
        )
    }

    /// Ring-mapped history rows for iteration `i`.
    #[inline]
    fn p_row(&self, i: usize) -> PArray<f64> {
        self.p.row(i % self.window)
    }
    #[inline]
    fn q_row(&self, i: usize) -> PArray<f64> {
        self.q.row(i % self.window)
    }
    #[inline]
    fn r_row(&self, i: usize) -> PArray<f64> {
        self.r.row(i % self.window)
    }
    #[inline]
    fn z_row(&self, i: usize) -> PArray<f64> {
        self.z.row(i % self.window)
    }

    /// Run iterations `[from, to)`; `rho` must be `r[from]ᵀ r[from]`.
    /// Returns the crash image if the emulator's trigger fires.
    pub fn run(
        &self,
        emu: &mut CrashEmulator,
        from: usize,
        to: usize,
        rho_in: f64,
    ) -> RunOutcome<f64> {
        let mut rho = rho_in;
        for i in from..to.min(self.iters) {
            // Fig. 2 line 3: flush the cache line containing i.
            self.iter_cell.set(emu, i as u64);
            self.iter_cell.persist(emu);
            emu.sfence();

            let p_i = self.p_row(i);
            let q_i = self.q_row(i);
            self.a.spmv(emu, p_i, q_i);
            if emu.poll(CrashSite::new(sites::PH_AFTER_Q, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
            let pq = simops::dot(emu, p_i, q_i);
            let alpha = rho / pq;
            simops::xpby(emu, self.z_row(i), alpha, p_i, self.z_row(i + 1));
            if emu.poll(CrashSite::new(sites::PH_AFTER_Z, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
            simops::xpby(emu, self.r_row(i), -alpha, q_i, self.r_row(i + 1));
            if emu.poll(CrashSite::new(sites::PH_AFTER_R, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
            let r_next = self.r_row(i + 1);
            let rho_new = simops::dot(emu, r_next, r_next);
            let beta = rho_new / rho;
            simops::xpby(emu, r_next, beta, p_i, self.p_row(i + 1));
            rho = rho_new;
            if emu.poll(CrashSite::new(sites::PH_LINE10, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
            if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        RunOutcome::Completed(rho)
    }

    /// Uncharged extraction of the solution after iteration `iters`.
    pub fn peek_solution(&self, sys: &MemorySystem, rho: f64) -> CgSolution {
        let last = self.z_row(self.iters);
        CgSolution {
            z: (0..self.n).map(|j| last.peek(sys, j)).collect(),
            rho,
        }
    }

    /// Algorithm-directed restart detection on a post-crash system.
    ///
    /// Scans `j = crashed_iter - 1, ..., 0`, checking the cheap
    /// orthogonality invariant first and confirming with the residual
    /// identity (one SpMV) only when it passes — the order the paper's
    /// performance breakdown implies. Returns the accepted completed
    /// iteration (`None` = no iteration verifiable, restart from scratch).
    pub fn detect_restart(&self, sys: &mut MemorySystem) -> Option<usize> {
        let crashed = self.iter_cell.get(sys) as usize;
        let scratch = PArray::<f64>::alloc_dram(sys, self.n);
        let norm_b = simops::dot(sys, self.b, self.b).sqrt();
        // With a bounded history ring, iterations older than
        // `window - 1` back have been overwritten and cannot be
        // candidates.
        let hi = crashed.min(self.iters - 1);
        let lo = (crashed + 1).saturating_sub(self.window.saturating_sub(1));
        (lo..=hi).rev().find(|&j| {
            self.check_orthogonality(sys, j) && self.check_residual(sys, j, scratch, norm_b)
        })
    }

    /// `|p(j+1) · q(j)| <= TOL_ORTH * ||p(j+1)|| * ||q(j)||` (and the data
    /// must be non-degenerate: zero vectors mean the iteration never ran).
    fn check_orthogonality(&self, sys: &mut MemorySystem, j: usize) -> bool {
        let p_next = self.p_row(j + 1);
        let q_j = self.q_row(j);
        let pq = simops::dot(sys, p_next, q_j);
        let np = simops::dot(sys, p_next, p_next).sqrt();
        let nq = simops::dot(sys, q_j, q_j).sqrt();
        if !(np.is_finite() && nq.is_finite() && pq.is_finite()) {
            return false;
        }
        if np == 0.0 || nq == 0.0 {
            return false;
        }
        pq.abs() <= TOL_ORTH * np * nq
    }

    /// `||r(j+1) - (b - A z(j+1))|| <= TOL_RESID * ||b||`.
    fn check_residual(
        &self,
        sys: &mut MemorySystem,
        j: usize,
        scratch: PArray<f64>,
        norm_b: f64,
    ) -> bool {
        self.a.spmv(sys, self.z_row(j + 1), scratch);
        let r_next = self.r_row(j + 1);
        let mut err2 = 0.0f64;
        for k in 0..self.n {
            let want = self.b.get(sys, k) - scratch.get(sys, k);
            let got = r_next.get(sys, k);
            let d = want - got;
            err2 += d * d;
        }
        sys.charge_flops(4 * self.n as u64);
        err2.is_finite() && err2.sqrt() <= TOL_RESID * norm_b
    }

    /// Full recovery: boot from the crash image, detect the restart point,
    /// resume to the crashed iteration (the paper's "resuming computation
    /// time") and then run to completion.
    pub fn recover_and_resume(&self, image: &NvmImage, cfg: SystemConfig) -> CgRecovery {
        let mut sys = MemorySystem::from_image(cfg, image);
        let crashed = self.iter_cell.get(&mut sys) as usize;

        let t0 = sys.now();
        let restart_from = self.detect_restart(&mut sys);
        let t1 = sys.now();

        let (resume_at, rho) = match restart_from {
            Some(j) => {
                let r_next = self.r_row(j + 1);
                let rho = simops::dot(&mut sys, r_next, r_next);
                (j + 1, rho)
            }
            None => {
                // Restart from the initial state. With a bounded history
                // ring the iteration-0 rows may have been overwritten, so
                // rebuild them from b (which is read-only and intact).
                let p0 = self.p_row(0);
                let r0 = self.r_row(0);
                let z0 = self.z_row(0);
                for k in 0..self.n {
                    let v = self.b.get(&mut sys, k);
                    p0.set(&mut sys, k, v);
                    r0.set(&mut sys, k, v);
                    z0.set(&mut sys, k, 0.0);
                }
                let rho = simops::dot(&mut sys, self.b, self.b);
                (0, rho)
            }
        };

        // Resume back to the crash point (measured), then continue.
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let back_at_crash = (crashed + 1).min(self.iters).max(resume_at);
        let rho = self
            .run(&mut emu, resume_at, back_at_crash, rho)
            .completed()
            .expect("trigger is Never");
        let t2 = emu.now();
        let rho = self
            .run(&mut emu, back_at_crash, self.iters, rho)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();

        let lost = (crashed + 1 - resume_at) as u64;
        CgRecovery {
            restart_from,
            report: RecoveryReport {
                detect_time: t1 - t0,
                resume_time: t2 - t1,
                lost_units: lost,
                restart_unit: resume_at as u64,
            },
            solution: self.peek_solution(&sys, rho),
        }
    }

    /// EasyCrash-style dirty restart: reboot from the raw image, trust the
    /// flushed iteration counter verbatim, recompute `rho` from whatever
    /// residual row survived, and run to the termination bound — no
    /// invariant scan, no restart-point search. The Krylov recurrences are
    /// *not* self-correcting, so stale rows usually end converged-wrong;
    /// this is exactly the contrast the natural-resilience sweep measures.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let c = self.iter_cell.get(&mut sys) as usize;
        if c >= self.iters {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        let r_c = self.r_row(c);
        let rho = simops::dot(&mut sys, r_c, r_c);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let rho = self
            .run(&mut emu, c, self.iters, rho)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();
        DirtyRestart {
            solution: Some(self.peek_solution(&sys, rho).z),
            extra_units: (self.iters - c) as u64,
            sim_time_ps: (sys.now() - t0).ps(),
        }
    }

    /// Average per-iteration simulated time of a crash-free run, for the
    /// paper's normalization (reads the clock around the main loop).
    pub fn timed_full_run(&self, sys: MemorySystem, rho0: f64) -> (MemorySystem, f64, SimTime) {
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        let rho = self
            .run(&mut emu, 0, self.iters, rho0)
            .completed()
            .expect("trigger is Never");
        let per_iter = SimTime((emu.now() - t0).ps() / self.iters as u64);
        (emu.into_system(), rho, per_iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_linalg::spd::CgClass;
    use adcc_sim::crash::CrashTrigger;

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(32 << 10, 64 << 20)
    }

    fn problem() -> (CsrMatrix, Vec<f64>) {
        let class = CgClass::TEST;
        let a = class.matrix(7);
        let b = class.rhs(&a);
        (a, b)
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn extended_matches_host_reference() {
        let (a, b) = problem();
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, 10);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let rho = cg.run(&mut emu, 0, 10, rho0).completed().unwrap();
        let sol = cg.peek_solution(&emu, rho);
        let host = super::super::plain::cg_host(&a, &b, 10);
        assert!(max_diff(&sol.z, &host) < 1e-10);
    }

    #[test]
    fn crash_and_recovery_reproduce_no_crash_solution() {
        let (a, b) = problem();
        // No-crash reference.
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, 12);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let rho = cg.run(&mut emu, 0, 12, rho0).completed().unwrap();
        let want = cg.peek_solution(&emu, rho).z;

        // Crashed run at the paper's site (after the p update) in
        // iteration 8.
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, 12);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LINE10, 8),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let outcome = cg.run(&mut emu, 0, 12, rho0);
        let image = outcome.crashed().expect("must crash");
        let rec = cg.recover_and_resume(&image, cfg());
        assert!(
            max_diff(&rec.solution.z, &want) < 1e-9,
            "recovered solution diverged: {}",
            max_diff(&rec.solution.z, &want)
        );
        assert!(rec.report.lost_units >= 1);
        assert!(rec.report.detect_time.ps() > 0);
    }

    #[test]
    fn detection_restarts_from_crashed_iteration_for_evicted_data() {
        // Tiny cache: everything is evicted almost immediately, so the
        // previous iteration's data is consistent in NVM and only one
        // iteration is lost.
        let (a, b) = problem();
        let tiny = SystemConfig::nvm_only(2 << 10, 64 << 20);
        let mut sys = MemorySystem::new(tiny.clone());
        let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, 10);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LINE10, 7),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = cg.run(&mut emu, 0, 10, rho0).crashed().unwrap();
        let rec = cg.recover_and_resume(&image, tiny);
        // With a 2 KiB cache the iteration-6 data (4 vectors x 200 x 8 B)
        // cannot linger: recovery must find a recent restart point.
        assert!(
            rec.restart_from.is_some(),
            "expected a restart point, got scratch restart"
        );
        assert!(rec.report.lost_units <= 3, "lost {}", rec.report.lost_units);
    }

    #[test]
    fn large_cache_loses_all_iterations() {
        // Cache big enough to hold everything: nothing consistent in NVM,
        // recovery must fall back to the initial state.
        let (a, b) = problem();
        let big = SystemConfig::nvm_only(8 << 20, 64 << 20);
        let mut sys = MemorySystem::new(big.clone());
        let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, 10);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LINE10, 7),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = cg.run(&mut emu, 0, 10, rho0).crashed().unwrap();
        let rec = cg.recover_and_resume(&image, big);
        assert_eq!(rec.restart_from, None);
        assert_eq!(rec.report.lost_units, 8); // iterations 0..=7
    }

    #[test]
    fn windowed_history_matches_full_history_without_crash() {
        let (a, b) = problem();
        let host = super::super::plain::cg_host(&a, &b, 10);
        for window in [3usize, 5, 11] {
            let mut sys = MemorySystem::new(cfg());
            let (cg, rho0) = ExtendedCg::setup_windowed(&mut sys, &a, &b, 10, window);
            let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
            let rho = cg.run(&mut emu, 0, 10, rho0).completed().unwrap();
            let sol = cg.peek_solution(&emu, rho);
            assert!(max_diff(&sol.z, &host) < 1e-10, "window {window} diverged");
        }
    }

    #[test]
    fn windowed_recovery_within_window_is_correct() {
        let (a, b) = problem();
        let reference = super::super::plain::cg_host(&a, &b, 12);
        // Small cache: the previous iteration is evicted, so recovery
        // lands within the 4-iteration window.
        let tiny = SystemConfig::nvm_only(2 << 10, 64 << 20);
        let mut sys = MemorySystem::new(tiny.clone());
        let (cg, rho0) = ExtendedCg::setup_windowed(&mut sys, &a, &b, 12, 4);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LINE10, 9),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = cg.run(&mut emu, 0, 12, rho0).crashed().unwrap();
        let rec = cg.recover_and_resume(&image, tiny);
        assert!(rec.restart_from.is_some(), "should restart within window");
        assert!(max_diff(&rec.solution.z, &reference) < 1e-9);
    }

    #[test]
    fn windowed_recovery_beyond_window_restarts_from_scratch_correctly() {
        let (a, b) = problem();
        let reference = super::super::plain::cg_host(&a, &b, 12);
        // Huge cache: nothing consistent in NVM, and the window has
        // wrapped many times — recovery must rebuild iteration 0 from b.
        let big = SystemConfig::nvm_only(8 << 20, 64 << 20);
        let mut sys = MemorySystem::new(big.clone());
        let (cg, rho0) = ExtendedCg::setup_windowed(&mut sys, &a, &b, 12, 4);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LINE10, 10),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = cg.run(&mut emu, 0, 12, rho0).crashed().unwrap();
        let rec = cg.recover_and_resume(&image, big);
        assert_eq!(rec.restart_from, None);
        assert!(max_diff(&rec.solution.z, &reference) < 1e-9);
    }

    #[test]
    fn windowed_history_uses_less_memory() {
        let (a, b) = problem();
        let mut sys_full = MemorySystem::new(cfg());
        let _ = ExtendedCg::setup(&mut sys_full, &a, &b, 15);
        let full_remaining = 0; // full history allocates 16 rows per array
        let _ = full_remaining;
        let mut sys_win = MemorySystem::new(cfg());
        let (cg, _) = ExtendedCg::setup_windowed(&mut sys_win, &a, &b, 15, 4);
        assert_eq!(cg.window, 4);
        assert_eq!(cg.p.rows(), 4, "ring buffer must be bounded");
    }

    #[test]
    fn only_one_line_flushed_per_iteration() {
        let (a, b) = problem();
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = ExtendedCg::setup(&mut sys, &a, &b, 6);
        let flushes_before = sys.stats().clflushes;
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        cg.run(&mut emu, 0, 6, rho0).completed().unwrap();
        let sys = emu.into_system();
        assert_eq!(
            sys.stats().clflushes - flushes_before,
            6,
            "extended CG must flush exactly one line per iteration"
        );
    }
}
