//! Plain (unextended) CG, in two forms: a host reference implementation
//! and a simulated implementation with one-dimensional work vectors. The
//! simulated form is the application under the paper's *baseline*
//! mechanisms (native, checkpoint, PMEM); the extended form lives in
//! [`crate::cg::extended`].

use adcc_linalg::csr::CsrMatrix;
use adcc_linalg::simops::{self, SimCsr};
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PArray, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use crate::traits::DirtyRestart;

/// Host-side reference CG with x0 = 0; returns the accumulated solution
/// `z` after exactly `iters` iterations. The arithmetic order matches the
/// simulated implementations element-for-element, so results agree to
/// rounding noise.
pub fn cg_host(a: &CsrMatrix, b: &[f64], iters: usize) -> Vec<f64> {
    let n = a.n();
    assert_eq!(b.len(), n);
    let mut p = b.to_vec();
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut rho: f64 = b.iter().map(|x| x * x).sum();
    for _ in 0..iters {
        a.spmv(&p, &mut q);
        let pq: f64 = p.iter().zip(&q).map(|(x, y)| x * y).sum();
        let alpha = rho / pq;
        for j in 0..n {
            z[j] += alpha * p[j];
        }
        for j in 0..n {
            r[j] -= alpha * q[j];
        }
        let rho_new: f64 = r.iter().map(|x| x * x).sum();
        let beta = rho_new / rho;
        for j in 0..n {
            p[j] = r[j] + beta * p[j];
        }
        rho = rho_new;
    }
    z
}

/// Plain CG state resident in simulated NVM (one-dimensional vectors,
/// overwritten every iteration — the paper's Fig. 1).
pub struct PlainCg {
    pub a: SimCsr,
    pub b: PArray<f64>,
    pub p: PArray<f64>,
    pub q: PArray<f64>,
    pub r: PArray<f64>,
    pub z: PArray<f64>,
    /// Persistent scalar state for checkpoint/PMEM variants: `[rho]`.
    pub rho_cell: PScalar<f64>,
    /// Persistent iteration counter for checkpoint/PMEM variants.
    pub iter_cell: PScalar<u64>,
    pub n: usize,
    pub iters: usize,
}

impl PlainCg {
    /// Seed the problem into simulated NVM and initialize
    /// `p = r = b, z = 0` (uncharged: input state). Returns the state and
    /// the initial `rho = bᵀb`.
    pub fn setup(
        sys: &mut MemorySystem,
        a_host: &CsrMatrix,
        b_host: &[f64],
        iters: usize,
    ) -> (Self, f64) {
        let n = a_host.n();
        assert_eq!(b_host.len(), n);
        let a = SimCsr::seed_from(sys, a_host);
        let b = PArray::<f64>::alloc_nvm(sys, n);
        let p = PArray::<f64>::alloc_nvm(sys, n);
        let q = PArray::<f64>::alloc_nvm(sys, n);
        let r = PArray::<f64>::alloc_nvm(sys, n);
        let z = PArray::<f64>::alloc_nvm(sys, n);
        b.seed_slice(sys, b_host);
        p.seed_slice(sys, b_host);
        r.seed_slice(sys, b_host);
        z.seed_slice(sys, &vec![0.0; n]);
        let rho_cell = PScalar::<f64>::alloc_nvm(sys);
        let iter_cell = PScalar::<u64>::alloc_nvm(sys);
        let rho0: f64 = b_host.iter().map(|x| x * x).sum();
        (
            PlainCg {
                a,
                b,
                p,
                q,
                r,
                z,
                rho_cell,
                iter_cell,
                n,
                iters,
            },
            rho0,
        )
    }

    /// One CG iteration through the simulator; returns the new `rho`.
    pub fn step(&self, sys: &mut MemorySystem, rho: f64) -> f64 {
        self.a.spmv(sys, self.p, self.q);
        let pq = simops::dot(sys, self.p, self.q);
        let alpha = rho / pq;
        // z += alpha p ; r -= alpha q (in place).
        for j in 0..self.n {
            let v = self.z.get(sys, j) + alpha * self.p.get(sys, j);
            self.z.set(sys, j, v);
        }
        for j in 0..self.n {
            let v = self.r.get(sys, j) - alpha * self.q.get(sys, j);
            self.r.set(sys, j, v);
        }
        sys.charge_flops(4 * self.n as u64);
        let rho_new = simops::dot(sys, self.r, self.r);
        let beta = rho_new / rho;
        for j in 0..self.n {
            let v = self.r.get(sys, j) + beta * self.p.get(sys, j);
            self.p.set(sys, j, v);
        }
        sys.charge_flops(2 * self.n as u64);
        rho_new
    }

    /// The checkpointable critical regions (the paper checkpoints the
    /// vectors needed to resume: `p, r, z` plus the scalar state).
    pub fn ckpt_regions(&self) -> Vec<(u64, usize)> {
        vec![
            (self.p.base(), self.p.byte_len()),
            (self.r.base(), self.r.byte_len()),
            (self.z.base(), self.z.byte_len()),
            (self.rho_cell.addr(), 8),
            (self.iter_cell.addr(), 8),
        ]
    }

    /// Uncharged extraction of the current solution.
    pub fn peek_solution(&self, sys: &MemorySystem) -> Vec<f64> {
        (0..self.n).map(|j| self.z.peek(sys, j)).collect()
    }

    /// EasyCrash-style dirty restart: reboot from the raw image and
    /// re-enter the loop from the surviving `iter_cell`/`rho_cell` values
    /// — no checkpoint restore, no undo-log replay. With the vectors
    /// overwritten in place, whatever mix of iterations survived in NVM
    /// is what the restart computes on.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig, rho0: f64) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let c = self.iter_cell.get(&mut sys) as usize;
        if c > self.iters {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        let mut rho = if c == 0 {
            rho0
        } else {
            self.rho_cell.get(&mut sys)
        };
        for _ in c..self.iters {
            rho = self.step(&mut sys, rho);
        }
        DirtyRestart {
            solution: Some(self.peek_solution(&sys)),
            extra_units: (self.iters - c) as u64,
            sim_time_ps: (sys.now() - t0).ps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_linalg::spd::CgClass;
    use adcc_sim::system::SystemConfig;

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn host_cg_converges_on_spd() {
        let class = CgClass::TEST;
        let a = class.matrix(1);
        let b = class.rhs(&a);
        // With b = A·1, the solution is the ones vector; diagonally
        // dominant systems converge fast.
        let z = cg_host(&a, &b, 60);
        let err = z.iter().map(|x| (x - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "CG failed to converge, err={err}");
    }

    #[test]
    fn sim_cg_matches_host_reference() {
        let class = CgClass::TEST;
        let a = class.matrix(2);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(64 << 10, 64 << 20));
        let (cg, mut rho) = PlainCg::setup(&mut sys, &a, &b, 8);
        for _ in 0..8 {
            rho = cg.step(&mut sys, rho);
        }
        let z_sim = cg.peek_solution(&sys);
        let z_host = cg_host(&a, &b, 8);
        assert!(max_diff(&z_sim, &z_host) < 1e-11);
    }

    #[test]
    fn residual_identity_holds_in_sim() {
        let class = CgClass::TEST;
        let a = class.matrix(3);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(64 << 10, 64 << 20));
        let (cg, mut rho) = PlainCg::setup(&mut sys, &a, &b, 5);
        for _ in 0..5 {
            rho = cg.step(&mut sys, rho);
        }
        // r should equal b - A z.
        let z = cg.peek_solution(&sys);
        let mut az = vec![0.0; a.n()];
        a.spmv(&z, &mut az);
        for j in 0..a.n() {
            let want = b[j] - az[j];
            let got = cg.r.peek(&sys, j);
            assert!((want - got).abs() < 1e-9, "row {j}: {want} vs {got}");
        }
    }
}
