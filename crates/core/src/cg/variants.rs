//! CG under the baseline mechanisms: per-iteration checkpointing and
//! PMDK-style undo-log transactions (the paper's test cases 2–5).
//!
//! Both are configured for the same recomputation cost as the
//! algorithm-directed scheme (at most one iteration), which is the paper's
//! fairness condition for the runtime comparison of Fig. 4.

use adcc_ckpt::manager::CkptManager;
use adcc_pmem::undo::UndoPool;
use adcc_sim::crash::{CrashEmulator, CrashSite, RunOutcome};

use super::plain::PlainCg;
use super::sites;

/// Run plain CG natively (no persistence mechanism at all).
pub fn run_native(emu: &mut CrashEmulator, cg: &PlainCg, rho0: f64) -> RunOutcome<f64> {
    let mut rho = rho0;
    for i in 0..cg.iters {
        rho = cg.step(emu, rho);
        if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(rho)
}

/// Run plain CG, checkpointing `p, r, z, rho, i` at the end of every
/// iteration (the paper's frequent-checkpoint configuration: "checkpoint
/// at the end of each iteration results in the same recomputation cost as
/// our algorithm-based approach").
pub fn run_with_ckpt(
    emu: &mut CrashEmulator,
    cg: &PlainCg,
    rho0: f64,
    mgr: &mut CkptManager,
) -> RunOutcome<f64> {
    let mut rho = rho0;
    for i in 0..cg.iters {
        rho = cg.step(emu, rho);
        if emu.poll(CrashSite::new(sites::PH_LINE10, i as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
        cg.rho_cell.set(emu, rho);
        // iter_cell holds the count of completed iterations.
        cg.iter_cell.set(emu, (i + 1) as u64);
        mgr.checkpoint(emu);
        if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(rho)
}

/// Restore from the newest checkpoint, or rebuild the initial state when
/// none exists yet. Returns `(completed_iterations, rho, restored)` —
/// `restored == false` means the crash beat the first checkpoint.
pub fn ckpt_restore(
    emu: &mut CrashEmulator,
    cg: &PlainCg,
    rho0: f64,
    mgr: &mut CkptManager,
) -> (usize, f64, bool) {
    match mgr.restore(emu) {
        Some(_) => {
            let rho = cg.rho_cell.get(emu);
            let done = cg.iter_cell.get(emu) as usize;
            (done, rho, true)
        }
        None => {
            // No checkpoint yet: restart from the initial state, which is
            // seeded in NVM. Reset the work vectors from b.
            for j in 0..cg.n {
                let v = cg.b.get(emu, j);
                cg.p.set(emu, j, v);
                cg.r.set(emu, j, v);
                cg.z.set(emu, j, 0.0);
            }
            (0, rho0, false)
        }
    }
}

/// Restore from the newest checkpoint and resume to completion. Returns
/// `(final_rho, iterations_re_executed)`.
pub fn ckpt_restore_and_resume(
    emu: &mut CrashEmulator,
    cg: &PlainCg,
    rho0: f64,
    mgr: &mut CkptManager,
) -> (f64, u64) {
    let (start, mut rho, _) = ckpt_restore(emu, cg, rho0, mgr);
    let mut executed = 0u64;
    for _ in start..cg.iters {
        rho = cg.step(emu, rho);
        executed += 1;
    }
    (rho, executed)
}

/// One CG iteration with PMDK-style per-element `tx_add_range` coverage of
/// the state vectors — the "naive port" an application programmer writes
/// by wrapping every update, which is what produces the paper's 329%
/// overhead / 4.3x preliminary slowdown.
fn step_pmem(cg: &PlainCg, emu: &mut CrashEmulator, pool: &mut UndoPool, rho: f64) -> f64 {
    cg.a.spmv(emu, cg.p, cg.q);
    let pq = adcc_linalg::simops::dot(emu, cg.p, cg.q);
    let alpha = rho / pq;
    for j in 0..cg.n {
        pool.tx_add_range(emu, cg.z.addr(j), 8);
        let v = cg.z.get(emu, j) + alpha * cg.p.get(emu, j);
        cg.z.set(emu, j, v);
    }
    for j in 0..cg.n {
        pool.tx_add_range(emu, cg.r.addr(j), 8);
        let v = cg.r.get(emu, j) - alpha * cg.q.get(emu, j);
        cg.r.set(emu, j, v);
    }
    emu.charge_flops(4 * cg.n as u64);
    let rho_new = adcc_linalg::simops::dot(emu, cg.r, cg.r);
    let beta = rho_new / rho;
    for j in 0..cg.n {
        pool.tx_add_range(emu, cg.p.addr(j), 8);
        let v = cg.r.get(emu, j) + beta * cg.p.get(emu, j);
        cg.p.set(emu, j, v);
    }
    emu.charge_flops(2 * cg.n as u64);
    rho_new
}

/// Run plain CG with each iteration wrapped in an undo-log transaction on
/// `p, r, z` (+ scalar state), as the paper does with the Intel PMEM
/// library ("each iteration of the main loop of CG is a transaction").
pub fn run_with_pmem(
    emu: &mut CrashEmulator,
    cg: &PlainCg,
    rho0: f64,
    pool: &mut UndoPool,
) -> RunOutcome<f64> {
    let mut rho = rho0;
    for i in 0..cg.iters {
        pool.tx_begin(emu);
        rho = step_pmem(cg, emu, pool, rho);
        pool.tx_add_range(emu, cg.rho_cell.addr(), 8);
        pool.tx_add_range(emu, cg.iter_cell.addr(), 8);
        cg.rho_cell.set(emu, rho);
        // iter_cell holds the count of committed iterations.
        cg.iter_cell.set(emu, (i + 1) as u64);
        pool.tx_commit(emu);
        if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(rho)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::plain::cg_host;
    use adcc_linalg::spd::CgClass;
    use adcc_sim::crash::CrashTrigger;
    use adcc_sim::system::{MemorySystem, SystemConfig};
    use adcc_sim::timing::HddTiming;

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(32 << 10, 64 << 20)
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn ckpt_variant_matches_reference_without_crash() {
        let class = CgClass::TEST;
        let a = class.matrix(4);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, 7);
        let mut mgr = CkptManager::new_nvm(&mut sys, cg.ckpt_regions(), false);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        run_with_ckpt(&mut emu, &cg, rho0, &mut mgr)
            .completed()
            .unwrap();
        let got = cg.peek_solution(&emu);
        assert!(max_diff(&got, &cg_host(&a, &b, 7)) < 1e-10);
    }

    #[test]
    fn ckpt_crash_restore_loses_at_most_one_iteration() {
        let class = CgClass::TEST;
        let a = class.matrix(5);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, 10);
        let mut mgr = CkptManager::new_nvm(&mut sys, cg.ckpt_regions(), false);
        // Crash after the iteration body but before the checkpoint of
        // iteration 6 — worst case for the checkpoint scheme.
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_LINE10, 6),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_ckpt(&mut emu, &cg, rho0, &mut mgr)
            .crashed()
            .unwrap();

        let sys2 = MemorySystem::from_image(cfg(), &image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let (_, re_executed) = ckpt_restore_and_resume(&mut emu2, &cg, rho0, &mut mgr);
        // Restored checkpoint is from iteration 5; iterations 6..9 rerun.
        assert_eq!(re_executed, 4);
        let got = cg.peek_solution(&emu2);
        assert!(max_diff(&got, &cg_host(&a, &b, 10)) < 1e-9);
    }

    #[test]
    fn hdd_ckpt_variant_roundtrip() {
        let class = CgClass::TEST;
        let a = class.matrix(6);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, 5);
        let mut mgr = CkptManager::new_hdd(cg.ckpt_regions(), HddTiming::local_disk());
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        run_with_ckpt(&mut emu, &cg, rho0, &mut mgr)
            .completed()
            .unwrap();
        let io = emu.clock().bucket_total(adcc_sim::clock::Bucket::Io);
        assert!(io.ps() > 0, "HDD checkpoints must charge device time");
    }

    #[test]
    fn pmem_variant_matches_reference_and_costs_more() {
        let class = CgClass::TEST;
        let a = class.matrix(8);
        let b = class.rhs(&a);

        // Native timing.
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, 5);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        run_native(&mut emu, &cg, rho0).completed().unwrap();
        let native_time = (emu.now() - t0).ps();

        // PMEM timing.
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, 5);
        let lines = 3 * (cg.n * 8).div_ceil(64) + 8;
        let mut pool = UndoPool::new(&mut sys, lines);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        run_with_pmem(&mut emu, &cg, rho0, &mut pool)
            .completed()
            .unwrap();
        let pmem_time = (emu.now() - t0).ps();

        let got = cg.peek_solution(&emu);
        assert!(max_diff(&got, &cg_host(&a, &b, 5)) < 1e-10);
        assert!(
            pmem_time > 2 * native_time,
            "undo logging should cost far more than native: {pmem_time} vs {native_time}"
        );
    }

    #[test]
    fn pmem_crash_recovers_to_committed_iteration() {
        let class = CgClass::TEST;
        let a = class.matrix(9);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(cfg());
        let (cg, rho0) = PlainCg::setup(&mut sys, &a, &b, 8);
        let lines = 3 * (cg.n * 8).div_ceil(64) + 8;
        let mut pool = UndoPool::new(&mut sys, lines);
        let layout = pool.layout();
        // Crash mid-run: the in-flight transaction aborts on recovery and
        // the state is exactly the last committed iteration's.
        let trig = CrashTrigger::AtAccessCount(40_000);
        let mut emu = CrashEmulator::from_system(sys, trig);
        let outcome = run_with_pmem(&mut emu, &cg, rho0, &mut pool);
        let image = outcome.crashed().expect("access budget must trigger");
        let mut sys2 = MemorySystem::from_image(cfg(), &image);
        UndoPool::recover(layout, &mut sys2);
        let committed = cg.iter_cell.get(&mut sys2) as usize;
        let rho = if committed == 0 {
            rho0
        } else {
            cg.rho_cell.get(&mut sys2)
        };
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let mut r = rho;
        for _ in committed..cg.iters {
            r = cg.step(&mut emu2, r);
        }
        let got = cg.peek_solution(&emu2);
        assert!(max_diff(&got, &cg_host(&a, &b, 8)) < 1e-9);
    }
}
