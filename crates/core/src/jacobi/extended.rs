//! Extended Jacobi: history dimension + one flushed line per iteration,
//! with update-equation recovery.
//!
//! Mirrors [`crate::cg::extended`]: the iterate `x` gains an iteration
//! dimension (full history or a bounded ring of `window >= 3` rows), and
//! the only explicit persistence is one `persist_line` of the iteration
//! counter per iteration. Recovery scans backwards from the crashed
//! iteration and accepts the first `j` whose NVM data satisfies the update
//! equation `x(j+1) = x(j) + ω·D⁻¹·(b − A·x(j))` — one SpMV per candidate,
//! the same cost class as CG's residual check.

use adcc_linalg::csr::CsrMatrix;
use adcc_linalg::simops::SimCsr;
use adcc_sim::clock::SimTime;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PArray, PMatrix, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::plain::inv_diag;
use super::{sites, OMEGA};
use crate::traits::{DirtyRestart, RecoveryReport};

/// Relative tolerance for the update-equation invariant, scaled by ‖b‖.
const TOL_UPDATE: f64 = 1e-6;

/// What recovery did, plus the iterate it produced.
#[derive(Debug, Clone)]
pub struct JacobiRecovery {
    /// The completed iteration accepted as the restart point
    /// (`None` = restart from the initial state).
    pub restart_from: Option<usize>,
    /// Report in the paper's units.
    pub report: RecoveryReport,
    /// The recovered iterate after all `iters` iterations.
    pub solution: Vec<f64>,
}

/// Extended Jacobi state: iterate history over simulated NVM.
pub struct ExtendedJacobi {
    pub a: SimCsr,
    pub b: PArray<f64>,
    pub dinv: PArray<f64>,
    /// `x[i]` is the iterate entering iteration `i` (row `i % window`).
    pub x: PMatrix<f64>,
    /// The one cache line flushed every iteration.
    pub iter_cell: PScalar<u64>,
    /// Volatile scratch for `A·x`.
    ax: PArray<f64>,
    pub n: usize,
    pub iters: usize,
    /// History rows; iteration `i` lives in row `i % window`.
    pub window: usize,
}

impl ExtendedJacobi {
    /// Full-history setup (`iters + 1` rows).
    pub fn setup(sys: &mut MemorySystem, a_host: &CsrMatrix, b_host: &[f64], iters: usize) -> Self {
        Self::setup_windowed(sys, a_host, b_host, iters, iters + 1)
    }

    /// Bounded-history setup: `window >= 3` rows; recovery can restart at
    /// most `window - 2` iterations back.
    pub fn setup_windowed(
        sys: &mut MemorySystem,
        a_host: &CsrMatrix,
        b_host: &[f64],
        iters: usize,
        window: usize,
    ) -> Self {
        let n = a_host.n();
        assert_eq!(b_host.len(), n);
        assert!(window >= 3, "window must hold at least 3 iterations");
        let window = window.min(iters + 1);
        let a = SimCsr::seed_from(sys, a_host);
        let b = PArray::<f64>::alloc_nvm(sys, n);
        b.seed_slice(sys, b_host);
        let dinv = PArray::<f64>::alloc_nvm(sys, n);
        dinv.seed_slice(sys, &inv_diag(a_host));
        let x = PMatrix::<f64>::alloc_nvm(sys, window, n);
        // x[0] = 0 is the zero-initialized NVM.
        let iter_cell = PScalar::<u64>::alloc_nvm(sys);
        let ax = PArray::<f64>::alloc_dram(sys, n);
        ExtendedJacobi {
            a,
            b,
            dinv,
            x,
            iter_cell,
            ax,
            n,
            iters,
            window,
        }
    }

    #[inline]
    fn x_row(&self, i: usize) -> PArray<f64> {
        self.x.row(i % self.window)
    }

    /// Run iterations `[from, to)`. Returns the crash image if the
    /// emulator's trigger fires.
    pub fn run(&self, emu: &mut CrashEmulator, from: usize, to: usize) -> RunOutcome<()> {
        for i in from..to.min(self.iters) {
            // Flush the cache line containing i (the paper's only per-
            // iteration persistence).
            self.iter_cell.set(emu, i as u64);
            self.iter_cell.persist(emu);
            emu.sfence();

            let x_i = self.x_row(i);
            let x_next = self.x_row(i + 1);
            self.a.spmv(emu, x_i, self.ax);
            for j in 0..self.n {
                let v = x_i.get(emu, j)
                    + OMEGA * self.dinv.get(emu, j) * (self.b.get(emu, j) - self.ax.get(emu, j));
                x_next.set(emu, j, v);
            }
            emu.charge_flops(4 * self.n as u64);
            if emu.poll(CrashSite::new(sites::PH_AFTER_X, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
            if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        RunOutcome::Completed(())
    }

    /// Uncharged extraction of the iterate after iteration `iters`.
    pub fn peek_solution(&self, sys: &MemorySystem) -> Vec<f64> {
        let last = self.x_row(self.iters);
        (0..self.n).map(|j| last.peek(sys, j)).collect()
    }

    /// `‖x(j+1) − (x(j) + ω·D⁻¹·(b − A·x(j)))‖ <= TOL · ‖b‖`, plus a
    /// non-degeneracy guard: a candidate whose `x(j+1)` is all zeros can
    /// only be accepted if the recomputed update is genuinely zero (which
    /// the tolerance check already implies), so no extra case is needed —
    /// unlike CG's orthogonality check, the update equation is one-sided
    /// and cannot be satisfied by unwritten rows unless `b = 0`.
    fn check_update(&self, sys: &mut MemorySystem, j: usize, norm_b: f64) -> bool {
        let x_j = self.x_row(j);
        let x_next = self.x_row(j + 1);
        self.a.spmv(sys, x_j, self.ax);
        let mut err2 = 0.0f64;
        for k in 0..self.n {
            let want = x_j.get(sys, k)
                + OMEGA * self.dinv.get(sys, k) * (self.b.get(sys, k) - self.ax.get(sys, k));
            let got = x_next.get(sys, k);
            let d = want - got;
            err2 += d * d;
        }
        sys.charge_flops(6 * self.n as u64);
        err2.is_finite() && err2.sqrt() <= TOL_UPDATE * norm_b
    }

    /// Algorithm-directed restart detection on a post-crash system:
    /// backwards scan for the newest `j` whose `(x(j), x(j+1))` pair in
    /// NVM satisfies the update equation.
    pub fn detect_restart(&self, sys: &mut MemorySystem) -> Option<usize> {
        let crashed = self.iter_cell.get(sys) as usize;
        let norm_b = adcc_linalg::simops::dot(sys, self.b, self.b).sqrt();
        let hi = crashed.min(self.iters - 1);
        // Ring constraint: row (i+1)%w is being overwritten during the
        // crashed iteration, so candidates older than `window - 2` back
        // have lost one of their two rows.
        let lo = (crashed + 1).saturating_sub(self.window.saturating_sub(1));
        (lo..=hi).rev().find(|&j| self.check_update(sys, j, norm_b))
    }

    /// Full recovery: boot from the crash image, detect the restart point,
    /// resume to the crashed iteration, then run to completion.
    pub fn recover_and_resume(&self, image: &NvmImage, cfg: SystemConfig) -> JacobiRecovery {
        let mut sys = MemorySystem::from_image(cfg, image);
        let crashed = self.iter_cell.get(&mut sys) as usize;

        let t0 = sys.now();
        let restart_from = self.detect_restart(&mut sys);
        let t1 = sys.now();

        let resume_at = match restart_from {
            Some(j) => j + 1,
            None => {
                // Rebuild x[0] = 0 (the ring may have overwritten it).
                let x0 = self.x_row(0);
                for k in 0..self.n {
                    x0.set(&mut sys, k, 0.0);
                }
                0
            }
        };

        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let back_at_crash = (crashed + 1).min(self.iters).max(resume_at);
        self.run(&mut emu, resume_at, back_at_crash)
            .completed()
            .expect("trigger is Never");
        let t2 = emu.now();
        self.run(&mut emu, back_at_crash, self.iters)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();

        JacobiRecovery {
            restart_from,
            report: RecoveryReport {
                detect_time: t1 - t0,
                resume_time: t2 - t1,
                lost_units: (crashed + 1 - resume_at) as u64,
                restart_unit: resume_at as u64,
            },
            solution: self.peek_solution(&sys),
        }
    }

    /// EasyCrash-style dirty restart: reboot from the raw image, trust the
    /// surviving `iter_cell` verbatim (no update-equation scan), and run
    /// the remaining iterations on whatever ring contents survived.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let c = self.iter_cell.get(&mut sys) as usize;
        if c >= self.iters {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        self.run(&mut emu, c, self.iters)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();
        DirtyRestart {
            solution: Some(self.peek_solution(&sys)),
            extra_units: (self.iters - c) as u64,
            sim_time_ps: (sys.now() - t0).ps(),
        }
    }

    /// Average per-iteration simulated time of a crash-free run.
    pub fn timed_full_run(&self, sys: MemorySystem) -> (MemorySystem, SimTime) {
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        self.run(&mut emu, 0, self.iters)
            .completed()
            .expect("trigger is Never");
        let per_iter = SimTime((emu.now() - t0).ps() / self.iters as u64);
        (emu.into_system(), per_iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::plain::jacobi_host;
    use adcc_linalg::spd::CgClass;

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(32 << 10, 64 << 20)
    }

    fn problem() -> (CsrMatrix, Vec<f64>) {
        let class = CgClass::TEST;
        let a = class.matrix(21);
        let b = class.rhs(&a);
        (a, b)
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn extended_matches_host_reference() {
        let (a, b) = problem();
        let mut sys = MemorySystem::new(cfg());
        let jac = ExtendedJacobi::setup(&mut sys, &a, &b, 10);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        jac.run(&mut emu, 0, 10).completed().unwrap();
        let got = jac.peek_solution(&emu);
        assert!(max_diff(&got, &jacobi_host(&a, &b, 10)) < 1e-12);
    }

    #[test]
    fn crash_and_recovery_reproduce_no_crash_solution() {
        let (a, b) = problem();
        let want = jacobi_host(&a, &b, 12);
        let mut sys = MemorySystem::new(cfg());
        let jac = ExtendedJacobi::setup(&mut sys, &a, &b, 12);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_X, 8),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = jac.run(&mut emu, 0, 12).crashed().expect("must crash");
        let rec = jac.recover_and_resume(&image, cfg());
        assert!(
            max_diff(&rec.solution, &want) < 1e-9,
            "recovered iterate diverged: {}",
            max_diff(&rec.solution, &want)
        );
        assert!(rec.report.lost_units >= 1);
        assert!(rec.report.detect_time.ps() > 0);
    }

    #[test]
    fn small_cache_recovers_recent_iteration() {
        let (a, b) = problem();
        let tiny = SystemConfig::nvm_only(2 << 10, 64 << 20);
        let mut sys = MemorySystem::new(tiny.clone());
        let jac = ExtendedJacobi::setup(&mut sys, &a, &b, 10);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_X, 7),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = jac.run(&mut emu, 0, 10).crashed().unwrap();
        let rec = jac.recover_and_resume(&image, tiny);
        assert!(rec.restart_from.is_some());
        assert!(rec.report.lost_units <= 3, "lost {}", rec.report.lost_units);
    }

    #[test]
    fn large_cache_restarts_from_scratch() {
        let (a, b) = problem();
        let big = SystemConfig::nvm_only(8 << 20, 64 << 20);
        let mut sys = MemorySystem::new(big.clone());
        let jac = ExtendedJacobi::setup(&mut sys, &a, &b, 10);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_X, 7),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = jac.run(&mut emu, 0, 10).crashed().unwrap();
        let rec = jac.recover_and_resume(&image, big);
        assert_eq!(rec.restart_from, None);
        assert_eq!(rec.report.lost_units, 8);
        assert!(max_diff(&rec.solution, &jacobi_host(&a, &b, 10)) < 1e-9);
    }

    #[test]
    fn windowed_recovery_is_correct() {
        let (a, b) = problem();
        let want = jacobi_host(&a, &b, 12);
        let tiny = SystemConfig::nvm_only(2 << 10, 64 << 20);
        let mut sys = MemorySystem::new(tiny.clone());
        let jac = ExtendedJacobi::setup_windowed(&mut sys, &a, &b, 12, 4);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_X, 9),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = jac.run(&mut emu, 0, 12).crashed().unwrap();
        let rec = jac.recover_and_resume(&image, tiny);
        assert!(rec.restart_from.is_some(), "should restart within window");
        assert!(max_diff(&rec.solution, &want) < 1e-9);
    }

    #[test]
    fn only_one_line_flushed_per_iteration() {
        let (a, b) = problem();
        let mut sys = MemorySystem::new(cfg());
        let jac = ExtendedJacobi::setup(&mut sys, &a, &b, 6);
        let before = sys.stats().clflushes;
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        jac.run(&mut emu, 0, 6).completed().unwrap();
        assert_eq!(emu.stats().clflushes - before, 6);
    }

    #[test]
    fn detection_rejects_torn_iterate() {
        // Manually corrupt half of x[j+1] in NVM and verify the check
        // rejects it.
        let (a, b) = problem();
        let mut sys = MemorySystem::new(cfg());
        let jac = ExtendedJacobi::setup(&mut sys, &a, &b, 6);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        jac.run(&mut emu, 0, 6).completed().unwrap();
        let mut sys = emu.into_system();
        // Persist everything so NVM is the truth, then corrupt x[5]: the
        // scan starts at j = 5 (pair x5/x6) and must reject both j = 5
        // and j = 4 (pair x4/x5) before accepting j = 3 (pair x3/x4).
        jac.x.array().persist_all(&mut sys);
        jac.iter_cell.set(&mut sys, 5);
        jac.iter_cell.persist(&mut sys);
        let x5 = jac.x_row(5);
        for k in 0..jac.n / 2 {
            x5.set(&mut sys, k, 1e30);
        }
        x5.persist_all(&mut sys);
        let image = sys.crash();
        let mut sys2 = MemorySystem::from_image(cfg(), &image);
        assert_eq!(
            jac.detect_restart(&mut sys2),
            Some(3),
            "must reject every candidate whose pair includes x[5]"
        );
    }
}
