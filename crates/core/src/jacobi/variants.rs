//! Jacobi under the baseline mechanisms: per-iteration checkpointing and
//! PMDK-style undo-log transactions, configured (like the paper's CG
//! comparison) for the same at-most-one-iteration recomputation cost as
//! the algorithm-directed scheme.

use adcc_ckpt::manager::CkptManager;
use adcc_pmem::undo::UndoPool;
use adcc_sim::crash::{CrashEmulator, CrashSite, RunOutcome};

use super::plain::PlainJacobi;
use super::sites;

/// Run plain Jacobi natively (no persistence mechanism).
pub fn run_native(emu: &mut CrashEmulator, jac: &PlainJacobi) -> RunOutcome<()> {
    for i in 0..jac.iters {
        jac.step(emu);
        if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

/// Run plain Jacobi, checkpointing `x` and the counter every iteration.
pub fn run_with_ckpt(
    emu: &mut CrashEmulator,
    jac: &PlainJacobi,
    mgr: &mut CkptManager,
) -> RunOutcome<()> {
    for i in 0..jac.iters {
        jac.step(emu);
        if emu.poll(CrashSite::new(sites::PH_AFTER_X, i as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
        jac.iter_cell.set(emu, (i + 1) as u64);
        mgr.checkpoint(emu);
        if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

/// Restore from the newest checkpoint, or reset `x` to the initial zero
/// iterate when none exists yet. Returns `(completed_iterations,
/// restored)`.
pub fn ckpt_restore(
    emu: &mut CrashEmulator,
    jac: &PlainJacobi,
    mgr: &mut CkptManager,
) -> (usize, bool) {
    match mgr.restore(emu) {
        Some(_) => (jac.iter_cell.get(emu) as usize, true),
        None => {
            for j in 0..jac.n {
                jac.x.set(emu, j, 0.0);
            }
            (0, false)
        }
    }
}

/// Restore from the newest checkpoint and resume to completion. Returns
/// the number of iterations re-executed.
pub fn ckpt_restore_and_resume(
    emu: &mut CrashEmulator,
    jac: &PlainJacobi,
    mgr: &mut CkptManager,
) -> u64 {
    let (start, _) = ckpt_restore(emu, jac, mgr);
    let mut executed = 0u64;
    for _ in start..jac.iters {
        jac.step(emu);
        executed += 1;
    }
    executed
}

/// Run plain Jacobi with each iteration's `x` update wrapped in an
/// undo-log transaction (the naive PMDK port).
pub fn run_with_pmem(
    emu: &mut CrashEmulator,
    jac: &PlainJacobi,
    pool: &mut UndoPool,
) -> RunOutcome<()> {
    for i in 0..jac.iters {
        pool.tx_begin(emu);
        jac.a.spmv(emu, jac.x, jac.ax);
        for j in 0..jac.n {
            pool.tx_add_range(emu, jac.x.addr(j), 8);
            let v = jac.x.get(emu, j)
                + super::OMEGA * jac.dinv.get(emu, j) * (jac.b.get(emu, j) - jac.ax.get(emu, j));
            jac.x.set(emu, j, v);
        }
        emu.charge_flops(4 * jac.n as u64);
        pool.tx_add_range(emu, jac.iter_cell.addr(), 8);
        jac.iter_cell.set(emu, (i + 1) as u64);
        pool.tx_commit(emu);
        if emu.poll(CrashSite::new(sites::PH_ITER_END, i as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::plain::jacobi_host;
    use adcc_linalg::spd::CgClass;
    use adcc_sim::crash::CrashTrigger;
    use adcc_sim::system::{MemorySystem, SystemConfig};

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(32 << 10, 64 << 20)
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn ckpt_variant_matches_reference_without_crash() {
        let class = CgClass::TEST;
        let a = class.matrix(24);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(cfg());
        let jac = PlainJacobi::setup(&mut sys, &a, &b, 7);
        let mut mgr = CkptManager::new_nvm(&mut sys, jac.ckpt_regions(), false);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        run_with_ckpt(&mut emu, &jac, &mut mgr).completed().unwrap();
        assert!(max_diff(&jac.peek_solution(&emu), &jacobi_host(&a, &b, 7)) < 1e-12);
    }

    #[test]
    fn ckpt_crash_restore_loses_at_most_one_iteration() {
        let class = CgClass::TEST;
        let a = class.matrix(25);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(cfg());
        let jac = PlainJacobi::setup(&mut sys, &a, &b, 10);
        let mut mgr = CkptManager::new_nvm(&mut sys, jac.ckpt_regions(), false);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_X, 6),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_ckpt(&mut emu, &jac, &mut mgr).crashed().unwrap();
        let sys2 = MemorySystem::from_image(cfg(), &image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let re_executed = ckpt_restore_and_resume(&mut emu2, &jac, &mut mgr);
        assert_eq!(re_executed, 4, "restored at iter 6, reruns 6..10");
        assert!(max_diff(&jac.peek_solution(&emu2), &jacobi_host(&a, &b, 10)) < 1e-9);
    }

    #[test]
    fn pmem_variant_matches_reference_and_costs_more() {
        let class = CgClass::TEST;
        let a = class.matrix(26);
        let b = class.rhs(&a);

        let mut sys = MemorySystem::new(cfg());
        let jac = PlainJacobi::setup(&mut sys, &a, &b, 5);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        run_native(&mut emu, &jac).completed().unwrap();
        let native_time = (emu.now() - t0).ps();

        let mut sys = MemorySystem::new(cfg());
        let jac = PlainJacobi::setup(&mut sys, &a, &b, 5);
        let lines = (jac.n * 8).div_ceil(64) + 8;
        let mut pool = UndoPool::new(&mut sys, lines);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        run_with_pmem(&mut emu, &jac, &mut pool)
            .completed()
            .unwrap();
        let pmem_time = (emu.now() - t0).ps();

        assert!(max_diff(&jac.peek_solution(&emu), &jacobi_host(&a, &b, 5)) < 1e-12);
        assert!(
            pmem_time > 2 * native_time,
            "undo logging should dominate: {pmem_time} vs {native_time}"
        );
    }

    #[test]
    fn pmem_crash_recovers_to_committed_iteration() {
        let class = CgClass::TEST;
        let a = class.matrix(27);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(cfg());
        let jac = PlainJacobi::setup(&mut sys, &a, &b, 8);
        let lines = (jac.n * 8).div_ceil(64) + 8;
        let mut pool = UndoPool::new(&mut sys, lines);
        let layout = pool.layout();
        let trig = CrashTrigger::AtAccessCount(30_000);
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_pmem(&mut emu, &jac, &mut pool)
            .crashed()
            .expect("access budget must trigger");
        let mut sys2 = MemorySystem::from_image(cfg(), &image);
        UndoPool::recover(layout, &mut sys2);
        let committed = jac.iter_cell.get(&mut sys2) as usize;
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        for _ in committed..jac.iters {
            jac.step(&mut emu2);
        }
        assert!(max_diff(&jac.peek_solution(&emu2), &jacobi_host(&a, &b, 8)) < 1e-9);
    }
}
