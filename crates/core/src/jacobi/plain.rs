//! Plain weighted Jacobi: host reference and simulated baseline form.

use adcc_linalg::csr::CsrMatrix;
use adcc_linalg::simops::SimCsr;
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PArray, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::OMEGA;
use crate::traits::DirtyRestart;

/// Extract `1 / diag(A)` from a CSR matrix.
pub fn inv_diag(a: &CsrMatrix) -> Vec<f64> {
    let n = a.n();
    let mut d = vec![0.0; n];
    for i in 0..n {
        for k in a.row_ptr()[i]..a.row_ptr()[i + 1] {
            if a.col_idx()[k] as usize == i {
                d[i] = 1.0 / a.vals()[k];
            }
        }
        assert!(d[i] != 0.0, "zero diagonal in row {i}");
    }
    d
}

/// Host-side reference: `iters` weighted-Jacobi iterations from x0 = 0.
/// The arithmetic order matches the simulated implementations
/// element-for-element.
pub fn jacobi_host(a: &CsrMatrix, b: &[f64], iters: usize) -> Vec<f64> {
    let n = a.n();
    assert_eq!(b.len(), n);
    let dinv = inv_diag(a);
    let mut x = vec![0.0; n];
    let mut ax = vec![0.0; n];
    for _ in 0..iters {
        a.spmv(&x, &mut ax);
        for j in 0..n {
            x[j] += OMEGA * dinv[j] * (b[j] - ax[j]);
        }
    }
    x
}

/// Plain Jacobi state resident in simulated NVM (one `x` vector,
/// overwritten every iteration) — the application under the baseline
/// mechanisms.
pub struct PlainJacobi {
    pub a: SimCsr,
    pub b: PArray<f64>,
    pub dinv: PArray<f64>,
    pub x: PArray<f64>,
    /// Scratch for `A·x` (volatile is fine: recomputed every iteration).
    pub ax: PArray<f64>,
    /// Persistent iteration counter for checkpoint/PMEM variants.
    pub iter_cell: PScalar<u64>,
    pub n: usize,
    pub iters: usize,
}

impl PlainJacobi {
    /// Seed the problem into simulated NVM with `x = 0` (uncharged input
    /// state).
    pub fn setup(sys: &mut MemorySystem, a_host: &CsrMatrix, b_host: &[f64], iters: usize) -> Self {
        let n = a_host.n();
        assert_eq!(b_host.len(), n);
        let a = SimCsr::seed_from(sys, a_host);
        let b = PArray::<f64>::alloc_nvm(sys, n);
        b.seed_slice(sys, b_host);
        let dinv = PArray::<f64>::alloc_nvm(sys, n);
        dinv.seed_slice(sys, &inv_diag(a_host));
        let x = PArray::<f64>::alloc_nvm(sys, n);
        let ax = PArray::<f64>::alloc_dram(sys, n);
        let iter_cell = PScalar::<u64>::alloc_nvm(sys);
        PlainJacobi {
            a,
            b,
            dinv,
            x,
            ax,
            iter_cell,
            n,
            iters,
        }
    }

    /// One weighted-Jacobi iteration through the simulator.
    pub fn step(&self, sys: &mut MemorySystem) {
        self.a.spmv(sys, self.x, self.ax);
        for j in 0..self.n {
            let v = self.x.get(sys, j)
                + OMEGA * self.dinv.get(sys, j) * (self.b.get(sys, j) - self.ax.get(sys, j));
            self.x.set(sys, j, v);
        }
        sys.charge_flops(4 * self.n as u64);
    }

    /// The checkpointable critical regions (`x` plus the counter).
    pub fn ckpt_regions(&self) -> Vec<(u64, usize)> {
        vec![
            (self.x.base(), self.x.byte_len()),
            (self.iter_cell.addr(), 8),
        ]
    }

    /// Uncharged extraction of the current iterate.
    pub fn peek_solution(&self, sys: &MemorySystem) -> Vec<f64> {
        (0..self.n).map(|j| self.x.peek(sys, j)).collect()
    }

    /// EasyCrash-style dirty restart: reboot from the raw image and finish
    /// the loop from the surviving `iter_cell` on the surviving `x` — no
    /// checkpoint restore, no undo-log replay.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let c = self.iter_cell.get(&mut sys) as usize;
        if c > self.iters {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        for _ in c..self.iters {
            self.step(&mut sys);
        }
        DirtyRestart {
            solution: Some(self.peek_solution(&sys)),
            extra_units: (self.iters - c) as u64,
            sim_time_ps: (sys.now() - t0).ps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_linalg::spd::CgClass;
    use adcc_sim::system::SystemConfig;

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn host_jacobi_converges_on_dominant_spd() {
        let class = CgClass::TEST;
        let a = class.matrix(11);
        let b = class.rhs(&a);
        // Solution is the ones vector (b = A·1).
        let x = jacobi_host(&a, &b, 200);
        let err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "Jacobi failed to converge, err={err}");
    }

    #[test]
    fn host_jacobi_error_is_monotone_nonincreasing_late() {
        let class = CgClass::TEST;
        let a = class.matrix(12);
        let b = class.rhs(&a);
        let err = |iters| {
            jacobi_host(&a, &b, iters)
                .iter()
                .map(|v: &f64| (v - 1.0).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(80) <= err(40));
        assert!(err(160) <= err(80));
    }

    #[test]
    fn sim_jacobi_matches_host_reference() {
        let class = CgClass::TEST;
        let a = class.matrix(13);
        let b = class.rhs(&a);
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(64 << 10, 64 << 20));
        let jac = PlainJacobi::setup(&mut sys, &a, &b, 10);
        for _ in 0..10 {
            jac.step(&mut sys);
        }
        let got = jac.peek_solution(&sys);
        let want = jacobi_host(&a, &b, 10);
        assert!(max_diff(&got, &want) < 1e-12);
    }

    #[test]
    fn inv_diag_extracts_reciprocals() {
        let class = CgClass::TEST;
        let a = class.matrix(14);
        let d = inv_diag(&a);
        for i in 0..a.n() {
            for k in a.row_ptr()[i]..a.row_ptr()[i + 1] {
                if a.col_idx()[k] as usize == i {
                    assert!((d[i] * a.vals()[k] - 1.0).abs() < 1e-14);
                }
            }
        }
    }
}
