//! Algorithm-directed crash consistence for the weighted Jacobi method
//! (an extension beyond the paper; DESIGN.md §5a).
//!
//! The paper demonstrates its recipe on CG; Jacobi is the natural second
//! iterative solver to instantiate it on, because its update
//!
//! ```text
//! x(i+1) = x(i) + ω · D⁻¹ · (b − A·x(i))
//! ```
//!
//! is itself a checkable invariant: given candidate NVM data for
//! iterations `j` and `j + 1`, recovery recomputes the right-hand side
//! from `x(j)` (one SpMV) and accepts `j` iff it reproduces `x(j+1)`.
//! The runtime extension is identical in spirit to the paper's CG scheme —
//! a history dimension on `x` plus one flushed cache line (the iteration
//! counter) per iteration.

pub mod extended;
pub mod plain;
pub mod variants;

pub use extended::{ExtendedJacobi, JacobiRecovery};
pub use plain::{jacobi_host, PlainJacobi};

/// Damping factor used throughout (safe for strictly diagonally dominant
/// systems and matches the host reference arithmetic exactly).
pub const OMEGA: f64 = 0.8;

/// Crash-site phases for Jacobi (see [`adcc_sim::crash::CrashSite`]).
pub mod sites {
    /// After the `x(i+1)` update completes.
    pub const PH_AFTER_X: u32 = 30;
    /// End of one main-loop iteration.
    pub const PH_ITER_END: u32 = 31;
}
