//! Host-side LU reference: generation, factorization, reconstruction.

use adcc_linalg::dense::Matrix;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A dense, strictly diagonally dominant matrix (unpivoted LU is stable on
/// these): random entries in [-1, 1] plus `rowsum + 1` on the diagonal.
pub fn dominant_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        let mut rowsum = 0.0;
        for j in 0..n {
            if i == j {
                continue;
            }
            let v: f64 = rng.random_range(-1.0..1.0);
            m.set(i, j, v);
            rowsum += v.abs();
        }
        m.set(i, i, rowsum + 1.0);
    }
    m
}

/// Textbook right-looking unpivoted LU. Returns the combined factor
/// matrix (`L` strictly below the diagonal with unit diagonal implied,
/// `U` on and above).
pub fn lu_host(a: &Matrix) -> Matrix {
    let n = a.rows();
    assert_eq!(n, a.cols(), "LU needs a square matrix");
    let mut f = a.clone();
    for k in 0..n {
        let pivot = f.get(k, k);
        assert!(pivot != 0.0, "zero pivot at step {k}");
        for i in k + 1..n {
            let l = f.get(i, k) / pivot;
            f.set(i, k, l);
            for j in k + 1..n {
                let v = f.get(i, j) - l * f.get(k, j);
                f.set(i, j, v);
            }
        }
    }
    f
}

/// Multiply the `L` and `U` stored in a combined factor matrix back into
/// a full matrix (for verification against the input).
pub fn lu_reconstruct(f: &Matrix) -> Matrix {
    let n = f.rows();
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            // (L·U)[i][j] = Σ_k L[i][k] · U[k][j], L unit diagonal.
            let kmax = i.min(j);
            for k in 0..=kmax {
                let l = if k == i { 1.0 } else { f.get(i, k) };
                let u = f.get(k, j);
                s += l * u;
            }
            a.set(i, j, s);
        }
    }
    a
}

/// Solve `A·x = b` from a combined factor (forward + back substitution).
pub fn lu_solve(f: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = f.rows();
    assert_eq!(b.len(), n);
    // Ly = b (unit lower).
    let mut y = b.to_vec();
    for i in 0..n {
        for k in 0..i {
            y[i] -= f.get(i, k) * y[k];
        }
    }
    // Ux = y.
    let mut x = y;
    for i in (0..n).rev() {
        for k in i + 1..n {
            x[i] -= f.get(i, k) * x[k];
        }
        x[i] /= f.get(i, i);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_matrix_is_dominant() {
        let m = dominant_matrix(40, 3);
        for i in 0..40 {
            let off: f64 = (0..40).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
            assert!(m.get(i, i) > off);
        }
    }

    #[test]
    fn lu_reconstructs_input() {
        let a = dominant_matrix(24, 7);
        let f = lu_host(&a);
        let back = lu_reconstruct(&f);
        assert!(
            a.max_abs_diff(&back) < 1e-10,
            "LU·reconstruct diverged by {}",
            a.max_abs_diff(&back)
        );
    }

    #[test]
    fn lu_solve_solves() {
        let a = dominant_matrix(16, 9);
        let f = lu_host(&a);
        // b = A·1 so x = 1.
        let ones = [1.0; 16];
        let mut b = vec![0.0; 16];
        for i in 0..16 {
            b[i] = (0..16).map(|j| a.get(i, j) * ones[j]).sum();
        }
        let x = lu_solve(&f, &b);
        for v in x {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn l_column_checksum_invariant_holds() {
        // The invariant the NVM recovery relies on, checked on the host:
        // running the checksum row through the same eliminations yields
        // column sums of L.
        let n = 20;
        let a = dominant_matrix(n, 11);
        // Augmented factorization, column version.
        let mut f = vec![vec![0.0f64; n + 1]; n]; // f[col][row]
        for j in 0..n {
            for i in 0..n {
                f[j][i] = a.get(i, j);
            }
            f[j][n] = (0..n).map(|i| a.get(i, j)).sum();
        }
        for c in 0..n {
            for k in 0..c {
                let w_k = f[c][k];
                for i in k + 1..=n {
                    f[c][i] -= f[k][i] * w_k;
                }
            }
            // Apply within-column elimination then divide.
            let pivot = f[c][c];
            for i in c + 1..=n {
                f[c][i] /= pivot;
            }
        }
        for j in 0..n {
            let want: f64 = 1.0 + (j + 1..n).map(|i| f[j][i]).sum::<f64>();
            assert!(
                (f[j][n] - want).abs() < 1e-9 * want.abs().max(1.0),
                "column {j}: checksum {} vs L-sum {want}",
                f[j][n]
            );
        }
    }
}
