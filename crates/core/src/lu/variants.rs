//! LU under the baseline mechanisms: per-block checkpointing and
//! PMDK-style undo-log transactions, both configured for at-most-one-block
//! recomputation (the paper's fairness condition).

use adcc_ckpt::manager::CkptManager;
use adcc_pmem::undo::UndoPool;
use adcc_sim::crash::{CrashEmulator, CrashSite, RunOutcome};

use super::checksum_lu::ChecksumLu;
use super::sites;

/// Run the factorization natively (checksums still computed — the ABFT
/// arithmetic is part of the kernel — but nothing is flushed).
pub fn run_native(emu: &mut CrashEmulator, lu: &ChecksumLu) -> RunOutcome<()> {
    for b in 0..lu.blocks() {
        let cols = b * lu.bk..((b + 1) * lu.bk).min(lu.n);
        for c in cols {
            lu.process_column(emu, c);
            if emu.poll(CrashSite::new(sites::PH_AFTER_COL, c as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        if emu.poll(CrashSite::new(sites::PH_BLOCK_END, b as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

/// Run with a full checkpoint of the factor after every block.
pub fn run_with_ckpt(
    emu: &mut CrashEmulator,
    lu: &ChecksumLu,
    mgr: &mut CkptManager,
) -> RunOutcome<()> {
    for b in 0..lu.blocks() {
        let cols = b * lu.bk..((b + 1) * lu.bk).min(lu.n);
        for c in cols {
            lu.process_column(emu, c);
            if emu.poll(CrashSite::new(sites::PH_AFTER_COL, c as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        lu.blk_cell.set(emu, (b + 1) as u64);
        mgr.checkpoint(emu);
        if emu.poll(CrashSite::new(sites::PH_BLOCK_END, b as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

/// Restore from the newest checkpoint, or wipe the factor back to zeros
/// when none exists yet. Returns `(completed_blocks, restored)`.
pub fn ckpt_restore(
    emu: &mut CrashEmulator,
    lu: &ChecksumLu,
    mgr: &mut CkptManager,
) -> (usize, bool) {
    match mgr.restore(emu) {
        Some(_) => (lu.blk_cell.get(emu) as usize, true),
        None => {
            // No checkpoint: wipe the factor back to zeros.
            let zero = vec![0.0f64; lu.n + 1];
            for j in 0..lu.n {
                lu.f.row(j).store_slice(emu, &zero);
            }
            (0, false)
        }
    }
}

/// Restore from the newest checkpoint and resume. Returns the number of
/// blocks re-executed.
pub fn ckpt_restore_and_resume(
    emu: &mut CrashEmulator,
    lu: &ChecksumLu,
    mgr: &mut CkptManager,
) -> u64 {
    let (start, _) = ckpt_restore(emu, lu, mgr);
    let mut executed = 0u64;
    for b in start..lu.blocks() {
        let cols = b * lu.bk..((b + 1) * lu.bk).min(lu.n);
        for c in cols {
            lu.process_column(emu, c);
        }
        executed += 1;
    }
    executed
}

/// The checkpointable regions for the checkpoint variant: the whole
/// factor, the `U` digests, and the progress counter.
pub fn lu_ckpt_regions(lu: &ChecksumLu) -> Vec<(u64, usize)> {
    vec![
        (lu.f.array().base(), lu.f.array().byte_len()),
        (lu.cs_u.base(), lu.cs_u.byte_len()),
        (lu.blk_cell.addr(), 8),
    ]
}

/// Run with each block wrapped in an undo-log transaction covering the
/// block's columns (the naive PMDK port — left-looking writes exactly the
/// block, so the transaction ranges are the block's columns).
pub fn run_with_pmem(
    emu: &mut CrashEmulator,
    lu: &ChecksumLu,
    pool: &mut UndoPool,
) -> RunOutcome<()> {
    for b in 0..lu.blocks() {
        let cols = b * lu.bk..((b + 1) * lu.bk).min(lu.n);
        pool.tx_begin(emu);
        for c in cols.clone() {
            pool.tx_add_range(emu, lu.f.row(c).base(), (lu.n + 1) * 8);
            pool.tx_add_range(emu, lu.cs_u.addr(c), 8);
        }
        pool.tx_add_range(emu, lu.blk_cell.addr(), 8);
        for c in cols {
            lu.process_column(emu, c);
        }
        lu.blk_cell.set(emu, (b + 1) as u64);
        pool.tx_commit(emu);
        if emu.poll(CrashSite::new(sites::PH_BLOCK_END, b as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
    }
    RunOutcome::Completed(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::host::{dominant_matrix, lu_host};
    use adcc_sim::crash::CrashTrigger;
    use adcc_sim::system::{MemorySystem, SystemConfig};

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(8 << 10, 64 << 20)
    }

    #[test]
    fn native_matches_host() {
        let a = dominant_matrix(16, 41);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 4);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        run_native(&mut emu, &lu).completed().unwrap();
        assert!(lu.peek_factor(&emu).max_abs_diff(&lu_host(&a)) < 1e-10);
    }

    #[test]
    fn ckpt_crash_restores_block_granular() {
        let a = dominant_matrix(16, 42);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 4);
        let mut mgr = CkptManager::new_nvm(&mut sys, lu_ckpt_regions(&lu), false);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_COL, 9),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = run_with_ckpt(&mut emu, &lu, &mut mgr).crashed().unwrap();
        let sys2 = MemorySystem::from_image(cfg(), &image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let redone = ckpt_restore_and_resume(&mut emu2, &lu, &mut mgr);
        assert_eq!(redone, 2, "blocks 2 and 3 re-run after restore at 2");
        assert!(lu.peek_factor(&emu2).max_abs_diff(&lu_host(&a)) < 1e-10);
    }

    #[test]
    fn pmem_variant_matches_host_and_costs_more() {
        let a = dominant_matrix(16, 43);

        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 4);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        run_native(&mut emu, &lu).completed().unwrap();
        let native_time = (emu.now() - t0).ps();

        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 4);
        let lines = 4 * (lu.n + 1) + 16;
        let mut pool = UndoPool::new(&mut sys, lines);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        run_with_pmem(&mut emu, &lu, &mut pool).completed().unwrap();
        let pmem_time = (emu.now() - t0).ps();

        assert!(lu.peek_factor(&emu).max_abs_diff(&lu_host(&a)) < 1e-10);
        assert!(
            pmem_time > native_time,
            "undo logging must cost more: {pmem_time} vs {native_time}"
        );
    }
}
