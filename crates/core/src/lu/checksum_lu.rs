//! Checksum-augmented left-looking LU over simulated NVM, with
//! algorithm-directed crash recovery.
//!
//! Storage is column-major: `f.row(j)` *in the [`PMatrix`] sense* holds
//! **column** `j` of the augmented factor — `n` working entries (`L`
//! below the diagonal, `U` on/above) plus the maintained `L` checksum in
//! slot `n`. Column-major layout makes each column contiguous, so a
//! column's lines age out of the cache together, which is what gives
//! recovery its "only recent blocks are torn" behaviour.

use adcc_linalg::dense::Matrix;
use adcc_sim::clock::SimTime;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::parray::{PArray, PMatrix, PScalar};
use adcc_sim::system::{MemorySystem, SystemConfig};

use super::sites;
use crate::traits::{DirtyRestart, RecoveryReport};

/// Relative tolerance for checksum verification (scaled by the column's
/// absolute sum; covers elimination-order rounding drift).
const TOL_CKSUM: f64 = 1e-8;

/// Verification verdict for one column block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuBlockStatus {
    /// Both checksum invariants hold for every column of the block.
    Consistent,
    /// At least one column failed; the block must be refactored.
    Inconsistent,
}

/// What recovery did, plus where the factor ended up.
#[derive(Debug, Clone)]
pub struct LuRecovery {
    /// Verdict per claimed-complete block (index < crashed block).
    pub statuses: Vec<LuBlockStatus>,
    /// Report in the paper's units (blocks lost, detect/resume split).
    pub report: RecoveryReport,
    /// The recovered combined factor (checksum row stripped).
    pub factor: Matrix,
}

/// Checksum-augmented left-looking blocked LU state in simulated NVM.
pub struct ChecksumLu {
    /// Augmented input, column-major: row `j` = column `j` of `[A; vᵀA]`.
    /// Read-only after seeding.
    pub acf: PMatrix<f64>,
    /// Augmented factor, column-major: row `j` = column `j` of
    /// `[L\U; csL]`.
    pub f: PMatrix<f64>,
    /// `U` digests per column, flushed at block completion.
    pub cs_u: PArray<f64>,
    /// Flushed progress counter: the block currently being processed.
    pub blk_cell: PScalar<u64>,
    pub n: usize,
    /// Column-block width.
    pub bk: usize,
}

impl ChecksumLu {
    /// Seed the augmented input into NVM (uncharged input state).
    pub fn setup(sys: &mut MemorySystem, a: &Matrix, bk: usize) -> Self {
        let n = a.rows();
        assert_eq!(n, a.cols(), "LU needs a square matrix");
        assert!(bk >= 1 && bk <= n, "block width {bk} out of range");
        let acf = PMatrix::<f64>::alloc_nvm(sys, n, n + 1);
        let mut col = vec![0.0f64; n + 1];
        for j in 0..n {
            let mut sum = 0.0;
            for (i, c) in col.iter_mut().enumerate().take(n) {
                let v = a.get(i, j);
                *c = v;
                sum += v;
            }
            col[n] = sum;
            acf.row(j).seed_slice(sys, &col);
        }
        let f = PMatrix::<f64>::alloc_nvm(sys, n, n + 1);
        let cs_u = PArray::<f64>::alloc_nvm(sys, n);
        let blk_cell = PScalar::<u64>::alloc_nvm(sys);
        ChecksumLu {
            acf,
            f,
            cs_u,
            blk_cell,
            n,
            bk,
        }
    }

    /// Number of column blocks.
    pub fn blocks(&self) -> usize {
        self.n.div_ceil(self.bk)
    }

    /// Column range of block `b`.
    fn block_cols(&self, b: usize) -> std::ops::Range<usize> {
        let lo = b * self.bk;
        lo..(lo + self.bk).min(self.n)
    }

    /// Process one column: copy from the augmented input, apply all
    /// earlier eliminations (left-looking), divide by the pivot, and
    /// record the `U` digest (not yet flushed). Public so the baseline
    /// variants can reuse the identical kernel arithmetic.
    pub fn process_column(&self, sys: &mut MemorySystem, c: usize) {
        self.process_column_inner(sys, c, true);
    }

    /// The column kernel. `strict` guards the zero-pivot assert; the dirty
    /// restart path passes `false` so exactly-cancelled garbage divides
    /// into inf/NaN (classified as divergence) instead of panicking.
    fn process_column_inner(&self, sys: &mut MemorySystem, c: usize, strict: bool) {
        let src = self.acf.row(c);
        let dst = self.f.row(c);
        for i in 0..=self.n {
            let v = src.get(sys, i);
            dst.set(sys, i, v);
        }
        for k in 0..c {
            let w_k = dst.get(sys, k);
            if w_k == 0.0 {
                continue;
            }
            let fk = self.f.row(k);
            for i in k + 1..=self.n {
                let v = dst.get(sys, i) - fk.get(sys, i) * w_k;
                dst.set(sys, i, v);
            }
            sys.charge_flops(2 * (self.n - k) as u64);
        }
        let pivot = dst.get(sys, c);
        assert!(!strict || pivot != 0.0, "zero pivot in column {c}");
        for i in c + 1..=self.n {
            let v = dst.get(sys, i) / pivot;
            dst.set(sys, i, v);
        }
        sys.charge_flops((self.n - c) as u64);
        // U digest: Σ_{i<=c} F[i][c], ascending order (recovery recomputes
        // in the same order).
        let mut u_sum = 0.0;
        for i in 0..=c {
            u_sum += dst.get(sys, i);
        }
        sys.charge_flops((c + 1) as u64);
        self.cs_u.set(sys, c, u_sum);
    }

    /// Process block `b`: flush the progress counter, factor its columns,
    /// then flush only the checksum entries (the paper's sparse-flush
    /// budget: one line per column for `csL` + the block's `cs_u` lines).
    pub fn run_block(&self, emu: &mut CrashEmulator, b: usize) -> RunOutcome<()> {
        self.blk_cell.set(emu, b as u64);
        self.blk_cell.persist(emu);
        emu.sfence();
        let cols = self.block_cols(b);
        for c in cols.clone() {
            self.process_column(emu, c);
            if emu.poll(CrashSite::new(sites::PH_AFTER_COL, c as u64)) {
                return RunOutcome::Crashed(emu.crash_now());
            }
        }
        for c in cols.clone() {
            emu.persist_line(self.f.row(c).addr(self.n));
        }
        emu.persist_range(self.cs_u.addr(cols.start), (cols.end - cols.start) * 8);
        emu.sfence();
        if emu.poll(CrashSite::new(sites::PH_BLOCK_END, b as u64)) {
            return RunOutcome::Crashed(emu.crash_now());
        }
        RunOutcome::Completed(())
    }

    /// Run blocks `[from, blocks())`.
    pub fn run(&self, emu: &mut CrashEmulator, from: usize) -> RunOutcome<()> {
        for b in from..self.blocks() {
            if let RunOutcome::Crashed(img) = self.run_block(emu, b) {
                return RunOutcome::Crashed(img);
            }
        }
        RunOutcome::Completed(())
    }

    /// Verify one block's columns against both flushed checksums
    /// (charged reads).
    pub fn verify_block(&self, sys: &mut MemorySystem, b: usize) -> LuBlockStatus {
        for c in self.block_cols(b) {
            let col = self.f.row(c);
            let mut l_sum = 1.0f64;
            let mut u_sum = 0.0f64;
            let mut scale = 1.0f64;
            for i in 0..=self.n - 1 {
                let v = col.get(sys, i);
                if i <= c {
                    u_sum += v;
                } else {
                    l_sum += v;
                }
                scale += v.abs();
            }
            sys.charge_flops(2 * self.n as u64);
            let cs_l = col.get(sys, self.n);
            let cs_u = self.cs_u.get(sys, c);
            if !(l_sum.is_finite() && u_sum.is_finite()) {
                return LuBlockStatus::Inconsistent;
            }
            if (l_sum - cs_l).abs() > TOL_CKSUM * scale || (u_sum - cs_u).abs() > TOL_CKSUM * scale
            {
                return LuBlockStatus::Inconsistent;
            }
        }
        LuBlockStatus::Consistent
    }

    /// Full recovery: verify every claimed-complete block, refactor the
    /// inconsistent ones in ascending order (sound for left-looking LU),
    /// then finish from the in-flight block.
    pub fn recover_and_resume(&self, image: &NvmImage, cfg: SystemConfig) -> LuRecovery {
        let mut sys = MemorySystem::from_image(cfg, image);
        let crashed_blk = (self.blk_cell.get(&mut sys) as usize).min(self.blocks() - 1);

        let t0 = sys.now();
        let statuses: Vec<LuBlockStatus> = (0..crashed_blk)
            .map(|b| self.verify_block(&mut sys, b))
            .collect();
        let t1 = sys.now();

        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let mut lost = 1u64; // the in-flight block is always redone
        for (b, st) in statuses.iter().enumerate() {
            if *st == LuBlockStatus::Inconsistent {
                lost += 1;
                self.run_block(&mut emu, b)
                    .completed()
                    .expect("trigger is Never");
            }
        }
        // Redo the in-flight block and everything after it.
        self.run_block(&mut emu, crashed_blk)
            .completed()
            .expect("trigger is Never");
        let t2 = emu.now();
        self.run(&mut emu, crashed_blk + 1)
            .completed()
            .expect("trigger is Never");
        let sys = emu.into_system();

        LuRecovery {
            statuses,
            report: RecoveryReport {
                detect_time: t1 - t0,
                resume_time: t2 - t1,
                lost_units: lost,
                restart_unit: crashed_blk as u64,
            },
            factor: self.peek_factor(&sys),
        }
    }

    /// EasyCrash-style dirty restart: reboot from the raw image, trust the
    /// surviving `blk_cell` verbatim (no checksum verification, no
    /// refactoring of torn earlier blocks), and factor the remaining
    /// blocks on top of whatever survived.
    pub fn dirty_restart(&self, image: &NvmImage, cfg: SystemConfig) -> DirtyRestart {
        let mut sys = MemorySystem::dirty_reboot(cfg, image);
        let t0 = sys.now();
        let blk = self.blk_cell.get(&mut sys) as usize;
        if blk >= self.blocks() {
            // The loop bound itself rejects a counter past the end.
            return DirtyRestart::rejected((sys.now() - t0).ps());
        }
        for b in blk..self.blocks() {
            self.blk_cell.set(&mut sys, b as u64);
            self.blk_cell.persist(&mut sys);
            sys.sfence();
            let cols = self.block_cols(b);
            for c in cols.clone() {
                self.process_column_inner(&mut sys, c, false);
            }
            for c in cols.clone() {
                sys.persist_line(self.f.row(c).addr(self.n));
            }
            sys.persist_range(self.cs_u.addr(cols.start), (cols.end - cols.start) * 8);
            sys.sfence();
        }
        let m = self.peek_factor(&sys);
        let mut flat = Vec::with_capacity(self.n * self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                flat.push(m.get(i, j));
            }
        }
        DirtyRestart {
            solution: Some(flat),
            extra_units: (self.blocks() - blk) as u64,
            sim_time_ps: (sys.now() - t0).ps(),
        }
    }

    /// Uncharged extraction of the combined factor (checksum row
    /// stripped).
    pub fn peek_factor(&self, sys: &MemorySystem) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for j in 0..self.n {
            let col = self.f.row(j);
            for i in 0..self.n {
                m.set(i, j, col.peek(sys, i));
            }
        }
        m
    }

    /// Average per-block simulated time of a crash-free run.
    pub fn timed_full_run(&self, sys: MemorySystem) -> (MemorySystem, SimTime) {
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let t0 = emu.now();
        self.run(&mut emu, 0).completed().expect("trigger is Never");
        let per_block = SimTime((emu.now() - t0).ps() / self.blocks() as u64);
        (emu.into_system(), per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::host::{dominant_matrix, lu_host, lu_reconstruct};
    use adcc_sim::parray::Pod;

    fn cfg() -> SystemConfig {
        SystemConfig::nvm_only(8 << 10, 64 << 20)
    }

    #[test]
    fn factor_matches_host_reference() {
        let a = dominant_matrix(24, 31);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 6);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        lu.run(&mut emu, 0).completed().unwrap();
        let got = lu.peek_factor(&emu);
        let want = lu_host(&a);
        assert!(
            got.max_abs_diff(&want) < 1e-10,
            "factor diverged by {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = dominant_matrix(20, 32);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 5);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        lu.run(&mut emu, 0).completed().unwrap();
        let back = lu_reconstruct(&lu.peek_factor(&emu));
        assert!(a.max_abs_diff(&back) < 1e-9);
    }

    #[test]
    fn all_blocks_verify_after_clean_run() {
        let a = dominant_matrix(18, 33);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 6);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        lu.run(&mut emu, 0).completed().unwrap();
        let mut sys = emu.into_system();
        for b in 0..lu.blocks() {
            assert_eq!(lu.verify_block(&mut sys, b), LuBlockStatus::Consistent);
        }
    }

    #[test]
    fn torn_column_in_nvm_is_detected() {
        let a = dominant_matrix(18, 34);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 6);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        lu.run(&mut emu, 0).completed().unwrap();
        let mut sys = emu.into_system();
        lu.f.array().persist_all(&mut sys);
        // Corrupt one element of column 7 (block 1) directly in NVM.
        let mut bytes = [0u8; 8];
        42.0f64.to_bytes(&mut bytes);
        sys.seed_bytes(lu.f.row(7).addr(3), &bytes);
        let img = sys.crash();
        let mut sys2 = MemorySystem::from_image(cfg(), &img);
        assert_eq!(lu.verify_block(&mut sys2, 0), LuBlockStatus::Consistent);
        assert_eq!(lu.verify_block(&mut sys2, 1), LuBlockStatus::Inconsistent);
        assert_eq!(lu.verify_block(&mut sys2, 2), LuBlockStatus::Consistent);
    }

    #[test]
    fn crash_and_recovery_match_host_factor() {
        let a = dominant_matrix(24, 35);
        let want = lu_host(&a);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 4);
        // Crash mid-block-3 (after its second column).
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_COL, 13),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = lu.run(&mut emu, 0).crashed().expect("must crash");
        let rec = lu.recover_and_resume(&image, cfg());
        assert!(
            rec.factor.max_abs_diff(&want) < 1e-10,
            "recovered factor diverged by {}",
            rec.factor.max_abs_diff(&want)
        );
        assert!(rec.report.lost_units >= 1);
        assert_eq!(rec.statuses.len(), 3, "blocks 0..3 were claimed complete");
    }

    #[test]
    fn tiny_cache_loses_only_the_inflight_block() {
        let a = dominant_matrix(32, 36);
        let tiny = SystemConfig::nvm_only(2 << 10, 64 << 20);
        let mut sys = MemorySystem::new(tiny.clone());
        let lu = ChecksumLu::setup(&mut sys, &a, 8);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_COL, 26),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = lu.run(&mut emu, 0).crashed().unwrap();
        let rec = lu.recover_and_resume(&image, tiny);
        assert!(
            rec.report.lost_units <= 2,
            "tiny cache should keep old blocks consistent, lost {}",
            rec.report.lost_units
        );
        assert!(rec.factor.max_abs_diff(&lu_host(&a)) < 1e-10);
    }

    #[test]
    fn huge_cache_loses_many_blocks_but_recovers() {
        let a = dominant_matrix(24, 37);
        let big = SystemConfig::nvm_only(8 << 20, 64 << 20);
        let mut sys = MemorySystem::new(big.clone());
        let lu = ChecksumLu::setup(&mut sys, &a, 4);
        let trig = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_COL, 17),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trig);
        let image = lu.run(&mut emu, 0).crashed().unwrap();
        let rec = lu.recover_and_resume(&image, big);
        assert!(
            rec.statuses.contains(&LuBlockStatus::Inconsistent),
            "an 8 MiB cache must strand some completed blocks"
        );
        assert!(rec.factor.max_abs_diff(&lu_host(&a)) < 1e-10);
    }

    #[test]
    fn flush_budget_is_sparse() {
        // Per block: 1 counter line + bk checksum-entry lines + the cs_u
        // lines; far less than flushing the O(n·bk) block payload.
        let a = dominant_matrix(32, 38);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 8);
        let before = sys.stats().clflushes;
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        lu.run(&mut emu, 0).completed().unwrap();
        let flushes = emu.stats().clflushes - before;
        let payload_lines = (lu.n * (lu.n + 1) * 8).div_ceil(64) as u64;
        assert!(
            flushes < payload_lines / 2,
            "flushed {flushes} lines vs {payload_lines} payload lines"
        );
    }

    #[test]
    fn block_width_one_works() {
        let a = dominant_matrix(10, 39);
        let mut sys = MemorySystem::new(cfg());
        let lu = ChecksumLu::setup(&mut sys, &a, 1);
        assert_eq!(lu.blocks(), 10);
        let mut emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        lu.run(&mut emu, 0).completed().unwrap();
        assert!(lu.peek_factor(&emu).max_abs_diff(&lu_host(&a)) < 1e-10);
    }
}
