//! Algorithm-directed crash consistence for LU factorization (an
//! extension beyond the paper; DESIGN.md §5a).
//!
//! The paper instantiates its ABFT-based scheme on matrix multiplication;
//! LU factorization is the classic second ABFT kernel (Davies & Chen,
//! HPDC'13 \[17\]; Du et al., PPoPP'12 \[18\]). The crash-consistence recipe
//! carries over with one structural change: the factorization is organized
//! **left-looking** over column blocks, so each block of the factor matrix
//! is written exactly once and previously completed blocks are read-only —
//! the same write-once discipline the paper builds for MM with its
//! temporal matrices (Fig. 6).
//!
//! ## Invariants
//!
//! The input is augmented with a column-checksum row: `Af = [A; vᵀA]`
//! (`v = 1`). Processing the checksum row like any other below-diagonal
//! row maintains, for every **completed** column `j` of the factor `F`
//! (`L` below the diagonal, `U` on/above):
//!
//! ```text
//! F[n][j]  =  (vᵀ·L)[j]  =  1 + Σ_{i>j} F[i][j]        (L checksum, ABFT)
//! csU[j]   =  Σ_{i<=j} F[i][j]                          (U digest)
//! ```
//!
//! The L checksum is maintained *through the arithmetic* (true ABFT); the
//! U digest is computed when the column completes. Both are flushed at
//! block completion — a few cache lines per block, the paper's "sparse
//! flushing" budget — while the O(n·k) block payload is left to normal
//! cache eviction.
//!
//! ## Recovery
//!
//! The flushed block counter names the in-flight block. Every claimed-
//! complete block is verified column-by-column against the two flushed
//! checksums; stale blocks (lines still in cache at the crash) fail and
//! are refactored **in ascending order**, which is sound because a
//! left-looking block depends only on earlier blocks. Typical loss is the
//! in-flight block plus however many recent blocks still had dirty lines
//! cached — the LU analogue of the paper's Fig. 7.

pub mod checksum_lu;
pub mod host;
pub mod variants;

pub use checksum_lu::{ChecksumLu, LuBlockStatus, LuRecovery};
pub use host::{dominant_matrix, lu_host, lu_reconstruct};

/// Crash-site phases for LU (see [`adcc_sim::crash::CrashSite`]).
pub mod sites {
    /// After one column of the current block is fully updated.
    pub const PH_AFTER_COL: u32 = 40;
    /// After a block completes (checksums flushed).
    pub const PH_BLOCK_END: u32 = 41;
}
