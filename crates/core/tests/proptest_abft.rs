//! Property tests for the ABFT checksum machinery: detection and
//! single-error correction over random matrices and corruption sites.

use proptest::prelude::*;

use adcc_core::abft::checksum::{correct_single, encode_ac, encode_br, verify_full};
use adcc_linalg::dense::Matrix;
use adcc_sim::parray::PMatrix;
use adcc_sim::system::{MemorySystem, SystemConfig};

fn seeded_cf(n: usize, seed: u64) -> Matrix {
    let a = Matrix::random(n, n, seed);
    let b = Matrix::random(n, n, seed + 1);
    encode_ac(&a).mul_naive(&encode_br(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single corrupted data element is located and repaired.
    #[test]
    fn single_corruption_is_always_corrected(
        n in 4usize..16,
        r_frac in 0.0f64..1.0,
        c_frac in 0.0f64..1.0,
        delta in prop::sample::select(vec![1e-3f64, 1.0, 1e3, -5.0, 1e6]),
        seed in 0u64..500,
    ) {
        let cf = seeded_cf(n, seed);
        let r = ((r_frac * n as f64) as usize).min(n - 1);
        let c = ((c_frac * n as f64) as usize).min(n - 1);
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(64 << 10, 16 << 20));
        let m = PMatrix::<f64>::alloc_nvm(&mut sys, n + 1, n + 1);
        m.array().seed_slice(&mut sys, cf.data());

        let original = m.get(&mut sys, r, c);
        m.set(&mut sys, r, c, original + delta);
        let report = verify_full(&mut sys, &m);
        prop_assert!(!report.is_consistent(), "corruption must be detected");
        prop_assert!(report.is_single_error(), "must localize to one element");
        prop_assert!(correct_single(&mut sys, &m, &report));
        let fixed = m.get(&mut sys, r, c);
        prop_assert!(
            (fixed - original).abs() <= 1e-7 * original.abs().max(1.0),
            "repaired value {fixed} vs original {original}"
        );
    }

    /// Corruption at two distinct sites is detected and never silently
    /// "corrected" into a consistent-looking matrix.
    #[test]
    fn double_corruption_is_detected_not_miscorrected(
        n in 4usize..16,
        seed in 0u64..500,
    ) {
        let cf = seeded_cf(n, seed);
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(64 << 10, 16 << 20));
        let m = PMatrix::<f64>::alloc_nvm(&mut sys, n + 1, n + 1);
        m.array().seed_slice(&mut sys, cf.data());

        let v00 = m.get(&mut sys, 0, 0);
        let v23 = m.get(&mut sys, 2, 3);
        m.set(&mut sys, 0, 0, v00 + 7.0);
        m.set(&mut sys, 2, 3, v23 - 11.0);
        let report = verify_full(&mut sys, &m);
        prop_assert!(!report.is_consistent());
        // Either correction refuses, or (if it proceeded) it must not
        // claim consistency afterwards.
        let corrected = correct_single(&mut sys, &m, &report);
        prop_assert!(!corrected, "two errors must not be single-corrected");
    }

    /// An uncorrupted checksum product always verifies, at any rank used
    /// to compute it.
    #[test]
    fn clean_products_always_verify(
        n in 4usize..14,
        seed in 0u64..500,
    ) {
        let cf = seeded_cf(n, seed);
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(64 << 10, 16 << 20));
        let m = PMatrix::<f64>::alloc_nvm(&mut sys, n + 1, n + 1);
        m.array().seed_slice(&mut sys, cf.data());
        prop_assert!(verify_full(&mut sys, &m).is_consistent());
    }
}
