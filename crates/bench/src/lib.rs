//! # adcc-bench — benchmark support
//!
//! The Criterion benches live in `benches/`, one per figure of the paper
//! plus microbenchmarks. This library crate hosts shared helpers: native
//! (un-simulated) CG/MM kernels with *real* persistence mechanisms, used
//! by the wall-clock benches to show that the paper's overhead ordering
//! also holds on the host machine, not just under the simulated clock.

use adcc_linalg::csr::CsrMatrix;

/// Native CG iteration state (host memory).
pub struct NativeCg {
    pub a: CsrMatrix,
    pub b: Vec<f64>,
    pub p: Vec<f64>,
    pub q: Vec<f64>,
    pub r: Vec<f64>,
    pub z: Vec<f64>,
    pub rho: f64,
}

impl NativeCg {
    pub fn new(a: CsrMatrix, b: Vec<f64>) -> Self {
        let n = a.n();
        let rho = b.iter().map(|x| x * x).sum();
        NativeCg {
            p: b.clone(),
            r: b.clone(),
            z: vec![0.0; n],
            q: vec![0.0; n],
            a,
            b,
            rho,
        }
    }

    /// One iteration (serial host arithmetic, same order as the simulated
    /// implementations).
    pub fn step(&mut self) {
        let n = self.a.n();
        self.a.spmv(&self.p, &mut self.q);
        let pq: f64 = self.p.iter().zip(&self.q).map(|(x, y)| x * y).sum();
        let alpha = self.rho / pq;
        for j in 0..n {
            self.z[j] += alpha * self.p[j];
        }
        for j in 0..n {
            self.r[j] -= alpha * self.q[j];
        }
        let rho_new: f64 = self.r.iter().map(|x| x * x).sum();
        let beta = rho_new / self.rho;
        for j in 0..n {
            self.p[j] = self.r[j] + beta * self.p[j];
        }
        self.rho = rho_new;
    }
}

/// The persistence mechanism applied per iteration in the wall-clock
/// benches — all doing *real* work on the host.
pub enum NativeMechanism {
    /// Nothing (native).
    None,
    /// memcpy p, r, z into a checkpoint buffer.
    Checkpoint { buffer: Vec<f64> },
    /// Undo-log: copy the old values of p, r, z into a log *before* the
    /// iteration (two passes + bookkeeping, like a PMDK transaction).
    UndoLog { log: Vec<f64> },
    /// Algorithm-directed: the extension writes each iteration's vectors
    /// into preallocated history rows *instead of* overwriting — there is
    /// no extra data movement, only one cache-line flush (negligible).
    History,
}

impl NativeMechanism {
    pub fn checkpoint(n: usize) -> Self {
        NativeMechanism::Checkpoint {
            buffer: vec![0.0; 3 * n],
        }
    }

    pub fn undo_log(n: usize) -> Self {
        NativeMechanism::UndoLog {
            log: vec![0.0; 3 * n],
        }
    }

    pub fn history() -> Self {
        NativeMechanism::History
    }

    /// Apply the mechanism around one iteration of `cg`.
    pub fn run_iteration(&mut self, cg: &mut NativeCg) {
        let n = cg.a.n();
        match self {
            NativeMechanism::None => cg.step(),
            NativeMechanism::Checkpoint { buffer } => {
                cg.step();
                buffer[..n].copy_from_slice(&cg.p);
                buffer[n..2 * n].copy_from_slice(&cg.r);
                buffer[2 * n..].copy_from_slice(&cg.z);
                // A real checkpoint would CLFLUSH here; on a DRAM host the
                // copy itself is the dominant cost.
                std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
            }
            NativeMechanism::UndoLog { log } => {
                // Pre-image copy (undo) before the updates, with a fence
                // per array mimicking persist ordering.
                log[..n].copy_from_slice(&cg.p);
                std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
                log[n..2 * n].copy_from_slice(&cg.r);
                std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
                log[2 * n..].copy_from_slice(&cg.z);
                std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
                cg.step();
            }
            NativeMechanism::History => {
                cg.step();
                // One cache-line flush (the iteration counter) is the only
                // extra work the extension performs per iteration.
                std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcc_linalg::spd::CgClass;

    #[test]
    fn native_cg_matches_host_reference() {
        let class = CgClass::TEST;
        let a = class.matrix(3);
        let b = class.rhs(&a);
        let mut cg = NativeCg::new(a.clone(), b.clone());
        for _ in 0..7 {
            cg.step();
        }
        let want = adcc_core::cg::cg_host(&a, &b, 7);
        let diff =
            cg.z.iter()
                .zip(&want)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
        assert!(diff < 1e-12);
    }

    #[test]
    fn mechanisms_do_not_change_results() {
        let class = CgClass::TEST;
        let a = class.matrix(4);
        let b = class.rhs(&a);
        let reference = adcc_core::cg::cg_host(&a, &b, 5);
        for mut mech in [
            NativeMechanism::None,
            NativeMechanism::checkpoint(a.n()),
            NativeMechanism::undo_log(a.n()),
            NativeMechanism::history(),
        ] {
            let mut cg = NativeCg::new(a.clone(), b.clone());
            for _ in 0..5 {
                mech.run_iteration(&mut cg);
            }
            let diff =
                cg.z.iter()
                    .zip(&reference)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f64::max);
            assert!(diff < 1e-12);
        }
    }
}
