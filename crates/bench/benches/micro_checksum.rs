//! Microbenchmarks of the ABFT checksum machinery: encoding,
//! verification and single-error correction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adcc_core::abft::checksum::{correct_single, encode_ac, encode_br, verify_full};
use adcc_linalg::dense::Matrix;
use adcc_sim::parray::PMatrix;
use adcc_sim::system::{MemorySystem, SystemConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_checksum");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for n in [32usize, 128] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        g.throughput(Throughput::Elements((n * n) as u64));

        g.bench_with_input(BenchmarkId::new("encode", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box((encode_ac(&a).rows(), encode_br(&b).cols())))
        });

        let cf = encode_ac(&a).mul_naive(&encode_br(&b));
        g.bench_with_input(BenchmarkId::new("verify_sim", n), &n, |bench, _| {
            let mut sys = MemorySystem::new(SystemConfig::nvm_only(256 << 10, 64 << 20));
            let m = PMatrix::<f64>::alloc_nvm(&mut sys, n + 1, n + 1);
            m.array().seed_slice(&mut sys, cf.data());
            bench.iter(|| std::hint::black_box(verify_full(&mut sys, &m).is_consistent()))
        });

        g.bench_with_input(BenchmarkId::new("detect_and_correct", n), &n, |bench, _| {
            let mut sys = MemorySystem::new(SystemConfig::nvm_only(256 << 10, 64 << 20));
            let m = PMatrix::<f64>::alloc_nvm(&mut sys, n + 1, n + 1);
            m.array().seed_slice(&mut sys, cf.data());
            bench.iter(|| {
                let good = m.get(&mut sys, 3, 4);
                m.set(&mut sys, 3, 4, good + 5.0);
                let report = verify_full(&mut sys, &m);
                std::hint::black_box(correct_single(&mut sys, &m, &report))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
