//! The wall-clock complement to the simulated figures: native
//! (un-simulated) CG on host DRAM, with each persistence mechanism doing
//! *real* work. The paper's ordering — history extension ≈ native <
//! checkpoint < undo log — must hold on real hardware too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adcc_bench::{NativeCg, NativeMechanism};
use adcc_linalg::spd::CgClass;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("wallclock_cg_mechanisms");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let class = CgClass {
        name: "bench",
        n: 50_000,
        extras_per_row: 12,
    };
    let a = class.matrix(9);
    let b = class.rhs(&a);
    let iters = 5usize;

    let mechanisms: [(&str, fn(usize) -> NativeMechanism); 4] = [
        ("native", |_| NativeMechanism::None),
        ("history(algo)", |_| NativeMechanism::history()),
        ("checkpoint", NativeMechanism::checkpoint),
        ("undo-log", NativeMechanism::undo_log),
    ];

    for (name, make) in mechanisms {
        g.bench_with_input(BenchmarkId::new("mech", name), &name, |bench, _| {
            bench.iter(|| {
                let mut cg = NativeCg::new(a.clone(), b.clone());
                let mut mech = make(a.n());
                for _ in 0..iters {
                    mech.run_iteration(&mut cg);
                }
                std::hint::black_box(cg.rho)
            })
        });
    }
    g.finish();

    // Rayon-parallel SpMV throughput (the HPC-native path).
    let mut g = c.benchmark_group("wallclock_spmv");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("serial", |bench| {
        let mut y = vec![0.0; a.n()];
        bench.iter(|| {
            a.spmv(&b, &mut y);
            std::hint::black_box(y[0])
        })
    });
    g.bench_function("rayon", |bench| {
        let mut y = vec![0.0; a.n()];
        bench.iter(|| {
            a.spmv_par(&b, &mut y);
            std::hint::black_box(y[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
