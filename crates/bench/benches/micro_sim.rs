//! Microbenchmarks of the crash emulator itself: element access
//! throughput on hits and misses, flush costs, crash snapshots.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use adcc_sim::parray::PArray;
use adcc_sim::system::{MemorySystem, SystemConfig};

fn bench(c: &mut Criterion) {
    let n = 64 * 1024usize; // elements

    let mut g = c.benchmark_group("micro_sim");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Elements(n as u64));

    g.bench_function("sequential_read_mostly_hits", |b| {
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(1 << 20, 16 << 20));
        let arr = PArray::<f64>::alloc_nvm(&mut sys, n);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..n {
                acc += arr.get(&mut sys, i);
            }
            std::hint::black_box(acc)
        })
    });

    g.bench_function("sequential_read_all_misses", |b| {
        // Cache far smaller than the array: every line is a miss.
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(8 << 10, 16 << 20));
        let arr = PArray::<f64>::alloc_nvm(&mut sys, n);
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..n {
                acc += arr.get(&mut sys, i);
            }
            std::hint::black_box(acc)
        })
    });

    g.bench_function("random_write_evictions", |b| {
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(8 << 10, 16 << 20));
        let arr = PArray::<f64>::alloc_nvm(&mut sys, n);
        let mut x = 12345usize;
        b.iter(|| {
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let i = (x >> 33) % n;
                arr.set(&mut sys, i, 1.0);
            }
        })
    });

    g.bench_function("persist_range_hetero", |b| {
        let mut sys = MemorySystem::new(SystemConfig::heterogeneous(64 << 10, 256 << 10, 16 << 20));
        let arr = PArray::<f64>::alloc_nvm(&mut sys, n);
        b.iter(|| {
            for i in (0..n).step_by(8) {
                arr.set(&mut sys, i, 2.0);
            }
            sys.persist_range(arr.base(), arr.byte_len());
            sys.sfence();
        })
    });

    g.finish();

    let mut g = c.benchmark_group("micro_crash");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("crash_snapshot_16mb", |b| {
        let mut sys = MemorySystem::new(SystemConfig::nvm_only(64 << 10, 16 << 20));
        let arr = PArray::<f64>::alloc_nvm(&mut sys, 1024);
        arr.fill(&mut sys, 3.0);
        b.iter(|| std::hint::black_box(sys.crash().len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
