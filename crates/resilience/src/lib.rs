//! # adcc-resilience — EasyCrash-style dirty restarts
//!
//! EasyCrash (PAPERS.md) asks the question every consistency mechanism
//! should be benchmarked against: if an application simply reboots from
//! the raw dirty NVM image — no undo replay, no checkpoint rollback, no
//! invariant scan — how often does it still finish with an answer that is
//! right, or right enough? Iterative HPC kernels contract small state
//! perturbations toward their fixed point, so the answer is often "more
//! than you'd think", and that *natural resilience* is the baseline the
//! paper's algorithm-directed schemes implicitly rely on.
//!
//! This crate holds the mechanism-agnostic half of the measurement:
//!
//! * [`DirtyClass`] — the five-way classification ladder for one dirty
//!   restart (`converged-exact` … `detected-dirty-again`).
//! * [`Tolerance`] — the per-scenario residual tolerances that draw the
//!   ladder's boundaries, with [`Tolerance::classify`] applying them in
//!   priority order.
//! * [`DirtyTrial`] / [`DirtyClassCounts`] / [`NaturalResilience`] — one
//!   classified restart, the histogram, and the per-scenario aggregate
//!   (rates, mean extra work units to converge, simulated restart time)
//!   that `adcc_campaign` rolls into report schema v7.
//!
//! The kernels' dirty-reboot entry points live next to each kernel
//! (`adcc_core`, `adcc_dist`); the campaign engine feeds their results
//! through this crate so every scenario is scored on the same ladder.

use serde::Serialize;

/// Outcome of one dirty restart, in classification-priority order.
///
/// The ladder is applied top to bottom: an application-level audit firing
/// beats everything (the restart never produced an answer), divergence
/// beats any residual comparison, and only then is the answer's distance
/// to the crash-free reference binned by the scenario's tolerances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DirtyClass {
    /// The restarted run reproduced the reference answer within the
    /// scenario's exact tolerance (usually the match tolerance the
    /// mechanism campaign itself uses).
    ConvergedExact,
    /// The answer is wrong but within the scenario's acceptable residual
    /// tolerance — a domain scientist would keep it.
    ConvergedAcceptable,
    /// The run terminated with a finite answer outside the acceptable
    /// tolerance: a silent wrong result.
    ConvergedWrong,
    /// The run produced non-finite values or drifted past the divergence
    /// bound — numerically destroyed by the dirty state.
    Diverged,
    /// The application's own sanity audit (counter out of range, count
    /// total mismatch) rejected the dirty image before producing an
    /// answer. Detected, but the work is lost *again*.
    DetectedDirtyAgain,
}

impl DirtyClass {
    /// Every class, in report-histogram order.
    pub const ALL: [DirtyClass; 5] = [
        DirtyClass::ConvergedExact,
        DirtyClass::ConvergedAcceptable,
        DirtyClass::ConvergedWrong,
        DirtyClass::Diverged,
        DirtyClass::DetectedDirtyAgain,
    ];

    /// Stable identifier used in report JSON (the ISSUE's kebab names).
    pub fn name(self) -> &'static str {
        match self {
            DirtyClass::ConvergedExact => "converged-exact",
            DirtyClass::ConvergedAcceptable => "converged-acceptable",
            DirtyClass::ConvergedWrong => "converged-wrong",
            DirtyClass::Diverged => "diverged",
            DirtyClass::DetectedDirtyAgain => "detected-dirty-again",
        }
    }

    /// Parse the identifier emitted by [`DirtyClass::name`].
    pub fn from_name(name: &str) -> Option<DirtyClass> {
        DirtyClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Did the restart end with the right-enough answer?
    pub fn is_converged_ok(self) -> bool {
        matches!(
            self,
            DirtyClass::ConvergedExact | DirtyClass::ConvergedAcceptable
        )
    }
}

/// Per-scenario residual tolerances drawing the ladder's boundaries.
///
/// All three bounds compare the restarted run's answer to the crash-free
/// reference in the scenario's own metric (max absolute difference for
/// the solver kernels).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Tolerance {
    /// At or below this the answer counts as exact (reference-equal).
    pub exact: f64,
    /// At or below this the answer is acceptable to the domain.
    pub acceptable: f64,
    /// Above this (or non-finite) the run is classified diverged.
    pub divergence: f64,
}

impl Tolerance {
    /// A ladder with the given exact/acceptable bounds and a divergence
    /// bound a fixed factor above acceptable.
    pub fn new(exact: f64, acceptable: f64, divergence: f64) -> Tolerance {
        let t = Tolerance {
            exact,
            acceptable,
            divergence,
        };
        assert!(t.is_ordered(), "tolerance ladder out of order: {t:?}");
        t
    }

    /// Exact-or-nothing: any mismatch beyond `exact` is wrong, anything
    /// non-finite diverged (integer-result kernels like MC).
    pub fn exact_only(exact: f64) -> Tolerance {
        Tolerance {
            exact,
            acceptable: exact,
            divergence: f64::MAX,
        }
    }

    fn is_ordered(&self) -> bool {
        self.exact >= 0.0 && self.exact <= self.acceptable && self.acceptable <= self.divergence
    }

    /// Apply the ladder: `detected` is the application's own audit
    /// verdict, `diff` the distance to the crash-free reference.
    pub fn classify(&self, detected: bool, diff: f64) -> DirtyClass {
        debug_assert!(self.is_ordered(), "tolerance ladder out of order");
        if detected {
            DirtyClass::DetectedDirtyAgain
        } else if !diff.is_finite() || diff > self.divergence {
            DirtyClass::Diverged
        } else if diff <= self.exact {
            DirtyClass::ConvergedExact
        } else if diff <= self.acceptable {
            DirtyClass::ConvergedAcceptable
        } else {
            DirtyClass::ConvergedWrong
        }
    }
}

/// One classified dirty restart.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DirtyTrial {
    /// The campaign unit (crash point) this restart rebooted from.
    pub unit: u64,
    /// Where the restart landed on the ladder.
    pub class: DirtyClass,
    /// Work units (iterations, sweeps, blocks, lookups) the dirty restart
    /// executed beyond the crash frontier — the price of convergence.
    pub extra_units: u64,
    /// Simulated time of the dirty continuation (attributed to the
    /// resume bucket).
    pub sim_time_ps: u64,
}

/// Histogram over [`DirtyClass`] (one per scenario, plus campaign total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DirtyClassCounts {
    /// Trials classified [`DirtyClass::ConvergedExact`].
    pub converged_exact: u64,
    /// Trials classified [`DirtyClass::ConvergedAcceptable`].
    pub converged_acceptable: u64,
    /// Trials classified [`DirtyClass::ConvergedWrong`].
    pub converged_wrong: u64,
    /// Trials classified [`DirtyClass::Diverged`].
    pub diverged: u64,
    /// Trials classified [`DirtyClass::DetectedDirtyAgain`].
    pub detected_dirty_again: u64,
}

impl DirtyClassCounts {
    /// Count one class.
    pub fn add(&mut self, class: DirtyClass) {
        *self.slot_mut(class) += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &DirtyClassCounts) {
        for c in DirtyClass::ALL {
            *self.slot_mut(c) += other.get(c);
        }
    }

    /// Count for one class.
    pub fn get(&self, class: DirtyClass) -> u64 {
        match class {
            DirtyClass::ConvergedExact => self.converged_exact,
            DirtyClass::ConvergedAcceptable => self.converged_acceptable,
            DirtyClass::ConvergedWrong => self.converged_wrong,
            DirtyClass::Diverged => self.diverged,
            DirtyClass::DetectedDirtyAgain => self.detected_dirty_again,
        }
    }

    /// Mutable slot for one class (parse/merge plumbing).
    pub fn slot_mut(&mut self, class: DirtyClass) -> &mut u64 {
        match class {
            DirtyClass::ConvergedExact => &mut self.converged_exact,
            DirtyClass::ConvergedAcceptable => &mut self.converged_acceptable,
            DirtyClass::ConvergedWrong => &mut self.converged_wrong,
            DirtyClass::Diverged => &mut self.diverged,
            DirtyClass::DetectedDirtyAgain => &mut self.detected_dirty_again,
        }
    }

    /// Trials counted across every class.
    pub fn total(&self) -> u64 {
        DirtyClass::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Trials that ended converged-exact or converged-acceptable.
    pub fn converged_ok(&self) -> u64 {
        self.converged_exact + self.converged_acceptable
    }
}

/// Per-scenario natural-resilience aggregate: the `natural_resilience`
/// block of report schema v7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NaturalResilience {
    /// The tolerance ladder every trial was scored with.
    pub tolerance: Tolerance,
    /// Class histogram over the scenario's dirty restarts.
    pub classes: DirtyClassCounts,
    /// Extra work units summed over converged-ok trials only (wrong or
    /// diverged runs spent work too, but there is no convergence to
    /// price).
    pub extra_units_total: u64,
    /// Simulated dirty-continuation time summed over all trials.
    pub sim_time_ps_total: u64,
}

impl NaturalResilience {
    /// An empty aggregate for the given ladder.
    pub fn new(tolerance: Tolerance) -> NaturalResilience {
        NaturalResilience {
            tolerance,
            classes: DirtyClassCounts::default(),
            extra_units_total: 0,
            sim_time_ps_total: 0,
        }
    }

    /// Aggregate a scenario's classified restarts.
    pub fn from_trials(tolerance: Tolerance, trials: &[DirtyTrial]) -> NaturalResilience {
        let mut agg = NaturalResilience::new(tolerance);
        for t in trials {
            agg.add(t);
        }
        agg
    }

    /// Fold one trial in.
    pub fn add(&mut self, trial: &DirtyTrial) {
        self.classes.add(trial.class);
        if trial.class.is_converged_ok() {
            self.extra_units_total += trial.extra_units;
        }
        self.sim_time_ps_total += trial.sim_time_ps;
    }

    /// Fold another aggregate in (shard/batch merge). The tolerances must
    /// agree — they are per-scenario constants.
    pub fn merge(&mut self, other: &NaturalResilience) {
        assert_eq!(
            self.tolerance, other.tolerance,
            "merging resilience aggregates with different tolerances"
        );
        self.classes.merge(&other.classes);
        self.extra_units_total += other.extra_units_total;
        self.sim_time_ps_total += other.sim_time_ps_total;
    }

    /// Trials aggregated.
    pub fn trials(&self) -> u64 {
        self.classes.total()
    }

    /// Per-class rate in parts-per-million of all trials (exact integer
    /// arithmetic, so reports stay byte-reproducible).
    pub fn rate_ppm(&self, class: DirtyClass) -> u64 {
        (self.classes.get(class) * 1_000_000)
            .checked_div(self.classes.total())
            .unwrap_or(0)
    }

    /// Mean extra work units per converged-ok trial, in thousandths
    /// (`None` when nothing converged).
    pub fn mean_extra_units_milli(&self) -> Option<u64> {
        (self.extra_units_total * 1_000).checked_div(self.classes.converged_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_priority_order() {
        let t = Tolerance::new(1e-9, 1e-3, 1e6);
        // Detection wins even over a perfect answer.
        assert_eq!(t.classify(true, 0.0), DirtyClass::DetectedDirtyAgain);
        assert_eq!(t.classify(false, f64::NAN), DirtyClass::Diverged);
        assert_eq!(t.classify(false, f64::INFINITY), DirtyClass::Diverged);
        assert_eq!(t.classify(false, 1e7), DirtyClass::Diverged);
        assert_eq!(t.classify(false, 0.0), DirtyClass::ConvergedExact);
        assert_eq!(t.classify(false, 1e-10), DirtyClass::ConvergedExact);
        assert_eq!(t.classify(false, 1e-5), DirtyClass::ConvergedAcceptable);
        assert_eq!(t.classify(false, 0.5), DirtyClass::ConvergedWrong);
    }

    #[test]
    fn ladder_boundaries_are_inclusive() {
        let t = Tolerance::new(1e-9, 1e-3, 1e6);
        assert_eq!(t.classify(false, 1e-9), DirtyClass::ConvergedExact);
        assert_eq!(t.classify(false, 1e-3), DirtyClass::ConvergedAcceptable);
        assert_eq!(t.classify(false, 1e6), DirtyClass::ConvergedWrong);
    }

    #[test]
    fn exact_only_has_no_acceptable_band() {
        let t = Tolerance::exact_only(0.0);
        assert_eq!(t.classify(false, 0.0), DirtyClass::ConvergedExact);
        assert_eq!(t.classify(false, 1e-300), DirtyClass::ConvergedWrong);
        assert_eq!(t.classify(false, f64::NAN), DirtyClass::Diverged);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn unordered_ladder_is_rejected() {
        Tolerance::new(1e-3, 1e-9, 1e6);
    }

    #[test]
    fn names_roundtrip() {
        for c in DirtyClass::ALL {
            assert_eq!(DirtyClass::from_name(c.name()), Some(c));
        }
        assert_eq!(DirtyClass::from_name("nope"), None);
    }

    #[test]
    fn counts_add_merge_total() {
        let mut a = DirtyClassCounts::default();
        a.add(DirtyClass::ConvergedExact);
        a.add(DirtyClass::ConvergedAcceptable);
        a.add(DirtyClass::ConvergedWrong);
        let mut b = DirtyClassCounts::default();
        b.add(DirtyClass::Diverged);
        b.merge(&a);
        assert_eq!(b.total(), 4);
        assert_eq!(b.converged_ok(), 2);
        assert_eq!(b.get(DirtyClass::ConvergedWrong), 1);
    }

    #[test]
    fn aggregate_prices_only_converged_ok_trials() {
        let t = Tolerance::new(1e-9, 1e-3, 1e6);
        let trials = [
            DirtyTrial {
                unit: 0,
                class: DirtyClass::ConvergedExact,
                extra_units: 4,
                sim_time_ps: 100,
            },
            DirtyTrial {
                unit: 1,
                class: DirtyClass::ConvergedAcceptable,
                extra_units: 6,
                sim_time_ps: 150,
            },
            DirtyTrial {
                unit: 2,
                class: DirtyClass::ConvergedWrong,
                extra_units: 99,
                sim_time_ps: 50,
            },
        ];
        let agg = NaturalResilience::from_trials(t, &trials);
        assert_eq!(agg.trials(), 3);
        assert_eq!(agg.extra_units_total, 10);
        assert_eq!(agg.sim_time_ps_total, 300);
        assert_eq!(agg.mean_extra_units_milli(), Some(5_000));
        assert_eq!(agg.rate_ppm(DirtyClass::ConvergedWrong), 333_333);
    }

    #[test]
    fn empty_aggregate_rates_are_zero() {
        let agg = NaturalResilience::new(Tolerance::exact_only(0.0));
        assert_eq!(agg.trials(), 0);
        assert_eq!(agg.rate_ppm(DirtyClass::ConvergedExact), 0);
        assert_eq!(agg.mean_extra_units_milli(), None);
    }

    #[test]
    fn merge_is_additive() {
        let t = Tolerance::new(1e-9, 1e-3, 1e6);
        let mut a = NaturalResilience::from_trials(
            t,
            &[DirtyTrial {
                unit: 0,
                class: DirtyClass::ConvergedExact,
                extra_units: 2,
                sim_time_ps: 10,
            }],
        );
        let b = NaturalResilience::from_trials(
            t,
            &[DirtyTrial {
                unit: 1,
                class: DirtyClass::DetectedDirtyAgain,
                extra_units: 0,
                sim_time_ps: 5,
            }],
        );
        a.merge(&b);
        assert_eq!(a.trials(), 2);
        assert_eq!(a.classes.detected_dirty_again, 1);
        assert_eq!(a.sim_time_ps_total, 15);
    }
}
