//! The scenario registry: every workload × persistence-mechanism pair the
//! campaign engine can inject crashes into.

use adcc_sim::crash::CrashTrigger;
use adcc_telemetry::ExecutionProfile;

use crate::memstats::ImageMemory;
use crate::outcome::Outcome;
use crate::scenarios;

/// Kernel family (the paper's three workloads plus the extension kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Conjugate gradient (the paper's main workload).
    Cg,
    /// BiCGSTAB (extension kernel).
    BiCgStab,
    /// Jacobi iteration (extension kernel).
    Jacobi,
    /// Heat stencil (extension kernel).
    Stencil,
    /// Checksum-protected blocked LU (extension kernel).
    Lu,
    /// Monte-Carlo particle transport (paper workload).
    Mc,
}

impl Kernel {
    /// Every kernel family, in registry order.
    pub const ALL: [Kernel; 6] = [
        Kernel::Cg,
        Kernel::BiCgStab,
        Kernel::Jacobi,
        Kernel::Stencil,
        Kernel::Lu,
        Kernel::Mc,
    ];

    /// Stable identifier used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cg => "cg",
            Kernel::BiCgStab => "bicgstab",
            Kernel::Jacobi => "jacobi",
            Kernel::Stencil => "stencil",
            Kernel::Lu => "lu",
            Kernel::Mc => "mc",
        }
    }
}

/// Persistence mechanism under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// The paper's algorithm extension (history arrays / checksums).
    Extended,
    /// Algorithm extension with a bounded history ring.
    ExtendedWindowed,
    /// Per-unit checkpoint/restart through `CkptManager`.
    Checkpoint,
    /// PMDK-style undo-log transactions.
    Pmem,
    /// MC selective flushing with replay recovery.
    Selective,
    /// MC epoch-tagged counters (exact replay).
    Epoch,
}

impl Mechanism {
    /// Stable identifier used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Extended => "extended",
            Mechanism::ExtendedWindowed => "extended-windowed",
            Mechanism::Checkpoint => "checkpoint",
            Mechanism::Pmem => "pmem",
            Mechanism::Selective => "selective",
            Mechanism::Epoch => "epoch",
        }
    }
}

/// Result of injecting one crash state and attempting recovery.
#[derive(Debug, Clone, Copy)]
pub struct Trial {
    /// The scheduled crash unit this trial evaluated.
    pub unit: u64,
    /// Classified recovery outcome.
    pub outcome: Outcome,
    /// Work units re-executed by recovery.
    pub lost_units: u64,
    /// Simulated clock spent by recovery (detect + resume), picoseconds.
    /// Deterministic, unlike wall-clock.
    pub sim_time_ps: u64,
    /// Forward-execution cost profile (setup → crash or completion):
    /// flushes, fences, log traffic, dirty residency. Present when the
    /// campaign ran with telemetry enabled.
    pub telemetry: Option<ExecutionProfile>,
}

/// One workload × mechanism pair the engine can sweep crash points over.
///
/// `run_trial` must be a pure function of `(self, unit, telemetry)`: each
/// call builds its own `MemorySystem`, so trials can run on any worker
/// thread in any order and the campaign stays deterministic. The
/// `telemetry` flag only controls whether the [`Trial::telemetry`] profile
/// is captured — probes are passive counter snapshots, so it must never
/// change the simulated execution itself.
///
/// ## Unit space
///
/// Units `0..total_units` are **site-grain** crash points: each maps to an
/// instrumented crash site via [`Scenario::site_trigger`]. Units at or
/// above `total_units` are **dense** (access-grain) points the engine can
/// append on demand: unit `total_units + d` crashes at the first poll
/// after `(d + 1) * dense_stride` element accesses, which subdivides the
/// crash-point space far below statement granularity without any
/// per-scenario enumeration. Dense points whose threshold lands past the
/// end of the run complete cleanly and are classified as such.
///
/// ## Batch path
///
/// [`Scenario::run_batch`] must produce trials **identical** to calling
/// [`Scenario::run_trial`] per unit (the delta-equivalence suite enforces
/// this): the forward execution is deterministic, so its state at a crash
/// point's poll equals the state of an individual run crashed there.
pub trait Scenario: Send + Sync {
    /// Unique scenario name (report key).
    fn name(&self) -> &'static str;
    /// Kernel family under test.
    fn kernel(&self) -> Kernel;
    /// Persistence mechanism under test.
    fn mechanism(&self) -> Mechanism;
    /// Platform preset name (report metadata).
    fn platform_name(&self) -> &'static str {
        "nvm-only"
    }
    /// Size of the site-grain crash-point space.
    fn total_units(&self) -> u64;
    /// Crash trigger for a site-grain unit (`unit < total_units`).
    fn site_trigger(&self, unit: u64) -> CrashTrigger;
    /// Access-count spacing between dense (access-grain) crash points.
    fn dense_stride(&self) -> u64 {
        2_000
    }
    /// Crash trigger for any unit, dense units included.
    fn trigger_of(&self, unit: u64) -> CrashTrigger {
        let sites = self.total_units();
        if unit < sites {
            self.site_trigger(unit)
        } else {
            CrashTrigger::AtAccessCount((unit - sites + 1) * self.dense_stride())
        }
    }
    /// Inject one crash state, recover, classify. This is the reference
    /// (full-copy) path: one instrumented execution per unit, crash image
    /// via `crash_now`.
    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial;

    /// Batch fast path: harvest every scheduled crash point of `units`
    /// (sorted ascending) from **one** instrumented execution as
    /// copy-on-write [`adcc_sim::image::DeltaImage`]s, classifying
    /// outcomes streaming (one transient materialization at a time).
    /// `mem` accumulates crash-image memory accounting. Default: none —
    /// the engine falls back to `run_trial` per unit.
    fn run_batch(&self, units: &[u64], telemetry: bool, mem: &ImageMemory) -> Option<Vec<Trial>> {
        let _ = (units, telemetry, mem);
        None
    }
}

/// Build the full registry. Order is part of the report format: reports
/// list scenarios in registry order, and the determinism suite compares
/// reports byte-for-byte.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    scenarios::all()
}

/// Build the distributed registry (`campaign run --dist`): the
/// `adcc::dist` kernels under algorithm-directed local recovery and
/// global checkpoint restart, same ordering guarantees as [`registry`].
pub fn dist_registry() -> Vec<Box<dyn Scenario>> {
    scenarios::dist_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_kernel_with_two_mechanisms() {
        let reg = registry();
        for kernel in Kernel::ALL {
            let mechanisms: std::collections::BTreeSet<&str> = reg
                .iter()
                .filter(|s| s.kernel() == kernel)
                .map(|s| s.mechanism().name())
                .collect();
            assert!(
                mechanisms.len() >= 2,
                "kernel {} has only {mechanisms:?}",
                kernel.name()
            );
        }
    }

    #[test]
    fn registry_names_are_unique_and_units_positive() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scenario names");
        for s in &reg {
            assert!(s.total_units() > 0, "{} has no crash points", s.name());
        }
    }

    #[test]
    fn dist_registry_pairs_both_recovery_modes_per_kernel() {
        let reg = dist_registry();
        assert_eq!(reg.len(), 6);
        for kernel in [Kernel::Stencil, Kernel::Jacobi, Kernel::Cg] {
            let mechanisms: Vec<&str> = reg
                .iter()
                .filter(|s| s.kernel() == kernel)
                .map(|s| s.mechanism().name())
                .collect();
            assert_eq!(
                mechanisms,
                vec!["extended", "checkpoint"],
                "kernel {} missing a recovery mode",
                kernel.name()
            );
        }
        for s in &reg {
            assert!(s.name().starts_with("dist-"), "{}", s.name());
            assert_eq!(s.platform_name(), "dist-4rank");
            assert!(s.total_units() > 0);
        }
    }
}
