//! The scenario registry: every workload × persistence-mechanism pair the
//! campaign engine can inject crashes into.

use adcc_dist::net::FaultProfile;
use adcc_sim::crash::CrashTrigger;
use adcc_telemetry::ExecutionProfile;

use crate::memstats::ImageMemory;
use crate::outcome::Outcome;
use crate::scenarios;

/// Kernel family (the paper's three workloads plus the extension kernels
/// and the persistent data-structure workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Conjugate gradient (the paper's main workload).
    Cg,
    /// BiCGSTAB (extension kernel).
    BiCgStab,
    /// Jacobi iteration (extension kernel).
    Jacobi,
    /// Heat stencil (extension kernel).
    Stencil,
    /// Checksum-protected blocked LU (extension kernel).
    Lu,
    /// Monte-Carlo particle transport (paper workload).
    Mc,
    /// Persistent MSC queue (`adcc::ds` workload).
    Queue,
    /// Persistent open-addressing hash table (`adcc::ds` workload).
    Hash,
}

impl Kernel {
    /// Every kernel family, in registry order (compute kernels first,
    /// then the persistent data-structure workloads).
    pub const ALL: [Kernel; 8] = [
        Kernel::Cg,
        Kernel::BiCgStab,
        Kernel::Jacobi,
        Kernel::Stencil,
        Kernel::Lu,
        Kernel::Mc,
        Kernel::Queue,
        Kernel::Hash,
    ];

    /// The compute-kernel families covered by the default (`kernel`)
    /// registry.
    pub const COMPUTE: [Kernel; 6] = [
        Kernel::Cg,
        Kernel::BiCgStab,
        Kernel::Jacobi,
        Kernel::Stencil,
        Kernel::Lu,
        Kernel::Mc,
    ];

    /// Stable identifier used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cg => "cg",
            Kernel::BiCgStab => "bicgstab",
            Kernel::Jacobi => "jacobi",
            Kernel::Stencil => "stencil",
            Kernel::Lu => "lu",
            Kernel::Mc => "mc",
            Kernel::Queue => "queue",
            Kernel::Hash => "hash",
        }
    }
}

/// Persistence mechanism under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// The paper's algorithm extension (history arrays / checksums).
    Extended,
    /// Algorithm extension with a bounded history ring.
    ExtendedWindowed,
    /// Per-unit checkpoint/restart through `CkptManager`.
    Checkpoint,
    /// PMDK-style undo-log transactions.
    Pmem,
    /// MC selective flushing with replay recovery.
    Selective,
    /// MC epoch-tagged counters (exact replay).
    Epoch,
    /// No transactional protection: tagged writes + batched epoch syncs,
    /// detect-and-rebuild recovery (the `adcc::ds` unprotected baseline).
    Baseline,
}

impl Mechanism {
    /// Stable identifier used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Extended => "extended",
            Mechanism::ExtendedWindowed => "extended-windowed",
            Mechanism::Checkpoint => "checkpoint",
            Mechanism::Pmem => "pmem",
            Mechanism::Selective => "selective",
            Mechanism::Epoch => "epoch",
            Mechanism::Baseline => "baseline",
        }
    }
}

/// A named scenario registry the campaign engine can sweep.
///
/// Replaces the old `CampaignConfig.dist: bool` toggle: registries are an
/// open set selected by name (`campaign run --registry <name>`), and the
/// selected registry is part of the report format — reports carry a
/// `registry` header whenever a non-default registry produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub enum Registry {
    /// The default single-node compute-kernel registry.
    #[default]
    Kernel,
    /// The distributed (`adcc::dist`) registry: multi-rank kernels under
    /// rank-granular crash injection.
    Dist,
    /// The persistent data-structure (`adcc::ds`) registry: queue/hash
    /// op-stream workloads under undo-logged and baseline protection.
    Ds,
}

impl Registry {
    /// Every registry, in documentation order.
    pub const ALL: [Registry; 3] = [Registry::Kernel, Registry::Dist, Registry::Ds];

    /// Stable identifier used by `--registry` and in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Registry::Kernel => "kernel",
            Registry::Dist => "dist",
            Registry::Ds => "ds",
        }
    }

    /// Parse a `--registry` value. Unknown names list the valid set.
    pub fn parse(name: &str) -> Result<Registry, String> {
        match name {
            "kernel" => Ok(Registry::Kernel),
            "dist" => Ok(Registry::Dist),
            "ds" => Ok(Registry::Ds),
            other => Err(format!(
                "unknown registry '{other}' (expected one of: kernel, dist, ds)"
            )),
        }
    }

    /// Build this registry's scenario list with the fabric fault profile
    /// every constituent cluster injects. Only the `dist` registry reacts
    /// to the profile (its kernels own fabrics); the others ignore it.
    /// Order is part of the report format: reports list scenarios in
    /// registry order, and the determinism suite compares reports
    /// byte-for-byte.
    pub fn scenarios_with(self, faults: FaultProfile) -> Vec<Box<dyn Scenario>> {
        match self {
            Registry::Kernel => scenarios::all(),
            Registry::Dist => scenarios::dist_all_with(faults),
            Registry::Ds => scenarios::ds_all(),
        }
    }

    /// Build this registry's scenario list under the faultless profile.
    pub fn scenarios(self) -> Vec<Box<dyn Scenario>> {
        self.scenarios_with(FaultProfile::Off)
    }
}

/// One trial of an analyzer-instrumented batch: the classified
/// [`Trial`] plus the persist-order sanitizer's crash facts at its crash
/// point (tracked lines dirty or flushed-but-unfenced when the crash
/// image was harvested). Completion trials carry no facts.
#[derive(Debug, Clone)]
pub struct AnalyzedTrial {
    /// The classified trial, identical to the plain batch path's.
    pub trial: Trial,
    /// Sanitizer crash facts at this trial's crash point.
    pub facts: Vec<adcc_analyze::Diagnostic>,
}

/// Output of one analyzer-instrumented batch execution
/// ([`Scenario::run_analyzed`]).
#[derive(Debug, Clone, Default)]
pub struct AnalyzedBatch {
    /// Per-unit analyzed trials, in engine (schedule) order.
    pub trials: Vec<AnalyzedTrial>,
    /// Protocol violations of the completed forward execution. A clean
    /// tree reports none; the CI triage smoke gate enforces it.
    pub protocol: Vec<adcc_analyze::Diagnostic>,
}

/// Output of one dirty-restart batch execution
/// ([`Scenario::run_resilience`]): the EasyCrash-style natural-resilience
/// sweep over the scenario's scheduled crash points.
#[derive(Debug, Clone)]
pub struct ResilienceBatch {
    /// Per-unit dirty-restart trials, in engine (schedule) order.
    pub trials: Vec<adcc_resilience::DirtyTrial>,
    /// The residual tolerance the classification ladder used.
    pub tolerance: adcc_resilience::Tolerance,
}

/// Result of injecting one crash state and attempting recovery.
#[derive(Debug, Clone, Copy)]
pub struct Trial {
    /// The scheduled crash unit this trial evaluated.
    pub unit: u64,
    /// Classified recovery outcome.
    pub outcome: Outcome,
    /// Work units re-executed by recovery.
    pub lost_units: u64,
    /// Simulated clock spent by recovery (detect + resume), picoseconds.
    /// Deterministic, unlike wall-clock.
    pub sim_time_ps: u64,
    /// Forward-execution cost profile (setup → crash or completion):
    /// flushes, fences, log traffic, dirty residency. Present when the
    /// campaign ran with telemetry enabled.
    pub telemetry: Option<ExecutionProfile>,
}

/// A scenario's crash-point unit space: how many site-grain units it
/// enumerates and how densely the access-grain tail subdivides beyond
/// them.
///
/// Extracted from the old `total_units`/`dense_stride`/`trigger_of`
/// method cluster so schedules, shard planners and scenario impls share
/// one description of the unit geometry instead of re-deriving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitSpace {
    /// Number of site-grain units (`0..sites` map to instrumented sites).
    pub sites: u64,
    /// Element-access spacing between dense (access-grain) crash points.
    pub dense_stride: u64,
}

impl UnitSpace {
    /// Default dense spacing for scenarios that don't tune it.
    pub const DEFAULT_DENSE_STRIDE: u64 = 2_000;

    /// A unit space with `sites` site-grain points and the given dense
    /// spacing.
    pub const fn new(sites: u64, dense_stride: u64) -> UnitSpace {
        UnitSpace {
            sites,
            dense_stride,
        }
    }

    /// A unit space with the default dense spacing.
    pub const fn site_grain(sites: u64) -> UnitSpace {
        UnitSpace::new(sites, UnitSpace::DEFAULT_DENSE_STRIDE)
    }

    /// Is `unit` in the dense (access-grain) tail?
    pub fn is_dense(&self, unit: u64) -> bool {
        unit >= self.sites
    }

    /// Access-count threshold of dense unit `unit` (`unit >= sites`).
    pub fn dense_access_count(&self, unit: u64) -> u64 {
        debug_assert!(self.is_dense(unit));
        (unit - self.sites + 1) * self.dense_stride
    }

    /// Crash trigger for any unit: site-grain units resolve through
    /// `site`, dense units crash at the first poll past their access
    /// threshold.
    pub fn trigger_of(&self, unit: u64, site: impl FnOnce(u64) -> CrashTrigger) -> CrashTrigger {
        if unit < self.sites {
            site(unit)
        } else {
            CrashTrigger::AtAccessCount(self.dense_access_count(unit))
        }
    }
}

/// One workload × mechanism pair the engine can sweep crash points over.
///
/// `run_trial` must be a pure function of `(self, unit, telemetry)`: each
/// call builds its own `MemorySystem`, so trials can run on any worker
/// thread in any order and the campaign stays deterministic. The
/// `telemetry` flag only controls whether the [`Trial::telemetry`] profile
/// is captured — probes are passive counter snapshots, so it must never
/// change the simulated execution itself.
///
/// ## Unit space
///
/// A scenario describes its crash-point geometry with one [`UnitSpace`]:
/// units `0..sites` are **site-grain** crash points, each mapping to an
/// instrumented crash site via [`Scenario::site_trigger`]. Units at or
/// above `sites` are **dense** (access-grain) points the engine can
/// append on demand: unit `sites + d` crashes at the first poll after
/// `(d + 1) * dense_stride` element accesses, which subdivides the
/// crash-point space far below statement granularity without any
/// per-scenario enumeration. Dense points whose threshold lands past the
/// end of the run complete cleanly and are classified as such.
///
/// ## Batch path
///
/// [`Scenario::run_batch`] must produce trials **identical** to calling
/// [`Scenario::run_trial`] per unit (the delta-equivalence suite enforces
/// this): the forward execution is deterministic, so its state at a crash
/// point's poll equals the state of an individual run crashed there.
pub trait Scenario: Send + Sync {
    /// Unique scenario name (report key).
    fn name(&self) -> &'static str;
    /// Kernel family under test.
    fn kernel(&self) -> Kernel;
    /// Persistence mechanism under test.
    fn mechanism(&self) -> Mechanism;
    /// Platform preset name (report metadata).
    fn platform_name(&self) -> &'static str {
        "nvm-only"
    }
    /// The scenario's crash-point geometry.
    fn unit_space(&self) -> UnitSpace;
    /// Size of the site-grain crash-point space.
    fn total_units(&self) -> u64 {
        self.unit_space().sites
    }
    /// Crash trigger for a site-grain unit (`unit < total_units`).
    fn site_trigger(&self, unit: u64) -> CrashTrigger;
    /// Access-count spacing between dense (access-grain) crash points.
    fn dense_stride(&self) -> u64 {
        self.unit_space().dense_stride
    }
    /// Crash trigger for any unit, dense units included.
    fn trigger_of(&self, unit: u64) -> CrashTrigger {
        self.unit_space().trigger_of(unit, |u| self.site_trigger(u))
    }
    /// Inject one crash state, recover, classify. This is the reference
    /// (full-copy) path: one instrumented execution per unit, crash image
    /// via `crash_now`.
    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial;

    /// Batch fast path: harvest every scheduled crash point of `units`
    /// (sorted ascending) from **one** instrumented execution as
    /// copy-on-write [`adcc_sim::image::DeltaImage`]s, classifying
    /// outcomes streaming (one transient materialization at a time).
    /// `mem` accumulates crash-image memory accounting. Default: none —
    /// the engine falls back to `run_trial` per unit.
    fn run_batch(&self, units: &[u64], telemetry: bool, mem: &ImageMemory) -> Option<Vec<Trial>> {
        let _ = (units, telemetry, mem);
        None
    }

    /// Analyzer-instrumented batch: like [`Scenario::run_batch`] with an
    /// [`adcc_sim::events::EventRecorder`] attached over the scenario's
    /// declared protocol regions, returning the same trials (recording is
    /// outcome-neutral, so they must equal the plain path's) plus the
    /// sanitizer's per-crash facts and end-of-run protocol diagnostics.
    /// Default: none — the scenario has no analyzed path and the triage
    /// engine falls back to `run_batch` with empty facts.
    fn run_analyzed(&self, units: &[u64], mem: &ImageMemory) -> Option<AnalyzedBatch> {
        let _ = (units, mem);
        None
    }

    /// Dirty-restart (EasyCrash) batch: harvest every scheduled crash
    /// point like [`Scenario::run_batch`], but instead of the scenario's
    /// recovery mechanism, reboot each crash image from the raw dirty NVM
    /// state — no invariant scan, no checkpoint rollback, no log replay —
    /// re-enter the iteration loop from whatever counters/values survived,
    /// run to the natural termination bound, and classify the answer
    /// against the reference through the scenario's residual tolerance.
    /// Units whose trigger never fires complete cleanly and classify as
    /// `converged-exact` with zero extra work. Default: none — the
    /// scenario has no dirty-restart path and the resilience engine
    /// records it as unsupported.
    fn run_resilience(&self, units: &[u64], mem: &ImageMemory) -> Option<ResilienceBatch> {
        let _ = (units, mem);
        None
    }
}

/// Build the full registry. Order is part of the report format: reports
/// list scenarios in registry order, and the determinism suite compares
/// reports byte-for-byte.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    scenarios::all()
}

/// Build the distributed registry (`campaign run --registry dist`): the
/// `adcc::dist` kernels under algorithm-directed local recovery and
/// global checkpoint restart, same ordering guarantees as [`registry`].
pub fn dist_registry() -> Vec<Box<dyn Scenario>> {
    scenarios::dist_all()
}

/// Build the persistent data-structure registry (`campaign run --registry
/// ds`): the `adcc::ds` queue/hash op-stream workloads under undo-logged
/// and baseline protection, same ordering guarantees as [`registry`].
pub fn ds_registry() -> Vec<Box<dyn Scenario>> {
    scenarios::ds_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_compute_kernel_with_two_mechanisms() {
        let reg = registry();
        for kernel in Kernel::COMPUTE {
            let mechanisms: std::collections::BTreeSet<&str> = reg
                .iter()
                .filter(|s| s.kernel() == kernel)
                .map(|s| s.mechanism().name())
                .collect();
            assert!(
                mechanisms.len() >= 2,
                "kernel {} has only {mechanisms:?}",
                kernel.name()
            );
        }
    }

    #[test]
    fn registry_names_are_unique_and_units_positive() {
        for registry in Registry::ALL {
            let reg = registry.scenarios();
            let mut names: Vec<&str> = reg.iter().map(|s| s.name()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "duplicate scenario names");
            for s in &reg {
                assert!(s.total_units() > 0, "{} has no crash points", s.name());
            }
        }
    }

    #[test]
    fn registry_names_parse_and_roundtrip() {
        for registry in Registry::ALL {
            assert_eq!(Registry::parse(registry.name()), Ok(registry));
        }
        let err = Registry::parse("bogus").unwrap_err();
        assert!(err.contains("unknown registry"), "{err}");
        assert!(err.contains("kernel, dist, ds"), "{err}");
    }

    #[test]
    fn unit_space_maps_site_and_dense_units() {
        let space = UnitSpace::new(4, 100);
        assert!(!space.is_dense(3));
        assert!(space.is_dense(4));
        assert_eq!(
            space.trigger_of(2, CrashTrigger::AtSimTimePs),
            CrashTrigger::AtSimTimePs(2)
        );
        assert_eq!(
            space.trigger_of(5, CrashTrigger::AtSimTimePs),
            CrashTrigger::AtAccessCount(200)
        );
    }

    #[test]
    fn dist_registry_pairs_both_recovery_modes_per_kernel() {
        let reg = dist_registry();
        assert_eq!(reg.len(), 6);
        for kernel in [Kernel::Stencil, Kernel::Jacobi, Kernel::Cg] {
            let mechanisms: Vec<&str> = reg
                .iter()
                .filter(|s| s.kernel() == kernel)
                .map(|s| s.mechanism().name())
                .collect();
            assert_eq!(
                mechanisms,
                vec!["extended", "checkpoint"],
                "kernel {} missing a recovery mode",
                kernel.name()
            );
        }
        for s in &reg {
            assert!(s.name().starts_with("dist-"), "{}", s.name());
            assert_eq!(s.platform_name(), "dist-4rank");
            assert!(s.total_units() > 0);
        }
    }

    #[test]
    fn ds_registry_pairs_both_protections_per_structure() {
        let reg = ds_registry();
        assert_eq!(reg.len(), 4);
        for kernel in [Kernel::Queue, Kernel::Hash] {
            let mechanisms: Vec<&str> = reg
                .iter()
                .filter(|s| s.kernel() == kernel)
                .map(|s| s.mechanism().name())
                .collect();
            assert_eq!(
                mechanisms,
                vec!["pmem", "baseline"],
                "kernel {} missing a protection mode",
                kernel.name()
            );
        }
        for s in &reg {
            assert!(s.name().starts_with("ds-"), "{}", s.name());
            assert!(s.total_units() > 0);
        }
    }
}
