//! The scenario registry: every workload × persistence-mechanism pair the
//! campaign engine can inject crashes into.

use adcc_telemetry::ExecutionProfile;

use crate::outcome::Outcome;
use crate::scenarios;

/// Kernel family (the paper's three workloads plus the extension kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Conjugate gradient (the paper's main workload).
    Cg,
    /// BiCGSTAB (extension kernel).
    BiCgStab,
    /// Jacobi iteration (extension kernel).
    Jacobi,
    /// Heat stencil (extension kernel).
    Stencil,
    /// Checksum-protected blocked LU (extension kernel).
    Lu,
    /// Monte-Carlo particle transport (paper workload).
    Mc,
}

impl Kernel {
    /// Every kernel family, in registry order.
    pub const ALL: [Kernel; 6] = [
        Kernel::Cg,
        Kernel::BiCgStab,
        Kernel::Jacobi,
        Kernel::Stencil,
        Kernel::Lu,
        Kernel::Mc,
    ];

    /// Stable identifier used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cg => "cg",
            Kernel::BiCgStab => "bicgstab",
            Kernel::Jacobi => "jacobi",
            Kernel::Stencil => "stencil",
            Kernel::Lu => "lu",
            Kernel::Mc => "mc",
        }
    }
}

/// Persistence mechanism under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// The paper's algorithm extension (history arrays / checksums).
    Extended,
    /// Algorithm extension with a bounded history ring.
    ExtendedWindowed,
    /// Per-unit checkpoint/restart through `CkptManager`.
    Checkpoint,
    /// PMDK-style undo-log transactions.
    Pmem,
    /// MC selective flushing with replay recovery.
    Selective,
    /// MC epoch-tagged counters (exact replay).
    Epoch,
}

impl Mechanism {
    /// Stable identifier used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Extended => "extended",
            Mechanism::ExtendedWindowed => "extended-windowed",
            Mechanism::Checkpoint => "checkpoint",
            Mechanism::Pmem => "pmem",
            Mechanism::Selective => "selective",
            Mechanism::Epoch => "epoch",
        }
    }
}

/// Result of injecting one crash state and attempting recovery.
#[derive(Debug, Clone, Copy)]
pub struct Trial {
    /// The scheduled crash unit this trial evaluated.
    pub unit: u64,
    /// Classified recovery outcome.
    pub outcome: Outcome,
    /// Work units re-executed by recovery.
    pub lost_units: u64,
    /// Simulated clock spent by recovery (detect + resume), picoseconds.
    /// Deterministic, unlike wall-clock.
    pub sim_time_ps: u64,
    /// Forward-execution cost profile (setup → crash or completion):
    /// flushes, fences, log traffic, dirty residency. Present when the
    /// campaign ran with telemetry enabled.
    pub telemetry: Option<ExecutionProfile>,
}

/// One workload × mechanism pair the engine can sweep crash points over.
///
/// `run_trial` must be a pure function of `(self, unit, telemetry)`: each
/// call builds its own `MemorySystem`, so trials can run on any worker
/// thread in any order and the campaign stays deterministic. The
/// `telemetry` flag only controls whether the [`Trial::telemetry`] profile
/// is captured — probes are passive counter snapshots, so it must never
/// change the simulated execution itself.
pub trait Scenario: Send + Sync {
    /// Unique scenario name (report key).
    fn name(&self) -> &'static str;
    /// Kernel family under test.
    fn kernel(&self) -> Kernel;
    /// Persistence mechanism under test.
    fn mechanism(&self) -> Mechanism;
    /// Platform preset name (report metadata).
    fn platform_name(&self) -> &'static str {
        "nvm-only"
    }
    /// Size of the crash-point space (`run_trial` accepts `0..total_units`).
    fn total_units(&self) -> u64;
    /// Inject one crash state, recover, classify.
    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial;

    /// Whether [`Scenario::run_batch`] is implemented; the engine then
    /// hands the scenario all its crash points as one task.
    fn supports_batch(&self) -> bool {
        false
    }

    /// Batch fast path: scenarios whose crash states can be harvested from
    /// a single instrumented execution via [`adcc_sim::system::MemorySystem::crash_fork`]
    /// return all trials at once (units arrive sorted ascending). Default:
    /// none — the engine calls `run_trial` per unit.
    fn run_batch(&self, _units: &[u64], _telemetry: bool) -> Option<Vec<Trial>> {
        None
    }
}

/// Build the full registry. Order is part of the report format: reports
/// list scenarios in registry order, and the determinism suite compares
/// reports byte-for-byte.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    scenarios::all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_kernel_with_two_mechanisms() {
        let reg = registry();
        for kernel in Kernel::ALL {
            let mechanisms: std::collections::BTreeSet<&str> = reg
                .iter()
                .filter(|s| s.kernel() == kernel)
                .map(|s| s.mechanism().name())
                .collect();
            assert!(
                mechanisms.len() >= 2,
                "kernel {} has only {mechanisms:?}",
                kernel.name()
            );
        }
    }

    #[test]
    fn registry_names_are_unique_and_units_positive() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scenario names");
        for s in &reg {
            assert!(s.total_units() > 0, "{} has no crash points", s.name());
        }
    }
}
