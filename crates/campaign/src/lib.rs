//! # adcc-campaign — crash-injection campaigns at scale
//!
//! The paper validates its scheme by sweeping crash points across kernel
//! iterations and checking recomputation-based recovery (§IV–V). This
//! crate turns that methodology into a single engine, in the spirit of
//! systematic crash-state enumerators like WITCHER and the campaign
//! statistics EasyCrash reports:
//!
//! * named [`scenario::Scenario`] **registries** ([`Registry`], selected
//!   with `campaign run --registry <name>`): `kernel` unifies every
//!   compute workload — CG, BiCGSTAB, Jacobi, heat stencil, checksum-LU,
//!   MC — under the mechanisms the paper compares (algorithm extension,
//!   checkpoint, undo-log transactions, selective/epoch flushing);
//!   `dist` sweeps the multi-rank `adcc::dist` kernels; `ds` sweeps the
//!   persistent data-structure (`adcc::ds`) queue/hash op-stream
//!   workloads under undo-logged and baseline protection;
//! * deterministic, seedable **schedules** ([`schedule::Schedule`]) that
//!   pick crash points: every-k, stratified random, exhaustive-below-N;
//! * a parallel **engine** ([`engine::run_campaign`]) fanning trials out
//!   across OS threads (each worker owns its own `MemorySystem`, so the
//!   single-clock simulator is untouched), classifying each outcome as
//!   recovered-exact / recovered-recomputed / detected-dirty /
//!   silent-corruption (plus completed-clean for points past the run);
//! * machine-readable JSON **reports** ([`report::CampaignReport`]) that
//!   are replayable from `(seed, budget, schedule)` alone — byte-for-byte
//!   identical across reruns and thread counts;
//! * the `campaign` **CLI** (`run`, `replay`, `compare`, `bench`) driving
//!   the PR-smoke and nightly-deep CI tiers.
//!
//! ## Example: run a 50-state campaign and read the report
//!
//! ```
//! use adcc_campaign::engine::{run_campaign, CampaignConfig};
//! use adcc_campaign::report::CampaignReport;
//! use adcc_campaign::schedule::Schedule;
//!
//! let cfg = CampaignConfig::builder()
//!     .seed(42)
//!     .budget_states(50)
//!     .schedule(Schedule::Stratified)
//!     .threads(2)
//!     .telemetry(true)
//!     .build()
//!     .unwrap();
//! let report = run_campaign(&cfg);
//! assert_eq!(report.totals.total(), 50);
//! assert_eq!(report.silent_corruption_total(), 0);
//!
//! // The on-disk JSON round-trips, telemetry block included.
//! let parsed = CampaignReport::parse(&report.to_string_pretty()).unwrap();
//! let telemetry = parsed.telemetry.expect("campaign ran with telemetry");
//! assert!(telemetry.flush_total() > 0, "mechanisms flush");
//! ```

#![deny(missing_docs)]

pub mod cost;
pub mod engine;
pub mod json;
pub mod memstats;
pub mod outcome;
pub mod report;
pub mod resilience;
pub mod scenario;
pub mod scenarios;
pub mod schedule;
pub mod triage;

pub use cost::{CostRow, CostTable};
pub use engine::{run_campaign, CampaignConfig, CampaignConfigBuilder};
pub use memstats::{ImageMemory, ImageMemorySummary};
pub use outcome::{Outcome, OutcomeCounts};
pub use report::{
    compare, flush_audit, CampaignReport, DiagnosticRecord, DiagnosticsBlock, ScenarioReport,
};
pub use resilience::run_resilience;
pub use scenario::{
    dist_registry, ds_registry, registry, AnalyzedBatch, AnalyzedTrial, Kernel, Mechanism,
    Registry, ResilienceBatch, Scenario, Trial, UnitSpace,
};
pub use schedule::Schedule;
pub use triage::{run_triage, TriageReport};
