//! The campaign engine: schedule crash points per scenario, fan trials
//! out across OS threads, aggregate a deterministic report.

use std::time::Instant;

use adcc_dist::net::FaultProfile;
use adcc_telemetry::ExecutionProfile;

use crate::memstats::ImageMemory;
use crate::report::{CampaignReport, ScenarioReport};
use crate::scenario::{Registry, Scenario, Trial};
use crate::schedule::Schedule;

/// Campaign inputs. `(seed, budget_states, schedule, dense_units)` fully
/// determine the canonical report; `threads`, `max_batch`, and
/// `per_trial` only affect wall-clock and memory.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed driving every stochastic schedule decision.
    pub seed: u64,
    /// Total crash states across the whole campaign, split evenly over
    /// the registry (remainder to the earliest scenarios; below the
    /// registry size, later scenarios get no trials).
    pub budget_states: u64,
    /// Crash-point selection policy.
    pub schedule: Schedule,
    /// Worker OS threads; `0` picks the host parallelism.
    pub threads: usize,
    /// Capture a per-trial [`ExecutionProfile`] (flushes, fences, log
    /// traffic, dirty residency) and embed the per-scenario aggregate in
    /// the report (`adcc-campaign-report/v2` telemetry block). Probes are
    /// passive, so outcomes are identical either way.
    pub telemetry: bool,
    /// Extra access-grain (dense) crash points appended after each
    /// scenario's site-grain unit space, subdividing the crash-point
    /// space below statement granularity (see
    /// [`Scenario::dense_stride`]). `0` keeps the legacy unit space — and
    /// the legacy report bytes. Recorded in the canonical report when
    /// nonzero, so replays reproduce it.
    pub dense_units: u64,
    /// Crash points harvested per forward execution in the batched
    /// delta-image pass. Larger batches amortize the forward execution
    /// over more states; smaller ones parallelize better.
    pub max_batch: u64,
    /// Force the legacy path: one instrumented execution and one full
    /// `NvmImage` copy per trial. The canonical report is byte-identical
    /// either way (the delta-equivalence suite enforces it); this is the
    /// baseline the bench compares against.
    pub per_trial: bool,
    /// Which named scenario registry to sweep (`--registry <name>`):
    /// the default compute-kernel registry, the distributed
    /// (`adcc::dist`) one, or the persistent data-structure (`adcc::ds`)
    /// one. Recorded in the canonical report, so replays reproduce it.
    pub registry: Registry,
    /// Run shard `i` of an `n`-way campaign split: each scenario's
    /// scheduled crash points are partitioned positionally (point index
    /// `k` belongs to shard `k % n`), so the `n` partial reports cover the
    /// full schedule exactly once between them. The partial report carries
    /// a `shard` marker; `CampaignReport::merge_shards` folds the full set
    /// back into a report byte-identical to an unsharded run of the same
    /// `(seed, budget, schedule)`. `None` runs everything.
    pub shard: Option<(u64, u64)>,
    /// Fabric fault profile injected under every dist-registry cluster
    /// (`--faults <off|lossy|chaotic>`). The chaotic tier also swaps the
    /// dist presets to 16-rank 2-D grids with a remote checkpoint level
    /// and node-loss units. Ignored by the other registries. Recorded in
    /// the canonical report when not `off`, so replays reproduce it.
    pub faults: FaultProfile,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            budget_states: 500,
            schedule: Schedule::Stratified,
            threads: 0,
            telemetry: false,
            dense_units: 0,
            max_batch: 128,
            per_trial: false,
            registry: Registry::Kernel,
            shard: None,
            faults: FaultProfile::Off,
        }
    }
}

impl CampaignConfig {
    /// Start a validating [`CampaignConfigBuilder`] from the defaults.
    ///
    /// Prefer this over hand-filling the struct literal: `build()` rejects
    /// incoherent combinations (e.g. sharding a per-trial run) before the
    /// engine sees them, with the same error text the CLI prints.
    pub fn builder() -> CampaignConfigBuilder {
        CampaignConfigBuilder {
            cfg: CampaignConfig::default(),
        }
    }

    /// Start a validating builder from an existing config (e.g. one
    /// inherited from a report being replayed), so overrides go through
    /// the same `build()` validation.
    pub fn to_builder(&self) -> CampaignConfigBuilder {
        CampaignConfigBuilder { cfg: self.clone() }
    }

    /// Check the config for incoherent combinations. `build()` calls
    /// this; configs assembled as struct literals can call it directly.
    pub fn validate(&self) -> Result<(), String> {
        if self.shard.is_some() && self.per_trial {
            return Err(
                "--shard cannot be combined with --per-trial: shards partition the \
                 batched plan, which the per-trial path bypasses"
                    .to_string(),
            );
        }
        if let Some((shard, of)) = self.shard {
            if of == 0 || shard >= of {
                return Err(format!("shard index {shard} out of range for {of} shards"));
            }
        }
        if self.max_batch == 0 {
            return Err("--max-batch must be at least 1".to_string());
        }
        if self.faults != FaultProfile::Off && self.registry != Registry::Dist {
            return Err(format!(
                "--faults {} applies to the dist registry only (pass --registry dist)",
                self.faults.name()
            ));
        }
        Ok(())
    }
}

/// Validating builder for [`CampaignConfig`] — see
/// [`CampaignConfig::builder`].
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    cfg: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Seed driving every stochastic schedule decision.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Total crash states across the whole campaign.
    pub fn budget_states(mut self, budget: u64) -> Self {
        self.cfg.budget_states = budget;
        self
    }

    /// Crash-point selection policy.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.cfg.schedule = schedule;
        self
    }

    /// Worker OS threads; `0` picks the host parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Capture per-trial [`ExecutionProfile`]s in the report.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.cfg.telemetry = on;
        self
    }

    /// Extra access-grain (dense) crash points per scenario.
    pub fn dense_units(mut self, dense: u64) -> Self {
        self.cfg.dense_units = dense;
        self
    }

    /// Crash points harvested per forward execution in the batched pass.
    pub fn max_batch(mut self, max_batch: u64) -> Self {
        self.cfg.max_batch = max_batch;
        self
    }

    /// Force the legacy one-execution-per-trial path.
    pub fn per_trial(mut self, on: bool) -> Self {
        self.cfg.per_trial = on;
        self
    }

    /// Which named scenario registry to sweep.
    pub fn registry(mut self, registry: Registry) -> Self {
        self.cfg.registry = registry;
        self
    }

    /// Run shard `i` of an `n`-way campaign split.
    pub fn shard(mut self, shard: Option<(u64, u64)>) -> Self {
        self.cfg.shard = shard;
        self
    }

    /// Fabric fault profile injected under every dist-registry cluster.
    pub fn faults(mut self, faults: FaultProfile) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Validate and produce the config. Errors name the offending flag
    /// combination exactly as the CLI reports it.
    pub fn build(self) -> Result<CampaignConfig, String> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// One unit of parallel work: a scenario index plus the crash points it
/// evaluates. The batched pass chunks each scenario's points into
/// `max_batch`-sized tasks (one forward execution each); the per-trial
/// path gets one task per point.
struct Task {
    scenario: usize,
    units: Vec<u64>,
}

/// Run a full campaign. Deterministic in `(seed, budget_states,
/// schedule, dense_units)`: trials are pure functions of `(scenario,
/// unit)` — every worker owns its own `MemorySystem`, so the single-clock
/// simulator is never shared — and results are merged in schedule order,
/// so neither the thread count nor the batch size can reorder anything.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let start = Instant::now();
    let scenarios = cfg.registry.scenarios_with(cfg.faults);
    let points = plan(cfg, &scenarios);

    let mut tasks = Vec::new();
    for (idx, units) in points.iter().enumerate() {
        if units.is_empty() {
            continue;
        }
        if cfg.per_trial {
            tasks.extend(units.iter().map(|&u| Task {
                scenario: idx,
                units: vec![u],
            }));
        } else {
            tasks.extend(
                units
                    .chunks(cfg.max_batch.max(1) as usize)
                    .map(|chunk| Task {
                        scenario: idx,
                        units: chunk.to_vec(),
                    }),
            );
        }
    }

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(cfg.threads)
        .build()
        .expect("thread pool");
    let threads = pool.current_num_threads() as u64;
    let mem = ImageMemory::default();
    let results: Vec<(usize, Vec<Trial>)> = pool.install_map(tasks, |_, task| {
        let s = &scenarios[task.scenario];
        let per_trial = |units: &[u64]| {
            units
                .iter()
                .map(|&u| s.run_trial(u, cfg.telemetry))
                .collect()
        };
        let trials = if cfg.per_trial {
            per_trial(&task.units)
        } else {
            s.run_batch(&task.units, cfg.telemetry, &mem)
                .unwrap_or_else(|| per_trial(&task.units))
        };
        (task.scenario, trials)
    });

    let mut per_scenario: Vec<Vec<Trial>> = scenarios.iter().map(|_| Vec::new()).collect();
    for (idx, trials) in results {
        per_scenario[idx].extend(trials);
    }

    let scenario_reports: Vec<ScenarioReport> = scenarios
        .iter()
        .zip(&per_scenario)
        .map(|(s, trials)| aggregate(s.as_ref(), cfg.dense_units, trials))
        .collect();
    let mut totals = crate::outcome::OutcomeCounts::default();
    let mut telemetry: Option<ExecutionProfile> = None;
    for r in &scenario_reports {
        totals.merge(&r.outcomes);
        if let Some(t) = &r.telemetry {
            telemetry
                .get_or_insert_with(ExecutionProfile::default)
                .merge(t);
        }
    }
    CampaignReport {
        seed: cfg.seed,
        budget_states: cfg.budget_states,
        schedule: cfg.schedule.name(),
        dense_units: cfg.dense_units,
        registry: cfg.registry,
        faults: cfg.faults,
        shard: cfg.shard,
        scenarios: scenario_reports,
        totals,
        telemetry,
        diagnostics: None,
        image_memory: mem.summary(),
        wall_clock_ms: start.elapsed().as_millis() as u64,
        threads,
    }
}

/// Crash points per scenario (registry order), drawn over the site-grain
/// space plus any configured dense extension. A shard keeps the positions
/// `k % n == i` of each scenario's full plan — the partition is over the
/// *planned* sequence, not the unit values, so it is stable under
/// duplicate points and exactly tiles the unsharded plan.
pub(crate) fn plan(cfg: &CampaignConfig, scenarios: &[Box<dyn Scenario>]) -> Vec<Vec<u64>> {
    let n = scenarios.len() as u64;
    let base = cfg.budget_states / n;
    let rem = cfg.budget_states % n;
    scenarios
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let budget = base + u64::from((i as u64) < rem);
            let full = cfg.schedule.crash_points(
                cfg.seed,
                s.name(),
                s.total_units() + cfg.dense_units,
                budget,
            );
            match cfg.shard {
                None => full,
                Some((shard, of)) => full
                    .into_iter()
                    .enumerate()
                    .filter(|(k, _)| *k as u64 % of == shard)
                    .map(|(_, u)| u)
                    .collect(),
            }
        })
        .collect()
}

pub(crate) fn aggregate(s: &dyn Scenario, dense_units: u64, trials: &[Trial]) -> ScenarioReport {
    let mut outcomes = crate::outcome::OutcomeCounts::default();
    let mut lost_total = 0u64;
    let mut lost_max = 0u64;
    let mut sim_total = 0u64;
    let mut telemetry: Option<ExecutionProfile> = None;
    for t in trials {
        outcomes.add(t.outcome);
        lost_total += t.lost_units;
        lost_max = lost_max.max(t.lost_units);
        sim_total += t.sim_time_ps;
        if let Some(profile) = &t.telemetry {
            telemetry
                .get_or_insert_with(ExecutionProfile::default)
                .merge(profile);
        }
    }
    ScenarioReport {
        name: s.name().to_string(),
        kernel: s.kernel().name().to_string(),
        mechanism: s.mechanism().name().to_string(),
        platform: s.platform_name().to_string(),
        total_units: s.total_units() + dense_units,
        trials: trials.len() as u64,
        outcomes,
        lost_units_total: lost_total,
        lost_units_max: lost_max,
        sim_time_ps_total: sim_total,
        telemetry,
        natural_resilience: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small campaign is deterministic across thread counts — the heavy
    /// version (larger budget, byte-compare of files) lives in the root
    /// `tests/campaign_determinism.rs` suite.
    #[test]
    fn tiny_campaign_is_deterministic_across_threads() {
        let mut cfg = CampaignConfig {
            budget_states: 13,
            threads: 1,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg);
        cfg.threads = 4;
        let b = run_campaign(&cfg);
        assert_eq!(a.canonical_string(), b.canonical_string());
        assert_eq!(a.totals.total(), 13);
    }

    #[test]
    fn builder_validates_flag_combinations() {
        let err = CampaignConfig::builder()
            .per_trial(true)
            .shard(Some((0, 2)))
            .build()
            .unwrap_err();
        assert!(err.contains("--shard"), "{err}");
        assert!(err.contains("--per-trial"), "{err}");

        let cfg = CampaignConfig::builder()
            .seed(7)
            .budget_states(99)
            .registry(Registry::Ds)
            .shard(Some((1, 4)))
            .build()
            .unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.budget_states, 99);
        assert_eq!(cfg.registry, Registry::Ds);
        assert_eq!(cfg.shard, Some((1, 4)));

        assert!(CampaignConfig::builder()
            .shard(Some((4, 4)))
            .build()
            .is_err());
        assert!(CampaignConfig::builder().max_batch(0).build().is_err());
    }

    #[test]
    fn budget_splits_evenly_with_remainder_first() {
        let cfg = CampaignConfig {
            budget_states: 14,
            schedule: Schedule::Stratified,
            ..CampaignConfig::default()
        };
        let scenarios = crate::scenario::registry();
        let points = plan(&cfg, &scenarios);
        let n = scenarios.len();
        assert_eq!(points.len(), n);
        let total: usize = points.iter().map(Vec::len).sum();
        assert_eq!(total, 14);
        assert!(points[0].len() >= points[n - 1].len());
    }
}
