//! The machine-readable cost table (`campaign cost --json`).
//!
//! The human-readable cost table prints per-scenario flush/fence/log
//! volume and the modeled ADR/NearPM/eADR prices; this module emits the same
//! rows as a schema-versioned JSON document so CI can *diff* cost-model
//! outputs instead of scraping a text table. Parsing and emission
//! round-trip byte-for-byte (insertion-ordered objects, exact integers),
//! the same replayability contract campaign reports carry.

use adcc_telemetry::platform_costs;

use crate::json::Json;
use crate::report::CampaignReport;

/// Cost-table document schema (bump on breaking changes).
///
/// v2 adds the `nearpm_cost_ps` column (near-data persistence preset)
/// between the ADR and eADR prices. v1 documents still parse; the
/// missing column defaults to zero.
pub const COST_SCHEMA: &str = "adcc-cost-table/v2";

/// The previous cost-table generation, still accepted by [`CostTable::parse`].
pub const COST_SCHEMA_V1: &str = "adcc-cost-table/v1";

/// One scenario's cost row (or the campaign total).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostRow {
    /// Scenario name, or `"TOTAL"` for the campaign aggregate.
    pub name: String,
    /// Trials the aggregate covers.
    pub trials: u64,
    /// Write-back instructions of any flavour.
    pub flushes: u64,
    /// `SFENCE` persist barriers.
    pub sfences: u64,
    /// Transaction-log payload bytes.
    pub log_bytes: u64,
    /// Dirty residency at crash, bytes.
    pub dirty_bytes: u64,
    /// Average gap between persist barriers, picoseconds.
    pub consistency_window_ps: u64,
    /// Modeled cost under the ADR preset, picoseconds.
    pub adr_cost_ps: u64,
    /// Modeled cost under the NearPM near-data preset, picoseconds.
    pub nearpm_cost_ps: u64,
    /// Modeled cost under the eADR preset, picoseconds.
    pub eadr_cost_ps: u64,
}

impl CostRow {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("name", Json::Str(self.name.clone()));
        j.push("trials", Json::Int(self.trials));
        j.push("flushes", Json::Int(self.flushes));
        j.push("sfences", Json::Int(self.sfences));
        j.push("log_bytes", Json::Int(self.log_bytes));
        j.push("dirty_bytes", Json::Int(self.dirty_bytes));
        j.push(
            "consistency_window_ps",
            Json::Int(self.consistency_window_ps),
        );
        j.push("adr_cost_ps", Json::Int(self.adr_cost_ps));
        j.push("nearpm_cost_ps", Json::Int(self.nearpm_cost_ps));
        j.push("eadr_cost_ps", Json::Int(self.eadr_cost_ps));
        j
    }

    fn from_json(j: &Json) -> Result<CostRow, String> {
        let n = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("cost row missing {key}"))
        };
        Ok(CostRow {
            name: j
                .get("name")
                .and_then(Json::as_str)
                .ok_or("cost row missing name")?
                .to_string(),
            trials: n("trials")?,
            flushes: n("flushes")?,
            sfences: n("sfences")?,
            log_bytes: n("log_bytes")?,
            dirty_bytes: n("dirty_bytes")?,
            consistency_window_ps: n("consistency_window_ps")?,
            adr_cost_ps: n("adr_cost_ps")?,
            // v1 rows predate the NearPM column.
            nearpm_cost_ps: j.get("nearpm_cost_ps").and_then(Json::as_u64).unwrap_or(0),
            eadr_cost_ps: n("eadr_cost_ps")?,
        })
    }
}

/// The full cost table: campaign header plus one row per
/// telemetry-carrying scenario and an optional campaign total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostTable {
    /// Seed of the underlying campaign.
    pub seed: u64,
    /// Its crash-state budget.
    pub budget_states: u64,
    /// Its schedule spelling.
    pub schedule: String,
    /// Per-scenario rows, registry order.
    pub rows: Vec<CostRow>,
    /// Campaign-wide aggregate (absent when the campaign carried no
    /// telemetry at all).
    pub total: Option<CostRow>,
}

impl CostTable {
    /// Build the table from a telemetry-carrying campaign report.
    /// Scenarios without a telemetry block are skipped.
    pub fn from_report(report: &CampaignReport) -> CostTable {
        let row = |name: &str, trials: u64, t: &adcc_telemetry::ExecutionProfile| -> CostRow {
            let (adr, nearpm, eadr) = platform_costs(t);
            CostRow {
                name: name.to_string(),
                trials,
                flushes: t.flush_total(),
                sfences: t.sfences,
                log_bytes: t.log_bytes,
                dirty_bytes: t.dirty_bytes_at_crash(),
                consistency_window_ps: t.consistency_window_ps(),
                adr_cost_ps: adr,
                nearpm_cost_ps: nearpm,
                eadr_cost_ps: eadr,
            }
        };
        CostTable {
            seed: report.seed,
            budget_states: report.budget_states,
            schedule: report.schedule.clone(),
            rows: report
                .scenarios
                .iter()
                .filter_map(|s| s.telemetry.as_ref().map(|t| row(&s.name, s.trials, t)))
                .collect(),
            total: report
                .telemetry
                .as_ref()
                .map(|t| row("TOTAL", report.totals.total(), t)),
        }
    }

    /// Emit the schema-versioned JSON document.
    pub fn to_string_pretty(&self) -> String {
        let mut j = Json::obj();
        j.push("schema", Json::Str(COST_SCHEMA.into()));
        j.push("seed", Json::Int(self.seed));
        j.push("budget_states", Json::Int(self.budget_states));
        j.push("schedule", Json::Str(self.schedule.clone()));
        j.push(
            "scenarios",
            Json::Arr(self.rows.iter().map(CostRow::to_json).collect()),
        );
        if let Some(total) = &self.total {
            j.push("total", total.to_json());
        }
        j.pretty()
    }

    /// Parse a document produced by [`CostTable::to_string_pretty`].
    pub fn parse(text: &str) -> Result<CostTable, String> {
        let j = Json::parse(text)?;
        let schema = j
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != COST_SCHEMA && schema != COST_SCHEMA_V1 {
            return Err(format!(
                "unsupported schema {schema:?} (want {COST_SCHEMA:?})"
            ));
        }
        let n = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing {key}"))
        };
        Ok(CostTable {
            seed: n("seed")?,
            budget_states: n("budget_states")?,
            schedule: j
                .get("schedule")
                .and_then(Json::as_str)
                .ok_or("missing schedule")?
                .to_string(),
            rows: j
                .get("scenarios")
                .and_then(Json::as_arr)
                .ok_or("missing scenarios")?
                .iter()
                .map(CostRow::from_json)
                .collect::<Result<Vec<_>, String>>()?,
            total: j.get("total").map(CostRow::from_json).transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_campaign, CampaignConfig};

    #[test]
    fn cost_table_roundtrips_byte_for_byte() {
        let report = run_campaign(&CampaignConfig {
            budget_states: 26,
            telemetry: true,
            threads: 2,
            ..CampaignConfig::default()
        });
        let table = CostTable::from_report(&report);
        assert!(!table.rows.is_empty(), "telemetry campaign yields rows");
        let total = table.total.as_ref().expect("campaign total present");
        assert!(
            total.adr_cost_ps >= total.nearpm_cost_ps && total.nearpm_cost_ps >= total.eadr_cost_ps,
            "presets must price in ADR >= NearPM >= eADR order"
        );
        let text = table.to_string_pretty();
        let parsed = CostTable::parse(&text).unwrap();
        assert_eq!(parsed, table);
        assert_eq!(parsed.to_string_pretty(), text, "emit∘parse is identity");
    }

    #[test]
    fn telemetry_free_reports_yield_an_empty_table() {
        let report = run_campaign(&CampaignConfig {
            budget_states: 13,
            telemetry: false,
            threads: 2,
            ..CampaignConfig::default()
        });
        let table = CostTable::from_report(&report);
        assert!(table.rows.is_empty());
        assert!(table.total.is_none());
        // Still a valid, parseable document.
        assert_eq!(CostTable::parse(&table.to_string_pretty()).unwrap(), table);
    }

    #[test]
    fn parse_rejects_other_schemas() {
        assert!(CostTable::parse(r#"{"schema": "adcc-cost-table/v3"}"#).is_err());
    }

    #[test]
    fn v1_documents_still_parse_with_a_zero_nearpm_column() {
        let v1 = r#"{
  "schema": "adcc-cost-table/v1",
  "seed": 42,
  "budget_states": 10,
  "schedule": "stratified",
  "scenarios": [
    {
      "name": "cg-ckpt",
      "trials": 10,
      "flushes": 16,
      "sfences": 8,
      "log_bytes": 1024,
      "dirty_bytes": 64,
      "consistency_window_ps": 9000,
      "adr_cost_ps": 7000000,
      "eadr_cost_ps": 49000
    }
  ]
}"#;
        let table = CostTable::parse(v1).unwrap();
        assert_eq!(table.rows[0].nearpm_cost_ps, 0);
        // Re-emission upgrades the document to the current schema.
        let upgraded = table.to_string_pretty();
        assert!(upgraded.contains(COST_SCHEMA));
        assert!(upgraded.contains("\"nearpm_cost_ps\": 0"));
    }
}
