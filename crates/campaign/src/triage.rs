//! WITCHER-style root-cause triage over an analyzer-instrumented
//! campaign.
//!
//! `run_triage` re-runs a campaign's exact schedule with the
//! persist-order event recorder attached (scenarios exposing
//! [`crate::scenario::Scenario::run_analyzed`]; the rest fall back to the plain batch
//! path with empty facts), then:
//!
//! 1. infers per-mechanism persist-order invariants from the **passing**
//!    trials (evidence counts: "N states of mechanism M crashed and
//!    recovered with this protocol intact"),
//! 2. checks every **failing** trial's sanitizer crash facts against
//!    them, and
//! 3. clusters the failing states by violated invariant into a bounded
//!    list of [`RootCause`] reports (`adcc_analyze::cluster_failures`).
//!
//! The output is deterministic: trials merge in schedule order, protocol
//! findings dedupe through ordered maps, and the emitted document
//! carries no host section — reruns and any worker-thread count produce
//! byte-identical text. The campaign report embedded in the triage
//! document carries the schema-v6 `diagnostics` block.

use std::collections::BTreeMap;

use adcc_analyze::{cluster_failures, Diagnostic, RootCause, TrialDigest};
use adcc_telemetry::ExecutionProfile;

use crate::engine::{aggregate, plan, CampaignConfig};
use crate::json::Json;
use crate::memstats::ImageMemory;
use crate::outcome::Outcome;
use crate::report::{CampaignReport, DiagnosticRecord, DiagnosticsBlock, ScenarioReport};
use crate::scenario::{AnalyzedBatch, AnalyzedTrial, Trial};

/// Triage document format identifier.
pub const TRIAGE_SCHEMA: &str = "adcc-triage-report/v1";

/// Root causes reported before the remainder folds into one residual
/// cluster (see `adcc_analyze::cluster_failures`).
pub const ROOT_CAUSE_CAP: usize = 10;

/// Outcomes the triage engine counts as failing states.
fn failed(outcome: Outcome) -> bool {
    matches!(outcome, Outcome::DetectedDirty | Outcome::SilentCorruption)
}

/// A triaged campaign: the analyzer-instrumented report plus the
/// clustered root causes of its failing states.
#[derive(Debug, Clone)]
pub struct TriageReport {
    /// The re-run campaign report, `diagnostics` block included.
    pub report: CampaignReport,
    /// Clustered root causes, most states first.
    pub root_causes: Vec<RootCause>,
    /// Failing states across the campaign (detected-dirty plus
    /// silent-corruption).
    pub failing_states: u64,
}

impl TriageReport {
    /// The triage document: schema header, failing-state count, root
    /// causes, and the canonical (host-less) campaign report. Carries no
    /// host facts at all, so reruns are byte-identical regardless of
    /// thread count.
    pub fn to_string_pretty(&self) -> String {
        let mut j = Json::obj();
        j.push("schema", Json::Str(TRIAGE_SCHEMA.into()));
        j.push("failing_states", Json::Int(self.failing_states));
        let causes = self
            .root_causes
            .iter()
            .map(|c| {
                let mut e = Json::obj();
                e.push("invariant", Json::Str(c.invariant.clone()));
                e.push("mechanism", Json::Str(c.mechanism.clone()));
                e.push("category", Json::Str(c.category.clone()));
                e.push("states", Json::Int(c.states));
                e.push(
                    "scenarios",
                    Json::Arr(c.scenarios.iter().map(|s| Json::Str(s.clone())).collect()),
                );
                e.push(
                    "regions",
                    Json::Arr(c.regions.iter().map(|r| Json::Str(r.clone())).collect()),
                );
                e.push(
                    "unit_window",
                    Json::Arr(vec![Json::Int(c.unit_window.0), Json::Int(c.unit_window.1)]),
                );
                e.push(
                    "event_window",
                    Json::Arr(vec![
                        Json::Int(c.event_window.0),
                        Json::Int(c.event_window.1),
                    ]),
                );
                e
            })
            .collect();
        j.push("root_causes", Json::Arr(causes));
        let campaign = Json::parse(&self.report.canonical_string())
            .expect("a report's own canonical emission parses");
        j.push("campaign", campaign);
        j.pretty()
    }
}

/// One unit of parallel triage work (mirrors the engine's batched task
/// shape: a scenario index plus the crash points one forward execution
/// harvests).
struct Task {
    scenario: usize,
    units: Vec<u64>,
}

/// What one task produced: its analyzed trials, the forward execution's
/// protocol findings, and whether the scenario actually ran under the
/// analyzer (fallback batches carry empty facts and don't count).
struct TaskResult {
    scenario: usize,
    trials: Vec<AnalyzedTrial>,
    protocol: Vec<Diagnostic>,
    analyzed: bool,
}

/// Run the campaign described by `cfg` with the analyzer attached and
/// triage its failing states. Deterministic in the config's canonical
/// inputs; the thread count only affects wall-clock.
pub fn run_triage(cfg: &CampaignConfig) -> TriageReport {
    let start = std::time::Instant::now();
    let scenarios = cfg.registry.scenarios_with(cfg.faults);
    let points = plan(cfg, &scenarios);

    let mut tasks = Vec::new();
    for (idx, units) in points.iter().enumerate() {
        if units.is_empty() {
            continue;
        }
        tasks.extend(
            units
                .chunks(cfg.max_batch.max(1) as usize)
                .map(|chunk| Task {
                    scenario: idx,
                    units: chunk.to_vec(),
                }),
        );
    }

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(cfg.threads)
        .build()
        .expect("thread pool");
    let threads = pool.current_num_threads() as u64;
    let mem = ImageMemory::default();
    let results: Vec<TaskResult> = pool.install_map(tasks, |_, task| {
        let s = &scenarios[task.scenario];
        match s.run_analyzed(&task.units, &mem) {
            Some(batch) => TaskResult {
                scenario: task.scenario,
                trials: batch.trials,
                protocol: batch.protocol,
                analyzed: true,
            },
            None => {
                // No analyzed path: classify through the plain batch (or
                // per-trial) machinery with empty facts, so triage still
                // covers the registry — just without sanitizer evidence.
                let trials: Vec<Trial> = s
                    .run_batch(&task.units, false, &mem)
                    .unwrap_or_else(|| task.units.iter().map(|&u| s.run_trial(u, false)).collect());
                TaskResult {
                    scenario: task.scenario,
                    trials: trials
                        .into_iter()
                        .map(|trial| AnalyzedTrial {
                            trial,
                            facts: Vec::new(),
                        })
                        .collect(),
                    protocol: Vec::new(),
                    analyzed: false,
                }
            }
        }
    });

    // Merge in task order (results preserve submission order), so the
    // assembly below is independent of which worker ran what.
    let mut per_scenario: Vec<AnalyzedBatch> =
        scenarios.iter().map(|_| AnalyzedBatch::default()).collect();
    let mut analyzed_flags = vec![false; scenarios.len()];
    for r in results {
        per_scenario[r.scenario].trials.extend(r.trials);
        per_scenario[r.scenario].protocol.extend(r.protocol);
        analyzed_flags[r.scenario] |= r.analyzed;
    }

    // Protocol findings repeat once per chunk (each chunk is its own
    // forward execution over the same deterministic op stream): dedupe by
    // (scenario, category, region, line), keeping the first occurrence's
    // event window. The ordered map also fixes the emission order.
    let mut findings: BTreeMap<(String, String, String, u64), DiagnosticRecord> = BTreeMap::new();
    for (s, batch) in scenarios.iter().zip(&per_scenario) {
        for d in &batch.protocol {
            let key = (
                s.name().to_string(),
                d.category.name().to_string(),
                d.region.clone(),
                d.line,
            );
            findings.entry(key).or_insert_with(|| DiagnosticRecord {
                scenario: s.name().to_string(),
                category: d.category.name().to_string(),
                region: d.region.clone(),
                line: d.line,
                first_event: d.first_event,
                last_event: d.last_event,
                epoch: d.epoch,
            });
        }
    }
    let diagnostics = DiagnosticsBlock {
        analyzed: scenarios
            .iter()
            .zip(&analyzed_flags)
            .filter(|(_, &a)| a)
            .map(|(s, _)| s.name().to_string())
            .collect(),
        findings: findings.into_values().collect(),
    };

    // Per-trial digests feed invariant inference: passing trials are the
    // evidence base, failing trials the states to explain.
    let mut digests: Vec<TrialDigest> = Vec::new();
    for (s, batch) in scenarios.iter().zip(&per_scenario) {
        for t in &batch.trials {
            digests.push(TrialDigest {
                scenario: s.name().to_string(),
                mechanism: s.mechanism().name().to_string(),
                unit: t.trial.unit,
                outcome: t.trial.outcome.name().to_string(),
                failed: failed(t.trial.outcome),
                facts: t.facts.clone(),
            });
        }
    }
    let failing_states = digests.iter().filter(|d| d.failed).count() as u64;
    let root_causes = cluster_failures(&digests, ROOT_CAUSE_CAP);

    let scenario_reports: Vec<ScenarioReport> = scenarios
        .iter()
        .zip(&per_scenario)
        .map(|(s, batch)| {
            let trials: Vec<Trial> = batch.trials.iter().map(|t| t.trial).collect();
            aggregate(s.as_ref(), cfg.dense_units, &trials)
        })
        .collect();
    let mut totals = crate::outcome::OutcomeCounts::default();
    let mut telemetry: Option<ExecutionProfile> = None;
    for r in &scenario_reports {
        totals.merge(&r.outcomes);
        if let Some(t) = &r.telemetry {
            telemetry
                .get_or_insert_with(ExecutionProfile::default)
                .merge(t);
        }
    }
    let report = CampaignReport {
        seed: cfg.seed,
        budget_states: cfg.budget_states,
        schedule: cfg.schedule.name(),
        dense_units: cfg.dense_units,
        registry: cfg.registry,
        faults: cfg.faults,
        shard: None,
        scenarios: scenario_reports,
        totals,
        telemetry,
        diagnostics: Some(diagnostics),
        image_memory: mem.summary(),
        wall_clock_ms: start.elapsed().as_millis() as u64,
        threads,
    };
    TriageReport {
        report,
        root_causes,
        failing_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Registry;
    use crate::schedule::Schedule;

    fn tiny_cfg(registry: Registry) -> CampaignConfig {
        CampaignConfig {
            seed: 42,
            budget_states: 40,
            schedule: Schedule::Stratified,
            threads: 1,
            registry,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn ds_triage_marks_every_scenario_analyzed_and_matches_the_plain_run() {
        let cfg = tiny_cfg(Registry::Ds);
        let triaged = run_triage(&cfg);
        let diags = triaged.report.diagnostics.as_ref().unwrap();
        assert_eq!(
            diags.analyzed,
            vec![
                "ds-queue-undo",
                "ds-queue-base",
                "ds-hash-undo",
                "ds-hash-base"
            ],
        );
        // Recording is outcome-neutral: the triage run's outcomes must
        // equal the plain engine's for the same inputs.
        let plain = crate::engine::run_campaign(&cfg);
        assert_eq!(triaged.report.totals, plain.totals);
        for (a, b) in triaged.report.scenarios.iter().zip(&plain.scenarios) {
            assert_eq!(a.outcomes, b.outcomes, "{}", a.name);
            assert_eq!(a.sim_time_ps_total, b.sim_time_ps_total, "{}", a.name);
        }
        // A clean tree raises no protocol findings.
        assert!(diags.findings.is_empty(), "{:?}", diags.findings);
        // Failing states exist at this budget and every one is explained
        // by a bounded root-cause list.
        assert!(triaged.failing_states > 0);
        assert!(triaged.root_causes.len() <= ROOT_CAUSE_CAP);
        let explained: u64 = triaged.root_causes.iter().map(|c| c.states).sum();
        assert_eq!(explained, triaged.failing_states);
    }

    #[test]
    fn triage_document_is_thread_count_invariant() {
        let mut cfg = tiny_cfg(Registry::Ds);
        let one = run_triage(&cfg).to_string_pretty();
        cfg.threads = 4;
        let four = run_triage(&cfg).to_string_pretty();
        assert_eq!(one, four);
        assert!(one.contains(TRIAGE_SCHEMA));
    }

    #[test]
    fn kernel_registry_triages_without_an_analyzed_path() {
        let triaged = run_triage(&tiny_cfg(Registry::Kernel));
        let diags = triaged.report.diagnostics.as_ref().unwrap();
        assert!(diags.analyzed.is_empty());
        assert!(diags.findings.is_empty());
        // Root causes fall back to outcome clustering (no facts).
        for c in &triaged.root_causes {
            assert!(c.category.starts_with("outcome:"), "{c:?}");
        }
    }
}
