//! Crash-image memory accounting for the copy-on-write campaign path.
//!
//! The legacy engine materialized a full `NvmImage` (an O(pool-size) byte
//! copy) per crash state; the delta engine stores one shared base per
//! forward execution plus O(dirty-lines) per state. This module counts
//! both so reports and benches can show bytes-per-crash-state and the
//! full-copy equivalent side by side. Everything here is a **host fact**
//! (how much memory the harness itself used), so it lives in the report's
//! non-canonical `host` section — but all counters derive from the
//! deterministic simulation, so they are identical across reruns and
//! thread counts.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Shared (thread-safe) accumulator the engine hands to every batched
/// execution. Sums and maxima are order-independent, so the totals are
/// deterministic regardless of worker interleaving.
#[derive(Debug, Default)]
pub struct ImageMemory {
    executions: AtomicU64,
    images: AtomicU64,
    base_bytes: AtomicU64,
    delta_bytes: AtomicU64,
    full_copy_bytes: AtomicU64,
    peak_live_bytes: AtomicU64,
}

impl ImageMemory {
    /// Record one batched forward execution: the shared base snapshot it
    /// took (`base_bytes`, the NVM pool size), the summed delta payload of
    /// the `images` crash states it harvested, and the pool size a legacy
    /// full-copy image of this scenario would have cost per state.
    pub fn record_execution(
        &self,
        base_bytes: u64,
        delta_bytes: u64,
        images: u64,
        pool_bytes: u64,
    ) {
        self.executions.fetch_add(1, Ordering::Relaxed);
        self.images.fetch_add(images, Ordering::Relaxed);
        self.base_bytes.fetch_add(base_bytes, Ordering::Relaxed);
        self.delta_bytes.fetch_add(delta_bytes, Ordering::Relaxed);
        self.full_copy_bytes
            .fetch_add(images.saturating_mul(pool_bytes), Ordering::Relaxed);
        // Live set of one execution: the shared base, every delta of the
        // batch, and the single transient materialization classification
        // holds at a time.
        let live = base_bytes + delta_bytes + pool_bytes;
        self.peak_live_bytes.fetch_max(live, Ordering::Relaxed);
    }

    /// Snapshot the totals.
    pub fn summary(&self) -> ImageMemorySummary {
        ImageMemorySummary {
            executions: self.executions.load(Ordering::Relaxed),
            images: self.images.load(Ordering::Relaxed),
            base_bytes: self.base_bytes.load(Ordering::Relaxed),
            delta_bytes: self.delta_bytes.load(Ordering::Relaxed),
            full_copy_bytes: self.full_copy_bytes.load(Ordering::Relaxed),
            peak_live_bytes: self.peak_live_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Aggregated crash-image memory facts for one campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ImageMemorySummary {
    /// Batched forward executions run.
    pub executions: u64,
    /// Crash states that produced an image (completed-clean states store
    /// nothing).
    pub images: u64,
    /// Bytes of shared base snapshots (one per execution).
    pub base_bytes: u64,
    /// Bytes of per-state delta payload.
    pub delta_bytes: u64,
    /// What the legacy full-copy path would have allocated for the same
    /// states (images × pool size).
    pub full_copy_bytes: u64,
    /// Largest single-execution live set (base + deltas + one transient
    /// materialization).
    pub peak_live_bytes: u64,
}

impl ImageMemorySummary {
    /// Average crash-image bytes per stored state, shared bases amortized
    /// in. Zero when no images were stored.
    pub fn bytes_per_crash_state(&self) -> u64 {
        (self.base_bytes + self.delta_bytes)
            .checked_div(self.images)
            .unwrap_or(0)
    }

    /// Average bytes per state the legacy full-copy path would have paid.
    pub fn full_copy_bytes_per_state(&self) -> u64 {
        self.full_copy_bytes.checked_div(self.images).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let m = ImageMemory::default();
        m.record_execution(1000, 200, 4, 1000);
        m.record_execution(2000, 100, 1, 2000);
        let s = m.summary();
        assert_eq!(s.executions, 2);
        assert_eq!(s.images, 5);
        assert_eq!(s.base_bytes, 3000);
        assert_eq!(s.delta_bytes, 300);
        assert_eq!(s.full_copy_bytes, 4 * 1000 + 2000);
        assert_eq!(s.peak_live_bytes, 2000 + 100 + 2000);
        assert_eq!(s.bytes_per_crash_state(), 3300 / 5);
        assert_eq!(s.full_copy_bytes_per_state(), 6000 / 5);
    }

    #[test]
    fn empty_summary_divides_safely() {
        let s = ImageMemorySummary::default();
        assert_eq!(s.bytes_per_crash_state(), 0);
        assert_eq!(s.full_copy_bytes_per_state(), 0);
    }
}
