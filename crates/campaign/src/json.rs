//! Minimal JSON tree, writer, and parser for campaign reports.
//!
//! The vendored `serde` stub is marker-only (no registry access, see
//! `vendor/README.md`), so reports are serialized through this module
//! instead. Report types still carry `#[derive(Serialize)]` tags, so
//! swapping the real serde/serde_json back in stays a `Cargo.toml`-level
//! change. Object keys keep insertion order and integers are kept exact
//! (`u64`), which is what makes reports byte-for-byte reproducible.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Exact unsigned integer (counts, picosecond totals, seeds).
    Int(u64),
    /// Everything else numeric.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// Insertion-ordered object (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key (objects only; panics otherwise — builder misuse).
    pub fn push(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("push on non-object"),
        }
        self
    }

    /// Field lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the subset this module emits, plus the
    /// usual whitespace/escape forms).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
        return text
            .parse::<u64>()
            .map(Json::Int)
            .map_err(|e| e.to_string());
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

/// Parse the four hex digits of a `\u` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
        .map_err(|e| e.to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        match code {
                            // High surrogate: must pair with a following
                            // \uDC00..\uDFFF low surrogate; together they
                            // decode to one supplementary code point.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u".as_slice()) {
                                    return Err(format!(
                                        "lone high surrogate \\u{code:04x} at offset {}",
                                        *pos - 4
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "high surrogate \\u{code:04x} followed by \\u{low:04x}, \
                                         not a low surrogate"
                                    ));
                                }
                                *pos += 6;
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(c).expect("valid surrogate pair"));
                            }
                            // Low surrogate with no preceding high half.
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "lone low surrogate \\u{code:04x} at offset {}",
                                    *pos - 4
                                ));
                            }
                            _ => out.push(char::from_u32(code).expect("non-surrogate BMP scalar")),
                        }
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar value verbatim.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_order() {
        let mut inner = Json::obj();
        inner.push("b_first", Json::Int(2));
        inner.push("a_second", Json::Str("hi \"there\"\n".into()));
        let mut doc = Json::obj();
        doc.push("seed", Json::Int(42));
        doc.push("ratio", Json::Float(0.125));
        doc.push(
            "items",
            Json::Arr(vec![Json::Int(1), Json::Null, Json::Bool(true)]),
        );
        doc.push("nested", inner);
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Deterministic emission: re-serialization is byte-identical.
        assert_eq!(parsed.pretty(), text);
    }

    #[test]
    fn big_u64_survives_exactly() {
        let v = Json::Int(u64::MAX);
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "s": "x", "l": [1, 2]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("l").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_one_code_point() {
        // U+1F600 (grinning face) escaped as a UTF-16 surrogate pair:
        // one scalar, not two U+FFFD replacement characters.
        let parsed = Json::parse(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(parsed, Json::Str("\u{1F600}".into()));
        // U+10000, the lowest supplementary code point.
        let parsed = Json::parse(r#""\uD800\uDC00""#).unwrap();
        assert_eq!(parsed, Json::Str("\u{10000}".into()));
        // Mixed with surrounding text and BMP escapes.
        let parsed = Json::parse(r#""a\u0041\uD834\uDD1Ez""#).unwrap();
        assert_eq!(parsed, Json::Str("aA\u{1D11E}z".into()));
    }

    #[test]
    fn non_bmp_strings_roundtrip_through_emit_and_parse() {
        let doc = Json::Str("grin \u{1F600} / clef \u{1D11E} / plain \u{e9}".into());
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.pretty(), text);
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        // Lone high surrogate (end of string, or followed by non-escape).
        assert!(Json::parse(r#""\uD83D""#).is_err());
        assert!(Json::parse(r#""\uD83Dxx""#).is_err());
        // High surrogate followed by a non-surrogate escape.
        assert!(Json::parse(r#""\uD83DA""#).is_err());
        // Lone low surrogate.
        assert!(Json::parse(r#""\uDE00""#).is_err());
        // Truncated escapes still error cleanly.
        assert!(Json::parse(r#""\uD83D\u00""#).is_err());
        assert!(Json::parse(r#""\u12""#).is_err());
    }
}
