//! Distributed scenarios: the `adcc_dist` kernels under both recovery
//! modes, unit-addressable so the schedule machinery enumerates
//! rank-granular failure sets.
//!
//! ## Unit space
//!
//! The site-grain space is laid out in three blocks:
//!
//! * **Block A — singleton crashes** (`ranks * iters * 2` units): unit `u`
//!   decodes to rank `u % ranks`, then `(u / ranks) / 2 + 1` as the
//!   superstep and `(u / ranks) % 2` as the phase (`PH_MID` / `PH_END`),
//!   so any schedule prefix already spreads crash points across ranks
//!   *and* supersteps. These harvest through the batch fast path.
//! * **Block B — cascading failures** (`2 * ranks` units): a first crash
//!   on rank `c % ranks` at a mid-run or late superstep, plus a second,
//!   staggered crash on the next rank armed to fire *while the cluster is
//!   still recovering or resuming* from the first. Occurrence counts are
//!   chosen per recovery mode so the second trigger lands inside the
//!   recovery re-execution (GlobalRestart) or the resumed superstep
//!   (AlgorithmDirected). These run as dedicated trials.
//! * **Block C — node loss** (`ranks` units, chaotic profile +
//!   AlgorithmDirected only): the failed rank's NVM image is destroyed
//!   with the process, forcing recovery to restore from the remote
//!   checkpoint level end-to-end. Requires the profile to configure a
//!   remote level, so the block exists only under `--faults chaotic`.
//!
//! Dense units (at or above `total_units`) map to access-count triggers
//! on rank `d % ranks` with thresholds spaced by the scenario's measured
//! stride — the same subdivision the single-rank scenarios use, per rank.

use std::collections::HashMap;
use std::sync::OnceLock;

use adcc_dist::cg::{CgConfig, DistCg};
use adcc_dist::cluster::{Cluster, RankFailure};
use adcc_dist::jacobi::{DistJacobi, JacobiConfig};
use adcc_dist::net::FaultProfile;
use adcc_dist::sites;
use adcc_dist::stencil::{DistStencil, StencilConfig};
use adcc_dist::trial::{
    reference_run, run_dist_batch, run_dist_dirty_batch, run_dist_dirty_trial, run_dist_trial,
    BatchPoint, DirtyReboot, DistKernel, DistTrial, RecoveryMode, ReferenceRun,
};
use adcc_resilience::{DirtyClass, DirtyTrial, Tolerance};
use adcc_sim::crash::{CrashSite, CrashTrigger};

use super::{max_diff, verified_completion};
use crate::memstats::ImageMemory;
use crate::outcome::classify;
use crate::scenario::{Kernel, Mechanism, ResilienceBatch, Scenario, Trial, UnitSpace};

const TOL: f64 = 1e-9;

/// One distributed kernel family: how to name it and build a fresh
/// cluster + program for one trial, under one fabric fault profile.
trait DistSpec: Send + Sync {
    type K: DistKernel + Clone;
    fn kernel(&self) -> Kernel;
    fn name(&self, mode: RecoveryMode) -> &'static str;
    fn faults(&self) -> FaultProfile;
    fn ranks(&self) -> u64;
    fn iters(&self) -> u64;
    /// Access-count spacing of dense crash points per rank (calibrated to
    /// the kernel's measured crash-free per-rank access count).
    fn dense_stride(&self) -> u64;
    /// Residual tolerance the resilience sweep classifies dirty
    /// continuations against.
    fn dirty_tolerance(&self) -> Tolerance;
    fn build(&self, mode: RecoveryMode, failures: &[RankFailure]) -> (Cluster, Self::K);
}

struct StencilSpec {
    faults: FaultProfile,
}

impl DistSpec for StencilSpec {
    type K = DistStencil;
    fn kernel(&self) -> Kernel {
        Kernel::Stencil
    }
    fn name(&self, mode: RecoveryMode) -> &'static str {
        match mode {
            RecoveryMode::AlgorithmDirected => "dist-stencil-local",
            RecoveryMode::GlobalRestart => "dist-stencil-restart",
        }
    }
    fn faults(&self) -> FaultProfile {
        self.faults
    }
    fn ranks(&self) -> u64 {
        StencilConfig::campaign_for(RecoveryMode::AlgorithmDirected, self.faults).ranks as u64
    }
    fn iters(&self) -> u64 {
        StencilConfig::campaign_for(RecoveryMode::AlgorithmDirected, self.faults).iters
    }
    fn dense_stride(&self) -> u64 {
        // ~5.4k crash-free accesses per rank.
        100
    }
    fn dirty_tolerance(&self) -> Tolerance {
        // The explicit diffusion update is contractive, so a dirty block
        // heals toward the reference; 1e-3 on a unit-scale rod accepts a
        // visibly-healed plate without waving through a cold one.
        Tolerance::new(TOL, 1e-3, 1e3)
    }
    fn build(&self, mode: RecoveryMode, failures: &[RankFailure]) -> (Cluster, DistStencil) {
        let cfg = StencilConfig::campaign_for(mode, self.faults);
        let mut cl = Cluster::new_multi(cfg.cluster(), failures);
        let prog = DistStencil::setup(&mut cl, cfg);
        (cl, prog)
    }
}

struct JacobiSpec {
    faults: FaultProfile,
}

impl DistSpec for JacobiSpec {
    type K = DistJacobi;
    fn kernel(&self) -> Kernel {
        Kernel::Jacobi
    }
    fn name(&self, mode: RecoveryMode) -> &'static str {
        match mode {
            RecoveryMode::AlgorithmDirected => "dist-jacobi-local",
            RecoveryMode::GlobalRestart => "dist-jacobi-restart",
        }
    }
    fn faults(&self) -> FaultProfile {
        self.faults
    }
    fn ranks(&self) -> u64 {
        JacobiConfig::campaign_for(RecoveryMode::AlgorithmDirected, self.faults).ranks as u64
    }
    fn iters(&self) -> u64 {
        JacobiConfig::campaign_for(RecoveryMode::AlgorithmDirected, self.faults).iters
    }
    fn dense_stride(&self) -> u64 {
        // ~9.7k crash-free accesses per rank.
        150
    }
    fn dirty_tolerance(&self) -> Tolerance {
        // Jacobi smoothing contracts faster than the 1-D rod (four
        // neighbors average in), so a slightly looser acceptable band
        // still tells healed blocks from cold ones.
        Tolerance::new(TOL, 1e-2, 1e3)
    }
    fn build(&self, mode: RecoveryMode, failures: &[RankFailure]) -> (Cluster, DistJacobi) {
        let cfg = JacobiConfig::campaign_for(mode, self.faults);
        let mut cl = Cluster::new_multi(cfg.cluster(), failures);
        let prog = DistJacobi::setup(&mut cl, cfg);
        (cl, prog)
    }
}

/// Caches the host-side SPD problem: it is a pure function of the fixed
/// config (the fault profile changes ranks, never the matrix), and
/// rebuilding it per trial would dominate dist-CG setup.
struct CgSpec {
    faults: FaultProfile,
    a: adcc_linalg::csr::CsrMatrix,
    b: Vec<f64>,
}

impl CgSpec {
    fn new(faults: FaultProfile) -> Self {
        let (a, b) = CgConfig::campaign(RecoveryMode::AlgorithmDirected).problem();
        CgSpec { faults, a, b }
    }
}

impl DistSpec for CgSpec {
    type K = DistCg;
    fn kernel(&self) -> Kernel {
        Kernel::Cg
    }
    fn name(&self, mode: RecoveryMode) -> &'static str {
        match mode {
            RecoveryMode::AlgorithmDirected => "dist-cg-local",
            RecoveryMode::GlobalRestart => "dist-cg-restart",
        }
    }
    fn faults(&self) -> FaultProfile {
        self.faults
    }
    fn ranks(&self) -> u64 {
        CgConfig::campaign_for(RecoveryMode::AlgorithmDirected, self.faults).ranks as u64
    }
    fn iters(&self) -> u64 {
        CgConfig::campaign_for(RecoveryMode::AlgorithmDirected, self.faults).iters
    }
    fn dense_stride(&self) -> u64 {
        // ~15k crash-free accesses per rank.
        250
    }
    fn dirty_tolerance(&self) -> Tolerance {
        // The Krylov recurrence has no self-correction: a dirty segment
        // either resumes from naturally-consistent residue (exact) or
        // derails, so the acceptable band mostly documents the cliff.
        Tolerance::new(TOL, 1e-4, 1e3)
    }
    fn build(&self, mode: RecoveryMode, failures: &[RankFailure]) -> (Cluster, DistCg) {
        let cfg = CgConfig::campaign_for(mode, self.faults);
        let mut cl = Cluster::new_multi(cfg.cluster(), failures);
        let prog = DistCg::setup_with_problem(&mut cl, cfg, &self.a, &self.b);
        (cl, prog)
    }
}

/// What one scheduled unit asks the cluster to survive.
enum UnitKind {
    /// Block A: one fail-stop crash — harvestable by the batch path.
    Single(RankFailure),
    /// Block B: a first crash plus a second one staggered to land during
    /// recovery or the resumed tail — runs as a dedicated trial.
    Cascade(RankFailure, RankFailure),
    /// Block C: one crash whose NVM image dies with the node — runs as a
    /// dedicated trial through the remote-restore path.
    NodeLoss(RankFailure),
    /// Access-grain dense tail — harvestable by the batch path.
    Dense(RankFailure),
}

fn at_site(phase: u32, iter: u64, occurrence: u32) -> CrashTrigger {
    CrashTrigger::AtSite {
        site: CrashSite::new(phase, iter),
        occurrence,
    }
}

/// A distributed scenario: one kernel family under one recovery mode,
/// classified against its own crash-free cluster run.
struct Dist<S: DistSpec> {
    spec: S,
    mode: RecoveryMode,
    /// The crash-free cluster execution, computed on first use and then
    /// shared by every trial of this scenario: per-trial classification
    /// needs its solution, the batch path also its per-superstep resume
    /// states (to short-circuit resumed tails).
    reference: OnceLock<ReferenceRun>,
}

impl<S: DistSpec> Dist<S> {
    fn new(spec: S, mode: RecoveryMode) -> Self {
        Dist {
            spec,
            mode,
            reference: OnceLock::new(),
        }
    }

    fn reference(&self) -> &ReferenceRun {
        self.reference.get_or_init(|| {
            let (mut cl, mut kernel) = self.spec.build(self.mode, &[]);
            reference_run(&mut cl, &mut kernel)
        })
    }

    /// Classify one distributed trial against the cached reference — the
    /// single classification path both [`Scenario::run_trial`] and
    /// [`Scenario::run_batch`] go through.
    fn classify_dist(&self, unit: u64, t: DistTrial) -> Trial {
        let matches = max_diff(&t.solution, &self.reference().solution) < TOL;
        if t.completed_clean {
            return verified_completion(matches, unit, t.profile);
        }
        Trial {
            unit,
            outcome: classify(t.detected, matches, t.lost_units),
            lost_units: t.lost_units,
            sim_time_ps: t.sim_time_ps,
            telemetry: t.profile,
        }
    }

    /// Does this scenario enumerate node-loss units? Only the chaotic
    /// profile configures the remote checkpoint level they restore from,
    /// and only AlgorithmDirected recovery can use it.
    fn has_node_loss(&self) -> bool {
        self.spec.faults() == FaultProfile::Chaotic
            && matches!(self.mode, RecoveryMode::AlgorithmDirected)
    }

    /// Site-grain block sizes `(singleton, cascade, node_loss)`.
    fn blocks(&self) -> (u64, u64, u64) {
        let ranks = self.spec.ranks();
        (
            ranks * self.spec.iters() * 2,
            2 * ranks,
            if self.has_node_loss() { ranks } else { 0 },
        )
    }

    /// The second failure of a cascade led by a `PH_MID` crash on `rank1`
    /// at `iter1`: the next rank up, armed to fire while the cluster is
    /// still digesting the first crash.
    ///
    /// Occurrence counting keys off the poll protocol — polls sweep ranks
    /// ascending and stop at the first firing rank, so ranks below
    /// `rank1` have already consumed one occurrence of the first crash's
    /// site when it fires, and ranks above it have not:
    ///
    /// * AlgorithmDirected resumes the crashed superstep itself, so the
    ///   same `(PH_MID, iter1)` site is re-polled in the resumed tail.
    /// * GlobalRestart re-executes from the last checkpoint up to the
    ///   frontier (`iter1 - 1`), so that superstep's MID poll recurs
    ///   *inside* recovery — the second occurrence lands mid-rollback.
    fn cascade_second(&self, rank1: usize, iter1: u64) -> RankFailure {
        let ranks = self.spec.ranks() as usize;
        let rank2 = (rank1 + 1) % ranks;
        let repolled_occurrence = if rank2 < rank1 { 2 } else { 1 };
        match self.mode {
            RecoveryMode::AlgorithmDirected => {
                RankFailure::crash(rank2, at_site(sites::PH_MID, iter1, repolled_occurrence))
            }
            RecoveryMode::GlobalRestart => {
                if iter1 >= 2 {
                    RankFailure::crash(rank2, at_site(sites::PH_MID, iter1 - 1, 2))
                } else {
                    RankFailure::crash(rank2, at_site(sites::PH_MID, 1, repolled_occurrence))
                }
            }
        }
    }

    /// Decode a scheduled unit into the failure set to arm.
    fn decode(&self, unit: u64) -> UnitKind {
        let ranks = self.spec.ranks();
        let iters = self.spec.iters();
        let (a, b, c) = self.blocks();
        if unit < a {
            let rank = (unit % ranks) as usize;
            let rest = unit / ranks;
            let iter = rest / 2 + 1;
            let phase = if rest.is_multiple_of(2) {
                sites::PH_MID
            } else {
                sites::PH_END
            };
            UnitKind::Single(RankFailure::crash(rank, at_site(phase, iter, 1)))
        } else if unit < a + b {
            let d = unit - a;
            let rank1 = (d % ranks) as usize;
            let iter1 = if d / ranks == 0 {
                (iters / 2).max(1)
            } else {
                (iters - 1).max(1)
            };
            UnitKind::Cascade(
                RankFailure::crash(rank1, at_site(sites::PH_MID, iter1, 1)),
                self.cascade_second(rank1, iter1),
            )
        } else if unit < a + b + c {
            let rank = ((unit - a - b) % ranks) as usize;
            UnitKind::NodeLoss(RankFailure::node_loss(
                rank,
                at_site(sites::PH_END, (iters / 2).max(1), 1),
            ))
        } else {
            let d = unit - (a + b + c);
            let rank = (d % ranks) as usize;
            UnitKind::Dense(RankFailure::crash(
                rank,
                CrashTrigger::AtAccessCount((d / ranks + 1) * self.dense_stride()),
            ))
        }
    }

    /// Run one unit's failure set as a dedicated trial (blocks B and C).
    fn run_solo(&self, failures: &[RankFailure], telemetry: bool) -> DistTrial {
        let (mut cl, mut kernel) = self.spec.build(self.mode, failures);
        run_dist_trial(&mut cl, &mut kernel, telemetry)
    }
}

impl<S: DistSpec> Scenario for Dist<S> {
    fn name(&self) -> &'static str {
        self.spec.name(self.mode)
    }
    fn kernel(&self) -> Kernel {
        self.spec.kernel()
    }
    fn mechanism(&self) -> Mechanism {
        match self.mode {
            RecoveryMode::AlgorithmDirected => Mechanism::Extended,
            RecoveryMode::GlobalRestart => Mechanism::Checkpoint,
        }
    }
    fn platform_name(&self) -> &'static str {
        match self.spec.faults() {
            FaultProfile::Chaotic => "dist-16rank-grid",
            _ => "dist-4rank",
        }
    }
    fn unit_space(&self) -> UnitSpace {
        let (a, b, c) = self.blocks();
        UnitSpace::new(a + b + c, self.spec.dense_stride())
    }
    fn site_trigger(&self, unit: u64) -> CrashTrigger {
        self.trigger_of(unit)
    }
    fn trigger_of(&self, unit: u64) -> CrashTrigger {
        // The *first* failure's trigger: schedules only need a stable
        // per-unit label, and cascades are keyed by their leading crash.
        match self.decode(unit) {
            UnitKind::Single(f)
            | UnitKind::Cascade(f, _)
            | UnitKind::NodeLoss(f)
            | UnitKind::Dense(f) => f.trigger,
        }
    }

    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial {
        let t = match self.decode(unit) {
            UnitKind::Single(f) | UnitKind::Dense(f) => self.run_solo(&[f], telemetry),
            UnitKind::Cascade(first, second) => self.run_solo(&[first, second], telemetry),
            UnitKind::NodeLoss(f) => self.run_solo(&[f], telemetry),
        };
        self.classify_dist(unit, t)
    }

    /// One forward cluster execution harvests every *singleton* crash
    /// point of `units` as a copy-on-write delta, replays each through
    /// recovery on a forked cluster, and short-circuits resumed tails
    /// against the cached reference run. Cascade and node-loss units
    /// cannot be harvested from a single execution (their failure sets
    /// change the execution itself), so they run as dedicated trials
    /// alongside the batch. Produces trials identical to per-unit
    /// `run_trial` (the delta-equivalence suite pins this).
    fn run_batch(&self, units: &[u64], telemetry: bool, mem: &ImageMemory) -> Option<Vec<Trial>> {
        let reference = self.reference();
        let mut points: Vec<BatchPoint> = Vec::new();
        let mut solo: Vec<(u64, Vec<RankFailure>)> = Vec::new();
        for &unit in units {
            match self.decode(unit) {
                UnitKind::Single(f) | UnitKind::Dense(f) => points.push(BatchPoint {
                    unit,
                    rank: f.rank,
                    trigger: f.trigger,
                }),
                UnitKind::Cascade(first, second) => solo.push((unit, vec![first, second])),
                UnitKind::NodeLoss(f) => solo.push((unit, vec![f])),
            }
        }
        let mut by_unit: HashMap<u64, Trial> = HashMap::with_capacity(units.len());
        if !points.is_empty() {
            let (mut cl, mut kernel) = self.spec.build(self.mode, &[]);
            let (results, stats) =
                run_dist_batch(&mut cl, &mut kernel, &points, telemetry, reference);
            mem.record_execution(
                stats.base_bytes,
                stats.delta_bytes,
                stats.images,
                stats.pool_bytes,
            );
            for (unit, t) in results {
                by_unit.insert(unit, self.classify_dist(unit, t));
            }
        }
        for (unit, failures) in solo {
            let t = self.run_solo(&failures, telemetry);
            by_unit.insert(unit, self.classify_dist(unit, t));
        }
        Some(
            units
                .iter()
                .map(|u| by_unit.remove(u).expect("batch covered every unit"))
                .collect(),
        )
    }

    /// The dirty-restart sweep over the same schedule `run_batch` covers:
    /// singleton and dense units harvest through one forward execution and
    /// reboot dirty on forked clusters; cascade and node-loss units run as
    /// dedicated dirty trials. Units whose trigger never fires completed
    /// clean — nothing crashed, nothing rebooted — and classify as
    /// converged-exact at zero cost.
    fn run_resilience(&self, units: &[u64], mem: &ImageMemory) -> Option<ResilienceBatch> {
        let tolerance = self.spec.dirty_tolerance();
        let classify_dirty = |unit: u64, d: &DirtyReboot| {
            let diff = max_diff(&d.solution, &self.reference().solution);
            DirtyTrial {
                unit,
                class: tolerance.classify(false, diff),
                extra_units: 0,
                sim_time_ps: d.sim_time_ps,
            }
        };
        let mut points: Vec<BatchPoint> = Vec::new();
        let mut solo: Vec<(u64, Vec<RankFailure>)> = Vec::new();
        for &unit in units {
            match self.decode(unit) {
                UnitKind::Single(f) | UnitKind::Dense(f) => points.push(BatchPoint {
                    unit,
                    rank: f.rank,
                    trigger: f.trigger,
                }),
                UnitKind::Cascade(first, second) => solo.push((unit, vec![first, second])),
                UnitKind::NodeLoss(f) => solo.push((unit, vec![f])),
            }
        }
        let mut by_unit: HashMap<u64, DirtyTrial> = HashMap::with_capacity(units.len());
        if !points.is_empty() {
            let (mut cl, mut kernel) = self.spec.build(self.mode, &[]);
            let (results, stats) = run_dist_dirty_batch(&mut cl, &mut kernel, &points);
            mem.record_execution(
                stats.base_bytes,
                stats.delta_bytes,
                stats.images,
                stats.pool_bytes,
            );
            for (unit, d) in results {
                by_unit.insert(unit, classify_dirty(unit, &d));
            }
        }
        for (unit, failures) in solo {
            let (mut cl, mut kernel) = self.spec.build(self.mode, &failures);
            if let Some(d) = run_dist_dirty_trial(&mut cl, &mut kernel) {
                by_unit.insert(unit, classify_dirty(unit, &d));
            }
        }
        let trials = units
            .iter()
            .map(|&unit| {
                by_unit.remove(&unit).unwrap_or(DirtyTrial {
                    unit,
                    class: DirtyClass::ConvergedExact,
                    extra_units: 0,
                    sim_time_ps: 0,
                })
            })
            .collect();
        Some(ResilienceBatch { trials, tolerance })
    }
}

/// Every distributed scenario under one fabric fault profile, in report
/// order: each kernel family under algorithm-directed local recovery and
/// global checkpoint restart.
pub fn all_with(faults: FaultProfile) -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(Dist::new(
            StencilSpec { faults },
            RecoveryMode::AlgorithmDirected,
        )),
        Box::new(Dist::new(
            StencilSpec { faults },
            RecoveryMode::GlobalRestart,
        )),
        Box::new(Dist::new(
            JacobiSpec { faults },
            RecoveryMode::AlgorithmDirected,
        )),
        Box::new(Dist::new(
            JacobiSpec { faults },
            RecoveryMode::GlobalRestart,
        )),
        Box::new(Dist::new(
            CgSpec::new(faults),
            RecoveryMode::AlgorithmDirected,
        )),
        Box::new(Dist::new(CgSpec::new(faults), RecoveryMode::GlobalRestart)),
    ]
}

/// The faultless registry (`campaign run --registry dist`).
pub fn all() -> Vec<Box<dyn Scenario>> {
    all_with(FaultProfile::Off)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;

    fn stencil(mode: RecoveryMode) -> Dist<StencilSpec> {
        Dist::new(
            StencilSpec {
                faults: FaultProfile::Off,
            },
            mode,
        )
    }

    #[test]
    fn unit_decode_interleaves_ranks_then_supersteps() {
        let s = stencil(RecoveryMode::AlgorithmDirected);
        let ranks = s.spec.ranks();
        // Units 0..ranks are the MID polls of superstep 1, one per rank.
        for u in 0..ranks {
            let UnitKind::Single(f) = s.decode(u) else {
                panic!("unit {u} should be a singleton");
            };
            assert_eq!(f.rank as u64, u);
            assert!(!f.node_loss);
            assert_eq!(f.trigger, at_site(sites::PH_MID, 1, 1));
        }
        // The next block is the END polls of superstep 1.
        let UnitKind::Single(f) = s.decode(ranks) else {
            panic!("should be a singleton");
        };
        assert_eq!(f.trigger, at_site(sites::PH_END, 1, 1));
        // Dense units spread across ranks with growing thresholds.
        let total = s.total_units();
        let UnitKind::Dense(f) = s.decode(total + 5) else {
            panic!("should be dense");
        };
        assert_eq!(f.rank as u64, 5 % ranks);
        assert_eq!(f.trigger, CrashTrigger::AtAccessCount(200));
    }

    #[test]
    fn cascade_units_stagger_a_second_crash_onto_the_next_rank() {
        let s = stencil(RecoveryMode::AlgorithmDirected);
        let ranks = s.spec.ranks();
        let iters = s.spec.iters();
        let (a, b, _) = s.blocks();
        assert_eq!(b, 2 * ranks);
        // First cascade variant: mid-run crash.
        let UnitKind::Cascade(first, second) = s.decode(a) else {
            panic!("should be a cascade");
        };
        assert_eq!(first.rank, 0);
        assert_eq!(first.trigger, at_site(sites::PH_MID, iters / 2, 1));
        assert_eq!(second.rank, 1);
        // Rank 1 sits above rank 0, so its re-polled site is occurrence 1.
        assert_eq!(second.trigger, at_site(sites::PH_MID, iters / 2, 1));
        // Wrap-around: the last rank's cascade partner is rank 0, which
        // was polled once before the first crash fired.
        let UnitKind::Cascade(first, second) = s.decode(a + ranks - 1) else {
            panic!("should be a cascade");
        };
        assert_eq!(first.rank as u64, ranks - 1);
        assert_eq!(second.rank, 0);
        assert_eq!(second.trigger, at_site(sites::PH_MID, iters / 2, 2));
        // GlobalRestart staggers the second crash into the rollback
        // re-execution: one superstep earlier, second occurrence.
        let s = stencil(RecoveryMode::GlobalRestart);
        let UnitKind::Cascade(_, second) = s.decode(a + ranks) else {
            panic!("should be a cascade");
        };
        assert_eq!(second.trigger, at_site(sites::PH_MID, iters - 2, 2));
    }

    #[test]
    fn node_loss_units_exist_only_under_chaotic_local_recovery() {
        let off = stencil(RecoveryMode::AlgorithmDirected);
        assert_eq!(off.blocks().2, 0);
        let chaotic = Dist::new(
            StencilSpec {
                faults: FaultProfile::Chaotic,
            },
            RecoveryMode::AlgorithmDirected,
        );
        let ranks = chaotic.spec.ranks();
        assert_eq!(ranks, 16, "chaotic tier runs the 4x4 grid");
        assert_eq!(chaotic.blocks().2, ranks);
        assert_eq!(chaotic.platform_name(), "dist-16rank-grid");
        let (a, b, _) = chaotic.blocks();
        let UnitKind::NodeLoss(f) = chaotic.decode(a + b + 3) else {
            panic!("should be node loss");
        };
        assert_eq!(f.rank, 3);
        assert!(f.node_loss);
        // GlobalRestart cannot use the remote level: no node-loss block.
        let restart = Dist::new(
            StencilSpec {
                faults: FaultProfile::Chaotic,
            },
            RecoveryMode::GlobalRestart,
        );
        assert_eq!(restart.blocks().2, 0);
    }

    #[test]
    fn every_site_unit_of_one_superstep_recovers_exactly_under_local() {
        let s = stencil(RecoveryMode::AlgorithmDirected);
        let ranks = s.spec.ranks();
        // Superstep 4's MID and END units across all ranks.
        for u in (3 * 2 * ranks)..(4 * 2 * ranks) {
            let t = s.run_trial(u, false);
            assert_eq!(t.outcome, Outcome::RecoveredExact, "unit {u}");
        }
    }

    #[test]
    fn cascade_units_recover_or_detect_under_both_modes() {
        for mode in [RecoveryMode::AlgorithmDirected, RecoveryMode::GlobalRestart] {
            let s = stencil(mode);
            let (a, b, _) = s.blocks();
            for u in [a, a + 1, a + b - 1] {
                let t = s.run_trial(u, false);
                assert!(
                    matches!(
                        t.outcome,
                        Outcome::RecoveredExact
                            | Outcome::RecoveredRecomputed
                            | Outcome::DetectedDirty
                    ),
                    "{mode:?} unit {u}: {:?}",
                    t.outcome
                );
            }
        }
    }

    #[test]
    fn restart_units_recover_by_recomputation_between_checkpoints() {
        let s = Dist::new(
            JacobiSpec {
                faults: FaultProfile::Off,
            },
            RecoveryMode::GlobalRestart,
        );
        let ranks = s.spec.ranks();
        // Superstep 5 MID (frontier 4, checkpoint 3): one superstep of
        // cluster-wide re-execution.
        let unit = (5 - 1) * 2 * ranks;
        let t = s.run_trial(unit, true);
        assert_eq!(t.outcome, Outcome::RecoveredRecomputed);
        assert_eq!(t.lost_units, ranks);
        let p = t.telemetry.expect("telemetry requested");
        assert!(p.recovery_net_bytes > 0);
    }

    #[test]
    fn dense_units_past_the_run_complete_clean() {
        let s = Dist::new(
            CgSpec::new(FaultProfile::Off),
            RecoveryMode::AlgorithmDirected,
        );
        let t = s.run_trial(s.total_units() + 100 * s.spec.ranks(), false);
        assert_eq!(t.outcome, Outcome::CompletedClean);
    }

    #[test]
    fn node_loss_units_restore_from_the_remote_level_exactly() {
        let s = Dist::new(
            JacobiSpec {
                faults: FaultProfile::Chaotic,
            },
            RecoveryMode::AlgorithmDirected,
        );
        let (a, b, c) = s.blocks();
        assert!(c > 0);
        let t = s.run_trial(a + b + 1, true);
        assert_eq!(t.outcome, Outcome::RecoveredExact);
        let p = t.telemetry.expect("telemetry requested");
        assert!(p.remote_restore_bytes > 0, "remote level was read");
        assert!(p.net_dropped > 0, "chaotic fabric dropped messages");
    }
}
