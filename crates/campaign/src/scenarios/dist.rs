//! Distributed scenarios: the `adcc_dist` kernels under both recovery
//! modes, unit-addressable so the schedule machinery enumerates
//! `(rank, site)` crash points.
//!
//! ## Unit space
//!
//! Site-grain units interleave ranks fastest: unit `u` decodes to rank
//! `u % ranks`, then `(u / ranks) / 2 + 1` as the superstep and
//! `(u / ranks) % 2` as the phase (`PH_MID` / `PH_END`), so any schedule
//! prefix already spreads crash points across ranks *and* supersteps.
//! Dense units (at or above `total_units`) map to access-count triggers on
//! rank `d % ranks` with thresholds spaced by the scenario's measured
//! stride — the same subdivision the single-rank scenarios use, per rank.

use std::collections::HashMap;
use std::sync::OnceLock;

use adcc_dist::cg::{CgConfig, DistCg};
use adcc_dist::cluster::Cluster;
use adcc_dist::jacobi::{DistJacobi, JacobiConfig};
use adcc_dist::sites;
use adcc_dist::stencil::{DistStencil, StencilConfig};
use adcc_dist::trial::{
    reference_run, run_dist_batch, run_dist_trial, BatchPoint, DistKernel, DistTrial, RecoveryMode,
    ReferenceRun,
};
use adcc_sim::crash::{CrashSite, CrashTrigger};

use super::{max_diff, verified_completion};
use crate::memstats::ImageMemory;
use crate::outcome::classify;
use crate::scenario::{Kernel, Mechanism, Scenario, Trial, UnitSpace};

const TOL: f64 = 1e-9;

/// One distributed kernel family: how to name it and build a fresh
/// cluster + program for one trial.
trait DistSpec: Send + Sync {
    type K: DistKernel + Clone;
    fn kernel(&self) -> Kernel;
    fn name(&self, mode: RecoveryMode) -> &'static str;
    fn ranks(&self) -> u64;
    fn iters(&self) -> u64;
    /// Access-count spacing of dense crash points per rank (calibrated to
    /// the kernel's measured crash-free per-rank access count).
    fn dense_stride(&self) -> u64;
    fn build(&self, mode: RecoveryMode, crash: Option<(usize, CrashTrigger)>)
        -> (Cluster, Self::K);
}

struct StencilSpec;

impl DistSpec for StencilSpec {
    type K = DistStencil;
    fn kernel(&self) -> Kernel {
        Kernel::Stencil
    }
    fn name(&self, mode: RecoveryMode) -> &'static str {
        match mode {
            RecoveryMode::AlgorithmDirected => "dist-stencil-local",
            RecoveryMode::GlobalRestart => "dist-stencil-restart",
        }
    }
    fn ranks(&self) -> u64 {
        StencilConfig::campaign(RecoveryMode::AlgorithmDirected).ranks as u64
    }
    fn iters(&self) -> u64 {
        StencilConfig::campaign(RecoveryMode::AlgorithmDirected).iters
    }
    fn dense_stride(&self) -> u64 {
        // ~5.4k crash-free accesses per rank.
        100
    }
    fn build(
        &self,
        mode: RecoveryMode,
        crash: Option<(usize, CrashTrigger)>,
    ) -> (Cluster, DistStencil) {
        let cfg = StencilConfig::campaign(mode);
        let mut cl = Cluster::new(cfg.cluster(), crash);
        let prog = DistStencil::setup(&mut cl, cfg);
        (cl, prog)
    }
}

struct JacobiSpec;

impl DistSpec for JacobiSpec {
    type K = DistJacobi;
    fn kernel(&self) -> Kernel {
        Kernel::Jacobi
    }
    fn name(&self, mode: RecoveryMode) -> &'static str {
        match mode {
            RecoveryMode::AlgorithmDirected => "dist-jacobi-local",
            RecoveryMode::GlobalRestart => "dist-jacobi-restart",
        }
    }
    fn ranks(&self) -> u64 {
        JacobiConfig::campaign(RecoveryMode::AlgorithmDirected).ranks as u64
    }
    fn iters(&self) -> u64 {
        JacobiConfig::campaign(RecoveryMode::AlgorithmDirected).iters
    }
    fn dense_stride(&self) -> u64 {
        // ~9.7k crash-free accesses per rank.
        150
    }
    fn build(
        &self,
        mode: RecoveryMode,
        crash: Option<(usize, CrashTrigger)>,
    ) -> (Cluster, DistJacobi) {
        let cfg = JacobiConfig::campaign(mode);
        let mut cl = Cluster::new(cfg.cluster(), crash);
        let prog = DistJacobi::setup(&mut cl, cfg);
        (cl, prog)
    }
}

/// Caches the host-side SPD problem: it is a pure function of the fixed
/// config, and rebuilding it per trial would dominate dist-CG setup.
struct CgSpec {
    a: adcc_linalg::csr::CsrMatrix,
    b: Vec<f64>,
}

impl CgSpec {
    fn new() -> Self {
        let (a, b) = CgConfig::campaign(RecoveryMode::AlgorithmDirected).problem();
        CgSpec { a, b }
    }
}

impl DistSpec for CgSpec {
    type K = DistCg;
    fn kernel(&self) -> Kernel {
        Kernel::Cg
    }
    fn name(&self, mode: RecoveryMode) -> &'static str {
        match mode {
            RecoveryMode::AlgorithmDirected => "dist-cg-local",
            RecoveryMode::GlobalRestart => "dist-cg-restart",
        }
    }
    fn ranks(&self) -> u64 {
        CgConfig::campaign(RecoveryMode::AlgorithmDirected).ranks as u64
    }
    fn iters(&self) -> u64 {
        CgConfig::campaign(RecoveryMode::AlgorithmDirected).iters
    }
    fn dense_stride(&self) -> u64 {
        // ~15k crash-free accesses per rank.
        250
    }
    fn build(&self, mode: RecoveryMode, crash: Option<(usize, CrashTrigger)>) -> (Cluster, DistCg) {
        let cfg = CgConfig::campaign(mode);
        let mut cl = Cluster::new(cfg.cluster(), crash);
        let prog = DistCg::setup_with_problem(&mut cl, cfg, &self.a, &self.b);
        (cl, prog)
    }
}

/// A distributed scenario: one kernel family under one recovery mode,
/// classified against its own crash-free cluster run.
struct Dist<S: DistSpec> {
    spec: S,
    mode: RecoveryMode,
    /// The crash-free cluster execution, computed on first use and then
    /// shared by every trial of this scenario: per-trial classification
    /// needs its solution, the batch path also its per-superstep resume
    /// states (to short-circuit resumed tails).
    reference: OnceLock<ReferenceRun>,
}

impl<S: DistSpec> Dist<S> {
    fn new(spec: S, mode: RecoveryMode) -> Self {
        Dist {
            spec,
            mode,
            reference: OnceLock::new(),
        }
    }

    fn reference(&self) -> &ReferenceRun {
        self.reference.get_or_init(|| {
            let (mut cl, mut kernel) = self.spec.build(self.mode, None);
            reference_run(&mut cl, &mut kernel)
        })
    }

    /// Classify one distributed trial against the cached reference — the
    /// single classification path both [`Scenario::run_trial`] and
    /// [`Scenario::run_batch`] go through.
    fn classify_dist(&self, unit: u64, t: DistTrial) -> Trial {
        let matches = max_diff(&t.solution, &self.reference().solution) < TOL;
        if t.completed_clean {
            return verified_completion(matches, unit, t.profile);
        }
        Trial {
            unit,
            outcome: classify(t.detected, matches, t.lost_units),
            lost_units: t.lost_units,
            sim_time_ps: t.sim_time_ps,
            telemetry: t.profile,
        }
    }

    /// Decode a scheduled unit into the rank to kill and its trigger.
    fn decode(&self, unit: u64) -> (usize, CrashTrigger) {
        let ranks = self.spec.ranks();
        let total = self.total_units();
        if unit < total {
            let rank = (unit % ranks) as usize;
            let rest = unit / ranks;
            let iter = rest / 2 + 1;
            let phase = if rest.is_multiple_of(2) {
                sites::PH_MID
            } else {
                sites::PH_END
            };
            (
                rank,
                CrashTrigger::AtSite {
                    site: CrashSite::new(phase, iter),
                    occurrence: 1,
                },
            )
        } else {
            let d = unit - total;
            let rank = (d % ranks) as usize;
            (
                rank,
                CrashTrigger::AtAccessCount((d / ranks + 1) * self.dense_stride()),
            )
        }
    }
}

impl<S: DistSpec> Scenario for Dist<S> {
    fn name(&self) -> &'static str {
        self.spec.name(self.mode)
    }
    fn kernel(&self) -> Kernel {
        self.spec.kernel()
    }
    fn mechanism(&self) -> Mechanism {
        match self.mode {
            RecoveryMode::AlgorithmDirected => Mechanism::Extended,
            RecoveryMode::GlobalRestart => Mechanism::Checkpoint,
        }
    }
    fn platform_name(&self) -> &'static str {
        "dist-4rank"
    }
    fn unit_space(&self) -> UnitSpace {
        UnitSpace::new(
            self.spec.ranks() * self.spec.iters() * 2,
            self.spec.dense_stride(),
        )
    }
    fn site_trigger(&self, unit: u64) -> CrashTrigger {
        self.decode(unit).1
    }
    fn trigger_of(&self, unit: u64) -> CrashTrigger {
        self.decode(unit).1
    }

    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial {
        let (rank, trigger) = self.decode(unit);
        let (mut cl, mut kernel) = self.spec.build(self.mode, Some((rank, trigger)));
        let t = run_dist_trial(&mut cl, &mut kernel, telemetry);
        self.classify_dist(unit, t)
    }

    /// One forward cluster execution harvests every scheduled crash point
    /// as a copy-on-write delta, replays each through recovery on a forked
    /// cluster, and short-circuits resumed tails against the cached
    /// reference run. Produces trials identical to per-unit `run_trial`
    /// (the delta-equivalence suite pins this).
    fn run_batch(&self, units: &[u64], telemetry: bool, mem: &ImageMemory) -> Option<Vec<Trial>> {
        let reference = self.reference();
        let points: Vec<BatchPoint> = units
            .iter()
            .map(|&unit| {
                let (rank, trigger) = self.decode(unit);
                BatchPoint {
                    unit,
                    rank,
                    trigger,
                }
            })
            .collect();
        let (mut cl, mut kernel) = self.spec.build(self.mode, None);
        let (results, stats) = run_dist_batch(&mut cl, &mut kernel, &points, telemetry, reference);
        mem.record_execution(
            stats.base_bytes,
            stats.delta_bytes,
            stats.images,
            stats.pool_bytes,
        );
        let mut by_unit: HashMap<u64, Trial> = results
            .into_iter()
            .map(|(unit, t)| (unit, self.classify_dist(unit, t)))
            .collect();
        Some(
            units
                .iter()
                .map(|u| by_unit.remove(u).expect("batch covered every unit"))
                .collect(),
        )
    }
}

/// Every distributed scenario, in report order: each kernel family under
/// algorithm-directed local recovery and global checkpoint restart.
pub fn all() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(Dist::new(StencilSpec, RecoveryMode::AlgorithmDirected)),
        Box::new(Dist::new(StencilSpec, RecoveryMode::GlobalRestart)),
        Box::new(Dist::new(JacobiSpec, RecoveryMode::AlgorithmDirected)),
        Box::new(Dist::new(JacobiSpec, RecoveryMode::GlobalRestart)),
        Box::new(Dist::new(CgSpec::new(), RecoveryMode::AlgorithmDirected)),
        Box::new(Dist::new(CgSpec::new(), RecoveryMode::GlobalRestart)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;

    #[test]
    fn unit_decode_interleaves_ranks_then_supersteps() {
        let s = Dist::new(StencilSpec, RecoveryMode::AlgorithmDirected);
        let ranks = s.spec.ranks();
        // Units 0..ranks are the MID polls of superstep 1, one per rank.
        for u in 0..ranks {
            let (rank, trigger) = s.decode(u);
            assert_eq!(rank as u64, u);
            assert_eq!(
                trigger,
                CrashTrigger::AtSite {
                    site: CrashSite::new(sites::PH_MID, 1),
                    occurrence: 1
                }
            );
        }
        // The next block is the END polls of superstep 1.
        let (_, trigger) = s.decode(ranks);
        assert_eq!(
            trigger,
            CrashTrigger::AtSite {
                site: CrashSite::new(sites::PH_END, 1),
                occurrence: 1
            }
        );
        // Dense units spread across ranks with growing thresholds.
        let total = s.total_units();
        let (rank, trigger) = s.decode(total + 5);
        assert_eq!(rank as u64, 5 % ranks);
        assert_eq!(trigger, CrashTrigger::AtAccessCount(200));
    }

    #[test]
    fn every_site_unit_of_one_superstep_recovers_exactly_under_local() {
        let s = Dist::new(StencilSpec, RecoveryMode::AlgorithmDirected);
        let ranks = s.spec.ranks();
        // Superstep 4's MID and END units across all ranks.
        for u in (3 * 2 * ranks)..(4 * 2 * ranks) {
            let t = s.run_trial(u, false);
            assert_eq!(t.outcome, Outcome::RecoveredExact, "unit {u}");
        }
    }

    #[test]
    fn restart_units_recover_by_recomputation_between_checkpoints() {
        let s = Dist::new(JacobiSpec, RecoveryMode::GlobalRestart);
        let ranks = s.spec.ranks();
        // Superstep 5 MID (frontier 4, checkpoint 3): one superstep of
        // cluster-wide re-execution.
        let unit = (5 - 1) * 2 * ranks;
        let t = s.run_trial(unit, true);
        assert_eq!(t.outcome, Outcome::RecoveredRecomputed);
        assert_eq!(t.lost_units, ranks);
        let p = t.telemetry.expect("telemetry requested");
        assert!(p.recovery_net_bytes > 0);
    }

    #[test]
    fn dense_units_past_the_run_complete_clean() {
        let s = Dist::new(CgSpec::new(), RecoveryMode::AlgorithmDirected);
        let t = s.run_trial(s.total_units() + 100 * s.spec.ranks(), false);
        assert_eq!(t.outcome, Outcome::CompletedClean);
    }
}
