//! Checksum-LU scenarios: ABFT-checksum algorithm extension and per-block
//! checkpoint.

use std::cell::RefCell;

use adcc_ckpt::manager::CkptManager;
use adcc_core::lu::{dominant_matrix, lu_host, sites, ChecksumLu, LuBlockStatus};
use adcc_linalg::Matrix;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::system::{MemorySystem, SystemConfig};
use adcc_telemetry::{ExecutionProfile, Probe};

use adcc_resilience::Tolerance;

use super::{harness, trim_dram, verified_completion};
use crate::memstats::ImageMemory;
use crate::outcome::classify;
use crate::scenario::{Kernel, Mechanism, ResilienceBatch, Scenario, Trial, UnitSpace};

const N: usize = 32;
const BK: usize = 4;
const TOL: f64 = 1e-8;
const PROBLEM_SEED: u64 = 304;
/// Access-count spacing of dense crash points (one full factorization
/// issues ~37-39k element accesses; a 4-access stride carries ~9.5k
/// points).
const DENSE_STRIDE: u64 = 4;

fn config() -> SystemConfig {
    let cap = 2 * N * (N + 1) * 8 + N * 8 + (2 << 20);
    trim_dram(SystemConfig::nvm_only(8 << 10, cap))
}

fn blocks() -> u64 {
    N.div_ceil(BK) as u64
}

/// Dirty-restart residual tolerance. Elimination has no damping at all —
/// a torn column poisons every later column it eliminates into — so a
/// dirty factorization either survived bitwise-consistent state (exact)
/// or is garbage; the `acceptable` band is correspondingly razor thin.
fn dirty_tolerance() -> Tolerance {
    Tolerance::new(TOL, 1e-6, 1e6)
}

/// Row-major flattening of the reference factor, the layout
/// [`ChecksumLu::dirty_restart`] reports its answer in.
fn flat_factor(m: &Matrix) -> Vec<f64> {
    let mut out = Vec::with_capacity(N * N);
    for i in 0..N {
        for j in 0..N {
            out.push(m.get(i, j));
        }
    }
    out
}

/// NaN-aware factor comparison (`Matrix::max_abs_diff` folds with
/// `f64::max`, which would silently swallow NaN entries).
fn factor_matches(got: &Matrix, want: &Matrix) -> bool {
    let mut max = 0.0f64;
    for i in 0..want.rows() {
        for j in 0..want.cols() {
            let d = (got.get(i, j) - want.get(i, j)).abs();
            if !d.is_finite() {
                return false;
            }
            max = max.max(d);
        }
    }
    max < TOL
}

fn lu_site_trigger(unit: u64) -> CrashTrigger {
    if unit < N as u64 {
        CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_COL, unit),
            occurrence: 1,
        }
    } else {
        CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_BLOCK_END, unit - N as u64),
            occurrence: 1,
        }
    }
}

// ---------------------------------------------------------------------
// lu-extended
// ---------------------------------------------------------------------

/// Checksum-LU with per-block verification and selective refactoring.
/// Units below `N` crash after a column; the rest crash at block
/// boundaries (after the block's checksums persisted).
pub struct LuExtended {
    a: Matrix,
    reference: Matrix,
}

impl LuExtended {
    pub fn new() -> Self {
        let a = dominant_matrix(N, PROBLEM_SEED);
        let reference = lu_host(&a);
        LuExtended { a, reference }
    }

    fn crash_trial(
        &self,
        lu: &ChecksumLu,
        cfg: SystemConfig,
        unit: u64,
        image: &NvmImage,
        profile: Option<ExecutionProfile>,
    ) -> Trial {
        let rec = lu.recover_and_resume(image, cfg);
        let matches = factor_matches(&rec.factor, &self.reference);
        let detected = rec.statuses.contains(&LuBlockStatus::Inconsistent);
        Trial {
            unit,
            outcome: classify(detected, matches, rec.report.lost_units),
            lost_units: rec.report.lost_units,
            sim_time_ps: rec.report.total().ps(),
            telemetry: profile,
        }
    }
}

impl Default for LuExtended {
    fn default() -> Self {
        Self::new()
    }
}

impl Scenario for LuExtended {
    fn name(&self) -> &'static str {
        "lu-extended"
    }
    fn kernel(&self) -> Kernel {
        Kernel::Lu
    }
    fn mechanism(&self) -> Mechanism {
        Mechanism::Extended
    }
    fn unit_space(&self) -> UnitSpace {
        UnitSpace::new(N as u64 + blocks(), DENSE_STRIDE)
    }

    fn site_trigger(&self, unit: u64) -> CrashTrigger {
        lu_site_trigger(unit)
    }

    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial {
        let cfg = config();
        let mut sys = MemorySystem::new(cfg.clone());
        let lu = ChecksumLu::setup(&mut sys, &self.a, BK);
        let mut emu = CrashEmulator::from_system(sys, self.trigger_of(unit));
        let probe = telemetry.then(|| Probe::attach(&emu));
        match lu.run(&mut emu, 0) {
            RunOutcome::Completed(()) => {
                let profile = probe.map(|p| p.finish(&emu));
                let factor = lu.peek_factor(&emu);
                verified_completion(factor_matches(&factor, &self.reference), unit, profile)
            }
            RunOutcome::Crashed(image) => {
                let profile = probe.map(|p| p.finish(&emu).with_image(&image));
                self.crash_trial(&lu, cfg, unit, &image, profile)
            }
        }
    }

    fn run_batch(&self, units: &[u64], telemetry: bool, mem: &ImageMemory) -> Option<Vec<Trial>> {
        let cfg = config();
        let mut sys = MemorySystem::new(cfg.clone());
        let lu = ChecksumLu::setup(&mut sys, &self.a, BK);
        let emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        Some(harness::run_harvested(
            units,
            telemetry,
            mem,
            emu,
            |u| self.trigger_of(u),
            |e| {
                lu.run(e, 0).completed().expect("Never trigger completes");
            },
            |_k, unit, _site, image, profile| {
                self.crash_trial(&lu, cfg.clone(), unit, image, profile)
            },
            |(), e, profile| {
                let factor = lu.peek_factor(e);
                verified_completion(factor_matches(&factor, &self.reference), 0, profile)
            },
        ))
    }

    fn run_resilience(&self, units: &[u64], mem: &ImageMemory) -> Option<ResilienceBatch> {
        let cfg = config();
        let mut sys = MemorySystem::new(cfg.clone());
        let lu = ChecksumLu::setup(&mut sys, &self.a, BK);
        let emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let want = flat_factor(&self.reference);
        let tolerance = dirty_tolerance();
        let trials = harness::run_dirty(
            units,
            mem,
            emu,
            |u| self.trigger_of(u),
            |e| {
                lu.run(e, 0).completed().expect("Never trigger completes");
            },
            |unit, image| {
                let d = lu.dirty_restart(image, cfg.clone());
                harness::classify_dirty(unit, &d, &want, &tolerance)
            },
        );
        Some(ResilienceBatch { trials, tolerance })
    }
}

// ---------------------------------------------------------------------
// lu-ckpt
// ---------------------------------------------------------------------

/// Plain blocked LU with a full-factor checkpoint after every block.
pub struct LuCkpt {
    a: Matrix,
    reference: Matrix,
}

impl LuCkpt {
    pub fn new() -> Self {
        let a = dominant_matrix(N, PROBLEM_SEED);
        let reference = lu_host(&a);
        LuCkpt { a, reference }
    }

    /// The block a crash at `site` abandons: column crashes land in the
    /// column's block (`PH_AFTER_COL`), block-end crashes right after the
    /// block's checkpoint (`PH_BLOCK_END`).
    fn crashed_block(site: CrashSite) -> u64 {
        if site.phase == sites::PH_AFTER_COL {
            site.index / BK as u64
        } else {
            site.index
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn crash_trial(
        &self,
        lu: &ChecksumLu,
        mgr: &mut CkptManager,
        cfg: SystemConfig,
        unit: u64,
        crashed_block: u64,
        image: &NvmImage,
        profile: Option<ExecutionProfile>,
    ) -> Trial {
        let sys2 = MemorySystem::from_image(cfg, image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let t0 = emu2.now();
        let (start, restored) = adcc_core::lu::variants::ckpt_restore(&mut emu2, lu, mgr);
        for b in start..blocks() as usize {
            for c in b * BK..((b + 1) * BK).min(N) {
                lu.process_column(&mut emu2, c);
            }
        }
        let sim_time_ps = (emu2.now() - t0).ps();

        // Column crashes abandon the in-flight block; block-end crashes
        // land right after the checkpoint.
        let lost = (crashed_block + 1).saturating_sub(start as u64);
        let matches = factor_matches(&lu.peek_factor(&emu2), &self.reference);
        Trial {
            unit,
            outcome: classify(!restored, matches, lost),
            lost_units: lost,
            sim_time_ps,
            telemetry: profile,
        }
    }
}

impl Default for LuCkpt {
    fn default() -> Self {
        Self::new()
    }
}

impl Scenario for LuCkpt {
    fn name(&self) -> &'static str {
        "lu-ckpt"
    }
    fn kernel(&self) -> Kernel {
        Kernel::Lu
    }
    fn mechanism(&self) -> Mechanism {
        Mechanism::Checkpoint
    }
    fn unit_space(&self) -> UnitSpace {
        UnitSpace::new(N as u64 + blocks(), DENSE_STRIDE)
    }

    fn site_trigger(&self, unit: u64) -> CrashTrigger {
        lu_site_trigger(unit)
    }

    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial {
        let cfg = config();
        let mut sys = MemorySystem::new(cfg.clone());
        let lu = ChecksumLu::setup(&mut sys, &self.a, BK);
        let regions = adcc_core::lu::variants::lu_ckpt_regions(&lu);
        let mut mgr = CkptManager::new_nvm(&mut sys, regions, false);
        let mut emu = CrashEmulator::from_system(sys, self.trigger_of(unit));
        let probe = telemetry.then(|| Probe::attach(&emu));
        let image = match adcc_core::lu::variants::run_with_ckpt(&mut emu, &lu, &mut mgr) {
            RunOutcome::Completed(()) => {
                let profile = probe.map(|p| p.finish(&emu));
                let factor = lu.peek_factor(&emu);
                return verified_completion(
                    factor_matches(&factor, &self.reference),
                    unit,
                    profile,
                );
            }
            RunOutcome::Crashed(image) => image,
        };
        let profile = probe.map(|p| p.finish(&emu).with_image(&image));
        let crashed = Self::crashed_block(emu.fired_site().expect("crashed"));
        self.crash_trial(&lu, &mut mgr, cfg, unit, crashed, &image, profile)
    }

    fn run_batch(&self, units: &[u64], telemetry: bool, mem: &ImageMemory) -> Option<Vec<Trial>> {
        let cfg = config();
        let mut sys = MemorySystem::new(cfg.clone());
        let lu = ChecksumLu::setup(&mut sys, &self.a, BK);
        let regions = adcc_core::lu::variants::lu_ckpt_regions(&lu);
        let mgr = RefCell::new(CkptManager::new_nvm(&mut sys, regions, false));
        let emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        Some(harness::run_harvested(
            units,
            telemetry,
            mem,
            emu,
            |u| self.trigger_of(u),
            |e| {
                adcc_core::lu::variants::run_with_ckpt(e, &lu, &mut mgr.borrow_mut())
                    .completed()
                    .expect("Never trigger completes");
            },
            |_k, unit, site, image, profile| {
                self.crash_trial(
                    &lu,
                    &mut mgr.borrow_mut(),
                    cfg.clone(),
                    unit,
                    Self::crashed_block(site),
                    image,
                    profile,
                )
            },
            |(), e, profile| {
                let factor = lu.peek_factor(e);
                verified_completion(factor_matches(&factor, &self.reference), 0, profile)
            },
        ))
    }

    fn run_resilience(&self, units: &[u64], mem: &ImageMemory) -> Option<ResilienceBatch> {
        let cfg = config();
        let mut sys = MemorySystem::new(cfg.clone());
        let lu = ChecksumLu::setup(&mut sys, &self.a, BK);
        let regions = adcc_core::lu::variants::lu_ckpt_regions(&lu);
        let mgr = RefCell::new(CkptManager::new_nvm(&mut sys, regions, false));
        let emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let want = flat_factor(&self.reference);
        let tolerance = dirty_tolerance();
        let trials = harness::run_dirty(
            units,
            mem,
            emu,
            |u| self.trigger_of(u),
            |e| {
                adcc_core::lu::variants::run_with_ckpt(e, &lu, &mut mgr.borrow_mut())
                    .completed()
                    .expect("Never trigger completes");
            },
            |unit, image| {
                let d = lu.dirty_restart(image, cfg.clone());
                harness::classify_dirty(unit, &d, &want, &tolerance)
            },
        );
        Some(ResilienceBatch { trials, tolerance })
    }
}
