//! Jacobi scenarios: algorithm extension and per-iteration checkpoint.

use adcc_ckpt::manager::CkptManager;
use adcc_core::jacobi::{jacobi_host, sites, ExtendedJacobi, PlainJacobi};
use adcc_linalg::csr::CsrMatrix;
use adcc_linalg::spd::CgClass;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::system::{MemorySystem, SystemConfig};
use adcc_telemetry::Probe;

use super::{max_diff, trim_dram};
use crate::outcome::{classify, Outcome};
use crate::scenario::{Kernel, Mechanism, Scenario, Trial};

const ITERS: usize = 12;
const TOL: f64 = 1e-9;
const PROBLEM_SEED: u64 = 303;

fn problem() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let class = CgClass::TEST;
    let a = class.matrix(PROBLEM_SEED);
    let b = class.rhs(&a);
    let reference = jacobi_host(&a, &b, ITERS);
    (a, b, reference)
}

fn config(a: &CsrMatrix) -> SystemConfig {
    let cap = (ITERS + 2) * a.n() * 8 + a.nnz() * 12 + (a.n() + 1) * 4 + (2 << 20);
    trim_dram(SystemConfig::nvm_only(16 << 10, cap))
}

// ---------------------------------------------------------------------
// jacobi-extended
// ---------------------------------------------------------------------

/// Extended Jacobi (iterate-history ring) with update-equation recovery.
pub struct JacobiExtended {
    a: CsrMatrix,
    b: Vec<f64>,
    reference: Vec<f64>,
}

impl JacobiExtended {
    pub fn new() -> Self {
        let (a, b, reference) = problem();
        JacobiExtended { a, b, reference }
    }
}

impl Default for JacobiExtended {
    fn default() -> Self {
        Self::new()
    }
}

impl Scenario for JacobiExtended {
    fn name(&self) -> &'static str {
        "jacobi-extended"
    }
    fn kernel(&self) -> Kernel {
        Kernel::Jacobi
    }
    fn mechanism(&self) -> Mechanism {
        Mechanism::Extended
    }
    fn total_units(&self) -> u64 {
        ITERS as u64
    }

    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial {
        let cfg = config(&self.a);
        let mut sys = MemorySystem::new(cfg.clone());
        let jac = ExtendedJacobi::setup(&mut sys, &self.a, &self.b, ITERS);
        let trigger = CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_X, unit),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trigger);
        let probe = telemetry.then(|| Probe::attach(&emu));
        match jac.run(&mut emu, 0, ITERS) {
            RunOutcome::Completed(()) => {
                let profile = probe.map(|p| p.finish(&emu));
                let sol = jac.peek_solution(&emu);
                Trial {
                    unit,
                    outcome: if max_diff(&sol, &self.reference) < TOL {
                        Outcome::CompletedClean
                    } else {
                        Outcome::SilentCorruption
                    },
                    lost_units: 0,
                    sim_time_ps: 0,
                    telemetry: profile,
                }
            }
            RunOutcome::Crashed(image) => {
                let profile = probe.map(|p| p.finish(&emu).with_image(&image));
                let rec = jac.recover_and_resume(&image, cfg);
                let matches = max_diff(&rec.solution, &self.reference) < TOL;
                let detected = rec.restart_from.is_none();
                Trial {
                    unit,
                    outcome: classify(detected, matches, rec.report.lost_units),
                    lost_units: rec.report.lost_units,
                    sim_time_ps: rec.report.total().ps(),
                    telemetry: profile,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// jacobi-ckpt
// ---------------------------------------------------------------------

/// Plain Jacobi with a checkpoint of `x` every iteration. Even units
/// crash before the checkpoint, odd units after it.
pub struct JacobiCkpt {
    a: CsrMatrix,
    b: Vec<f64>,
    reference: Vec<f64>,
}

impl JacobiCkpt {
    pub fn new() -> Self {
        let (a, b, reference) = problem();
        JacobiCkpt { a, b, reference }
    }
}

impl Default for JacobiCkpt {
    fn default() -> Self {
        Self::new()
    }
}

impl Scenario for JacobiCkpt {
    fn name(&self) -> &'static str {
        "jacobi-ckpt"
    }
    fn kernel(&self) -> Kernel {
        Kernel::Jacobi
    }
    fn mechanism(&self) -> Mechanism {
        Mechanism::Checkpoint
    }
    fn total_units(&self) -> u64 {
        2 * ITERS as u64
    }

    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial {
        let iter = unit / 2;
        let phase = if unit.is_multiple_of(2) {
            sites::PH_AFTER_X
        } else {
            sites::PH_ITER_END
        };
        let cfg = config(&self.a);
        let mut sys = MemorySystem::new(cfg.clone());
        let jac = PlainJacobi::setup(&mut sys, &self.a, &self.b, ITERS);
        let mut mgr = CkptManager::new_nvm(&mut sys, jac.ckpt_regions(), false);
        let trigger = CrashTrigger::AtSite {
            site: CrashSite::new(phase, iter),
            occurrence: 1,
        };
        let mut emu = CrashEmulator::from_system(sys, trigger);
        let probe = telemetry.then(|| Probe::attach(&emu));
        let image = match adcc_core::jacobi::variants::run_with_ckpt(&mut emu, &jac, &mut mgr) {
            RunOutcome::Completed(()) => {
                let profile = probe.map(|p| p.finish(&emu));
                let sol = jac.peek_solution(&emu);
                return Trial {
                    unit,
                    outcome: if max_diff(&sol, &self.reference) < TOL {
                        Outcome::CompletedClean
                    } else {
                        Outcome::SilentCorruption
                    },
                    lost_units: 0,
                    sim_time_ps: 0,
                    telemetry: profile,
                };
            }
            RunOutcome::Crashed(image) => image,
        };
        let profile = probe.map(|p| p.finish(&emu).with_image(&image));

        let sys2 = MemorySystem::from_image(cfg, &image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let t0 = emu2.now();
        let (start, restored) =
            adcc_core::jacobi::variants::ckpt_restore(&mut emu2, &jac, &mut mgr);
        for _ in start..ITERS {
            jac.step(&mut emu2);
        }
        let sim_time_ps = (emu2.now() - t0).ps();

        let lost = (iter + 1).saturating_sub(start as u64);
        let matches = max_diff(&jac.peek_solution(&emu2), &self.reference) < TOL;
        Trial {
            unit,
            outcome: classify(!restored, matches, lost),
            lost_units: lost,
            sim_time_ps,
            telemetry: profile,
        }
    }
}
