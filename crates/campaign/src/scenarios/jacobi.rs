//! Jacobi scenarios: algorithm extension and per-iteration checkpoint.

use std::cell::RefCell;

use adcc_ckpt::manager::CkptManager;
use adcc_core::jacobi::{jacobi_host, sites, ExtendedJacobi, PlainJacobi};
use adcc_linalg::csr::CsrMatrix;
use adcc_linalg::spd::CgClass;
use adcc_sim::crash::{CrashEmulator, CrashSite, CrashTrigger, RunOutcome};
use adcc_sim::image::NvmImage;
use adcc_sim::system::{MemorySystem, SystemConfig};
use adcc_telemetry::{ExecutionProfile, Probe};

use adcc_resilience::Tolerance;

use super::{harness, max_diff, trim_dram, verified_completion};
use crate::memstats::ImageMemory;
use crate::outcome::classify;
use crate::scenario::{Kernel, Mechanism, ResilienceBatch, Scenario, Trial, UnitSpace};

const ITERS: usize = 12;
const TOL: f64 = 1e-9;
const PROBLEM_SEED: u64 = 303;
/// Access-count spacing of dense crash points (one full run issues
/// ~79k element accesses; an 8-access stride carries ~9.8k points).
const DENSE_STRIDE: u64 = 8;

fn problem() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let class = CgClass::TEST;
    let a = class.matrix(PROBLEM_SEED);
    let b = class.rhs(&a);
    let reference = jacobi_host(&a, &b, ITERS);
    (a, b, reference)
}

/// Dirty-restart residual tolerance. Weighted Jacobi is a fixed-point
/// contraction: stale or torn iterates are perturbations the remaining
/// iterations damp, so a loose `acceptable` band captures the natural
/// resilience the EasyCrash argument predicts.
fn dirty_tolerance() -> Tolerance {
    Tolerance::new(TOL, 1e-2, 1e3)
}

fn config(a: &CsrMatrix) -> SystemConfig {
    let cap = (ITERS + 2) * a.n() * 8 + a.nnz() * 12 + (a.n() + 1) * 4 + (2 << 20);
    trim_dram(SystemConfig::nvm_only(16 << 10, cap))
}

// ---------------------------------------------------------------------
// jacobi-extended
// ---------------------------------------------------------------------

/// Extended Jacobi (iterate-history ring) with update-equation recovery.
pub struct JacobiExtended {
    a: CsrMatrix,
    b: Vec<f64>,
    reference: Vec<f64>,
}

impl JacobiExtended {
    pub fn new() -> Self {
        let (a, b, reference) = problem();
        JacobiExtended { a, b, reference }
    }

    fn crash_trial(
        &self,
        jac: &ExtendedJacobi,
        cfg: SystemConfig,
        unit: u64,
        image: &NvmImage,
        profile: Option<ExecutionProfile>,
    ) -> Trial {
        let rec = jac.recover_and_resume(image, cfg);
        let matches = max_diff(&rec.solution, &self.reference) < TOL;
        let detected = rec.restart_from.is_none();
        Trial {
            unit,
            outcome: classify(detected, matches, rec.report.lost_units),
            lost_units: rec.report.lost_units,
            sim_time_ps: rec.report.total().ps(),
            telemetry: profile,
        }
    }
}

impl Default for JacobiExtended {
    fn default() -> Self {
        Self::new()
    }
}

impl Scenario for JacobiExtended {
    fn name(&self) -> &'static str {
        "jacobi-extended"
    }
    fn kernel(&self) -> Kernel {
        Kernel::Jacobi
    }
    fn mechanism(&self) -> Mechanism {
        Mechanism::Extended
    }
    fn unit_space(&self) -> UnitSpace {
        UnitSpace::new(ITERS as u64, DENSE_STRIDE)
    }

    fn site_trigger(&self, unit: u64) -> CrashTrigger {
        CrashTrigger::AtSite {
            site: CrashSite::new(sites::PH_AFTER_X, unit),
            occurrence: 1,
        }
    }

    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial {
        let cfg = config(&self.a);
        let mut sys = MemorySystem::new(cfg.clone());
        let jac = ExtendedJacobi::setup(&mut sys, &self.a, &self.b, ITERS);
        let mut emu = CrashEmulator::from_system(sys, self.trigger_of(unit));
        let probe = telemetry.then(|| Probe::attach(&emu));
        match jac.run(&mut emu, 0, ITERS) {
            RunOutcome::Completed(()) => {
                let profile = probe.map(|p| p.finish(&emu));
                let sol = jac.peek_solution(&emu);
                verified_completion(max_diff(&sol, &self.reference) < TOL, unit, profile)
            }
            RunOutcome::Crashed(image) => {
                let profile = probe.map(|p| p.finish(&emu).with_image(&image));
                self.crash_trial(&jac, cfg, unit, &image, profile)
            }
        }
    }

    fn run_batch(&self, units: &[u64], telemetry: bool, mem: &ImageMemory) -> Option<Vec<Trial>> {
        let cfg = config(&self.a);
        let mut sys = MemorySystem::new(cfg.clone());
        let jac = ExtendedJacobi::setup(&mut sys, &self.a, &self.b, ITERS);
        let emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        Some(harness::run_harvested(
            units,
            telemetry,
            mem,
            emu,
            |u| self.trigger_of(u),
            |e| {
                jac.run(e, 0, ITERS)
                    .completed()
                    .expect("Never trigger completes");
            },
            |_k, unit, _site, image, profile| {
                self.crash_trial(&jac, cfg.clone(), unit, image, profile)
            },
            |(), e, profile| {
                let sol = jac.peek_solution(e);
                verified_completion(max_diff(&sol, &self.reference) < TOL, 0, profile)
            },
        ))
    }

    fn run_resilience(&self, units: &[u64], mem: &ImageMemory) -> Option<ResilienceBatch> {
        let cfg = config(&self.a);
        let mut sys = MemorySystem::new(cfg.clone());
        let jac = ExtendedJacobi::setup(&mut sys, &self.a, &self.b, ITERS);
        let emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let tolerance = dirty_tolerance();
        let trials = harness::run_dirty(
            units,
            mem,
            emu,
            |u| self.trigger_of(u),
            |e| {
                jac.run(e, 0, ITERS)
                    .completed()
                    .expect("Never trigger completes");
            },
            |unit, image| {
                let d = jac.dirty_restart(image, cfg.clone());
                harness::classify_dirty(unit, &d, &self.reference, &tolerance)
            },
        );
        Some(ResilienceBatch { trials, tolerance })
    }
}

// ---------------------------------------------------------------------
// jacobi-ckpt
// ---------------------------------------------------------------------

/// Plain Jacobi with a checkpoint of `x` every iteration. Even units
/// crash before the checkpoint, odd units after it.
pub struct JacobiCkpt {
    a: CsrMatrix,
    b: Vec<f64>,
    reference: Vec<f64>,
}

impl JacobiCkpt {
    pub fn new() -> Self {
        let (a, b, reference) = problem();
        JacobiCkpt { a, b, reference }
    }

    /// Iterations whose step had completed when the crash landed at
    /// `site`: both polled sites (`PH_AFTER_X` before the checkpoint,
    /// `PH_ITER_END` after it) sit after iteration `index`'s step.
    fn completed_steps(site: CrashSite) -> u64 {
        site.index + 1
    }

    #[allow(clippy::too_many_arguments)]
    fn crash_trial(
        &self,
        jac: &PlainJacobi,
        mgr: &mut CkptManager,
        cfg: SystemConfig,
        unit: u64,
        completed: u64,
        image: &NvmImage,
        profile: Option<ExecutionProfile>,
    ) -> Trial {
        let sys2 = MemorySystem::from_image(cfg, image);
        let mut emu2 = CrashEmulator::from_system(sys2, CrashTrigger::Never);
        let t0 = emu2.now();
        let (start, restored) = adcc_core::jacobi::variants::ckpt_restore(&mut emu2, jac, mgr);
        for _ in start..ITERS {
            jac.step(&mut emu2);
        }
        let sim_time_ps = (emu2.now() - t0).ps();

        let lost = completed.saturating_sub(start as u64);
        let matches = max_diff(&jac.peek_solution(&emu2), &self.reference) < TOL;
        Trial {
            unit,
            outcome: classify(!restored, matches, lost),
            lost_units: lost,
            sim_time_ps,
            telemetry: profile,
        }
    }
}

impl Default for JacobiCkpt {
    fn default() -> Self {
        Self::new()
    }
}

impl Scenario for JacobiCkpt {
    fn name(&self) -> &'static str {
        "jacobi-ckpt"
    }
    fn kernel(&self) -> Kernel {
        Kernel::Jacobi
    }
    fn mechanism(&self) -> Mechanism {
        Mechanism::Checkpoint
    }
    fn unit_space(&self) -> UnitSpace {
        UnitSpace::new(2 * ITERS as u64, DENSE_STRIDE)
    }

    fn site_trigger(&self, unit: u64) -> CrashTrigger {
        let iter = unit / 2;
        let phase = if unit.is_multiple_of(2) {
            sites::PH_AFTER_X
        } else {
            sites::PH_ITER_END
        };
        CrashTrigger::AtSite {
            site: CrashSite::new(phase, iter),
            occurrence: 1,
        }
    }

    fn run_trial(&self, unit: u64, telemetry: bool) -> Trial {
        let cfg = config(&self.a);
        let mut sys = MemorySystem::new(cfg.clone());
        let jac = PlainJacobi::setup(&mut sys, &self.a, &self.b, ITERS);
        let mut mgr = CkptManager::new_nvm(&mut sys, jac.ckpt_regions(), false);
        let mut emu = CrashEmulator::from_system(sys, self.trigger_of(unit));
        let probe = telemetry.then(|| Probe::attach(&emu));
        let image = match adcc_core::jacobi::variants::run_with_ckpt(&mut emu, &jac, &mut mgr) {
            RunOutcome::Completed(()) => {
                let profile = probe.map(|p| p.finish(&emu));
                let sol = jac.peek_solution(&emu);
                return verified_completion(max_diff(&sol, &self.reference) < TOL, unit, profile);
            }
            RunOutcome::Crashed(image) => image,
        };
        let profile = probe.map(|p| p.finish(&emu).with_image(&image));
        let completed = Self::completed_steps(emu.fired_site().expect("crashed"));
        self.crash_trial(&jac, &mut mgr, cfg, unit, completed, &image, profile)
    }

    fn run_batch(&self, units: &[u64], telemetry: bool, mem: &ImageMemory) -> Option<Vec<Trial>> {
        let cfg = config(&self.a);
        let mut sys = MemorySystem::new(cfg.clone());
        let jac = PlainJacobi::setup(&mut sys, &self.a, &self.b, ITERS);
        let mgr = RefCell::new(CkptManager::new_nvm(&mut sys, jac.ckpt_regions(), false));
        let emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        Some(harness::run_harvested(
            units,
            telemetry,
            mem,
            emu,
            |u| self.trigger_of(u),
            |e| {
                adcc_core::jacobi::variants::run_with_ckpt(e, &jac, &mut mgr.borrow_mut())
                    .completed()
                    .expect("Never trigger completes");
            },
            |_k, unit, site, image, profile| {
                self.crash_trial(
                    &jac,
                    &mut mgr.borrow_mut(),
                    cfg.clone(),
                    unit,
                    Self::completed_steps(site),
                    image,
                    profile,
                )
            },
            |(), e, profile| {
                let sol = jac.peek_solution(e);
                verified_completion(max_diff(&sol, &self.reference) < TOL, 0, profile)
            },
        ))
    }

    fn run_resilience(&self, units: &[u64], mem: &ImageMemory) -> Option<ResilienceBatch> {
        let cfg = config(&self.a);
        let mut sys = MemorySystem::new(cfg.clone());
        let jac = PlainJacobi::setup(&mut sys, &self.a, &self.b, ITERS);
        let mgr = RefCell::new(CkptManager::new_nvm(&mut sys, jac.ckpt_regions(), false));
        let emu = CrashEmulator::from_system(sys, CrashTrigger::Never);
        let tolerance = dirty_tolerance();
        let trials = harness::run_dirty(
            units,
            mem,
            emu,
            |u| self.trigger_of(u),
            |e| {
                adcc_core::jacobi::variants::run_with_ckpt(e, &jac, &mut mgr.borrow_mut())
                    .completed()
                    .expect("Never trigger completes");
            },
            |unit, image| {
                let d = jac.dirty_restart(image, cfg.clone());
                harness::classify_dirty(unit, &d, &self.reference, &tolerance)
            },
        );
        Some(ResilienceBatch { trials, tolerance })
    }
}
